//! Dynamic loss scaling for mixed-precision training.
//!
//! fp16's narrow exponent range underflows small gradients; the standard
//! mitigation (Micikevicius et al., the paper's reference 23) multiplies the loss
//! by a scale factor before backward and divides gradients by it before
//! the optimizer step. The scale adapts: halve on overflow and skip the
//! step, double after a streak of clean steps.

/// Dynamic loss scaler state.
#[derive(Clone, Copy, Debug)]
pub struct DynamicLossScaler {
    scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: u32,
    good_steps: u32,
    min_scale: f32,
    max_scale: f32,
    skipped: u64,
}

impl Default for DynamicLossScaler {
    fn default() -> Self {
        DynamicLossScaler::new(65_536.0)
    }
}

impl DynamicLossScaler {
    /// Creates a scaler with DeepSpeed-like defaults (×2 growth every 2000
    /// clean steps, ÷2 backoff on overflow).
    pub fn new(initial_scale: f32) -> DynamicLossScaler {
        assert!(initial_scale > 0.0, "scale must be positive");
        DynamicLossScaler {
            scale: initial_scale,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 2000,
            good_steps: 0,
            min_scale: 1.0,
            max_scale: 2.0_f32.powi(24),
            skipped: 0,
        }
    }

    /// Sets the growth interval (useful to shorten in tests).
    pub fn with_growth_interval(mut self, interval: u32) -> Self {
        self.growth_interval = interval.max(1);
        self
    }

    /// Current scale S: the loss is multiplied by S, gradients carry a
    /// factor of S until unscaled.
    #[inline]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// 1/S, the factor to apply to gradients before the optimizer.
    #[inline]
    pub fn inv_scale(&self) -> f32 {
        1.0 / self.scale
    }

    /// Number of steps skipped due to overflow so far.
    pub fn skipped_steps(&self) -> u64 {
        self.skipped
    }

    /// Serializable state: (scale, good-step streak, skipped count).
    pub fn state(&self) -> (f32, u32, u64) {
        (self.scale, self.good_steps, self.skipped)
    }

    /// Restores from [`Self::state`] (checkpoint resume).
    ///
    /// A snapshot is untrusted input: a corrupt or hand-edited file could
    /// carry a scale outside `[min_scale, max_scale]` — an invariant
    /// [`Self::update`] maintains but downstream code (gradient unscale,
    /// overflow detection) silently depends on. The restored scale is
    /// clamped back into range.
    ///
    /// # Panics
    /// Panics if `scale` is non-finite or not positive.
    pub fn restore(&mut self, scale: f32, good_steps: u32, skipped: u64) {
        assert!(
            scale.is_finite() && scale > 0.0,
            "restored loss scale must be finite and positive, got {scale}"
        );
        self.scale = scale.clamp(self.min_scale, self.max_scale);
        self.good_steps = good_steps;
        self.skipped = skipped;
    }

    /// Reports the outcome of a step. Returns `true` if the optimizer
    /// step should be SKIPPED (an overflow was detected).
    pub fn update(&mut self, found_overflow: bool) -> bool {
        if found_overflow {
            self.scale = (self.scale * self.backoff_factor).max(self.min_scale);
            self.good_steps = 0;
            self.skipped += 1;
            true
        } else {
            self.good_steps += 1;
            if self.good_steps >= self.growth_interval {
                self.scale = (self.scale * self.growth_factor).min(self.max_scale);
                self.good_steps = 0;
            }
            false
        }
    }

    /// Like [`Self::update`], additionally dropping a loss-scale instant
    /// event on `trace` whenever the scale actually moves:
    /// `"loss-scale-backoff"` on an overflow halving, `"loss-scale-growth"`
    /// on an interval doubling.
    pub fn update_traced(
        &mut self,
        found_overflow: bool,
        trace: &zero_trace::TraceRecorder,
    ) -> bool {
        let before = self.scale;
        let skipped = self.update(found_overflow);
        if self.scale < before {
            trace.instant(zero_trace::SpanCategory::Optimizer, "loss-scale-backoff");
        } else if self.scale > before {
            trace.instant(zero_trace::SpanCategory::Optimizer, "loss-scale-growth");
        }
        skipped
    }
}

/// Scans a gradient buffer for NaN/Inf (the overflow signal collected,
/// in distributed runs, with a max-all-reduce across ranks).
pub fn has_overflow(grads: &[f32]) -> bool {
    grads.iter().any(|g| !g.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_halves_scale_and_skips() {
        let mut s = DynamicLossScaler::new(1024.0);
        assert!(s.update(true));
        assert_eq!(s.scale(), 512.0);
        assert_eq!(s.skipped_steps(), 1);
    }

    #[test]
    fn growth_after_interval() {
        let mut s = DynamicLossScaler::new(8.0).with_growth_interval(3);
        assert!(!s.update(false));
        assert!(!s.update(false));
        assert_eq!(s.scale(), 8.0, "not yet");
        assert!(!s.update(false));
        assert_eq!(s.scale(), 16.0, "after 3 clean steps");
    }

    #[test]
    fn overflow_resets_growth_streak() {
        let mut s = DynamicLossScaler::new(8.0).with_growth_interval(2);
        s.update(false);
        s.update(true); // resets streak, halves
        assert_eq!(s.scale(), 4.0);
        s.update(false);
        assert_eq!(s.scale(), 4.0, "streak restarted");
        s.update(false);
        assert_eq!(s.scale(), 8.0);
    }

    #[test]
    fn scale_clamped_to_bounds() {
        let mut s = DynamicLossScaler::new(1.0);
        s.update(true);
        assert_eq!(s.scale(), 1.0, "never below min");
        let mut s = DynamicLossScaler::new(2.0_f32.powi(24)).with_growth_interval(1);
        s.update(false);
        assert_eq!(s.scale(), 2.0_f32.powi(24), "never above max");
    }

    #[test]
    fn restore_clamps_out_of_range_scales() {
        // Regression: restore used to accept any positive scale, letting a
        // corrupt snapshot resume outside [min_scale, max_scale].
        let mut s = DynamicLossScaler::new(1024.0);
        s.restore(1e30, 5, 2);
        assert_eq!(s.scale(), 2.0_f32.powi(24), "clamped down to max_scale");
        assert_eq!(s.skipped_steps(), 2);
        s.restore(1e-20, 0, 2);
        assert_eq!(s.scale(), 1.0, "clamped up to min_scale");
        // In-range values pass through untouched.
        s.restore(4096.0, 7, 9);
        assert_eq!(s.state(), (4096.0, 7, 9));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn restore_rejects_nan_scale() {
        DynamicLossScaler::new(8.0).restore(f32::NAN, 0, 0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn restore_rejects_infinite_scale() {
        DynamicLossScaler::new(8.0).restore(f32::INFINITY, 0, 0);
    }

    #[test]
    fn overflow_detection() {
        assert!(!has_overflow(&[1.0, -2.0, 0.0]));
        assert!(has_overflow(&[1.0, f32::NAN]));
        assert!(has_overflow(&[f32::INFINITY]));
        assert!(has_overflow(&[f32::NEG_INFINITY, 0.0]));
    }
}
