//! Adam optimizer (Kingma & Ba, 2015) over flat parameter buffers.
//!
//! Adam is the paper's canonical memory-hungry optimizer: per parameter it
//! keeps first-moment (momentum) and second-moment (variance) estimates in
//! fp32, which together with the fp32 master parameters give the K = 12
//! bytes/parameter multiplier of §3.1. The optimizer here operates on any
//! contiguous slice, so the ZeRO engines can run it over a 1/N_d shard —
//! the essence of P_os.

use std::sync::Arc;

use zero_trace::{SpanCategory, TraceRecorder};

/// Adam hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style); 0 disables.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adam state for a (possibly sharded) flat parameter buffer.
///
/// Memory: `8 · numel` bytes (two fp32 moments) — exactly the momentum and
/// variance terms of the paper's K = 12 decomposition (the remaining 4 are
/// the fp32 master parameters, owned by the mixed-precision engine).
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    trace: Option<Arc<TraceRecorder>>,
}

impl Adam {
    /// Zero-initialized state for `numel` parameters.
    pub fn new(numel: usize, cfg: AdamConfig) -> Adam {
        Adam {
            cfg,
            m: vec![0.0; numel],
            v: vec![0.0; numel],
            t: 0,
            trace: None,
        }
    }

    /// Attaches a span recorder: every subsequent [`Self::step`] brackets
    /// its update in an `optimizer`-category `"adam-update"` span.
    pub fn attach_trace(&mut self, trace: Arc<TraceRecorder>) {
        self.trace = Some(trace);
    }

    /// Number of parameters this state covers.
    pub fn numel(&self) -> usize {
        self.m.len()
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Overrides the learning rate (LR schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Bytes of optimizer state held (momentum + variance).
    pub fn state_bytes(&self) -> usize {
        8 * self.m.len()
    }

    /// Applies one Adam update: `params -= lr · m̂ / (√v̂ + eps)`.
    ///
    /// # Panics
    /// Panics if `params` or `grads` length differs from the state size.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "adam: params length");
        assert_eq!(grads.len(), self.m.len(), "adam: grads length");
        let span = self
            .trace
            .as_ref()
            .map(|t| t.begin(SpanCategory::Optimizer, "adam-update"));
        self.t += 1;
        let AdamConfig {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
        } = self.cfg;
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            let m = beta1 * self.m[i] + (1.0 - beta1) * g;
            let v = beta2 * self.v[i] + (1.0 - beta2) * g * g;
            self.m[i] = m;
            self.v[i] = v;
            let m_hat = m / bc1;
            let v_hat = v / bc2;
            let mut update = m_hat / (v_hat.sqrt() + eps);
            if weight_decay != 0.0 {
                update += weight_decay * params[i];
            }
            params[i] -= lr * update;
        }
        if let (Some(t), Some(id)) = (&self.trace, span) {
            t.end(id);
        }
    }

    /// Direct access to the moment buffers (for the partitioning tests
    /// and checkpoint serialization).
    pub fn moments(&self) -> (&[f32], &[f32]) {
        (&self.m, &self.v)
    }

    /// Reconstructs Adam state from serialized moments and step count
    /// (checkpoint resume).
    ///
    /// # Panics
    /// Panics if the moment buffers differ in length.
    pub fn from_state(cfg: AdamConfig, m: Vec<f32>, v: Vec<f32>, t: u64) -> Adam {
        assert_eq!(m.len(), v.len(), "adam state length mismatch");
        Adam { cfg, m, v, t, trace: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference implementation, one parameter.
    fn reference(steps: usize, grad: f32, mut p: f32, cfg: AdamConfig) -> f32 {
        let (mut m, mut v) = (0.0_f32, 0.0_f32);
        for t in 1..=steps {
            m = cfg.beta1 * m + (1.0 - cfg.beta1) * grad;
            v = cfg.beta2 * v + (1.0 - cfg.beta2) * grad * grad;
            let m_hat = m / (1.0 - cfg.beta1.powi(t as i32));
            let v_hat = v / (1.0 - cfg.beta2.powi(t as i32));
            p -= cfg.lr * (m_hat / (v_hat.sqrt() + cfg.eps) + cfg.weight_decay * p);
        }
        p
    }

    #[test]
    fn matches_scalar_reference() {
        let cfg = AdamConfig::default();
        let mut adam = Adam::new(3, cfg);
        let mut params = vec![1.0, -2.0, 0.5];
        let grads = vec![0.3, -0.1, 0.0];
        for _ in 0..10 {
            adam.step(&mut params, &grads);
        }
        for i in 0..3 {
            let want = reference(10, grads[i], [1.0, -2.0, 0.5][i], cfg);
            assert!(
                (params[i] - want).abs() < 1e-5,
                "param {i}: {} vs {want}",
                params[i]
            );
        }
    }

    #[test]
    fn first_step_moves_by_lr_against_gradient_sign() {
        // With bias correction, the very first Adam step is ≈ lr·sign(g).
        let cfg = AdamConfig::default();
        let mut adam = Adam::new(2, cfg);
        let mut params = vec![0.0, 0.0];
        adam.step(&mut params, &[0.5, -0.2]);
        assert!((params[0] + cfg.lr).abs() < 1e-5, "got {}", params[0]);
        assert!((params[1] - cfg.lr).abs() < 1e-5, "got {}", params[1]);
    }

    #[test]
    fn zero_gradient_leaves_params_unchanged_without_decay() {
        let mut adam = Adam::new(2, AdamConfig::default());
        let mut params = vec![1.5, -0.3];
        adam.step(&mut params, &[0.0, 0.0]);
        assert_eq!(params, vec![1.5, -0.3]);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let cfg = AdamConfig {
            weight_decay: 0.1,
            ..AdamConfig::default()
        };
        let mut adam = Adam::new(1, cfg);
        let mut params = vec![1.0];
        adam.step(&mut params, &[0.0]);
        assert!(params[0] < 1.0 && params[0] > 0.99);
    }

    #[test]
    fn sharded_updates_equal_full_update() {
        // Running Adam on two half-shards must equal running it on the
        // whole buffer — the invariant P_os relies on.
        let cfg = AdamConfig::default();
        let n = 10;
        let grads: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
        let init: Vec<f32> = (0..n).map(|i| (i as f32 * 1.3).cos()).collect();

        let mut full = Adam::new(n, cfg);
        let mut p_full = init.clone();
        for _ in 0..5 {
            full.step(&mut p_full, &grads);
        }

        let mut lo = Adam::new(n / 2, cfg);
        let mut hi = Adam::new(n / 2, cfg);
        let mut p_lo = init[..n / 2].to_vec();
        let mut p_hi = init[n / 2..].to_vec();
        for _ in 0..5 {
            lo.step(&mut p_lo, &grads[..n / 2]);
            hi.step(&mut p_hi, &grads[n / 2..]);
        }
        assert_eq!(&p_full[..n / 2], &p_lo[..]);
        assert_eq!(&p_full[n / 2..], &p_hi[..]);
    }

    #[test]
    fn state_bytes_is_8_per_param() {
        let adam = Adam::new(100, AdamConfig::default());
        assert_eq!(adam.state_bytes(), 800);
    }
}
