//! Learning-rate schedules.
//!
//! Large-model pretraining (the paper's workloads, GPT-2/Megatron style)
//! universally uses linear warmup followed by a decay; schedules compose
//! with ZeRO trivially because the sharded optimizer applies the same
//! scalar rate on every rank.

/// A learning-rate schedule mapping optimizer step → multiplier of the
/// base rate (so `lr(step) = base_lr · factor(step)`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Always the base rate.
    Constant,
    /// Linear 0→1 warmup over `warmup` steps, then flat.
    Warmup {
        /// Warmup steps.
        warmup: u64,
    },
    /// Linear warmup, then linear decay to `floor` at `total` steps.
    WarmupLinear {
        /// Warmup steps.
        warmup: u64,
        /// Total steps (decay endpoint).
        total: u64,
        /// Final multiplier in [0, 1].
        floor: f32,
    },
    /// Linear warmup, then cosine decay to `floor` at `total` steps.
    WarmupCosine {
        /// Warmup steps.
        warmup: u64,
        /// Total steps (decay endpoint).
        total: u64,
        /// Final multiplier in [0, 1].
        floor: f32,
    },
}

impl LrSchedule {
    /// The multiplier at `step` (0-based: the factor applied to the
    /// step+1-th update).
    pub fn factor(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Warmup { warmup } => warmup_factor(step, warmup),
            LrSchedule::WarmupLinear { warmup, total, floor } => {
                let w = warmup_factor(step, warmup);
                if step < warmup || total <= warmup {
                    return w;
                }
                let t = ((step - warmup) as f32 / (total - warmup) as f32).min(1.0);
                floor + (1.0 - floor) * (1.0 - t)
            }
            LrSchedule::WarmupCosine { warmup, total, floor } => {
                let w = warmup_factor(step, warmup);
                if step < warmup || total <= warmup {
                    return w;
                }
                let t = ((step - warmup) as f32 / (total - warmup) as f32).min(1.0);
                floor + (1.0 - floor) * 0.5 * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

fn warmup_factor(step: u64, warmup: u64) -> f32 {
    if warmup == 0 || step >= warmup {
        1.0
    } else {
        (step + 1) as f32 / warmup as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        for s in [0u64, 5, 1000] {
            assert_eq!(LrSchedule::Constant.factor(s), 1.0);
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { warmup: 4 };
        assert_eq!(s.factor(0), 0.25);
        assert_eq!(s.factor(1), 0.5);
        assert_eq!(s.factor(3), 1.0);
        assert_eq!(s.factor(100), 1.0);
    }

    #[test]
    fn linear_decay_reaches_floor() {
        let s = LrSchedule::WarmupLinear {
            warmup: 2,
            total: 12,
            floor: 0.1,
        };
        assert!(s.factor(0) < 1.0, "still warming");
        assert!((s.factor(2) - 1.0).abs() < 1e-6, "peak right after warmup");
        let mid = s.factor(7);
        assert!(mid < 1.0 && mid > 0.1);
        assert!((s.factor(12) - 0.1).abs() < 1e-6);
        assert!((s.factor(500) - 0.1).abs() < 1e-6, "clamped at floor");
    }

    #[test]
    fn cosine_decay_is_smooth_and_monotone() {
        let s = LrSchedule::WarmupCosine {
            warmup: 0,
            total: 100,
            floor: 0.0,
        };
        let mut prev = f32::INFINITY;
        for step in 0..=100 {
            let f = s.factor(step);
            assert!(f <= prev + 1e-6, "cosine decay must be monotone");
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        assert!((s.factor(0) - 1.0).abs() < 1e-3);
        assert!(s.factor(100) < 1e-3);
        // Halfway through, cosine sits at exactly 0.5.
        assert!((s.factor(50) - 0.5).abs() < 0.02);
    }

    #[test]
    fn degenerate_totals_do_not_divide_by_zero() {
        let s = LrSchedule::WarmupLinear {
            warmup: 10,
            total: 10,
            floor: 0.0,
        };
        assert_eq!(s.factor(20), 1.0, "no decay span: stay at peak");
    }
}
