//! Plain SGD with optional momentum — the low-memory baseline the paper
//! contrasts with adaptive optimizers (§2.3): 0 or 4 bytes of state per
//! parameter instead of Adam's 8.

/// SGD hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient; 0 disables momentum (and its state).
    pub momentum: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.01,
            momentum: 0.0,
        }
    }
}

/// SGD state over a flat parameter buffer.
pub struct Sgd {
    cfg: SgdConfig,
    velocity: Option<Vec<f32>>,
}

impl Sgd {
    /// Creates the optimizer; allocates velocity only if momentum > 0.
    pub fn new(numel: usize, cfg: SgdConfig) -> Sgd {
        Sgd {
            cfg,
            velocity: (cfg.momentum != 0.0).then(|| vec![0.0; numel]),
        }
    }

    /// Overrides the learning rate (LR schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Bytes of optimizer state held.
    pub fn state_bytes(&self) -> usize {
        self.velocity.as_ref().map_or(0, |v| 4 * v.len())
    }

    /// The velocity buffer, if momentum is enabled (for serialization).
    pub fn velocity(&self) -> Option<&[f32]> {
        self.velocity.as_deref()
    }

    /// Reconstructs SGD state from a serialized velocity buffer.
    pub fn from_state(cfg: SgdConfig, velocity: Option<Vec<f32>>) -> Sgd {
        assert_eq!(
            velocity.is_some(),
            cfg.momentum != 0.0,
            "velocity presence must match momentum config"
        );
        Sgd { cfg, velocity }
    }

    /// Applies one update.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "sgd: length mismatch");
        match &mut self.velocity {
            Some(vel) => {
                assert_eq!(vel.len(), params.len(), "sgd: velocity length");
                for i in 0..params.len() {
                    vel[i] = self.cfg.momentum * vel[i] + grads[i];
                    params[i] -= self.cfg.lr * vel[i];
                }
            }
            None => {
                for (p, &g) in params.iter_mut().zip(grads) {
                    *p -= self.cfg.lr * g;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_sgd_update() {
        let mut sgd = Sgd::new(2, SgdConfig { lr: 0.1, momentum: 0.0 });
        let mut p = vec![1.0, 2.0];
        sgd.step(&mut p, &[1.0, -1.0]);
        assert_eq!(p, vec![0.9, 2.1]);
        assert_eq!(sgd.state_bytes(), 0);
    }

    #[test]
    fn momentum_accumulates() {
        let mut sgd = Sgd::new(1, SgdConfig { lr: 0.1, momentum: 0.9 });
        let mut p = vec![0.0];
        sgd.step(&mut p, &[1.0]); // v=1.0, p=-0.1
        sgd.step(&mut p, &[1.0]); // v=1.9, p=-0.29
        assert!((p[0] + 0.29).abs() < 1e-6, "got {}", p[0]);
        assert_eq!(sgd.state_bytes(), 4);
    }
}
