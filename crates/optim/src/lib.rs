//! # zero-optim
//!
//! Optimizers for the ZeRO reproduction: [`Adam`] with the exact fp32
//! state footprint the paper's K = 12 multiplier counts, a low-memory
//! [`Sgd`] baseline, [`DynamicLossScaler`] for mixed precision, and
//! global-norm gradient clipping helpers that compose across shards.
//!
//! All optimizers operate on flat `&mut [f32]` buffers so that the ZeRO
//! engines can run them over 1/N_d partitions (P_os) unchanged.
//!
//! ```
//! use zero_optim::{Adam, AdamConfig};
//!
//! let mut adam = Adam::new(2, AdamConfig::default());
//! let mut params = vec![0.0_f32, 0.0];
//! adam.step(&mut params, &[1.0, -1.0]);
//! // First bias-corrected step moves by ~lr against the gradient sign.
//! assert!(params[0] < 0.0 && params[1] > 0.0);
//! // The K = 12 decomposition: 8 bytes/param of moments here + the
//! // engine's 4-byte fp32 master copy.
//! assert_eq!(adam.state_bytes(), 16);
//! ```

pub mod adam;
pub mod clip;
pub mod scaler;
pub mod schedule;
pub mod sgd;

pub use adam::{Adam, AdamConfig};
pub use clip::{apply_clip, clip_coefficient, local_sq_norm};
pub use scaler::{has_overflow, DynamicLossScaler};
pub use schedule::LrSchedule;
pub use sgd::{Sgd, SgdConfig};
