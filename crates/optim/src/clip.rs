//! Gradient clipping by global L2 norm.
//!
//! In distributed training the global norm spans *all* ranks' partitions:
//! each rank computes the squared norm of its shard, the squares are
//! sum-all-reduced, and every rank applies the same coefficient — one of
//! the "gradient norm computation" fusions §3.2 mentions among temporary-
//! buffer consumers.

/// Squared L2 norm of a gradient shard (f64 accumulation).
pub fn local_sq_norm(grads: &[f32]) -> f64 {
    grads.iter().map(|&g| (g as f64) * (g as f64)).sum()
}

/// The multiplicative clip coefficient for a given global norm:
/// `min(1, max_norm / global_norm)`.
pub fn clip_coefficient(global_norm: f64, max_norm: f64) -> f32 {
    if global_norm > max_norm && global_norm > 0.0 {
        (max_norm / global_norm) as f32
    } else {
        1.0
    }
}

/// Scales a shard in place by the clip coefficient.
pub fn apply_clip(grads: &mut [f32], coeff: f32) {
    if coeff != 1.0 {
        for g in grads {
            *g *= coeff;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_coefficient() {
        let g = [3.0_f32, 4.0];
        assert_eq!(local_sq_norm(&g), 25.0);
        assert_eq!(clip_coefficient(5.0, 10.0), 1.0);
        assert!((clip_coefficient(5.0, 1.0) - 0.2).abs() < 1e-7);
    }

    #[test]
    fn sharded_norms_compose() {
        let all = [1.0_f32, 2.0, 3.0, 4.0];
        let total = local_sq_norm(&all);
        let split = local_sq_norm(&all[..2]) + local_sq_norm(&all[2..]);
        assert_eq!(total, split);
    }

    #[test]
    fn apply_clip_scales() {
        let mut g = vec![3.0_f32, 4.0];
        let gn = local_sq_norm(&g).sqrt();
        let c = clip_coefficient(gn, 1.0);
        apply_clip(&mut g, c);
        let after = local_sq_norm(&g).sqrt();
        assert!((after - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_norm_is_safe() {
        assert_eq!(clip_coefficient(0.0, 1.0), 1.0);
    }
}
