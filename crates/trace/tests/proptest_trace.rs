//! Property tests for the span recorder and interval algebra.
//!
//! The recorder is driven with *adversarial* call sequences — ends without
//! begins, double-ends, interleaved opens across two recorders — and must
//! never mint a span it was not given, leak a span across recorders, or
//! produce an ill-formed timeline. The interval helpers are checked
//! against brute-force point sampling, which is immune to the two-pointer
//! bookkeeping bugs the fast path could hide.

use proptest::prelude::*;
use zero_trace::{
    intersect_intervals, merge_intervals, SpanId, TraceRecorder, ALL_CATEGORIES,
};

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Decodes one opaque u64 into a recorder action and applies it.
/// Returns the updated (open, ended, closed_count) bookkeeping.
fn apply_op(
    rec: &TraceRecorder,
    op: u64,
    open: &mut Vec<SpanId>,
    ended: &mut Vec<SpanId>,
) -> usize {
    match op % 4 {
        // Begin a span with category/name drawn from the same entropy.
        0 => {
            let cat = ALL_CATEGORIES[(op / 4) as usize % ALL_CATEGORIES.len()];
            let name = NAMES[(op / 32) as usize % NAMES.len()];
            open.push(rec.begin(cat, name));
            0
        }
        // End a currently open span (arbitrary pick, not LIFO — the
        // recorder must not assume stack discipline).
        1 if !open.is_empty() => {
            let id = open.remove((op / 4) as usize % open.len());
            assert!(rec.end(id), "ending a live span must record it");
            ended.push(id);
            1
        }
        // End the null id: must be a no-op that reports failure.
        2 => {
            assert!(!rec.end(SpanId::NULL), "null end must record nothing");
            0
        }
        // Double-end an already-closed span: must be rejected, because an
        // end-without-begin can never mint a span.
        _ if !ended.is_empty() => {
            let id = ended[(op / 4) as usize % ended.len()];
            assert!(!rec.end(id), "double-end must record nothing");
            0
        }
        _ => 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nesting_is_well_formed_under_arbitrary_interleavings(
        ops in prop::collection::vec(0u64..1_000_000, 0..120),
    ) {
        let rec = TraceRecorder::new();
        let mut open = Vec::new();
        let mut ended = Vec::new();
        let mut closed = 0usize;
        for &op in &ops {
            closed += apply_op(&rec, op, &mut open, &mut ended);
        }
        prop_assert_eq!(rec.open_spans(), open.len());
        let tl = rec.timeline();
        // Exactly the successfully closed spans appear — no more, no less.
        prop_assert_eq!(tl.spans.len(), closed);
        for w in tl.spans.windows(2) {
            prop_assert!(w[0].start_ns <= w[1].start_ns, "timeline sorted by start");
        }
        for s in &tl.spans {
            prop_assert!(s.end_ns >= s.start_ns, "span duration non-negative");
            prop_assert!(NAMES.contains(&s.name), "span names come from begins only");
        }
        // Draining the stragglers closes everything exactly once.
        for id in open.drain(..) {
            prop_assert!(rec.end(id));
        }
        prop_assert_eq!(rec.open_spans(), 0);
    }

    #[test]
    fn recorders_never_leak_spans_across_ranks(
        ops in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        // Two ranks' recorders driven by an interleaved schedule, with
        // disjoint name sets: rank 0 uses NAMES[0..2], rank 1 NAMES[2..4].
        let recs = [TraceRecorder::new(), TraceRecorder::new()];
        let mut open: [Vec<SpanId>; 2] = [Vec::new(), Vec::new()];
        let mut counts = [0usize; 2];
        for &op in &ops {
            let r = (op % 2) as usize;
            let body = op / 2;
            if body % 3 == 0 || open[r].is_empty() {
                let cat = ALL_CATEGORIES[(body / 3) as usize % ALL_CATEGORIES.len()];
                let name = NAMES[2 * r + (body / 16) as usize % 2];
                open[r].push(recs[r].begin(cat, name));
            } else {
                let id = open[r].remove((body / 3) as usize % open[r].len());
                prop_assert!(recs[r].end(id));
                counts[r] += 1;
            }
        }
        for (r, rec) in recs.iter().enumerate() {
            let tl = rec.timeline();
            prop_assert_eq!(tl.spans.len(), counts[r]);
            let allowed = &NAMES[2 * r..2 * r + 2];
            for s in &tl.spans {
                prop_assert!(
                    allowed.contains(&s.name),
                    "rank {}'s timeline holds foreign span {}", r, s.name
                );
            }
        }
    }

    #[test]
    fn merge_intervals_matches_point_sampling(
        raw in prop::collection::vec(0u64..200, 0..40),
    ) {
        // Consecutive pairs form intervals; odd-length tails are dropped,
        // inverted and empty pairs are kept as adversarial input.
        let ivs: Vec<(u64, u64)> = raw.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        let merged = merge_intervals(ivs.clone());
        for w in merged.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "merged output must be disjoint and sorted");
        }
        for &(s, e) in &merged {
            prop_assert!(s < e, "merged output must be non-degenerate");
        }
        for t in 0u64..200 {
            let in_input = ivs.iter().any(|&(s, e)| s < e && s <= t && t < e);
            let in_merged = merged.iter().any(|&(s, e)| s <= t && t < e);
            prop_assert_eq!(in_input, in_merged, "point {} coverage differs", t);
        }
        // Idempotence: merging a merged set is the identity.
        prop_assert_eq!(merge_intervals(merged.clone()), merged);
    }

    #[test]
    fn intersect_intervals_is_symmetric_and_clamped(
        raw_a in prop::collection::vec(0u64..200, 0..30),
        raw_b in prop::collection::vec(0u64..200, 0..30),
    ) {
        let a: Vec<(u64, u64)> = raw_a.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        let b: Vec<(u64, u64)> = raw_b.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        let ab = intersect_intervals(&a, &b);
        let ba = intersect_intervals(&b, &a);
        prop_assert_eq!(&ab, &ba, "intersection must be symmetric");
        // Clamp-correctness: every output interval sits inside one merged
        // interval of EACH side — never extends past either operand.
        let (ma, mb) = (merge_intervals(a.clone()), merge_intervals(b.clone()));
        for &(s, e) in &ab {
            prop_assert!(s < e);
            prop_assert!(ma.iter().any(|&(xs, xe)| xs <= s && e <= xe), "not within a");
            prop_assert!(mb.iter().any(|&(xs, xe)| xs <= s && e <= xe), "not within b");
        }
        // Ground truth by point sampling.
        let hit = |ivs: &[(u64, u64)], t: u64| ivs.iter().any(|&(s, e)| s < e && s <= t && t < e);
        for t in 0u64..200 {
            prop_assert_eq!(
                hit(&a, t) && hit(&b, t),
                ab.iter().any(|&(s, e)| s <= t && t < e),
                "point {} membership differs", t
            );
        }
    }
}
