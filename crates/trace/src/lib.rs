//! `zero-trace` — lock-cheap per-rank span recording and step timelines.
//!
//! Every rank owns one [`TraceRecorder`]. Code brackets interesting work in
//! *spans* ([`TraceRecorder::begin`] / [`TraceRecorder::end`]) classified by
//! [`SpanCategory`], drops point-in-time *instant events* (bucket flushes,
//! prefetch issues, fault injections, snapshot writes), and samples
//! *counters* (peak device bytes). The recorder is a single short-critical-
//! section mutex per rank: timestamps are taken **inside** the lock, so the
//! per-recorder event order is the timestamp order by construction — the
//! monotonicity the Chrome export and the overlap queries rely on.
//!
//! Two consumers read a recorder:
//!
//! * [`StepTimeline`] — a compact queryable snapshot (span counts, byte
//!   sums, merged busy intervals, and compute∩collective overlap windows)
//!   that the conformance tests and `zero-verify` reconcile against the
//!   communicator's byte counters and the `CommPlan` volume model;
//! * [`chrome_trace`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` / Perfetto, with `pid` = rank and `tid` = track
//!   (0 = the rank's compute thread, 1 = its comm progress thread).
//!
//! Collective spans carry a `bytes` tag equal to the traffic-counter delta
//! observed across the op's execution, which is what makes byte-exact
//! reconciliation with `Stats` possible: the tag *is* the counter movement,
//! not an independent estimate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Track id for work on the rank's own (compute) thread.
pub const TRACK_MAIN: u32 = 0;
/// Track id for work on the rank's communication progress thread.
pub const TRACK_PROGRESS: u32 = 1;

/// The span taxonomy. Categories are deliberately few: queries and
/// reconciliation invariants are stated per category, names refine within.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanCategory {
    /// Model math on the rank thread (embed / block / head passes).
    Compute,
    /// A collective (or p2p op) executing on the progress thread.
    Collective,
    /// The rank thread blocked on an in-flight op's completion.
    Wait,
    /// Optimizer state update (Adam / SGD step on the owned shard).
    Optimizer,
    /// Snapshot, restore, and supervisor-recovery machinery.
    Checkpoint,
    /// A host↔device memory-tier transfer executing on the progress
    /// thread (ZeRO-Offload spill/fetch traffic).
    Tier,
}

/// Every category, in display order.
pub const ALL_CATEGORIES: [SpanCategory; 6] = [
    SpanCategory::Compute,
    SpanCategory::Collective,
    SpanCategory::Wait,
    SpanCategory::Optimizer,
    SpanCategory::Checkpoint,
    SpanCategory::Tier,
];

impl SpanCategory {
    /// The `cat` string used in the Chrome trace export.
    pub fn name(self) -> &'static str {
        match self {
            SpanCategory::Compute => "compute",
            SpanCategory::Collective => "collective",
            SpanCategory::Wait => "wait",
            SpanCategory::Optimizer => "optimizer",
            SpanCategory::Checkpoint => "checkpoint",
            SpanCategory::Tier => "tier",
        }
    }
}

/// A completed span: `[start_ns, end_ns)` relative to the recorder's epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Refinement within the category (e.g. `"reduce-scatter"`).
    pub name: &'static str,
    /// Taxonomy bucket.
    pub cat: SpanCategory,
    /// Start, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the recorder epoch (`>= start_ns`).
    pub end_ns: u64,
    /// 0 = rank thread, 1 = progress thread (see [`TRACK_MAIN`]).
    pub track: u32,
    /// Byte tag; for collective spans, the traffic-counter delta across
    /// the op's execution. 0 where bytes are meaningless.
    pub bytes: u64,
}

impl Span {
    /// Span length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A point-in-time event (bucket flush, prefetch issue, fault, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstantEvent {
    /// Event name (e.g. `"bucket-flush"`).
    pub name: &'static str,
    /// Category the event is attributed to.
    pub cat: SpanCategory,
    /// Timestamp, nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// Track the event fired on.
    pub track: u32,
}

/// A sampled counter value (e.g. peak device bytes at end of step).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterSample {
    /// Counter name.
    pub name: &'static str,
    /// Timestamp, nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// Sampled value.
    pub value: u64,
}

/// Handle for an open span, returned by [`TraceRecorder::begin`]. Ending a
/// span consumes the id; ending an id twice (or a null id from a disabled
/// recorder) is a no-op, so instrumentation never has to branch on state.
/// The generation tag makes stale ids inert even after their slot is
/// recycled for a newer span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(usize, u64);

impl SpanId {
    /// The id handed out when recording is disabled; ending it is a no-op.
    pub const NULL: SpanId = SpanId(usize::MAX, u64::MAX);

    /// True for the null (disabled-recorder) id.
    pub fn is_null(self) -> bool {
        self == SpanId::NULL
    }
}

struct OpenSpan {
    name: &'static str,
    cat: SpanCategory,
    start_ns: u64,
    track: u32,
}

/// One slab entry: the generation counter advances every time the slot's
/// span ends, so a [`SpanId`] minted for an earlier occupant can never
/// close a later one.
struct Slot {
    gen: u64,
    open: Option<OpenSpan>,
}

#[derive(Default)]
struct Inner {
    /// Slab of open spans; `SpanId` indexes into it.
    open: Vec<Slot>,
    free: Vec<usize>,
    spans: Vec<Span>,
    instants: Vec<InstantEvent>,
    counters: Vec<CounterSample>,
}

/// Per-rank span/instant/counter recorder. Cheap enough to leave on
/// unconditionally: one uncontended mutex acquisition per event (the only
/// contenders are the rank thread and its progress thread).
pub struct TraceRecorder {
    enabled: AtomicBool,
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for TraceRecorder {
    fn default() -> TraceRecorder {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// A recorder whose epoch is "now".
    pub fn new() -> TraceRecorder {
        TraceRecorder::with_epoch(Instant::now())
    }

    /// A recorder with an explicit epoch — a world passes one shared epoch
    /// to every rank's recorder so cross-rank timestamps are comparable in
    /// a merged Chrome trace.
    pub fn with_epoch(epoch: Instant) -> TraceRecorder {
        TraceRecorder {
            enabled: AtomicBool::new(true),
            epoch,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables recording. Disabled recorders hand out
    /// [`SpanId::NULL`] and drop instants/counters on the floor.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Opens a span on the rank (compute) track.
    pub fn begin(&self, cat: SpanCategory, name: &'static str) -> SpanId {
        self.begin_on(TRACK_MAIN, cat, name)
    }

    /// Opens a span on an explicit track.
    pub fn begin_on(&self, track: u32, cat: SpanCategory, name: &'static str) -> SpanId {
        if !self.is_enabled() {
            return SpanId::NULL;
        }
        let mut g = self.inner.lock().unwrap();
        let start_ns = self.epoch.elapsed().as_nanos() as u64;
        let open = OpenSpan { name, cat, start_ns, track };
        let idx = match g.free.pop() {
            Some(i) => {
                g.open[i].open = Some(open);
                i
            }
            None => {
                g.open.push(Slot { gen: 0, open: Some(open) });
                g.open.len() - 1
            }
        };
        SpanId(idx, g.open[idx].gen)
    }

    /// Closes a span with a zero byte tag. Returns `false` (recording
    /// nothing) if the id is null, unknown, or already ended.
    pub fn end(&self, id: SpanId) -> bool {
        self.end_with_bytes(id, 0)
    }

    /// Closes a span, attaching a byte tag. Returns `false` (recording
    /// nothing) if the id is null, unknown, or already ended — an
    /// end-without-begin can never mint a span.
    pub fn end_with_bytes(&self, id: SpanId, bytes: u64) -> bool {
        if id.is_null() {
            return false;
        }
        let mut g = self.inner.lock().unwrap();
        let open = match g.open.get_mut(id.0) {
            Some(slot) if slot.gen == id.1 => match slot.open.take() {
                Some(open) => {
                    slot.gen += 1;
                    open
                }
                None => return false,
            },
            _ => return false,
        };
        g.free.push(id.0);
        let end_ns = self.epoch.elapsed().as_nanos() as u64;
        g.spans.push(Span {
            name: open.name,
            cat: open.cat,
            start_ns: open.start_ns,
            end_ns,
            track: open.track,
            bytes,
        });
        true
    }

    /// Records an instant event on the rank track.
    pub fn instant(&self, cat: SpanCategory, name: &'static str) {
        self.instant_on(TRACK_MAIN, cat, name);
    }

    /// Records an instant event on an explicit track.
    pub fn instant_on(&self, track: u32, cat: SpanCategory, name: &'static str) {
        if !self.is_enabled() {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        let ts_ns = self.epoch.elapsed().as_nanos() as u64;
        g.instants.push(InstantEvent { name, cat, ts_ns, track });
    }

    /// Samples a counter value.
    pub fn counter(&self, name: &'static str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        let ts_ns = self.epoch.elapsed().as_nanos() as u64;
        g.counters.push(CounterSample { name, ts_ns, value });
    }

    /// Number of spans begun but not yet ended.
    pub fn open_spans(&self) -> usize {
        let g = self.inner.lock().unwrap();
        g.open.iter().filter(|s| s.open.is_some()).count()
    }

    /// Snapshot of everything recorded so far, spans sorted by start time.
    /// Open spans are not included — a timeline is always well-formed.
    pub fn timeline(&self) -> StepTimeline {
        let g = self.inner.lock().unwrap();
        let mut spans = g.spans.clone();
        spans.sort_by_key(|s| (s.start_ns, s.end_ns));
        let mut instants = g.instants.clone();
        instants.sort_by_key(|i| i.ts_ns);
        let mut counters = g.counters.clone();
        counters.sort_by_key(|c| c.ts_ns);
        StepTimeline { spans, instants, counters }
    }

    /// Discards all completed and open events (the epoch is kept).
    pub fn reset(&self) {
        let mut g = self.inner.lock().unwrap();
        *g = Inner::default();
    }
}

/// Merges a set of half-open `[start, end)` intervals: empty intervals are
/// dropped, touching/overlapping ones coalesce, output is sorted and
/// pairwise disjoint.
pub fn merge_intervals(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.retain(|&(s, e)| e > s);
    v.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
    for (s, e) in v {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Intersection of two interval sets (each merged first). Symmetric in its
/// arguments; every output interval is non-empty and contained in both
/// inputs' coverage.
pub fn intersect_intervals(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let a = merge_intervals(a.to_vec());
    let b = merge_intervals(b.to_vec());
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if s < e {
            out.push((s, e));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// A queryable snapshot of one rank's recorded events.
#[derive(Clone, Debug, Default)]
pub struct StepTimeline {
    /// Completed spans, sorted by start time.
    pub spans: Vec<Span>,
    /// Instant events, sorted by timestamp.
    pub instants: Vec<InstantEvent>,
    /// Counter samples, sorted by timestamp.
    pub counters: Vec<CounterSample>,
}

impl StepTimeline {
    /// Spans of one category.
    pub fn spans_in(&self, cat: SpanCategory) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.cat == cat)
    }

    /// Number of spans in a category.
    pub fn count(&self, cat: SpanCategory) -> usize {
        self.spans_in(cat).count()
    }

    /// Number of spans with this exact (category, name).
    pub fn count_named(&self, cat: SpanCategory, name: &str) -> usize {
        self.spans_in(cat).filter(|s| s.name == name).count()
    }

    /// Sum of byte tags over a category.
    pub fn bytes(&self, cat: SpanCategory) -> u64 {
        self.spans_in(cat).map(|s| s.bytes).sum()
    }

    /// Sum of byte tags over spans with this exact (category, name).
    pub fn bytes_named(&self, cat: SpanCategory, name: &str) -> u64 {
        self.spans_in(cat).filter(|s| s.name == name).map(|s| s.bytes).sum()
    }

    /// Total span-duration nanoseconds in a category (spans may overlap;
    /// this is a sum of lengths, not wall-clock coverage).
    pub fn duration_ns(&self, cat: SpanCategory) -> u64 {
        self.spans_in(cat).map(|s| s.duration_ns()).sum()
    }

    /// Number of instant events with this name.
    pub fn instant_count(&self, name: &str) -> usize {
        self.instants.iter().filter(|i| i.name == name).count()
    }

    /// Largest sampled value of a counter, if it was ever sampled.
    pub fn counter_max(&self, name: &str) -> Option<u64> {
        self.counters.iter().filter(|c| c.name == name).map(|c| c.value).max()
    }

    /// Merged busy intervals of spans matching `keep`.
    pub fn intervals_where(&self, keep: impl Fn(&Span) -> bool) -> Vec<(u64, u64)> {
        merge_intervals(
            self.spans.iter().filter(|s| keep(s)).map(|s| (s.start_ns, s.end_ns)).collect(),
        )
    }

    /// Merged busy intervals of one category.
    pub fn intervals(&self, cat: SpanCategory) -> Vec<(u64, u64)> {
        self.intervals_where(|s| s.cat == cat)
    }

    /// Windows where categories `a` and `b` were simultaneously busy.
    /// Symmetric: `overlap_intervals(a, b) == overlap_intervals(b, a)`.
    pub fn overlap_intervals(&self, a: SpanCategory, b: SpanCategory) -> Vec<(u64, u64)> {
        intersect_intervals(&self.intervals(a), &self.intervals(b))
    }

    /// Windows where model compute and a *byte-moving* collective were
    /// simultaneously in flight — the structural witness of overlap mode.
    ///
    /// Zero-byte collective spans (e.g. the degenerate size-1 MP hook
    /// all-reduces, which execute while the rank computes even in
    /// synchronous mode) are excluded: they move nothing, so they hide
    /// nothing.
    pub fn compute_collective_overlap(&self) -> Vec<(u64, u64)> {
        intersect_intervals(
            &self.intervals(SpanCategory::Compute),
            &self.intervals_where(|s| s.cat == SpanCategory::Collective && s.bytes > 0),
        )
    }

    /// Total nanoseconds of [`StepTimeline::compute_collective_overlap`].
    pub fn compute_collective_overlap_ns(&self) -> u64 {
        self.compute_collective_overlap().iter().map(|&(s, e)| e - s).sum()
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats nanoseconds as the trace format's microsecond `ts`/`dur` value.
/// Three decimals represent integer nanoseconds exactly, so sorting by ns
/// and formatting preserves per-rank timestamp monotonicity.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

#[allow(clippy::too_many_arguments)] // one flat JSON record, one flat call
fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    cat: &str,
    ph: char,
    ts_ns: u64,
    dur_ns: u64,
    pid: usize,
    tid: u32,
    extra: &str,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"name\":\"");
    escape_into(out, name);
    out.push_str("\",\"cat\":\"");
    escape_into(out, cat);
    out.push_str("\",\"ph\":\"");
    out.push(ph);
    out.push_str("\",\"ts\":");
    out.push_str(&us(ts_ns));
    out.push_str(",\"dur\":");
    out.push_str(&us(dur_ns));
    out.push_str(",\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(extra);
    out.push('}');
}

/// Renders per-rank timelines (`pid` = slice index = rank) as a Chrome
/// trace-event JSON document, loadable in `chrome://tracing` or Perfetto.
///
/// Every event carries `name`, `cat`, `ph`, `ts`, `dur`, `pid`, `tid`
/// (instants and counters with `dur` 0), and events are emitted in
/// non-decreasing `ts` order within each rank.
pub fn chrome_trace(timelines: &[StepTimeline]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (pid, tl) in timelines.iter().enumerate() {
        // One sorted stream per rank: (ts, which-event).
        enum Ev<'a> {
            Span(&'a Span),
            Instant(&'a InstantEvent),
            Counter(&'a CounterSample),
        }
        let mut evs: Vec<(u64, Ev)> = tl.spans.iter().map(|s| (s.start_ns, Ev::Span(s))).collect();
        evs.extend(tl.instants.iter().map(|i| (i.ts_ns, Ev::Instant(i))));
        evs.extend(tl.counters.iter().map(|c| (c.ts_ns, Ev::Counter(c))));
        evs.sort_by_key(|&(ts, _)| ts);
        for (_, ev) in evs {
            match ev {
                Ev::Span(s) => push_event(
                    &mut out,
                    &mut first,
                    s.name,
                    s.cat.name(),
                    'X',
                    s.start_ns,
                    s.duration_ns(),
                    pid,
                    s.track,
                    &format!(",\"args\":{{\"bytes\":{}}}", s.bytes),
                ),
                Ev::Instant(i) => push_event(
                    &mut out,
                    &mut first,
                    i.name,
                    i.cat.name(),
                    'i',
                    i.ts_ns,
                    0,
                    pid,
                    i.track,
                    ",\"s\":\"t\"",
                ),
                Ev::Counter(c) => push_event(
                    &mut out,
                    &mut first,
                    c.name,
                    "counter",
                    'C',
                    c.ts_ns,
                    0,
                    pid,
                    TRACK_MAIN,
                    &format!(",\"args\":{{\"value\":{}}}", c.value),
                ),
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_carry_bytes() {
        let t = TraceRecorder::new();
        let outer = t.begin(SpanCategory::Compute, "outer");
        let inner = t.begin_on(TRACK_PROGRESS, SpanCategory::Collective, "reduce-scatter");
        assert_eq!(t.open_spans(), 2);
        assert!(t.end_with_bytes(inner, 128));
        assert!(t.end(outer));
        assert_eq!(t.open_spans(), 0);
        let tl = t.timeline();
        assert_eq!(tl.spans.len(), 2);
        assert_eq!(tl.count(SpanCategory::Collective), 1);
        assert_eq!(tl.bytes(SpanCategory::Collective), 128);
        assert_eq!(tl.bytes_named(SpanCategory::Collective, "reduce-scatter"), 128);
        let outer = tl.spans_in(SpanCategory::Compute).next().unwrap();
        let inner = tl.spans_in(SpanCategory::Collective).next().unwrap();
        assert!(outer.start_ns <= inner.start_ns && inner.end_ns <= outer.end_ns);
        assert_eq!(inner.track, TRACK_PROGRESS);
    }

    #[test]
    fn ending_twice_or_never_begun_records_nothing() {
        let t = TraceRecorder::new();
        let id = t.begin(SpanCategory::Wait, "w");
        assert!(t.end(id));
        assert!(!t.end(id), "double end must be a no-op");
        assert!(!t.end(SpanId::NULL));
        assert!(!t.end_with_bytes(SpanId(999, 0), 1), "unknown id must be a no-op");
        assert_eq!(t.timeline().spans.len(), 1);
    }

    #[test]
    fn slab_reuses_slots_without_crossing_spans() {
        let t = TraceRecorder::new();
        let a = t.begin(SpanCategory::Compute, "a");
        t.end(a);
        let b = t.begin(SpanCategory::Compute, "b");
        // Slot reused: the stale id now names the *new* open span, ending
        // it is indistinguishable from ending `b` — so instrumentation
        // must not hold ids across an end; here we just confirm no panic
        // and conservation of span count.
        t.end(b);
        assert!(!t.end(b));
        assert_eq!(t.timeline().spans.len(), 2);
    }

    #[test]
    fn disabled_recorder_is_silent() {
        let t = TraceRecorder::new();
        t.set_enabled(false);
        let id = t.begin(SpanCategory::Compute, "x");
        assert!(id.is_null());
        assert!(!t.end(id));
        t.instant(SpanCategory::Collective, "flush");
        t.counter("peak", 7);
        let tl = t.timeline();
        assert!(tl.spans.is_empty() && tl.instants.is_empty() && tl.counters.is_empty());
    }

    #[test]
    fn merge_drops_empty_and_coalesces_touching() {
        assert_eq!(
            merge_intervals(vec![(5, 5), (0, 2), (2, 4), (10, 12), (11, 15)]),
            vec![(0, 4), (10, 15)]
        );
    }

    #[test]
    fn intersect_is_symmetric_and_clamped() {
        let a = [(0u64, 10u64), (20, 30)];
        let b = [(5u64, 25u64)];
        let ab = intersect_intervals(&a, &b);
        assert_eq!(ab, vec![(5, 10), (20, 25)]);
        assert_eq!(ab, intersect_intervals(&b, &a));
        assert!(intersect_intervals(&a, &[]).is_empty());
    }

    #[test]
    fn overlap_query_ignores_zero_byte_collectives() {
        let tl = StepTimeline {
            spans: vec![
                Span {
                    name: "block-fwd",
                    cat: SpanCategory::Compute,
                    start_ns: 0,
                    end_ns: 100,
                    track: 0,
                    bytes: 0,
                },
                Span {
                    name: "all-reduce",
                    cat: SpanCategory::Collective,
                    start_ns: 10,
                    end_ns: 20,
                    track: 1,
                    bytes: 0,
                },
                Span {
                    name: "reduce-scatter",
                    cat: SpanCategory::Collective,
                    start_ns: 40,
                    end_ns: 60,
                    track: 1,
                    bytes: 256,
                },
            ],
            instants: vec![],
            counters: vec![],
        };
        assert_eq!(tl.compute_collective_overlap(), vec![(40, 60)]);
        assert_eq!(tl.compute_collective_overlap_ns(), 20);
        // The unfiltered category query sees both.
        assert_eq!(
            tl.overlap_intervals(SpanCategory::Compute, SpanCategory::Collective),
            vec![(10, 20), (40, 60)]
        );
    }

    #[test]
    fn chrome_export_has_required_fields_and_sorted_timestamps() {
        let t = TraceRecorder::new();
        let s = t.begin(SpanCategory::Compute, "fwd \"quoted\"");
        t.instant(SpanCategory::Checkpoint, "snapshot-write");
        t.end(s);
        t.counter("peak-device-bytes", 42);
        let json = chrome_trace(&[t.timeline()]);
        for needle in [
            "\"traceEvents\":[",
            "\"ph\":\"X\"",
            "\"ph\":\"i\"",
            "\"ph\":\"C\"",
            "\"pid\":0",
            "\"cat\":\"compute\"",
            "\"cat\":\"checkpoint\"",
            "\"args\":{\"value\":42}",
            "fwd \\\"quoted\\\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
