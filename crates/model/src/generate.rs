//! Autoregressive generation from a trained model (inference path).
//!
//! Inference needs no ZeRO: a model trained under any stage reassembles
//! into a plain flat parameter buffer (see `TrainReport::gather_master_mp1`)
//! and samples single-process. Supports greedy decoding and
//! temperature/top-k sampling with a seeded RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gpt::Gpt;

/// Sampling strategy for the next-token distribution.
#[derive(Clone, Copy, Debug)]
pub enum Sampling {
    /// Always the arg-max token.
    Greedy,
    /// Softmax with a temperature, optionally truncated to the top-k
    /// logits, sampled with the given seed.
    Temperature {
        /// Softmax temperature (>0; 1.0 = untempered).
        temperature: f32,
        /// Keep only the `top_k` most likely tokens (0 = all).
        top_k: usize,
        /// RNG seed.
        seed: u64,
    },
}

/// Autoregressive generator holding the model and its flat parameters.
pub struct Generator<'a> {
    gpt: &'a Gpt,
    params: &'a [f32],
}

impl<'a> Generator<'a> {
    /// Wraps a model and a full flat parameter buffer.
    ///
    /// # Panics
    /// Panics if the buffer does not match the model layout.
    pub fn new(gpt: &'a Gpt, params: &'a [f32]) -> Generator<'a> {
        assert_eq!(
            params.len(),
            gpt.num_params(),
            "parameter buffer does not match the model layout"
        );
        Generator { gpt, params }
    }

    /// Next-token logits given a full context window of `seq` ids.
    pub fn next_token_logits(&self, context: &[u32]) -> Vec<f32> {
        let cfg = self.gpt.config();
        assert_eq!(context.len(), cfg.seq, "context must fill the window");
        let units = self.gpt.layout().units().to_vec();
        let mut x = self
            .gpt
            .embed(&self.params[units[0].range.clone()], context, 1);
        let mut ident = |_: &mut [f32]| {};
        for l in 0..cfg.layers {
            let u = &units[1 + l];
            let (y, _) = self
                .gpt
                .block_fwd(l, &self.params[u.range.clone()], &x, 1, &mut ident);
            x = y;
        }
        let hu = units.last().unwrap();
        let logits = self
            .gpt
            .head_logits(&self.params[hu.range.clone()], &x, 1);
        // Only the last position predicts the next token.
        logits[(cfg.seq - 1) * cfg.vocab..cfg.seq * cfg.vocab].to_vec()
    }

    /// Generates `n` tokens continuing `prompt` (which seeds the rolling
    /// window; it is left-padded by repetition if shorter than `seq`).
    pub fn generate(&self, prompt: &[u32], n: usize, sampling: Sampling) -> Vec<u32> {
        let cfg = self.gpt.config();
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let mut window: Vec<u32> = std::iter::repeat(prompt.iter().copied())
            .flatten()
            .take(cfg.seq)
            .collect();
        if window.len() < cfg.seq {
            window.resize(cfg.seq, prompt[0]);
        }
        // Keep the prompt's tail at the window's end (most recent tokens).
        let tail = prompt.len().min(cfg.seq);
        window.rotate_left(tail % cfg.seq.max(1));
        window[cfg.seq - tail..].copy_from_slice(&prompt[prompt.len() - tail..]);

        let mut rng = match sampling {
            Sampling::Temperature { seed, .. } => Some(StdRng::seed_from_u64(seed)),
            Sampling::Greedy => None,
        };
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let logits = self.next_token_logits(&window);
            let next = pick(&logits, sampling, rng.as_mut());
            out.push(next);
            window.rotate_left(1);
            let len = window.len();
            window[len - 1] = next;
        }
        out
    }
}

fn pick(logits: &[f32], sampling: Sampling, rng: Option<&mut StdRng>) -> u32 {
    match sampling {
        Sampling::Greedy => argmax(logits) as u32,
        Sampling::Temperature {
            temperature,
            top_k,
            ..
        } => {
            assert!(temperature > 0.0, "temperature must be positive");
            let rng = rng.expect("rng for temperature sampling");
            let mut idx: Vec<usize> = (0..logits.len()).collect();
            idx.sort_unstable_by(|&a, &b| logits[b].partial_cmp(&logits[a]).unwrap());
            let keep = if top_k == 0 { logits.len() } else { top_k.min(logits.len()) };
            let kept = &idx[..keep];
            let max = logits[kept[0]];
            let weights: Vec<f32> = kept
                .iter()
                .map(|&i| ((logits[i] - max) / temperature).exp())
                .collect();
            let total: f32 = weights.iter().sum();
            let mut r = rng.gen::<f32>() * total;
            for (w, &i) in weights.iter().zip(kept) {
                r -= w;
                if r <= 0.0 {
                    return i as u32;
                }
            }
            kept[keep - 1] as u32
        }
    }
}

fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .expect("non-empty logits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::gpt::init_full_params;

    fn tiny() -> (ModelConfig, Vec<f32>) {
        let cfg = ModelConfig {
            vocab: 16,
            seq: 8,
            hidden: 16,
            layers: 1,
            heads: 2,
        };
        (cfg, init_full_params(&cfg, 4))
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let (cfg, params) = tiny();
        let gpt = Gpt::new(cfg);
        let g = Generator::new(&gpt, &params);
        let a = g.generate(&[1, 2, 3], 6, Sampling::Greedy);
        let b = g.generate(&[1, 2, 3], 6, Sampling::Greedy);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|&t| (t as usize) < cfg.vocab));
    }

    #[test]
    fn temperature_sampling_is_seeded() {
        let (cfg, params) = tiny();
        let gpt = Gpt::new(cfg);
        let g = Generator::new(&gpt, &params);
        let s = |seed| Sampling::Temperature {
            temperature: 1.0,
            top_k: 0,
            seed,
        };
        let a = g.generate(&[5], 8, s(1));
        let b = g.generate(&[5], 8, s(1));
        let c = g.generate(&[5], 8, s(2));
        assert_eq!(a, b, "same seed, same tokens");
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn top_k_restricts_to_likely_tokens() {
        let (cfg, params) = tiny();
        let gpt = Gpt::new(cfg);
        let g = Generator::new(&gpt, &params);
        // With top_k = 1 every draw equals greedy.
        let greedy = g.generate(&[7, 3], 5, Sampling::Greedy);
        let k1 = g.generate(
            &[7, 3],
            5,
            Sampling::Temperature {
                temperature: 2.0,
                top_k: 1,
                seed: 9,
            },
        );
        assert_eq!(greedy, k1);
    }

    #[test]
    fn long_prompts_keep_their_tail() {
        let (cfg, params) = tiny();
        let gpt = Gpt::new(cfg);
        let g = Generator::new(&gpt, &params);
        let long: Vec<u32> = (0..20).map(|i| (i % 16) as u32).collect();
        let out = g.generate(&long, 3, Sampling::Greedy);
        assert_eq!(out.len(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_parameter_length_rejected() {
        let (cfg, params) = tiny();
        let gpt = Gpt::new(cfg);
        let _ = Generator::new(&gpt, &params[..10]);
    }
}

/// Incremental (KV-cached) decoder: O(context) per token instead of a
/// full-window re-forward — the standard inference optimization, exact
/// w.r.t. the full forward pass (verified in tests).
pub struct IncrementalDecoder<'a> {
    gpt: &'a Gpt,
    params: &'a [f32],
    /// Per block: cached keys and values, `[pos, attn_width]` row-major.
    k_cache: Vec<Vec<f32>>,
    v_cache: Vec<Vec<f32>>,
    /// Tokens consumed so far (bounded by the position-table length).
    pos: usize,
}

impl<'a> IncrementalDecoder<'a> {
    /// Creates an empty decoder (caches sized for one `seq` window).
    ///
    /// # Panics
    /// Panics if `params` does not match the model layout or the model is
    /// model-parallel (inference here is single-process).
    pub fn new(gpt: &'a Gpt, params: &'a [f32]) -> IncrementalDecoder<'a> {
        assert_eq!(params.len(), gpt.num_params(), "parameter buffer mismatch");
        assert_eq!(gpt.mp_degree(), 1, "incremental decode is single-process");
        let cfg = gpt.config();
        let aw = cfg.hidden;
        IncrementalDecoder {
            gpt,
            params,
            k_cache: vec![vec![0.0; cfg.seq * aw]; cfg.layers],
            v_cache: vec![vec![0.0; cfg.seq * aw]; cfg.layers],
            pos: 0,
        }
    }

    /// Tokens consumed.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Feeds one token, returns the next-token logits.
    ///
    /// # Panics
    /// Panics when the position table is exhausted (pos = seq).
    pub fn feed(&mut self, token: u32) -> Vec<f32> {
        use zero_tensor::ops::matmul::sgemm_nt;
        use zero_tensor::ops::norm::layernorm_forward;

        let cfg = *self.gpt.config();
        assert!(self.pos < cfg.seq, "context window exhausted");
        let h = cfg.hidden;
        let (nh, hd) = (cfg.heads, cfg.head_dim());
        let layout = self.gpt.layout().clone();
        let units = layout.units().to_vec();
        let t = self.pos;

        // Embedding: one row.
        let emb = layout.embed_offsets();
        let embed_params = &self.params[units[0].range.clone()];
        let tok_row = &embed_params[emb.tok.clone()]
            [token as usize * h..(token as usize + 1) * h];
        let pos_row = &embed_params[emb.pos.clone()][t * h..(t + 1) * h];
        let mut x: Vec<f32> = tok_row.iter().zip(pos_row).map(|(a, b)| a + b).collect();

        let scale = 1.0 / (hd as f32).sqrt();
        for l in 0..cfg.layers {
            let p = &self.params[units[1 + l].range.clone()];
            let off = layout.block_offsets(l);
            // LN1 over a single row.
            let mut h1 = vec![0.0; h];
            let (mut mean, mut rstd) = (vec![0.0; 1], vec![0.0; 1]);
            layernorm_forward(&x, &p[off.ln1_g.clone()], &p[off.ln1_b.clone()], &mut h1, &mut mean, &mut rstd, 1, h, 1e-5);
            // QKV for one token.
            let mut qkv = vec![0.0; 3 * h];
            sgemm_nt(&h1, &p[off.w_qkv.clone()], &mut qkv, 1, h, 3 * h);
            for (v, b) in qkv.iter_mut().zip(&p[off.b_qkv.clone()]) {
                *v += b;
            }
            // Append K, V to the caches.
            self.k_cache[l][t * h..(t + 1) * h].copy_from_slice(&qkv[h..2 * h]);
            self.v_cache[l][t * h..(t + 1) * h].copy_from_slice(&qkv[2 * h..3 * h]);
            // Attention over the cache, per head.
            let mut attn = vec![0.0; h];
            for head in 0..nh {
                let q = &qkv[head * hd..(head + 1) * hd];
                let mut weights = vec![0.0; t + 1];
                for (i, w) in weights.iter_mut().enumerate() {
                    let k = &self.k_cache[l][i * h + head * hd..i * h + (head + 1) * hd];
                    *w = zero_tensor::ops::vector::dot(q, k) * scale;
                }
                // Softmax over the visible past.
                let max = weights.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
                let mut sum = 0.0;
                for w in &mut weights {
                    *w = (*w - max).exp();
                    sum += *w;
                }
                let inv = 1.0 / sum;
                let out = &mut attn[head * hd..(head + 1) * hd];
                for (i, w) in weights.iter().enumerate() {
                    let v = &self.v_cache[l][i * h + head * hd..i * h + (head + 1) * hd];
                    for (o, &vv) in out.iter_mut().zip(v) {
                        *o += w * inv * vv;
                    }
                }
            }
            // Projection + residual.
            let mut ao = vec![0.0; h];
            sgemm_nt(&attn, &p[off.w_o.clone()], &mut ao, 1, h, h);
            for ((v, b), xv) in ao.iter_mut().zip(&p[off.b_o.clone()]).zip(&x) {
                *v += b + xv;
            }
            // LN2 + MLP + residual.
            let mut h2 = vec![0.0; h];
            layernorm_forward(&ao, &p[off.ln2_g.clone()], &p[off.ln2_b.clone()], &mut h2, &mut mean, &mut rstd, 1, h, 1e-5);
            let ffn = 4 * h;
            let mut f1 = vec![0.0; ffn];
            sgemm_nt(&h2, &p[off.w_fc1.clone()], &mut f1, 1, h, ffn);
            for (v, b) in f1.iter_mut().zip(&p[off.b_fc1.clone()]) {
                *v += b;
                *v = zero_tensor::ops::activation::gelu_scalar(*v);
            }
            let mut f2 = vec![0.0; h];
            sgemm_nt(&f1, &p[off.w_fc2.clone()], &mut f2, 1, ffn, h);
            for ((v, b), av) in f2.iter_mut().zip(&p[off.b_fc2.clone()]).zip(&ao) {
                *v += b + av;
            }
            x = f2;
        }

        // Head: final LN + LM projection for this position.
        let hu = units.last().unwrap();
        let hp = &self.params[hu.range.clone()];
        let hoff = layout.head_offsets();
        let mut lnf = vec![0.0; h];
        let (mut mean, mut rstd) = (vec![0.0; 1], vec![0.0; 1]);
        layernorm_forward(&x, &hp[hoff.lnf_g.clone()], &hp[hoff.lnf_b.clone()], &mut lnf, &mut mean, &mut rstd, 1, h, 1e-5);
        let mut logits = vec![0.0; cfg.vocab];
        sgemm_nt(&lnf, &hp[hoff.w_head.clone()], &mut logits, 1, h, cfg.vocab);
        self.pos += 1;
        logits
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::gpt::init_full_params;
    use zero_tensor::ops::loss::cross_entropy_loss;

    #[test]
    fn incremental_matches_full_forward_at_every_position() {
        let cfg = ModelConfig {
            vocab: 24,
            seq: 10,
            hidden: 16,
            layers: 2,
            heads: 2,
        };
        let params = init_full_params(&cfg, 6);
        let gpt = Gpt::new(cfg);
        let tokens: Vec<u32> = (0..cfg.seq as u32).map(|i| (i * 7) % 24).collect();

        // Full-window forward once.
        let units = gpt.layout().units().to_vec();
        let mut x = gpt.embed(&params[units[0].range.clone()], &tokens, 1);
        let mut ident = |_: &mut [f32]| {};
        for l in 0..cfg.layers {
            let u = &units[1 + l];
            let (y, _) = gpt.block_fwd(l, &params[u.range.clone()], &x, 1, &mut ident);
            x = y;
        }
        let hu = units.last().unwrap();
        let full_logits = gpt.head_logits(&params[hu.range.clone()], &x, 1);

        // Incremental decode, token by token.
        let mut dec = IncrementalDecoder::new(&gpt, &params);
        for (t, &tok) in tokens.iter().enumerate() {
            let logits = dec.feed(tok);
            let want = &full_logits[t * cfg.vocab..(t + 1) * cfg.vocab];
            for (a, b) in logits.iter().zip(want) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "position {t}: incremental {a} vs full {b}"
                );
            }
        }
        let _ = cross_entropy_loss; // silence unused import on some cfgs
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn window_exhaustion_detected() {
        let cfg = ModelConfig {
            vocab: 16,
            seq: 3,
            hidden: 8,
            layers: 1,
            heads: 2,
        };
        let params = init_full_params(&cfg, 1);
        let gpt = Gpt::new(cfg);
        let mut dec = IncrementalDecoder::new(&gpt, &params);
        for _ in 0..4 {
            dec.feed(0);
        }
    }
}
