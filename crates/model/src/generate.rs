//! Autoregressive generation from a trained model (inference path).
//!
//! Inference needs no ZeRO: a model trained under any stage reassembles
//! into a plain flat parameter buffer (see `TrainReport::gather_master_mp1`)
//! and samples single-process. Supports greedy decoding and
//! temperature/top-k sampling with a seeded RNG.
//!
//! Bad input is a *request* problem, not a programming error: out-of-vocab
//! token ids and exhausted context windows surface as [`GenerateError`]
//! instead of panicking, so a serving rank can reject the request and keep
//! running (`zero-serve` relies on this).
//!
//! The per-token math lives in three free functions — [`embed_step`],
//! [`block_step`], [`head_step`] — each taking one *unit's* parameter
//! slice. [`IncrementalDecoder`] drives them over its private caches; the
//! shard-hosted serving engine drives the identical code over gathered
//! unit buffers and a pooled [`KvSlab`](crate::kv::KvSlab), which is what
//! makes the two paths bitwise-equal (tested).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gpt::Gpt;

/// Why a generation request was rejected. These are recoverable input
/// errors — a server returns them to the client; nothing panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenerateError {
    /// A token id is outside the model's vocabulary — previously an
    /// unchecked `token * hidden` slice straight into an out-of-bounds
    /// panic inside the embedding lookup.
    TokenOutOfVocab {
        /// The offending token id.
        token: u32,
        /// The model's vocabulary size (valid ids are `0..vocab`).
        vocab: usize,
    },
    /// The position table is exhausted: the decoder has already consumed
    /// `seq` tokens and has no position embedding left for another.
    ContextExhausted {
        /// The model's context window length.
        seq: usize,
    },
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerateError::TokenOutOfVocab { token, vocab } => {
                write!(f, "token id {token} is outside the vocabulary (0..{vocab})")
            }
            GenerateError::ContextExhausted { seq } => {
                write!(f, "context window exhausted ({seq} positions consumed)")
            }
        }
    }
}

impl std::error::Error for GenerateError {}

/// Sampling strategy for the next-token distribution.
#[derive(Clone, Copy, Debug)]
pub enum Sampling {
    /// Always the arg-max token.
    Greedy,
    /// Softmax with a temperature, optionally truncated to the top-k
    /// logits, sampled with the given seed.
    Temperature {
        /// Softmax temperature (>0; 1.0 = untempered).
        temperature: f32,
        /// Keep only the `top_k` most likely tokens (0 = all).
        top_k: usize,
        /// RNG seed.
        seed: u64,
    },
}

// ----- the shared per-token unit steps -----

/// One token's embedding row: token embedding + position embedding, given
/// the *embed unit's* parameter slice. Validates the token id and the
/// position so no downstream slice can go out of bounds.
///
/// # Errors
/// [`GenerateError::TokenOutOfVocab`] for an id ≥ vocab,
/// [`GenerateError::ContextExhausted`] for `pos ≥ seq`.
pub fn embed_step(
    gpt: &Gpt,
    embed_params: &[f32],
    token: u32,
    pos: usize,
) -> Result<Vec<f32>, GenerateError> {
    let cfg = gpt.config();
    let h = cfg.hidden;
    if token as usize >= cfg.vocab {
        return Err(GenerateError::TokenOutOfVocab { token, vocab: cfg.vocab });
    }
    if pos >= cfg.seq {
        return Err(GenerateError::ContextExhausted { seq: cfg.seq });
    }
    let emb = gpt.layout().embed_offsets();
    let tok_row = &embed_params[emb.tok.clone()][token as usize * h..(token as usize + 1) * h];
    let pos_row = &embed_params[emb.pos.clone()][pos * h..(pos + 1) * h];
    Ok(tok_row.iter().zip(pos_row).map(|(a, b)| a + b).collect())
}

/// One token through block `l`: appends this position's K/V rows to the
/// caches (each `seq × hidden`, one layer's worth), attends over the
/// visible past, and returns the block output row. `p` is the *block
/// unit's* parameter slice.
///
/// This is the contiguous-buffer convenience wrapper over
/// [`block_step_kv`]; both execute the identical arithmetic in the
/// identical order, so slab-backed, paged, and private-cache decoding
/// stay bitwise equal (tested in `tests/serving.rs`).
///
/// # Panics
/// Panics (debug) on cache-length or position inconsistencies — the
/// callers ([`IncrementalDecoder::feed`] and the serving engine) validate
/// positions before dispatching compute.
pub fn block_step(
    gpt: &Gpt,
    l: usize,
    p: &[f32],
    x: &[f32],
    k_cache: &mut [f32],
    v_cache: &mut [f32],
    pos: usize,
) -> Vec<f32> {
    let cfg = gpt.config();
    debug_assert_eq!(k_cache.len(), cfg.seq * cfg.hidden);
    debug_assert_eq!(v_cache.len(), cfg.seq * cfg.hidden);
    let mut kv = crate::kv::ContigKv::new(k_cache, v_cache, cfg.hidden);
    block_step_kv(gpt, l, p, x, &mut kv, 0, pos)
}

/// [`block_step`] over any [`KvArena`](crate::kv::KvArena) backing
/// store: the serving engine passes a pooled slab or a paged block
/// arena with `slot` naming the request's cache lane; the incremental
/// decoder passes a contiguous adapter. The kernel reads and writes the
/// cache strictly row-at-a-time, which is what lets a paged arena with
/// non-contiguous storage produce bitwise-identical logits.
pub fn block_step_kv<A: crate::kv::KvArena>(
    gpt: &Gpt,
    l: usize,
    p: &[f32],
    x: &[f32],
    kv: &mut A,
    slot: usize,
    pos: usize,
) -> Vec<f32> {
    use zero_tensor::ops::matmul::sgemm_nt;
    use zero_tensor::ops::norm::layernorm_forward;

    let cfg = gpt.config();
    let h = cfg.hidden;
    let (nh, hd) = (cfg.heads, cfg.head_dim());
    debug_assert!(pos < cfg.seq, "cache position out of range");
    let off = gpt.layout().block_offsets(l);
    let t = pos;

    // LN1 over a single row.
    let mut h1 = vec![0.0; h];
    let (mut mean, mut rstd) = (vec![0.0; 1], vec![0.0; 1]);
    layernorm_forward(x, &p[off.ln1_g.clone()], &p[off.ln1_b.clone()], &mut h1, &mut mean, &mut rstd, 1, h, 1e-5);
    // QKV for one token.
    let mut qkv = vec![0.0; 3 * h];
    sgemm_nt(&h1, &p[off.w_qkv.clone()], &mut qkv, 1, h, 3 * h);
    for (v, b) in qkv.iter_mut().zip(&p[off.b_qkv.clone()]) {
        *v += b;
    }
    // Append K, V to the cache.
    kv.write_row(l, slot, t, &qkv[h..2 * h], &qkv[2 * h..3 * h]);
    // Attention over the cache, per head.
    let scale = 1.0 / (hd as f32).sqrt();
    let mut attn = vec![0.0; h];
    for head in 0..nh {
        let q = &qkv[head * hd..(head + 1) * hd];
        let mut weights = vec![0.0; t + 1];
        for (i, w) in weights.iter_mut().enumerate() {
            let k = &kv.k_row(l, slot, i)[head * hd..(head + 1) * hd];
            *w = zero_tensor::ops::vector::dot(q, k) * scale;
        }
        // Softmax over the visible past.
        let max = weights.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0;
        for w in &mut weights {
            *w = (*w - max).exp();
            sum += *w;
        }
        let inv = 1.0 / sum;
        let out = &mut attn[head * hd..(head + 1) * hd];
        for (i, w) in weights.iter().enumerate() {
            let v = &kv.v_row(l, slot, i)[head * hd..(head + 1) * hd];
            for (o, &vv) in out.iter_mut().zip(v) {
                *o += w * inv * vv;
            }
        }
    }
    // Projection + residual.
    let mut ao = vec![0.0; h];
    sgemm_nt(&attn, &p[off.w_o.clone()], &mut ao, 1, h, h);
    for ((v, b), xv) in ao.iter_mut().zip(&p[off.b_o.clone()]).zip(x) {
        *v += b + xv;
    }
    // LN2 + MLP + residual.
    let mut h2 = vec![0.0; h];
    layernorm_forward(&ao, &p[off.ln2_g.clone()], &p[off.ln2_b.clone()], &mut h2, &mut mean, &mut rstd, 1, h, 1e-5);
    let ffn = 4 * h;
    let mut f1 = vec![0.0; ffn];
    sgemm_nt(&h2, &p[off.w_fc1.clone()], &mut f1, 1, h, ffn);
    for (v, b) in f1.iter_mut().zip(&p[off.b_fc1.clone()]) {
        *v += b;
        *v = zero_tensor::ops::activation::gelu_scalar(*v);
    }
    let mut f2 = vec![0.0; h];
    sgemm_nt(&f1, &p[off.w_fc2.clone()], &mut f2, 1, ffn, h);
    for ((v, b), av) in f2.iter_mut().zip(&p[off.b_fc2.clone()]).zip(&ao) {
        *v += b + av;
    }
    f2
}

/// One token through the head unit: final layer-norm + LM projection,
/// returning the `vocab`-length logits row. `head_params` is the *head
/// unit's* parameter slice.
pub fn head_step(gpt: &Gpt, head_params: &[f32], x: &[f32]) -> Vec<f32> {
    use zero_tensor::ops::matmul::sgemm_nt;
    use zero_tensor::ops::norm::layernorm_forward;

    let cfg = gpt.config();
    let h = cfg.hidden;
    let hoff = gpt.layout().head_offsets();
    let mut lnf = vec![0.0; h];
    let (mut mean, mut rstd) = (vec![0.0; 1], vec![0.0; 1]);
    layernorm_forward(
        x,
        &head_params[hoff.lnf_g.clone()],
        &head_params[hoff.lnf_b.clone()],
        &mut lnf,
        &mut mean,
        &mut rstd,
        1,
        h,
        1e-5,
    );
    let mut logits = vec![0.0; cfg.vocab];
    sgemm_nt(&lnf, &head_params[hoff.w_head.clone()], &mut logits, 1, h, cfg.vocab);
    logits
}

/// Autoregressive generator holding the model and its flat parameters.
pub struct Generator<'a> {
    gpt: &'a Gpt,
    params: &'a [f32],
}

impl<'a> Generator<'a> {
    /// Wraps a model and a full flat parameter buffer.
    ///
    /// # Panics
    /// Panics if the buffer does not match the model layout.
    pub fn new(gpt: &'a Gpt, params: &'a [f32]) -> Generator<'a> {
        assert_eq!(
            params.len(),
            gpt.num_params(),
            "parameter buffer does not match the model layout"
        );
        Generator { gpt, params }
    }

    /// Next-token logits given a full context window of `seq` ids.
    ///
    /// # Errors
    /// [`GenerateError::TokenOutOfVocab`] if any context id is ≥ vocab.
    ///
    /// # Panics
    /// Panics if `context` is not exactly `seq` long (a harness
    /// programming error, not a request error).
    pub fn next_token_logits(&self, context: &[u32]) -> Result<Vec<f32>, GenerateError> {
        let cfg = self.gpt.config();
        assert_eq!(context.len(), cfg.seq, "context must fill the window");
        if let Some(&bad) = context.iter().find(|&&t| t as usize >= cfg.vocab) {
            return Err(GenerateError::TokenOutOfVocab { token: bad, vocab: cfg.vocab });
        }
        let units = self.gpt.layout().units().to_vec();
        let mut x = self
            .gpt
            .embed(&self.params[units[0].range.clone()], context, 1);
        let mut ident = |_: &mut [f32]| {};
        for l in 0..cfg.layers {
            let u = &units[1 + l];
            let (y, _) = self
                .gpt
                .block_fwd(l, &self.params[u.range.clone()], &x, 1, &mut ident);
            x = y;
        }
        let hu = units.last().unwrap();
        let logits = self
            .gpt
            .head_logits(&self.params[hu.range.clone()], &x, 1);
        // Only the last position predicts the next token.
        Ok(logits[(cfg.seq - 1) * cfg.vocab..cfg.seq * cfg.vocab].to_vec())
    }

    /// Generates `n` tokens continuing `prompt` (which seeds the rolling
    /// window; it is left-padded by repetition if shorter than `seq`).
    ///
    /// # Errors
    /// [`GenerateError::TokenOutOfVocab`] if the prompt contains an id
    /// outside the vocabulary.
    ///
    /// # Panics
    /// Panics on an empty prompt (harness programming error).
    pub fn generate(
        &self,
        prompt: &[u32],
        n: usize,
        sampling: Sampling,
    ) -> Result<Vec<u32>, GenerateError> {
        let cfg = self.gpt.config();
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let mut window: Vec<u32> = std::iter::repeat(prompt.iter().copied())
            .flatten()
            .take(cfg.seq)
            .collect();
        if window.len() < cfg.seq {
            window.resize(cfg.seq, prompt[0]);
        }
        // Keep the prompt's tail at the window's end (most recent tokens).
        let tail = prompt.len().min(cfg.seq);
        window.rotate_left(tail % cfg.seq.max(1));
        window[cfg.seq - tail..].copy_from_slice(&prompt[prompt.len() - tail..]);

        let mut rng = match sampling {
            Sampling::Temperature { seed, .. } => Some(StdRng::seed_from_u64(seed)),
            Sampling::Greedy => None,
        };
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let logits = self.next_token_logits(&window)?;
            let next = pick(&logits, sampling, rng.as_mut());
            out.push(next);
            window.rotate_left(1);
            let len = window.len();
            window[len - 1] = next;
        }
        Ok(out)
    }
}

fn pick(logits: &[f32], sampling: Sampling, rng: Option<&mut StdRng>) -> u32 {
    match sampling {
        Sampling::Greedy => argmax(logits) as u32,
        Sampling::Temperature {
            temperature,
            top_k,
            ..
        } => {
            assert!(temperature > 0.0, "temperature must be positive");
            let rng = rng.expect("rng for temperature sampling");
            let mut idx: Vec<usize> = (0..logits.len()).collect();
            idx.sort_unstable_by(|&a, &b| logits[b].partial_cmp(&logits[a]).unwrap());
            let keep = if top_k == 0 { logits.len() } else { top_k.min(logits.len()) };
            let kept = &idx[..keep];
            let max = logits[kept[0]];
            let weights: Vec<f32> = kept
                .iter()
                .map(|&i| ((logits[i] - max) / temperature).exp())
                .collect();
            let total: f32 = weights.iter().sum();
            let mut r = rng.gen::<f32>() * total;
            for (w, &i) in weights.iter().zip(kept) {
                r -= w;
                if r <= 0.0 {
                    return i as u32;
                }
            }
            kept[keep - 1] as u32
        }
    }
}

/// Arg-max of a logits row (ties resolve to the lowest index — the
/// convention every greedy path in the workspace shares, so outputs are
/// bitwise-comparable across serving and single-process decoding).
pub fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .expect("non-empty logits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::gpt::init_full_params;

    fn tiny() -> (ModelConfig, Vec<f32>) {
        let cfg = ModelConfig {
            vocab: 16,
            seq: 8,
            hidden: 16,
            layers: 1,
            heads: 2,
        };
        (cfg, init_full_params(&cfg, 4))
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let (cfg, params) = tiny();
        let gpt = Gpt::new(cfg);
        let g = Generator::new(&gpt, &params);
        let a = g.generate(&[1, 2, 3], 6, Sampling::Greedy).unwrap();
        let b = g.generate(&[1, 2, 3], 6, Sampling::Greedy).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|&t| (t as usize) < cfg.vocab));
    }

    #[test]
    fn temperature_sampling_is_seeded() {
        let (cfg, params) = tiny();
        let gpt = Gpt::new(cfg);
        let g = Generator::new(&gpt, &params);
        let s = |seed| Sampling::Temperature {
            temperature: 1.0,
            top_k: 0,
            seed,
        };
        let a = g.generate(&[5], 8, s(1)).unwrap();
        let b = g.generate(&[5], 8, s(1)).unwrap();
        let c = g.generate(&[5], 8, s(2)).unwrap();
        assert_eq!(a, b, "same seed, same tokens");
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn top_k_restricts_to_likely_tokens() {
        let (cfg, params) = tiny();
        let gpt = Gpt::new(cfg);
        let g = Generator::new(&gpt, &params);
        // With top_k = 1 every draw equals greedy.
        let greedy = g.generate(&[7, 3], 5, Sampling::Greedy).unwrap();
        let k1 = g
            .generate(
                &[7, 3],
                5,
                Sampling::Temperature {
                    temperature: 2.0,
                    top_k: 1,
                    seed: 9,
                },
            )
            .unwrap();
        assert_eq!(greedy, k1);
    }

    #[test]
    fn long_prompts_keep_their_tail() {
        let (cfg, params) = tiny();
        let gpt = Gpt::new(cfg);
        let g = Generator::new(&gpt, &params);
        let long: Vec<u32> = (0..20).map(|i| (i % 16) as u32).collect();
        let out = g.generate(&long, 3, Sampling::Greedy).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_parameter_length_rejected() {
        let (cfg, params) = tiny();
        let gpt = Gpt::new(cfg);
        let _ = Generator::new(&gpt, &params[..10]);
    }

    #[test]
    fn out_of_vocab_context_is_a_typed_error_not_a_panic() {
        let (cfg, params) = tiny();
        let gpt = Gpt::new(cfg);
        let g = Generator::new(&gpt, &params);
        // Regression: this used to slice `token * hidden` unchecked and
        // panic out-of-bounds inside the embedding lookup.
        let mut context = vec![0u32; cfg.seq];
        context[3] = cfg.vocab as u32 + 100;
        let err = g.next_token_logits(&context).unwrap_err();
        assert_eq!(
            err,
            GenerateError::TokenOutOfVocab { token: cfg.vocab as u32 + 100, vocab: cfg.vocab }
        );
        // The boundary id is also out of range (valid ids are 0..vocab).
        let mut boundary = vec![0u32; cfg.seq];
        boundary[0] = cfg.vocab as u32;
        assert!(matches!(
            g.next_token_logits(&boundary),
            Err(GenerateError::TokenOutOfVocab { .. })
        ));
        // And generate propagates the rejection from the prompt.
        let err = g.generate(&[1, 99], 4, Sampling::Greedy).unwrap_err();
        assert!(matches!(err, GenerateError::TokenOutOfVocab { token: 99, .. }));
    }
}

/// Incremental (KV-cached) decoder: O(context) per token instead of a
/// full-window re-forward — the standard inference optimization, exact
/// w.r.t. the full forward pass (verified in tests).
pub struct IncrementalDecoder<'a> {
    gpt: &'a Gpt,
    params: &'a [f32],
    /// Per block: cached keys and values, `[pos, attn_width]` row-major.
    k_cache: Vec<Vec<f32>>,
    v_cache: Vec<Vec<f32>>,
    /// Tokens consumed so far (bounded by the position-table length).
    pos: usize,
}

impl<'a> IncrementalDecoder<'a> {
    /// Creates an empty decoder (caches sized for one `seq` window).
    ///
    /// # Panics
    /// Panics if `params` does not match the model layout or the model is
    /// model-parallel (inference here is single-process).
    pub fn new(gpt: &'a Gpt, params: &'a [f32]) -> IncrementalDecoder<'a> {
        assert_eq!(params.len(), gpt.num_params(), "parameter buffer mismatch");
        assert_eq!(gpt.mp_degree(), 1, "incremental decode is single-process");
        let cfg = gpt.config();
        let aw = cfg.hidden;
        IncrementalDecoder {
            gpt,
            params,
            k_cache: vec![vec![0.0; cfg.seq * aw]; cfg.layers],
            v_cache: vec![vec![0.0; cfg.seq * aw]; cfg.layers],
            pos: 0,
        }
    }

    /// Tokens consumed.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Feeds one token, returns the next-token logits.
    ///
    /// # Errors
    /// [`GenerateError::ContextExhausted`] once `seq` tokens have been
    /// consumed, [`GenerateError::TokenOutOfVocab`] for an id ≥ vocab —
    /// both previously panicked (an `assert!` and an unchecked slice),
    /// which took down the whole serving rank on one bad request.
    pub fn feed(&mut self, token: u32) -> Result<Vec<f32>, GenerateError> {
        let cfg = *self.gpt.config();
        let units = self.gpt.layout().units().to_vec();
        let t = self.pos;

        let mut x = embed_step(self.gpt, &self.params[units[0].range.clone()], token, t)?;
        for l in 0..cfg.layers {
            x = block_step(
                self.gpt,
                l,
                &self.params[units[1 + l].range.clone()],
                &x,
                &mut self.k_cache[l],
                &mut self.v_cache[l],
                t,
            );
        }
        let hu = units.last().unwrap();
        let logits = head_step(self.gpt, &self.params[hu.range.clone()], &x);
        self.pos += 1;
        Ok(logits)
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::gpt::init_full_params;

    #[test]
    fn incremental_matches_full_forward_at_every_position() {
        let cfg = ModelConfig {
            vocab: 24,
            seq: 10,
            hidden: 16,
            layers: 2,
            heads: 2,
        };
        let params = init_full_params(&cfg, 6);
        let gpt = Gpt::new(cfg);
        let tokens: Vec<u32> = (0..cfg.seq as u32).map(|i| (i * 7) % 24).collect();

        // Full-window forward once.
        let units = gpt.layout().units().to_vec();
        let mut x = gpt.embed(&params[units[0].range.clone()], &tokens, 1);
        let mut ident = |_: &mut [f32]| {};
        for l in 0..cfg.layers {
            let u = &units[1 + l];
            let (y, _) = gpt.block_fwd(l, &params[u.range.clone()], &x, 1, &mut ident);
            x = y;
        }
        let hu = units.last().unwrap();
        let full_logits = gpt.head_logits(&params[hu.range.clone()], &x, 1);

        // Incremental decode, token by token.
        let mut dec = IncrementalDecoder::new(&gpt, &params);
        for (t, &tok) in tokens.iter().enumerate() {
            let logits = dec.feed(tok).unwrap();
            let want = &full_logits[t * cfg.vocab..(t + 1) * cfg.vocab];
            for (a, b) in logits.iter().zip(want) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "position {t}: incremental {a} vs full {b}"
                );
            }
        }
    }

    #[test]
    fn window_exhaustion_is_a_typed_error_not_a_panic() {
        let cfg = ModelConfig {
            vocab: 16,
            seq: 3,
            hidden: 8,
            layers: 1,
            heads: 2,
        };
        let params = init_full_params(&cfg, 1);
        let gpt = Gpt::new(cfg);
        let mut dec = IncrementalDecoder::new(&gpt, &params);
        for _ in 0..3 {
            dec.feed(0).expect("within the window");
        }
        // Regression: the fourth feed used to `assert!` the rank down.
        let err = dec.feed(0).unwrap_err();
        assert_eq!(err, GenerateError::ContextExhausted { seq: 3 });
        // A rejected feed consumes no position: the decoder stays usable.
        assert_eq!(dec.position(), 3);
    }

    #[test]
    fn out_of_vocab_feed_is_a_typed_error_and_consumes_nothing() {
        let cfg = ModelConfig {
            vocab: 16,
            seq: 4,
            hidden: 8,
            layers: 1,
            heads: 2,
        };
        let params = init_full_params(&cfg, 1);
        let gpt = Gpt::new(cfg);
        let mut dec = IncrementalDecoder::new(&gpt, &params);
        // Regression: this used to slice out of bounds in the embedding.
        let err = dec.feed(16).unwrap_err();
        assert_eq!(err, GenerateError::TokenOutOfVocab { token: 16, vocab: 16 });
        assert_eq!(dec.position(), 0, "rejected token must not advance the cache");
        // The decoder still works after a rejection.
        let logits = dec.feed(5).unwrap();
        assert_eq!(logits.len(), 16);
        assert_eq!(dec.position(), 1);
    }
}
