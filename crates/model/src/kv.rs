//! Pooled key/value-cache slab for batched incremental decoding.
//!
//! A serving rank decodes many requests concurrently; each live request
//! needs one K and one V cache per transformer block, `[seq, hidden]`
//! row-major. Allocating those per request would fragment memory and
//! bound throughput by the allocator — instead a [`KvSlab`] owns one flat
//! arena of `slots × layers × seq × hidden` elements per side, hands out
//! *slots* (one per in-flight request), and recycles a slot the moment
//! its request finishes. This is the contiguous-memory idea of the
//! paper's §6.3 (MD) applied to serving state: the working set is bounded
//! and constant for a given batch capacity, regardless of request churn.
//!
//! Correctness under recycling relies on the decode discipline: position
//! `t` of a cache row is always written (by the token at position `t`)
//! before any later token reads it, so a recycled slot never exposes a
//! previous request's state. `debug_assert`s and the slab tests pin this.

/// A pooled K/V cache arena: `slots` concurrently live requests, each
/// with `layers` caches of `seq × width` elements per side.
pub struct KvSlab {
    layers: usize,
    slots: usize,
    seq: usize,
    width: usize,
    k: Vec<f32>,
    v: Vec<f32>,
    /// Free slot ids (LIFO: the most recently freed slot is reused first,
    /// which keeps the hot part of the arena small).
    free: Vec<usize>,
}

impl KvSlab {
    /// Creates a slab for `slots` concurrent requests over a model with
    /// `layers` blocks, context `seq`, and attention width `width`.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(layers: usize, slots: usize, seq: usize, width: usize) -> KvSlab {
        assert!(layers > 0 && slots > 0 && seq > 0 && width > 0, "empty KV slab");
        let elems = layers * slots * seq * width;
        KvSlab {
            layers,
            slots,
            seq,
            width,
            k: vec![0.0; elems],
            v: vec![0.0; elems],
            free: (0..slots).rev().collect(),
        }
    }

    /// Total slots (the batch capacity).
    pub fn capacity(&self) -> usize {
        self.slots
    }

    /// Slots currently handed out.
    pub fn in_use(&self) -> usize {
        self.slots - self.free.len()
    }

    /// Context length each slot caches.
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// Bytes the slab arena occupies (both sides).
    pub fn bytes(&self) -> u64 {
        2 * 4 * (self.k.len() as u64)
    }

    /// Claims a free slot, or `None` when the batch is full. The slot's
    /// contents are whatever its previous tenant left; every position is
    /// written before it is read, so this is invisible (tested).
    pub fn alloc(&mut self) -> Option<usize> {
        self.free.pop()
    }

    /// Returns `slot` to the pool.
    ///
    /// # Panics
    /// Panics if `slot` is out of range or already free (double free).
    pub fn release(&mut self, slot: usize) {
        assert!(slot < self.slots, "slot {slot} out of range");
        assert!(!self.free.contains(&slot), "double free of slot {slot}");
        self.free.push(slot);
    }

    #[inline]
    fn base(&self, layer: usize, slot: usize) -> usize {
        debug_assert!(layer < self.layers && slot < self.slots);
        (layer * self.slots + slot) * self.seq * self.width
    }

    /// The K cache of (`layer`, `slot`): `seq × width` row-major.
    pub fn k_cache(&self, layer: usize, slot: usize) -> &[f32] {
        let b = self.base(layer, slot);
        &self.k[b..b + self.seq * self.width]
    }

    /// The V cache of (`layer`, `slot`).
    pub fn v_cache(&self, layer: usize, slot: usize) -> &[f32] {
        let b = self.base(layer, slot);
        &self.v[b..b + self.seq * self.width]
    }

    /// Mutable K and V caches of (`layer`, `slot`) together — what
    /// [`block_step`](crate::generate::block_step) needs to append this
    /// position's rows and attend over the past in one call.
    pub fn kv_pair_mut(&mut self, layer: usize, slot: usize) -> (&mut [f32], &mut [f32]) {
        let b = self.base(layer, slot);
        let n = self.seq * self.width;
        (&mut self.k[b..b + n], &mut self.v[b..b + n])
    }

    /// Writes position `pos` of (`layer`, `slot`)'s K and V rows.
    ///
    /// # Panics
    /// Panics (debug) if `pos ≥ seq` or the rows are not `width` long.
    pub fn write_row(&mut self, layer: usize, slot: usize, pos: usize, k: &[f32], v: &[f32]) {
        debug_assert!(pos < self.seq, "cache position {pos} out of range");
        debug_assert_eq!(k.len(), self.width);
        debug_assert_eq!(v.len(), self.width);
        let b = self.base(layer, slot) + pos * self.width;
        self.k[b..b + self.width].copy_from_slice(k);
        self.v[b..b + self.width].copy_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_recycles_slots() {
        let mut slab = KvSlab::new(2, 3, 4, 8);
        assert_eq!(slab.capacity(), 3);
        let a = slab.alloc().unwrap();
        let b = slab.alloc().unwrap();
        let c = slab.alloc().unwrap();
        assert_eq!(slab.in_use(), 3);
        assert!(slab.alloc().is_none(), "slab exhausted");
        slab.release(b);
        assert_eq!(slab.in_use(), 2);
        // LIFO reuse: the freed slot comes straight back.
        assert_eq!(slab.alloc(), Some(b));
        let _ = (a, c);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut slab = KvSlab::new(1, 2, 2, 2);
        let s = slab.alloc().unwrap();
        slab.release(s);
        slab.release(s);
    }

    #[test]
    fn rows_land_in_the_right_slot_and_layer() {
        let mut slab = KvSlab::new(2, 2, 3, 2);
        let s0 = slab.alloc().unwrap();
        let s1 = slab.alloc().unwrap();
        slab.write_row(0, s0, 0, &[1.0, 2.0], &[3.0, 4.0]);
        slab.write_row(1, s1, 2, &[5.0, 6.0], &[7.0, 8.0]);
        assert_eq!(&slab.k_cache(0, s0)[..2], &[1.0, 2.0]);
        assert_eq!(&slab.v_cache(0, s0)[..2], &[3.0, 4.0]);
        assert_eq!(&slab.k_cache(1, s1)[4..6], &[5.0, 6.0]);
        // Other cells untouched.
        assert!(slab.k_cache(1, s0).iter().all(|&x| x == 0.0));
    }
}
