//! Pooled key/value-cache storage for batched incremental decoding.
//!
//! A serving rank decodes many requests concurrently; each live request
//! needs one K and one V cache per transformer block. Two backing
//! strategies live here behind the [`KvArena`] row-access trait:
//!
//! * [`KvSlab`] — one flat arena of `slots × layers × seq × hidden`
//!   elements per side, a *slot* per in-flight request. The working set
//!   is bounded and constant for a given batch capacity (the contiguous
//!   memory idea of the paper's §6.3 applied to serving state), but every
//!   slot pays for the full context window whether it uses it or not.
//! * [`BlockArena`] — fixed-size *position blocks* allocated on demand
//!   as a request's decode position crosses block boundaries (the paged
//!   KV-cache design). Blocks are reference counted so shared prompt
//!   prefixes can map to shared read-only blocks; the page tables and
//!   prefix-hash cache live with the serving engine (`zero-serve`),
//!   which owns the sharing policy — this type owns allocation,
//!   refcounts, scrubbing, and byte metering.
//!
//! Both implement [`KvArena`], and the per-token attention kernel
//! (`block_step_kv`) is generic over it, so slab-backed and paged-backed
//! decoding execute bitwise-identical arithmetic — a tested invariant.
//!
//! Correctness under recycling used to rely purely on the decode
//! discipline (position `t` is written before any later token reads it).
//! That is still true for append-only positions, but block sharing makes
//! stale state a real hazard, so both containers now *scrub* recycled
//! storage (the slab on release, the arena on alloc) and detect double
//! frees with an O(1) occupancy bitset instead of the old O(slots)
//! free-list scan.

/// Row-level access to a K/V cache keyed by (layer, slot, position) —
/// the interface the shared per-token attention kernel decodes through.
/// Implementations must return rows of exactly `width` elements and must
/// keep a written row readable (bitwise) until the slot is released.
pub trait KvArena {
    /// Writes position `pos` of (`layer`, `slot`): one K row and one V
    /// row of the arena's width.
    fn write_row(&mut self, layer: usize, slot: usize, pos: usize, k: &[f32], v: &[f32]);
    /// The K row of (`layer`, `slot`, `pos`).
    fn k_row(&self, layer: usize, slot: usize, pos: usize) -> &[f32];
    /// The V row of (`layer`, `slot`, `pos`).
    fn v_row(&self, layer: usize, slot: usize, pos: usize) -> &[f32];
}

/// A [`KvArena`] over two plain contiguous `seq × width` buffers (one
/// request, one layer at a time — the slot and layer indices are
/// ignored). This is how [`IncrementalDecoder`](crate::IncrementalDecoder)
/// and any caller holding per-layer `Vec<f32>` caches drive the shared
/// kernel.
pub struct ContigKv<'a> {
    k: &'a mut [f32],
    v: &'a mut [f32],
    width: usize,
}

impl<'a> ContigKv<'a> {
    /// Wraps one layer's K and V buffers (`seq × width` each).
    pub fn new(k: &'a mut [f32], v: &'a mut [f32], width: usize) -> ContigKv<'a> {
        debug_assert_eq!(k.len() % width, 0);
        debug_assert_eq!(k.len(), v.len());
        ContigKv { k, v, width }
    }
}

impl KvArena for ContigKv<'_> {
    fn write_row(&mut self, _layer: usize, _slot: usize, pos: usize, k: &[f32], v: &[f32]) {
        let w = self.width;
        self.k[pos * w..(pos + 1) * w].copy_from_slice(k);
        self.v[pos * w..(pos + 1) * w].copy_from_slice(v);
    }

    fn k_row(&self, _layer: usize, _slot: usize, pos: usize) -> &[f32] {
        &self.k[pos * self.width..(pos + 1) * self.width]
    }

    fn v_row(&self, _layer: usize, _slot: usize, pos: usize) -> &[f32] {
        &self.v[pos * self.width..(pos + 1) * self.width]
    }
}

/// A fixed-word occupancy bitset: O(1) membership instead of the old
/// O(n) `Vec::contains` scan on every release.
#[derive(Clone, Debug)]
struct Bitset(Vec<u64>);

impl Bitset {
    fn new(n: usize) -> Bitset {
        Bitset(vec![0; n.div_ceil(64)])
    }

    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }

    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }
}

/// A pooled K/V cache arena: `slots` concurrently live requests, each
/// with `layers` caches of `seq × width` elements per side.
pub struct KvSlab {
    layers: usize,
    slots: usize,
    seq: usize,
    width: usize,
    k: Vec<f32>,
    v: Vec<f32>,
    /// Free slot ids (LIFO: the most recently freed slot is reused first,
    /// which keeps the hot part of the arena small).
    free: Vec<usize>,
    /// Occupancy: bit `s` set means slot `s` is handed out.
    occupied: Bitset,
}

impl KvSlab {
    /// Creates a slab for `slots` concurrent requests over a model with
    /// `layers` blocks, context `seq`, and attention width `width`.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(layers: usize, slots: usize, seq: usize, width: usize) -> KvSlab {
        assert!(layers > 0 && slots > 0 && seq > 0 && width > 0, "empty KV slab");
        let elems = layers * slots * seq * width;
        KvSlab {
            layers,
            slots,
            seq,
            width,
            k: vec![0.0; elems],
            v: vec![0.0; elems],
            free: (0..slots).rev().collect(),
            occupied: Bitset::new(slots),
        }
    }

    /// Total slots (the batch capacity).
    pub fn capacity(&self) -> usize {
        self.slots
    }

    /// Slots currently handed out.
    pub fn in_use(&self) -> usize {
        self.slots - self.free.len()
    }

    /// Context length each slot caches.
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// Bytes the slab arena occupies (both sides).
    pub fn bytes(&self) -> u64 {
        2 * 4 * (self.k.len() as u64)
    }

    /// Claims a free slot, or `None` when the batch is full. The slot's
    /// rows are zero: recycled slots are scrubbed on release, so a new
    /// tenant can never observe a previous request's state even if the
    /// write-before-read decode discipline is violated.
    pub fn alloc(&mut self) -> Option<usize> {
        let slot = self.free.pop()?;
        self.occupied.set(slot);
        Some(slot)
    }

    /// Returns `slot` to the pool, scrubbing its rows.
    ///
    /// # Panics
    /// Panics if `slot` is out of range or already free (double free —
    /// detected by the occupancy bitset in O(1)).
    pub fn release(&mut self, slot: usize) {
        assert!(slot < self.slots, "slot {slot} out of range");
        assert!(self.occupied.get(slot), "double free of slot {slot}");
        self.occupied.clear(slot);
        for layer in 0..self.layers {
            let b = self.base(layer, slot);
            let n = self.seq * self.width;
            self.k[b..b + n].fill(0.0);
            self.v[b..b + n].fill(0.0);
        }
        self.free.push(slot);
    }

    #[inline]
    fn base(&self, layer: usize, slot: usize) -> usize {
        debug_assert!(layer < self.layers && slot < self.slots);
        (layer * self.slots + slot) * self.seq * self.width
    }

    /// The K cache of (`layer`, `slot`): `seq × width` row-major.
    pub fn k_cache(&self, layer: usize, slot: usize) -> &[f32] {
        let b = self.base(layer, slot);
        &self.k[b..b + self.seq * self.width]
    }

    /// The V cache of (`layer`, `slot`).
    pub fn v_cache(&self, layer: usize, slot: usize) -> &[f32] {
        let b = self.base(layer, slot);
        &self.v[b..b + self.seq * self.width]
    }

    /// Mutable K and V caches of (`layer`, `slot`) together.
    pub fn kv_pair_mut(&mut self, layer: usize, slot: usize) -> (&mut [f32], &mut [f32]) {
        let b = self.base(layer, slot);
        let n = self.seq * self.width;
        (&mut self.k[b..b + n], &mut self.v[b..b + n])
    }

    /// Writes position `pos` of (`layer`, `slot`)'s K and V rows.
    ///
    /// # Panics
    /// Panics (debug) if `pos ≥ seq` or the rows are not `width` long.
    pub fn write_row(&mut self, layer: usize, slot: usize, pos: usize, k: &[f32], v: &[f32]) {
        debug_assert!(pos < self.seq, "cache position {pos} out of range");
        debug_assert_eq!(k.len(), self.width);
        debug_assert_eq!(v.len(), self.width);
        let b = self.base(layer, slot) + pos * self.width;
        self.k[b..b + self.width].copy_from_slice(k);
        self.v[b..b + self.width].copy_from_slice(v);
    }
}

impl KvArena for KvSlab {
    fn write_row(&mut self, layer: usize, slot: usize, pos: usize, k: &[f32], v: &[f32]) {
        KvSlab::write_row(self, layer, slot, pos, k, v);
    }

    fn k_row(&self, layer: usize, slot: usize, pos: usize) -> &[f32] {
        let b = self.base(layer, slot) + pos * self.width;
        &self.k[b..b + self.width]
    }

    fn v_row(&self, layer: usize, slot: usize, pos: usize) -> &[f32] {
        let b = self.base(layer, slot) + pos * self.width;
        &self.v[b..b + self.width]
    }
}

/// Byte and operation meters for a [`BlockArena`] — the paged analogue
/// of `KvSlab::bytes`, split so prefix sharing is measurable: sharing
/// shows up as *fewer allocations* for the same served tokens.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockArenaStats {
    /// Blocks handed out by `alloc` over the arena's lifetime.
    pub alloc_ops: u64,
    /// Bytes those allocations cover (`alloc_ops × block_bytes`).
    pub alloc_bytes: u64,
    /// Peak simultaneously *live* (refcount ≥ 1) bytes.
    pub live_bytes_peak: u64,
}

/// A reference-counted block arena for paged KV caches.
///
/// One *block* holds `layers × block_positions × width` K elements (and
/// as many V elements): a fixed run of consecutive positions across
/// every layer of one request. Blocks are claimed on demand, shared
/// read-only between requests via refcounts (prefix reuse), and scrubbed
/// on allocation so a recycled block can never leak a previous tenant's
/// rows. Double frees of the *block* kind — reclaiming a block that is
/// not allocated — are caught by an occupancy bitset in O(1).
pub struct BlockArena {
    layers: usize,
    width: usize,
    block_positions: usize,
    cap: usize,
    k: Vec<f32>,
    v: Vec<f32>,
    free: Vec<usize>,
    occupied: Bitset,
    refcount: Vec<u32>,
    live_blocks: usize,
    live_blocks_peak: usize,
    alloc_ops: u64,
}

impl BlockArena {
    /// Creates an arena of `cap` blocks, each covering `block_positions`
    /// consecutive positions of `layers` layers at `width` elements per
    /// row and side.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(layers: usize, cap: usize, block_positions: usize, width: usize) -> BlockArena {
        assert!(
            layers > 0 && cap > 0 && block_positions > 0 && width > 0,
            "empty KV block arena"
        );
        let elems = cap * layers * block_positions * width;
        BlockArena {
            layers,
            width,
            block_positions,
            cap,
            k: vec![0.0; elems],
            v: vec![0.0; elems],
            free: (0..cap).rev().collect(),
            occupied: Bitset::new(cap),
            refcount: vec![0; cap],
            live_blocks: 0,
            live_blocks_peak: 0,
            alloc_ops: 0,
        }
    }

    /// Positions one block covers.
    pub fn block_positions(&self) -> usize {
        self.block_positions
    }

    /// Total blocks the arena can hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Bytes one block occupies (both sides).
    pub fn block_bytes(&self) -> u64 {
        2 * 4 * (self.layers * self.block_positions * self.width) as u64
    }

    /// Bytes of the whole backing arena (capacity, not residency).
    pub fn arena_bytes(&self) -> u64 {
        self.cap as u64 * self.block_bytes()
    }

    /// Lifetime allocation and peak-residency meters.
    pub fn stats(&self) -> BlockArenaStats {
        BlockArenaStats {
            alloc_ops: self.alloc_ops,
            alloc_bytes: self.alloc_ops * self.block_bytes(),
            live_bytes_peak: self.live_blocks_peak as u64 * self.block_bytes(),
        }
    }

    /// Blocks currently live (refcount ≥ 1).
    pub fn live_blocks(&self) -> usize {
        self.live_blocks
    }

    /// Claims a scrubbed block with refcount 1, or `None` when the arena
    /// is exhausted (the caller evicts a cached block and retries).
    pub fn alloc(&mut self) -> Option<usize> {
        let b = self.free.pop()?;
        self.occupied.set(b);
        self.refcount[b] = 1;
        let n = self.layers * self.block_positions * self.width;
        self.k[b * n..(b + 1) * n].fill(0.0);
        self.v[b * n..(b + 1) * n].fill(0.0);
        self.alloc_ops += 1;
        self.live_blocks += 1;
        self.live_blocks_peak = self.live_blocks_peak.max(self.live_blocks);
        Some(b)
    }

    /// Adds a reference to an allocated block (prefix sharing).
    ///
    /// # Panics
    /// Panics if `b` is not allocated.
    pub fn retain(&mut self, b: usize) {
        assert!(b < self.cap && self.occupied.get(b), "retain of unallocated block {b}");
        if self.refcount[b] == 0 {
            self.live_blocks += 1;
            self.live_blocks_peak = self.live_blocks_peak.max(self.live_blocks);
        }
        self.refcount[b] += 1;
    }

    /// Drops one reference from `b`, returning the remaining count. A
    /// block at refcount 0 stays *allocated* (the caller may keep it as
    /// a reusable cached prefix) until [`Self::reclaim`] frees it.
    ///
    /// # Panics
    /// Panics if `b` is not allocated or its refcount is already 0.
    pub fn release(&mut self, b: usize) -> u32 {
        assert!(b < self.cap && self.occupied.get(b), "release of unallocated block {b}");
        assert!(self.refcount[b] > 0, "refcount underflow on block {b}");
        self.refcount[b] -= 1;
        if self.refcount[b] == 0 {
            self.live_blocks -= 1;
        }
        self.refcount[b]
    }

    /// Frees a refcount-0 block back to the free list (cache eviction).
    ///
    /// # Panics
    /// Panics if `b` is not allocated (double free, O(1) bitset check)
    /// or still referenced.
    pub fn reclaim(&mut self, b: usize) {
        assert!(b < self.cap, "block {b} out of range");
        assert!(self.occupied.get(b), "double free of block {b}");
        assert_eq!(self.refcount[b], 0, "reclaim of live block {b}");
        self.occupied.clear(b);
        self.free.push(b);
    }

    /// Current refcount of an allocated block.
    pub fn refcount(&self, b: usize) -> u32 {
        self.refcount[b]
    }

    #[inline]
    fn base(&self, b: usize, layer: usize, pos_in_block: usize) -> usize {
        debug_assert!(b < self.cap && layer < self.layers && pos_in_block < self.block_positions);
        ((b * self.layers + layer) * self.block_positions + pos_in_block) * self.width
    }

    /// The K row at (`block`, `layer`, `pos_in_block`).
    pub fn k_row(&self, b: usize, layer: usize, pos_in_block: usize) -> &[f32] {
        let at = self.base(b, layer, pos_in_block);
        &self.k[at..at + self.width]
    }

    /// The V row at (`block`, `layer`, `pos_in_block`).
    pub fn v_row(&self, b: usize, layer: usize, pos_in_block: usize) -> &[f32] {
        let at = self.base(b, layer, pos_in_block);
        &self.v[at..at + self.width]
    }

    /// Writes one position's K and V rows into a block.
    ///
    /// # Panics
    /// Panics (debug) on out-of-range indices or wrong row widths.
    pub fn write_row(&mut self, b: usize, layer: usize, pos_in_block: usize, k: &[f32], v: &[f32]) {
        debug_assert_eq!(k.len(), self.width);
        debug_assert_eq!(v.len(), self.width);
        let at = self.base(b, layer, pos_in_block);
        self.k[at..at + self.width].copy_from_slice(k);
        self.v[at..at + self.width].copy_from_slice(v);
    }

    /// Copies the first `positions` rows of every layer from block `src`
    /// into block `dst` — the copy-on-write primitive: a request that
    /// shares a prefix up to mid-block copies the shared rows into its
    /// private block and diverges from there.
    ///
    /// # Panics
    /// Panics if `positions` exceeds the block size or `src == dst`.
    pub fn copy_rows(&mut self, dst: usize, src: usize, positions: usize) {
        assert!(positions <= self.block_positions, "copy beyond the block");
        assert_ne!(src, dst, "self-copy");
        for layer in 0..self.layers {
            for p in 0..positions {
                let s = self.base(src, layer, p);
                let d = self.base(dst, layer, p);
                let w = self.width;
                let (k_src, k_dst, v_src, v_dst);
                if s < d {
                    let (a, b2) = self.k.split_at_mut(d);
                    k_src = &a[s..s + w];
                    k_dst = &mut b2[..w];
                    let (a, b2) = self.v.split_at_mut(d);
                    v_src = &a[s..s + w];
                    v_dst = &mut b2[..w];
                } else {
                    let (a, b2) = self.k.split_at_mut(s);
                    k_dst = &mut a[d..d + w];
                    k_src = &b2[..w];
                    let (a, b2) = self.v.split_at_mut(s);
                    v_dst = &mut a[d..d + w];
                    v_src = &b2[..w];
                }
                k_dst.copy_from_slice(k_src);
                v_dst.copy_from_slice(v_src);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_recycles_slots() {
        let mut slab = KvSlab::new(2, 3, 4, 8);
        assert_eq!(slab.capacity(), 3);
        let a = slab.alloc().unwrap();
        let b = slab.alloc().unwrap();
        let c = slab.alloc().unwrap();
        assert_eq!(slab.in_use(), 3);
        assert!(slab.alloc().is_none(), "slab exhausted");
        slab.release(b);
        assert_eq!(slab.in_use(), 2);
        // LIFO reuse: the freed slot comes straight back.
        assert_eq!(slab.alloc(), Some(b));
        let _ = (a, c);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut slab = KvSlab::new(1, 2, 2, 2);
        let s = slab.alloc().unwrap();
        slab.release(s);
        slab.release(s);
    }

    #[test]
    fn rows_land_in_the_right_slot_and_layer() {
        let mut slab = KvSlab::new(2, 2, 3, 2);
        let s0 = slab.alloc().unwrap();
        let s1 = slab.alloc().unwrap();
        slab.write_row(0, s0, 0, &[1.0, 2.0], &[3.0, 4.0]);
        slab.write_row(1, s1, 2, &[5.0, 6.0], &[7.0, 8.0]);
        assert_eq!(&slab.k_cache(0, s0)[..2], &[1.0, 2.0]);
        assert_eq!(&slab.v_cache(0, s0)[..2], &[3.0, 4.0]);
        assert_eq!(&slab.k_cache(1, s1)[4..6], &[5.0, 6.0]);
        // Other cells untouched.
        assert!(slab.k_cache(1, s0).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn released_slots_are_scrubbed_before_reuse() {
        // Regression for the stale-row hazard: rows used to survive a
        // release, visible to the next tenant that read before writing.
        let mut slab = KvSlab::new(2, 2, 3, 2);
        let s = slab.alloc().unwrap();
        slab.write_row(0, s, 1, &[9.0, 9.0], &[8.0, 8.0]);
        slab.write_row(1, s, 2, &[7.0, 7.0], &[6.0, 6.0]);
        slab.release(s);
        let s2 = slab.alloc().unwrap();
        assert_eq!(s2, s, "LIFO returns the same slot");
        assert!(slab.k_cache(0, s2).iter().all(|&x| x == 0.0), "K scrubbed");
        assert!(slab.v_cache(1, s2).iter().all(|&x| x == 0.0), "V scrubbed");
    }

    #[test]
    fn kv_arena_rows_match_the_cache_views() {
        let mut slab = KvSlab::new(2, 2, 4, 3);
        let s = slab.alloc().unwrap();
        KvArena::write_row(&mut slab, 1, s, 2, &[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(KvArena::k_row(&slab, 1, s, 2), &[1.0, 2.0, 3.0]);
        assert_eq!(KvArena::v_row(&slab, 1, s, 2), &[4.0, 5.0, 6.0]);
        assert_eq!(&slab.k_cache(1, s)[6..9], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn contig_adapter_is_position_indexed() {
        let mut k = vec![0.0; 8];
        let mut v = vec![0.0; 8];
        let mut kv = ContigKv::new(&mut k, &mut v, 2);
        kv.write_row(0, 0, 3, &[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(kv.k_row(0, 0, 3), &[1.0, 2.0]);
        assert_eq!(kv.v_row(0, 0, 3), &[3.0, 4.0]);
        let _ = kv;
        assert_eq!(&k[6..8], &[1.0, 2.0]);
    }

    #[test]
    fn block_arena_alloc_scrubs_and_meters() {
        let mut arena = BlockArena::new(2, 3, 4, 2);
        assert_eq!(arena.block_bytes(), 2 * 4 * (2 * 4 * 2) as u64);
        let a = arena.alloc().unwrap();
        arena.write_row(a, 1, 3, &[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(arena.k_row(a, 1, 3), &[5.0, 5.0]);
        assert_eq!(arena.release(a), 0);
        arena.reclaim(a);
        let b = arena.alloc().unwrap();
        assert_eq!(b, a, "LIFO reuse");
        assert_eq!(arena.k_row(b, 1, 3), &[0.0, 0.0], "scrub on alloc");
        let stats = arena.stats();
        assert_eq!(stats.alloc_ops, 2);
        assert_eq!(stats.alloc_bytes, 2 * arena.block_bytes());
        assert_eq!(stats.live_bytes_peak, arena.block_bytes());
    }

    #[test]
    fn block_refcounts_track_sharing() {
        let mut arena = BlockArena::new(1, 2, 2, 2);
        let a = arena.alloc().unwrap();
        arena.retain(a);
        assert_eq!(arena.refcount(a), 2);
        assert_eq!(arena.release(a), 1);
        assert_eq!(arena.live_blocks(), 1);
        assert_eq!(arena.release(a), 0);
        assert_eq!(arena.live_blocks(), 0);
        // Refcount-0 blocks stay allocated until reclaimed.
        arena.retain(a);
        assert_eq!(arena.refcount(a), 1);
        assert_eq!(arena.live_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn block_double_free_detected() {
        let mut arena = BlockArena::new(1, 2, 2, 2);
        let a = arena.alloc().unwrap();
        arena.release(a);
        arena.reclaim(a);
        arena.reclaim(a);
    }

    #[test]
    #[should_panic(expected = "reclaim of live block")]
    fn reclaim_of_live_block_detected() {
        let mut arena = BlockArena::new(1, 2, 2, 2);
        let a = arena.alloc().unwrap();
        arena.reclaim(a);
    }

    #[test]
    fn copy_rows_moves_the_shared_prefix_both_directions() {
        let mut arena = BlockArena::new(2, 2, 3, 2);
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        for l in 0..2 {
            for p in 0..3 {
                let x = (l * 10 + p) as f32;
                arena.write_row(a, l, p, &[x, x], &[-x, -x]);
            }
        }
        arena.copy_rows(b, a, 2);
        for l in 0..2 {
            for p in 0..2 {
                let x = (l * 10 + p) as f32;
                assert_eq!(arena.k_row(b, l, p), &[x, x]);
                assert_eq!(arena.v_row(b, l, p), &[-x, -x]);
            }
            // Beyond the copied prefix: untouched (zero from scrub).
            assert_eq!(arena.k_row(b, l, 2), &[0.0, 0.0]);
        }
        // And dst < src works the same way.
        arena.write_row(b, 0, 2, &[42.0, 42.0], &[42.0, 42.0]);
        arena.copy_rows(a, b, 3);
        assert_eq!(arena.k_row(a, 0, 2), &[42.0, 42.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary alloc/release interleavings against a reference
        /// model: the slab hands out each slot at most once, counts
        /// match, and a released slot always comes back scrubbed.
        #[test]
        fn slab_alloc_release_interleavings(ops in prop::collection::vec(0u8..4, 1..64)) {
            let (layers, slots, seq, width) = (2usize, 4usize, 3usize, 2usize);
            let mut slab = KvSlab::new(layers, slots, seq, width);
            let mut held: Vec<usize> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                if *op < 3 {
                    // Weighted toward alloc so the slab saturates often.
                    match slab.alloc() {
                        Some(s) => {
                            prop_assert!(!held.contains(&s), "slot {s} double-allocated");
                            prop_assert!(s < slots);
                            // A fresh slot is always scrubbed.
                            for l in 0..layers {
                                prop_assert!(slab.k_cache(l, s).iter().all(|&x| x == 0.0));
                                prop_assert!(slab.v_cache(l, s).iter().all(|&x| x == 0.0));
                            }
                            // Dirty every row so scrubbing is observable.
                            let fill = vec![1.0 + i as f32; width];
                            for l in 0..layers {
                                for p in 0..seq {
                                    slab.write_row(l, s, p, &fill, &fill);
                                }
                            }
                            held.push(s);
                        }
                        None => prop_assert_eq!(held.len(), slots, "alloc failed below capacity"),
                    }
                } else if let Some(pos) = held.pop() {
                    slab.release(pos);
                }
                prop_assert_eq!(slab.in_use(), held.len());
            }
        }

        /// Block arena under arbitrary alloc/retain/release/reclaim
        /// interleavings: refcounts, occupancy, and the live-block meter
        /// agree with a reference model, and allocation never yields a
        /// block that is still live.
        #[test]
        fn block_arena_refcount_interleavings(ops in prop::collection::vec(0u8..8, 1..96)) {
            let cap = 4usize;
            let mut arena = BlockArena::new(1, cap, 2, 2);
            // Reference refcounts, None = unallocated.
            let mut model: Vec<Option<u32>> = vec![None; cap];
            for op in ops {
                match op {
                    0..=2 => {
                        if let Some(b) = arena.alloc() {
                            prop_assert!(model[b].is_none(), "allocated an occupied block");
                            model[b] = Some(1);
                            arena.write_row(b, 0, 0, &[9.0, 9.0], &[9.0, 9.0]);
                        } else {
                            prop_assert!(model.iter().all(|m| m.is_some()));
                        }
                    }
                    3..=4 => {
                        if let Some(b) = (0..cap).find(|&b| model[b].is_some_and(|r| r > 0)) {
                            arena.retain(b);
                            model[b] = model[b].map(|r| r + 1);
                        }
                    }
                    5..=6 => {
                        if let Some(b) = (0..cap).find(|&b| model[b].is_some_and(|r| r > 0)) {
                            let left = arena.release(b);
                            model[b] = model[b].map(|r| r - 1);
                            prop_assert_eq!(left, model[b].unwrap());
                        }
                    }
                    _ => {
                        if let Some(b) = (0..cap).find(|&b| model[b] == Some(0)) {
                            arena.reclaim(b);
                            model[b] = None;
                        }
                    }
                }
                let live = model.iter().filter(|m| m.is_some_and(|r| r > 0)).count();
                prop_assert_eq!(arena.live_blocks(), live);
                for (b, m) in model.iter().enumerate() {
                    if let Some(r) = *m {
                        prop_assert_eq!(arena.refcount(b), r);
                    }
                }
            }
        }
    }
}
