//! Flat parameter layout.
//!
//! All parameters live in one contiguous buffer ("flattening into a single
//! buffer", §3.2/§6.2 — the layout DeepSpeed uses and the layout ZeRO's
//! partitioner slices). The layout maps named fields to ranges, grouped
//! into *units*: the embedding, each transformer block, and the output
//! head. Units are the granularity at which ZeRO stage 3 materializes
//! parameters and stage 2 buckets gradients.

use crate::config::ModelConfig;

/// One named parameter tensor inside the flat buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Human-readable name, e.g. `block3.w_qkv`.
    pub name: String,
    /// Shape (row-major).
    pub shape: Vec<usize>,
    /// Range within the flat parameter buffer.
    pub range: std::ops::Range<usize>,
}

impl Field {
    /// Element count.
    pub fn numel(&self) -> usize {
        self.range.len()
    }

    /// True if this field is *replicated* (identical on every rank) under
    /// Megatron-style model parallelism, rather than sharded: layernorm
    /// parameters, row-parallel biases, embeddings, and the LM head.
    /// Replicated fields carry identical gradients on every MP rank, which
    /// matters when composing a global gradient norm.
    pub fn replicated_under_mp(&self) -> bool {
        let n = self.name.as_str();
        n.starts_with("embed.")
            || n.starts_with("head.")
            || n.contains(".ln")
            || n.ends_with(".b_o")
            || n.ends_with(".b_fc2")
    }
}

/// A unit: a contiguous run of fields that is fetched/computed/freed
/// together (stage-3 granularity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unit {
    /// `embed`, `blockN`, or `head`.
    pub name: String,
    /// Range within the flat parameter buffer covering every field.
    pub range: std::ops::Range<usize>,
    /// Indices into [`Layout::fields`].
    pub field_indices: Vec<usize>,
}

/// The full flat layout for a model configuration.
#[derive(Clone, Debug)]
pub struct Layout {
    fields: Vec<Field>,
    units: Vec<Unit>,
    total: usize,
}

/// Field offsets within one block's slice, in declaration order.
#[derive(Clone, Debug)]
pub struct BlockOffsets {
    pub ln1_g: std::ops::Range<usize>,
    pub ln1_b: std::ops::Range<usize>,
    pub w_qkv: std::ops::Range<usize>,
    pub b_qkv: std::ops::Range<usize>,
    pub w_o: std::ops::Range<usize>,
    pub b_o: std::ops::Range<usize>,
    pub ln2_g: std::ops::Range<usize>,
    pub ln2_b: std::ops::Range<usize>,
    pub w_fc1: std::ops::Range<usize>,
    pub b_fc1: std::ops::Range<usize>,
    pub w_fc2: std::ops::Range<usize>,
    pub b_fc2: std::ops::Range<usize>,
}

/// Field offsets within the embedding unit's slice.
#[derive(Clone, Debug)]
pub struct EmbedOffsets {
    pub tok: std::ops::Range<usize>,
    pub pos: std::ops::Range<usize>,
}

/// Field offsets within the head unit's slice.
#[derive(Clone, Debug)]
pub struct HeadOffsets {
    pub lnf_g: std::ops::Range<usize>,
    pub lnf_b: std::ops::Range<usize>,
    pub w_head: std::ops::Range<usize>,
}

struct Builder {
    fields: Vec<Field>,
    units: Vec<Unit>,
    cursor: usize,
}

impl Builder {
    fn new() -> Builder {
        Builder {
            fields: Vec::new(),
            units: Vec::new(),
            cursor: 0,
        }
    }

    fn begin_unit(&mut self) -> (usize, usize) {
        (self.cursor, self.fields.len())
    }

    fn end_unit(&mut self, name: &str, start: (usize, usize)) {
        self.units.push(Unit {
            name: name.to_string(),
            range: start.0..self.cursor,
            field_indices: (start.1..self.fields.len()).collect(),
        });
    }

    fn field(&mut self, name: String, shape: &[usize]) -> std::ops::Range<usize> {
        let numel: usize = shape.iter().product();
        let range = self.cursor..self.cursor + numel;
        self.fields.push(Field {
            name,
            shape: shape.to_vec(),
            range: range.clone(),
        });
        self.cursor += numel;
        range
    }
}

impl Layout {
    /// Builds the single-device layout for `cfg`.
    pub fn build(cfg: &ModelConfig) -> Layout {
        Layout::build_mp(cfg, 1)
    }

    /// Builds the layout of *one model-parallel rank's shard* when the
    /// model is split `mp`-ways Megatron-style: attention heads and MLP
    /// intermediate dim divided by `mp`; embeddings, layernorms and the
    /// LM head replicated (a simplification of Megatron's vocab-parallel
    /// embedding that keeps the same per-block collective structure).
    ///
    /// # Panics
    /// Panics if `mp` does not divide `heads` (and hence `hidden`) or `4·h`.
    pub fn build_mp(cfg: &ModelConfig, mp: usize) -> Layout {
        cfg.validate();
        assert!(mp > 0, "mp degree must be positive");
        assert_eq!(cfg.heads % mp, 0, "heads {} not divisible by mp {}", cfg.heads, mp);
        let h = cfg.hidden;
        let shard_h = h / mp; // sharded attention width
        let shard_ffn = 4 * h / mp; // sharded MLP intermediate width
        let mut b = Builder::new();

        let s = b.begin_unit();
        b.field("embed.tok".into(), &[cfg.vocab, h]);
        b.field("embed.pos".into(), &[cfg.seq, h]);
        b.end_unit("embed", s);

        for l in 0..cfg.layers {
            let s = b.begin_unit();
            b.field(format!("block{l}.ln1_g"), &[h]);
            b.field(format!("block{l}.ln1_b"), &[h]);
            b.field(format!("block{l}.w_qkv"), &[3 * shard_h, h]);
            b.field(format!("block{l}.b_qkv"), &[3 * shard_h]);
            b.field(format!("block{l}.w_o"), &[h, shard_h]);
            b.field(format!("block{l}.b_o"), &[h]);
            b.field(format!("block{l}.ln2_g"), &[h]);
            b.field(format!("block{l}.ln2_b"), &[h]);
            b.field(format!("block{l}.w_fc1"), &[shard_ffn, h]);
            b.field(format!("block{l}.b_fc1"), &[shard_ffn]);
            b.field(format!("block{l}.w_fc2"), &[h, shard_ffn]);
            b.field(format!("block{l}.b_fc2"), &[h]);
            b.end_unit(&format!("block{l}"), s);
        }

        let s = b.begin_unit();
        b.field("head.lnf_g".into(), &[h]);
        b.field("head.lnf_b".into(), &[h]);
        b.field("head.w_head".into(), &[cfg.vocab, h]);
        b.end_unit("head", s);

        Layout {
            fields: b.fields,
            units: b.units,
            total: b.cursor,
        }
    }

    /// Total elements in the flat buffer.
    #[inline]
    pub fn total_params(&self) -> usize {
        self.total
    }

    /// All fields in buffer order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// All units in forward order: `embed`, `block0..blockL-1`, `head`.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// Number of units (= layers + 2).
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Looks up a field range by name.
    pub fn field_range(&self, name: &str) -> std::ops::Range<usize> {
        self.fields
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no field named {name}"))
            .range
            .clone()
    }

    /// Offsets of block `l`'s fields *relative to the block unit's slice*.
    pub fn block_offsets(&self, l: usize) -> BlockOffsets {
        let unit = &self.units[1 + l];
        let base = unit.range.start;
        let rel = |name: &str| {
            let r = self.field_range(&format!("block{l}.{name}"));
            r.start - base..r.end - base
        };
        BlockOffsets {
            ln1_g: rel("ln1_g"),
            ln1_b: rel("ln1_b"),
            w_qkv: rel("w_qkv"),
            b_qkv: rel("b_qkv"),
            w_o: rel("w_o"),
            b_o: rel("b_o"),
            ln2_g: rel("ln2_g"),
            ln2_b: rel("ln2_b"),
            w_fc1: rel("w_fc1"),
            b_fc1: rel("b_fc1"),
            w_fc2: rel("w_fc2"),
            b_fc2: rel("b_fc2"),
        }
    }

    /// Offsets of the embedding fields relative to the embed unit's slice.
    pub fn embed_offsets(&self) -> EmbedOffsets {
        let base = self.units[0].range.start;
        let rel = |name: &str| {
            let r = self.field_range(name);
            r.start - base..r.end - base
        };
        EmbedOffsets {
            tok: rel("embed.tok"),
            pos: rel("embed.pos"),
        }
    }

    /// Offsets of the head fields relative to the head unit's slice.
    pub fn head_offsets(&self) -> HeadOffsets {
        let base = self.units.last().unwrap().range.start;
        let rel = |name: &str| {
            let r = self.field_range(name);
            r.start - base..r.end - base
        };
        HeadOffsets {
            lnf_g: rel("head.lnf_g"),
            lnf_b: rel("head.lnf_b"),
            w_head: rel("head.w_head"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_config_arithmetic() {
        let cfg = ModelConfig::tiny();
        let layout = Layout::build(&cfg);
        assert_eq!(layout.total_params(), cfg.total_params());
        assert_eq!(layout.unit_count(), cfg.layers + 2);
        assert_eq!(layout.units()[0].range.len(), cfg.embed_params());
        assert_eq!(layout.units()[1].range.len(), cfg.block_params());
        assert_eq!(layout.units().last().unwrap().range.len(), cfg.head_params());
    }

    #[test]
    fn units_are_contiguous_and_cover() {
        let layout = Layout::build(&ModelConfig::tiny());
        let mut cursor = 0;
        for u in layout.units() {
            assert_eq!(u.range.start, cursor, "unit {} not contiguous", u.name);
            cursor = u.range.end;
        }
        assert_eq!(cursor, layout.total_params());
    }

    #[test]
    fn fields_are_contiguous_and_cover() {
        let layout = Layout::build(&ModelConfig::tiny());
        let mut cursor = 0;
        for f in layout.fields() {
            assert_eq!(f.range.start, cursor, "field {} not contiguous", f.name);
            assert_eq!(f.numel(), f.shape.iter().product::<usize>());
            cursor = f.range.end;
        }
        assert_eq!(cursor, layout.total_params());
    }

    #[test]
    fn mp_sharding_divides_block_weights() {
        let cfg = ModelConfig {
            vocab: 32,
            seq: 8,
            hidden: 16,
            layers: 1,
            heads: 4,
            };
        let full = Layout::build_mp(&cfg, 1);
        let half = Layout::build_mp(&cfg, 2);
        // Sharded fields shrink by mp; replicated ones (LN, embeddings,
        // head) stay: block shard = (12h² + 13h - replicated)/2 + replicated.
        let h = cfg.hidden;
        let full_block = full.units()[1].range.len();
        let half_block = half.units()[1].range.len();
        let replicated = 4 * h + 2 * h; // ln1, ln2 (4h total) + b_o + b_fc2
        assert_eq!(full_block - replicated, 2 * (half_block - replicated));
        assert_eq!(full.units()[0].range.len(), half.units()[0].range.len());
    }

    #[test]
    fn relative_offsets_are_consistent() {
        let cfg = ModelConfig::tiny();
        let layout = Layout::build(&cfg);
        let off = layout.block_offsets(1);
        let unit = &layout.units()[2];
        let abs = layout.field_range("block1.w_qkv");
        assert_eq!(off.w_qkv.start + unit.range.start, abs.start);
        let h = cfg.hidden;
        assert_eq!(off.w_qkv.len(), 3 * h * h);
        assert_eq!(off.w_fc1.len(), 4 * h * h);
    }
}
