//! # zero-model
//!
//! A GPT-2-like decoder-only transformer with hand-written exact backward
//! passes, exposed as per-unit functions (embedding / blocks / head) so
//! the ZeRO engines in `zero-core` can schedule parameter materialization
//! (stage 3) and gradient reduction (stage 2) around them — the "dynamic
//! communication schedule" of §4.1.
//!
//! Also provides Megatron-style model-parallel sharding: the same block
//! kernels run on head/ffn shards with all-reduce hooks at exactly the
//! points §8 of the paper counts (two per block per pass).
//!
//! ```
//! use zero_model::{init_full_params, Gpt, ModelConfig};
//!
//! let cfg = ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 };
//! let gpt = Gpt::new(cfg);
//! // Flat parameter space: embed, block0, block1, head — in order.
//! assert_eq!(gpt.layout().unit_count(), cfg.layers + 2);
//! assert_eq!(gpt.num_params(), cfg.total_params());
//! let params = init_full_params(&cfg, 42);
//! assert_eq!(params.len(), gpt.num_params());
//! ```

pub mod block;
pub mod config;
pub mod data;
pub mod generate;
pub mod gpt;
pub mod kv;
pub mod layout;

pub use block::{BlockDims, BlockSaved, Dropout};
pub use config::ModelConfig;
pub use data::{ByteCorpus, SyntheticCorpus};
pub use generate::{
    argmax, block_step, block_step_kv, embed_step, head_step, GenerateError, Generator,
    IncrementalDecoder, Sampling,
};
pub use kv::{BlockArena, BlockArenaStats, ContigKv, KvArena, KvSlab};
pub use gpt::{init_full_params, shard_params, Gpt, HeadSaved};
pub use layout::{Field, Layout, Unit};
