//! The GPT-2-like model, exposed as *per-unit* forward/backward functions.
//!
//! ZeRO's dynamic communication schedule (§4.1, §7.2.2) operates at the
//! granularity of layers: stage 3 all-gathers a layer's parameters right
//! before they are used and discards them right after; stage 2 reduces a
//! layer's gradients as soon as backward produces them. To make that
//! schedule possible, the model here is not a monolithic `forward()` but a
//! set of unit functions (embedding, each block, head) that the training
//! engines in `zero-core` orchestrate.

use zero_tensor::init::normal_init;
use zero_tensor::ops::embedding::{embedding_backward, embedding_forward};
use zero_tensor::ops::loss::{cross_entropy_fused, cross_entropy_loss};
use zero_tensor::ops::matmul::{sgemm, sgemm_nt, sgemm_tn};
use zero_tensor::ops::norm::{layernorm_backward, layernorm_forward};

use crate::block::{block_backward_dropout, block_forward_dropout, BlockDims, BlockSaved, Dropout};
use crate::config::ModelConfig;
use crate::layout::Layout;

const LN_EPS: f32 = 1e-5;

/// A GPT-2-like decoder-only transformer, possibly one model-parallel shard
/// of it (`mp_degree > 1`).
pub struct Gpt {
    cfg: ModelConfig,
    layout: Layout,
    mp_degree: usize,
}

/// Saved state of the head unit's forward (for backward).
pub struct HeadSaved {
    lnf_out: Vec<f32>,
    lnf_mean: Vec<f32>,
    lnf_rstd: Vec<f32>,
    x: Vec<f32>,
}

impl HeadSaved {
    /// Saved activation elements.
    pub fn elems(&self) -> usize {
        self.lnf_out.len() + self.lnf_mean.len() + self.lnf_rstd.len() + self.x.len()
    }
}

impl Gpt {
    /// Single-device model.
    pub fn new(cfg: ModelConfig) -> Gpt {
        Gpt::new_mp(cfg, 1)
    }

    /// One shard of an `mp`-way model-parallel model. The shard's flat
    /// parameter layout comes from [`Layout::build_mp`]; all shards have
    /// identical layouts but different weights (see [`shard_params`]).
    pub fn new_mp(cfg: ModelConfig, mp: usize) -> Gpt {
        cfg.validate();
        let layout = Layout::build_mp(&cfg, mp);
        Gpt {
            cfg,
            layout,
            mp_degree: mp,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// This shard's flat parameter layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Model-parallel degree this instance was built for.
    pub fn mp_degree(&self) -> usize {
        self.mp_degree
    }

    /// Total flat parameters of this shard.
    pub fn num_params(&self) -> usize {
        self.layout.total_params()
    }

    /// Block dims as seen by this shard for a given micro-batch size.
    pub fn dims(&self, batch: usize) -> BlockDims {
        BlockDims {
            hidden: self.cfg.hidden,
            local_heads: self.cfg.heads / self.mp_degree,
            head_dim: self.cfg.head_dim(),
            ffn: 4 * self.cfg.hidden / self.mp_degree,
            batch,
            seq: self.cfg.seq,
        }
    }

    // ----- unit functions -----

    /// Embedding unit forward: `x[t] = tok[ids[t]] + pos[position(t)]`.
    ///
    /// `ids` has `batch · seq` token ids in row-major `[batch, seq]` order.
    pub fn embed(&self, params: &[f32], ids: &[u32], batch: usize) -> Vec<f32> {
        let (s, h, v) = (self.cfg.seq, self.cfg.hidden, self.cfg.vocab);
        assert_eq!(ids.len(), batch * s, "embed: ids length");
        let off = self.layout.embed_offsets();
        assert_eq!(params.len(), self.layout.units()[0].range.len(), "embed: params length");
        let mut x = vec![0.0; batch * s * h];
        embedding_forward(&params[off.tok.clone()], ids, &mut x, v, h);
        let pos = &params[off.pos.clone()];
        for t in 0..batch * s {
            let p = t % s;
            let row = &mut x[t * h..(t + 1) * h];
            for (a, &b) in row.iter_mut().zip(&pos[p * h..(p + 1) * h]) {
                *a += b;
            }
        }
        x
    }

    /// Embedding unit backward: scatter-adds `dx` into the table gradients.
    pub fn embed_backward(&self, ids: &[u32], dx: &[f32], grads: &mut [f32], batch: usize) {
        let (s, h, v) = (self.cfg.seq, self.cfg.hidden, self.cfg.vocab);
        assert_eq!(ids.len(), batch * s, "embed_backward: ids length");
        assert_eq!(dx.len(), batch * s * h, "embed_backward: dx length");
        let off = self.layout.embed_offsets();
        embedding_backward(&mut grads[off.tok.clone()], ids, dx, v, h);
        let dpos = &mut grads[off.pos.clone()];
        for t in 0..batch * s {
            let p = t % s;
            let drow = &mut dpos[p * h..(p + 1) * h];
            for (d, &g) in drow.iter_mut().zip(&dx[t * h..(t + 1) * h]) {
                *d += g;
            }
        }
    }

    /// Block `l` forward. `reduce` is the MP all-reduce hook (identity for
    /// a single device).
    pub fn block_fwd(
        &self,
        l: usize,
        params: &[f32],
        x: &[f32],
        batch: usize,
        reduce: &mut dyn FnMut(&mut [f32]),
    ) -> (Vec<f32>, BlockSaved) {
        self.block_fwd_dropout(l, params, x, batch, reduce, Dropout::OFF)
    }

    /// [`Self::block_fwd`] with residual-branch dropout.
    #[allow(clippy::too_many_arguments)]
    pub fn block_fwd_dropout(
        &self,
        l: usize,
        params: &[f32],
        x: &[f32],
        batch: usize,
        reduce: &mut dyn FnMut(&mut [f32]),
        drop: Dropout,
    ) -> (Vec<f32>, BlockSaved) {
        let dims = self.dims(batch);
        let off = self.layout.block_offsets(l);
        let mut y = vec![0.0; x.len()];
        let saved = block_forward_dropout(&dims, params, &off, x, &mut y, reduce, drop);
        (y, saved)
    }

    /// Block `l` backward; returns `dx`. Gradients accumulate into `grads`
    /// (this unit's slice).
    #[allow(clippy::too_many_arguments)]
    pub fn block_bwd(
        &self,
        l: usize,
        params: &[f32],
        saved: &BlockSaved,
        dy: &[f32],
        grads: &mut [f32],
        batch: usize,
        reduce_back: &mut dyn FnMut(&mut [f32]),
    ) -> Vec<f32> {
        self.block_bwd_dropout(l, params, saved, dy, grads, batch, reduce_back, Dropout::OFF)
    }

    /// [`Self::block_bwd`] with dropout; `drop` must match the forward's.
    #[allow(clippy::too_many_arguments)]
    pub fn block_bwd_dropout(
        &self,
        l: usize,
        params: &[f32],
        saved: &BlockSaved,
        dy: &[f32],
        grads: &mut [f32],
        batch: usize,
        reduce_back: &mut dyn FnMut(&mut [f32]),
        drop: Dropout,
    ) -> Vec<f32> {
        let dims = self.dims(batch);
        let off = self.layout.block_offsets(l);
        let mut dx = vec![0.0; dy.len()];
        block_backward_dropout(&dims, params, &off, saved, dy, &mut dx, grads, reduce_back, drop);
        dx
    }

    /// Head unit forward: final layernorm → LM head GEMM → mean
    /// cross-entropy against `targets`. Returns `(loss, saved)`.
    pub fn head_fwd(
        &self,
        params: &[f32],
        x: &[f32],
        targets: &[u32],
        batch: usize,
    ) -> (f32, HeadSaved) {
        let (loss, saved, _logits) = self.head_forward_impl(params, x, targets, batch);
        (loss, saved)
    }

    /// Head unit forward+backward fused (the loss gradient is born here).
    /// Returns `(loss, dx)`; gradients accumulate into `grads`.
    pub fn head_fwd_bwd(
        &self,
        params: &[f32],
        x: &[f32],
        targets: &[u32],
        grads: &mut [f32],
        batch: usize,
    ) -> (f32, Vec<f32>) {
        let (s, h, v) = (self.cfg.seq, self.cfg.hidden, self.cfg.vocab);
        let t = batch * s;
        let off = self.layout.head_offsets();

        let mut lnf_out = vec![0.0; t * h];
        let mut mean = vec![0.0; t];
        let mut rstd = vec![0.0; t];
        layernorm_forward(
            x,
            &params[off.lnf_g.clone()],
            &params[off.lnf_b.clone()],
            &mut lnf_out,
            &mut mean,
            &mut rstd,
            t,
            h,
            LN_EPS,
        );
        let w_head = &params[off.w_head.clone()];
        let mut logits = vec![0.0; t * v];
        sgemm_nt(&lnf_out, w_head, &mut logits, t, h, v);

        // Fused CE: logits buffer becomes dlogits in place.
        let mut dlogits = vec![0.0; t * v];
        let loss = cross_entropy_fused(&logits, targets, &mut dlogits, t, v);

        // dW_head += dlogits^T · lnf_out ; dlnf = dlogits · W_head.
        let mut dw = vec![0.0; v * h];
        sgemm_tn(&dlogits, &lnf_out, &mut dw, v, t, h);
        for (g, d) in grads[off.w_head.clone()].iter_mut().zip(&dw) {
            *g += d;
        }
        let mut dlnf = vec![0.0; t * h];
        sgemm(&dlogits, w_head, &mut dlnf, t, v, h);

        let mut dx = vec![0.0; t * h];
        let mut dg = vec![0.0; h];
        let mut db = vec![0.0; h];
        layernorm_backward(
            x,
            &params[off.lnf_g.clone()],
            &mean,
            &rstd,
            &dlnf,
            &mut dx,
            &mut dg,
            &mut db,
            t,
            h,
        );
        for (g, d) in grads[off.lnf_g.clone()].iter_mut().zip(&dg) {
            *g += d;
        }
        for (g, d) in grads[off.lnf_b.clone()].iter_mut().zip(&db) {
            *g += d;
        }
        (loss, dx)
    }

    /// Evaluation-only loss (no gradients), for validation perplexity.
    pub fn head_loss(&self, params: &[f32], x: &[f32], targets: &[u32], batch: usize) -> f32 {
        let (loss, _, _) = self.head_forward_impl(params, x, targets, batch);
        loss
    }

    /// Head-unit logits `[batch·seq, vocab]` (no loss, no gradients) —
    /// for inference/generation.
    pub fn head_logits(&self, params: &[f32], x: &[f32], batch: usize) -> Vec<f32> {
        let (s, h, v) = (self.cfg.seq, self.cfg.hidden, self.cfg.vocab);
        let t = batch * s;
        assert_eq!(x.len(), t * h, "head_logits: x length");
        let off = self.layout.head_offsets();
        let mut lnf_out = vec![0.0; t * h];
        let mut mean = vec![0.0; t];
        let mut rstd = vec![0.0; t];
        layernorm_forward(
            x,
            &params[off.lnf_g.clone()],
            &params[off.lnf_b.clone()],
            &mut lnf_out,
            &mut mean,
            &mut rstd,
            t,
            h,
            LN_EPS,
        );
        let mut logits = vec![0.0; t * v];
        sgemm_nt(&lnf_out, &params[off.w_head.clone()], &mut logits, t, h, v);
        logits
    }

    fn head_forward_impl(
        &self,
        params: &[f32],
        x: &[f32],
        targets: &[u32],
        batch: usize,
    ) -> (f32, HeadSaved, Vec<f32>) {
        let (s, h, v) = (self.cfg.seq, self.cfg.hidden, self.cfg.vocab);
        let t = batch * s;
        assert_eq!(x.len(), t * h, "head: x length");
        assert_eq!(targets.len(), t, "head: targets length");
        let off = self.layout.head_offsets();
        let mut lnf_out = vec![0.0; t * h];
        let mut mean = vec![0.0; t];
        let mut rstd = vec![0.0; t];
        layernorm_forward(
            x,
            &params[off.lnf_g.clone()],
            &params[off.lnf_b.clone()],
            &mut lnf_out,
            &mut mean,
            &mut rstd,
            t,
            h,
            LN_EPS,
        );
        let mut logits = vec![0.0; t * v];
        sgemm_nt(&lnf_out, &params[off.w_head.clone()], &mut logits, t, h, v);
        let loss = cross_entropy_loss(&logits, targets, t, v);
        (
            loss,
            HeadSaved {
                lnf_out,
                lnf_mean: mean,
                lnf_rstd: rstd,
                x: x.to_vec(),
            },
            logits,
        )
    }
}

/// Initializes the full (mp = 1) flat parameter buffer for `cfg`:
/// weights ~ N(0, 0.02²), biases 0, layernorm gains 1.
pub fn init_full_params(cfg: &ModelConfig, seed: u64) -> Vec<f32> {
    let layout = Layout::build(cfg);
    let mut params = vec![0.0; layout.total_params()];
    for (i, field) in layout.fields().iter().enumerate() {
        let slice = &mut params[field.range.clone()];
        if field.name.ends_with("_g") {
            // Layernorm gains start at identity.
            slice.iter_mut().for_each(|v| *v = 1.0);
        } else if field.name.ends_with("_b") || field.name.contains(".b_") {
            // All biases (layernorm shifts and linear biases) start at zero.
        } else {
            normal_init(slice, 0.02, seed.wrapping_add(i as u64 * 7919));
        }
    }
    params
}

/// Extracts model-parallel rank `rank`'s shard (layout
/// [`Layout::build_mp`]) from the full parameter buffer.
///
/// Sharding follows Megatron: QKV and fc1 by output rows (per head group),
/// attention projection and fc2 by input columns; embeddings, layernorms,
/// biases of row-parallel layers, and the LM head are replicated.
pub fn shard_params(cfg: &ModelConfig, full: &[f32], mp: usize, rank: usize) -> Vec<f32> {
    assert!(rank < mp, "rank {rank} out of range for mp {mp}");
    let full_layout = Layout::build(cfg);
    let shard_layout = Layout::build_mp(cfg, mp);
    assert_eq!(full.len(), full_layout.total_params(), "full buffer length");
    let h = cfg.hidden;
    let sh = h / mp; // shard attention width
    let sf = 4 * h / mp; // shard ffn width
    let mut out = vec![0.0; shard_layout.total_params()];

    // Embedding and head units are replicated.
    let copy_field = |out: &mut [f32], name: &str| {
        let src = full_layout.field_range(name);
        let dst = shard_layout.field_range(name);
        assert_eq!(src.len(), dst.len(), "replicated field {name}");
        out[dst].copy_from_slice(&full[src]);
    };
    copy_field(&mut out, "embed.tok");
    copy_field(&mut out, "embed.pos");
    copy_field(&mut out, "head.lnf_g");
    copy_field(&mut out, "head.lnf_b");
    copy_field(&mut out, "head.w_head");

    for l in 0..cfg.layers {
        for name in ["ln1_g", "ln1_b", "ln2_g", "ln2_b", "b_o", "b_fc2"] {
            copy_field(&mut out, &format!("block{l}.{name}"));
        }
        // w_qkv [3h, h] → rows: q rows rank·sh.., k rows h+rank·sh..,
        // v rows 2h+rank·sh.. → shard [3sh, h].
        {
            let src = full_layout.field_range(&format!("block{l}.w_qkv"));
            let dst = shard_layout.field_range(&format!("block{l}.w_qkv"));
            let src_buf = &full[src];
            let dst_buf = &mut out[dst];
            for which in 0..3 {
                let src_row0 = which * h + rank * sh;
                let dst_row0 = which * sh;
                dst_buf[dst_row0 * h..(dst_row0 + sh) * h]
                    .copy_from_slice(&src_buf[src_row0 * h..(src_row0 + sh) * h]);
            }
        }
        // b_qkv [3h] → shard [3sh] analogously.
        {
            let src = full_layout.field_range(&format!("block{l}.b_qkv"));
            let dst = shard_layout.field_range(&format!("block{l}.b_qkv"));
            let src_buf = &full[src];
            let dst_buf = &mut out[dst];
            for which in 0..3 {
                dst_buf[which * sh..(which + 1) * sh]
                    .copy_from_slice(&src_buf[which * h + rank * sh..which * h + (rank + 1) * sh]);
            }
        }
        // w_o [h, h] → columns rank·sh.. → [h, sh].
        {
            let src = full_layout.field_range(&format!("block{l}.w_o"));
            let dst = shard_layout.field_range(&format!("block{l}.w_o"));
            let src_buf = &full[src];
            let dst_buf = &mut out[dst];
            for r in 0..h {
                dst_buf[r * sh..(r + 1) * sh]
                    .copy_from_slice(&src_buf[r * h + rank * sh..r * h + (rank + 1) * sh]);
            }
        }
        // w_fc1 [4h, h] → rows rank·sf.. → [sf, h]; b_fc1 likewise.
        {
            let src = full_layout.field_range(&format!("block{l}.w_fc1"));
            let dst = shard_layout.field_range(&format!("block{l}.w_fc1"));
            let row0 = rank * sf;
            out[dst].copy_from_slice(&full[src][row0 * h..(row0 + sf) * h]);
            let src = full_layout.field_range(&format!("block{l}.b_fc1"));
            let dst = shard_layout.field_range(&format!("block{l}.b_fc1"));
            out[dst].copy_from_slice(&full[src][row0..row0 + sf]);
        }
        // w_fc2 [h, 4h] → columns rank·sf.. → [h, sf].
        {
            let src = full_layout.field_range(&format!("block{l}.w_fc2"));
            let dst = shard_layout.field_range(&format!("block{l}.w_fc2"));
            let src_buf = &full[src];
            let dst_buf = &mut out[dst];
            for r in 0..h {
                dst_buf[r * sf..(r + 1) * sf]
                    .copy_from_slice(&src_buf[r * 4 * h + rank * sf..r * 4 * h + (rank + 1) * sf]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ModelConfig {
        ModelConfig {
            vocab: 19,
            seq: 6,
            hidden: 8,
            layers: 2,
            heads: 2,
        }
    }

    #[test]
    fn init_sets_ln_gains_to_one_and_biases_to_zero() {
        let cfg = tiny();
        let layout = Layout::build(&cfg);
        let p = init_full_params(&cfg, 1);
        assert!(p[layout.field_range("block0.ln1_g")].iter().all(|&v| v == 1.0));
        assert!(p[layout.field_range("block1.ln2_b")].iter().all(|&v| v == 0.0));
        assert!(p[layout.field_range("block0.b_qkv")].iter().all(|&v| v == 0.0));
        assert!(p[layout.field_range("head.lnf_g")].iter().all(|&v| v == 1.0));
        let w = &p[layout.field_range("block0.w_qkv")];
        assert!(w.iter().any(|&v| v != 0.0), "weights initialized");
        assert!(w.iter().all(|&v| v.abs() < 0.2), "~N(0, 0.02²)");
    }

    #[test]
    fn end_to_end_loss_decreases_with_sgd() {
        // A smoke test that the full model + backward actually learn.
        let cfg = tiny();
        let gpt = Gpt::new(cfg);
        let mut params = init_full_params(&cfg, 42);
        let batch = 2;
        let ids: Vec<u32> = (0..batch * cfg.seq).map(|i| (i % 7) as u32).collect();
        let targets: Vec<u32> = ids.iter().map(|&i| (i + 1) % 7).collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..30 {
            let loss = full_fwd_bwd_sgd(&gpt, &mut params, &ids, &targets, batch, 0.05);
            if step == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(
            last < first * 0.7,
            "loss should drop: first={first} last={last}"
        );
    }

    fn full_fwd_bwd_sgd(
        gpt: &Gpt,
        params: &mut [f32],
        ids: &[u32],
        targets: &[u32],
        batch: usize,
        lr: f32,
    ) -> f32 {
        let layout = gpt.layout().clone();
        let units = layout.units();
        let mut grads = vec![0.0; params.len()];
        let mut ident = |_: &mut [f32]| {};
        let x = gpt.embed(&params[units[0].range.clone()], ids, batch);
        let mut acts = vec![x];
        let mut saved = Vec::new();
        for l in 0..gpt.config().layers {
            let u = &units[1 + l];
            let (y, s) = gpt.block_fwd(l, &params[u.range.clone()], acts.last().unwrap(), batch, &mut ident);
            acts.push(y);
            saved.push(s);
        }
        let hu = units.last().unwrap();
        let (loss, mut dy) = gpt.head_fwd_bwd(
            &params[hu.range.clone()],
            acts.last().unwrap(),
            targets,
            &mut grads[hu.range.clone()],
            batch,
        );
        for l in (0..gpt.config().layers).rev() {
            let u = &units[1 + l];
            dy = gpt.block_bwd(
                l,
                &params[u.range.clone()],
                &saved[l],
                &dy,
                &mut grads[u.range.clone()],
                batch,
                &mut ident,
            );
        }
        gpt.embed_backward(ids, &dy, &mut grads[units[0].range.clone()], batch);
        for (p, g) in params.iter_mut().zip(&grads) {
            *p -= lr * g;
        }
        loss
    }

    #[test]
    fn head_loss_matches_fwd_bwd_loss() {
        let cfg = tiny();
        let gpt = Gpt::new(cfg);
        let params = init_full_params(&cfg, 3);
        let batch = 2;
        let layout = gpt.layout();
        let hu = layout.units().last().unwrap().clone();
        let t = batch * cfg.seq;
        let mut x = vec![0.0; t * cfg.hidden];
        normal_init(&mut x, 0.5, 17);
        let targets: Vec<u32> = (0..t).map(|i| (i % cfg.vocab) as u32).collect();
        let mut grads = vec![0.0; hu.range.len()];
        let (a, _) = gpt.head_fwd_bwd(&params[hu.range.clone()], &x, &targets, &mut grads, batch);
        let b = gpt.head_loss(&params[hu.range.clone()], &x, &targets, batch);
        assert!((a - b).abs() < 1e-6);
        assert!(grads.iter().any(|&g| g != 0.0));
    }

    #[test]
    fn shard_params_partition_block_weights_exactly() {
        let cfg = tiny();
        let full = init_full_params(&cfg, 5);
        let mp = 2;
        let shards: Vec<Vec<f32>> = (0..mp).map(|r| shard_params(&cfg, &full, mp, r)).collect();
        let full_layout = Layout::build(&cfg);
        let shard_layout = Layout::build_mp(&cfg, mp);
        // Reassemble w_fc1 from shards and compare.
        let src = &full[full_layout.field_range("block0.w_fc1")];
        let len = shard_layout.field_range("block0.w_fc1").len();
        let mut rebuilt = Vec::new();
        for s in &shards {
            rebuilt.extend_from_slice(&s[shard_layout.field_range("block0.w_fc1")]);
        }
        assert_eq!(rebuilt.len(), 2 * len);
        assert_eq!(&rebuilt[..], src);
        // Replicated fields identical across shards.
        for r in 1..mp {
            assert_eq!(
                shards[0][shard_layout.field_range("embed.tok")],
                shards[r][shard_layout.field_range("embed.tok")]
            );
            assert_eq!(
                shards[0][shard_layout.field_range("block1.ln1_g")],
                shards[r][shard_layout.field_range("block1.ln1_g")]
            );
        }
    }
}
