//! Model configuration and parameter arithmetic.

/// Configuration of a GPT-2-like decoder-only transformer, matching the
/// shape family the paper evaluates (Tables 4–10 vary `layers` and
/// `hidden` to sweep 1.16 B – 170 B parameters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum (and, in this engine, fixed) sequence length.
    pub seq: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Number of attention heads; must divide `hidden`.
    pub heads: usize,
}

impl ModelConfig {
    /// A small config suitable for unit tests (sub-second steps).
    pub fn tiny() -> ModelConfig {
        ModelConfig {
            vocab: 64,
            seq: 16,
            hidden: 32,
            layers: 2,
            heads: 4,
        }
    }

    /// Validates divisibility constraints.
    ///
    /// # Panics
    /// Panics if `heads` does not divide `hidden`.
    pub fn validate(&self) {
        assert!(self.vocab > 0 && self.seq > 0 && self.hidden > 0 && self.heads > 0);
        assert_eq!(
            self.hidden % self.heads,
            0,
            "hidden {} must be divisible by heads {}",
            self.hidden,
            self.heads
        );
    }

    /// Per-head dimension.
    #[inline]
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Parameters in one transformer block: 12·h² + 13·h
    /// (QKV h×3h + proj h×h + MLP h×4h + 4h×h, plus biases and two
    /// layernorms).
    pub fn block_params(&self) -> usize {
        let h = self.hidden;
        12 * h * h + 13 * h
    }

    /// Parameters in the embedding unit (token + position tables).
    pub fn embed_params(&self) -> usize {
        self.vocab * self.hidden + self.seq * self.hidden
    }

    /// Parameters in the output unit (final layernorm + untied LM head).
    pub fn head_params(&self) -> usize {
        2 * self.hidden + self.vocab * self.hidden
    }

    /// Total parameter count Ψ.
    pub fn total_params(&self) -> usize {
        self.embed_params() + self.layers * self.block_params() + self.head_params()
    }

    /// The paper's transformer-parameter estimate Ψ ≈ 12·L·h², used by its
    /// configuration tables (ignores embeddings and biases).
    pub fn approx_params(&self) -> usize {
        12 * self.layers * self.hidden * self.hidden
    }

    /// Activation elements checkpointed per block per sample when storing
    /// one activation (the block input) per transformer layer: seq × hidden.
    pub fn checkpoint_elems_per_block(&self, batch: usize) -> usize {
        batch * self.seq * self.hidden
    }

    /// The paper's total-activation estimate (footnote 3):
    /// ≈ 12 × hidden × batch × seq × layers elements.
    pub fn approx_activation_elems(&self, batch: usize) -> usize {
        12 * self.hidden * batch * self.seq * self.layers
    }

    /// FLOPs for one forward+backward pass over `batch` samples, using the
    /// standard 6·Ψ·tokens estimate plus the attention term
    /// (12·L·s²·h per sample each way).
    pub fn step_flops(&self, batch: usize) -> f64 {
        let tokens = (batch * self.seq) as f64;
        let dense = 6.0 * self.total_params() as f64 * tokens;
        let attn = 12.0 * (self.layers * self.seq * self.seq * self.hidden) as f64 * batch as f64;
        dense + attn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_is_valid() {
        ModelConfig::tiny().validate();
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_heads_rejected() {
        ModelConfig {
            heads: 5,
            ..ModelConfig::tiny()
        }
        .validate();
    }

    #[test]
    fn parameter_counts_add_up() {
        let c = ModelConfig::tiny();
        let h = c.hidden;
        assert_eq!(c.block_params(), 12 * h * h + 13 * h);
        assert_eq!(
            c.total_params(),
            c.embed_params() + c.layers * c.block_params() + c.head_params()
        );
    }

    #[test]
    fn paper_scale_params_match_table4() {
        // Table 4 row "8B: 72 layers, HD 3072": 12·L·h² ≈ 8.15B.
        let c = ModelConfig {
            vocab: 50_257,
            seq: 1024,
            hidden: 3072,
            layers: 72,
            heads: 24,
        };
        let approx = c.approx_params() as f64 / 1e9;
        assert!((approx - 8.15).abs() < 0.1, "got {approx}B");
        // And "1.5B: 48 layers, HD 1600" ≈ GPT-2 XL.
        let c = ModelConfig {
            vocab: 50_257,
            seq: 1024,
            hidden: 1600,
            layers: 48,
            heads: 16,
        };
        let approx = c.approx_params() as f64 / 1e9;
        assert!((approx - 1.47).abs() < 0.1, "got {approx}B");
    }
}

/// Exact dense-GEMM FLOPs for one *forward* pass over `batch` sequences,
/// broken out per unit (embedding lookups are copies, not FLOPs; the
/// backward pass costs 2× the forward GEMMs). Feeds the throughput model
/// with implementation-true counts rather than the 6Ψ estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct FlopBreakdown {
    /// Per transformer block.
    pub per_block: f64,
    /// LM head (final GEMM over the vocabulary).
    pub head: f64,
    /// Whole-model forward total.
    pub total: f64,
}

impl ModelConfig {
    /// Exact forward-GEMM FLOP counts (2·m·k·n per GEMM).
    pub fn forward_flops(&self, batch: usize) -> FlopBreakdown {
        let t = (batch * self.seq) as f64;
        let h = self.hidden as f64;
        let s = self.seq as f64;
        let b = batch as f64;
        // QKV + proj + fc1 + fc2 GEMMs.
        let dense = 2.0 * t * h * (3.0 * h) // qkv
            + 2.0 * t * h * h // proj
            + 2.0 * t * h * (4.0 * h) // fc1
            + 2.0 * t * (4.0 * h) * h; // fc2
        // Attention score and context GEMMs: per head 2·s·hd·s twice.
        let attn = 2.0 * 2.0 * b * (self.heads as f64) * s * s * (self.head_dim() as f64);
        let per_block = dense + attn;
        let head = 2.0 * t * h * self.vocab as f64;
        FlopBreakdown {
            per_block,
            head,
            total: per_block * self.layers as f64 + head,
        }
    }
}

#[cfg(test)]
mod flop_tests {
    use super::*;

    #[test]
    fn forward_flops_track_the_6psi_estimate() {
        // For large h the exact count approaches 2Ψ·tokens per forward
        // (the "6Ψ per token" rule counts fwd+bwd = 3 GEMM passes).
        let c = ModelConfig {
            vocab: 50_257,
            seq: 1024,
            hidden: 4096,
            layers: 32,
            heads: 32,
        };
        let batch = 4;
        let exact = c.forward_flops(batch).total;
        let tokens = (batch * c.seq) as f64;
        let estimate = 2.0 * c.total_params() as f64 * tokens;
        let ratio = exact / estimate;
        assert!(
            (0.9..1.35).contains(&ratio),
            "exact/estimate ratio {ratio} out of band"
        );
    }

    #[test]
    fn flops_scale_linearly_with_batch_and_layers() {
        let c = ModelConfig {
            vocab: 64,
            seq: 32,
            hidden: 64,
            layers: 4,
            heads: 4,
        };
        let f1 = c.forward_flops(1);
        let f2 = c.forward_flops(2);
        assert!((f2.per_block / f1.per_block - 2.0).abs() < 1e-12);
        let deeper = ModelConfig { layers: 8, ..c };
        let d = deeper.forward_flops(1);
        assert!((d.total - f1.total - 4.0 * f1.per_block).abs() < 1.0);
    }
}
