//! One transformer block: LN → causal multi-head attention → residual →
//! LN → GELU MLP → residual, with hand-written exact backward.
//!
//! The block is written against [`BlockDims`] so the *same* kernels serve
//! the single-device model and each shard of the Megatron-style
//! model-parallel model (local heads = heads / N_m). The two places where
//! Megatron inserts its forward all-reduces (after the row-parallel
//! attention projection and the row-parallel second MLP matmul, §8 of the
//! paper) are exposed as a `reduce` callback; the two backward all-reduces
//! (the `f` operator before each layernorm backward) as `reduce_back`.
//! For a single device both callbacks are the identity.

use zero_tensor::ops::activation::{acc, add, add_bias, bias_grad, dropout_backward, dropout_forward, gelu_backward, gelu_forward};
use zero_tensor::ops::matmul::{sgemm, sgemm_nt, sgemm_tn};
use zero_tensor::ops::norm::{layernorm_backward, layernorm_forward};
use zero_tensor::ops::softmax::{causal_softmax_forward, softmax_backward};

use crate::layout::BlockOffsets;

const LN_EPS: f32 = 1e-5;

/// Dropout applied at GPT-2's two residual-branch sites (after the
/// attention projection and after the MLP's second matmul).
///
/// Masks are derived from a stateless counter-based hash of `seed`, so the
/// checkpointing recompute path regenerates the forward pass bit-exactly —
/// callers must pass a seed unique per (step, micro-batch, layer) and the
/// SAME seed to the matching backward call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dropout {
    /// Drop probability in [0, 1).
    pub p: f32,
    /// Mask seed for this block invocation.
    pub seed: u64,
}

impl Dropout {
    /// No dropout (identity).
    pub const OFF: Dropout = Dropout { p: 0.0, seed: 0 };

    #[inline]
    fn site(&self, which: u64) -> u64 {
        self.seed ^ which.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// Shape parameters of one block *as seen by one rank*.
#[derive(Clone, Copy, Debug)]
pub struct BlockDims {
    /// Full hidden dimension h (the block's input/output width).
    pub hidden: usize,
    /// Heads computed on this rank (= heads / N_m).
    pub local_heads: usize,
    /// Per-head dimension (global, unaffected by MP).
    pub head_dim: usize,
    /// MLP intermediate width on this rank (= 4h / N_m).
    pub ffn: usize,
    /// Batch size.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
}

impl BlockDims {
    /// Rows of the `[T, h]` activation matrices: batch · seq.
    #[inline]
    pub fn rows(&self) -> usize {
        self.batch * self.seq
    }

    /// Local attention width = local_heads · head_dim (= h / N_m).
    #[inline]
    pub fn attn_width(&self) -> usize {
        self.local_heads * self.head_dim
    }
}

/// Activations saved by the forward pass for the exact backward pass.
///
/// Its size is what activation checkpointing (§6.1) trades for recompute:
/// with checkpointing only the block *input* (`x`, seq·hidden per sample)
/// is kept and everything else is rebuilt on the fly.
pub struct BlockSaved {
    /// Block input `[T, h]`.
    pub x: Vec<f32>,
    /// LN1 statistics.
    pub ln1_mean: Vec<f32>,
    pub ln1_rstd: Vec<f32>,
    /// LN1 output `[T, h]`.
    pub h1: Vec<f32>,
    /// QKV projections `[T, 3·attn_width]`.
    pub qkv: Vec<f32>,
    /// Attention probabilities, `local_heads·batch` causal maps of `[s, s]`.
    pub probs: Vec<f32>,
    /// Concatenated per-head context `[T, attn_width]`.
    pub attn_out: Vec<f32>,
    /// Post-attention residual stream `[T, h]`.
    pub x2: Vec<f32>,
    /// LN2 statistics.
    pub ln2_mean: Vec<f32>,
    pub ln2_rstd: Vec<f32>,
    /// LN2 output `[T, h]`.
    pub h2: Vec<f32>,
    /// MLP pre-activation `[T, ffn]`.
    pub fc1: Vec<f32>,
    /// GELU output `[T, ffn]`.
    pub gelu: Vec<f32>,
}

impl BlockSaved {
    /// Total saved activation elements (for memory accounting).
    pub fn elems(&self) -> usize {
        self.x.len()
            + self.ln1_mean.len()
            + self.ln1_rstd.len()
            + self.h1.len()
            + self.qkv.len()
            + self.probs.len()
            + self.attn_out.len()
            + self.x2.len()
            + self.ln2_mean.len()
            + self.ln2_rstd.len()
            + self.h2.len()
            + self.fc1.len()
            + self.gelu.len()
    }
}

/// Forward pass of one block.
///
/// * `params` — this block's flat parameter slice (see [`BlockOffsets`]).
/// * `x` — input `[T, h]`.
/// * `y` — output `[T, h]`.
/// * `reduce` — called on partial row-parallel outputs (attention
///   projection, then MLP fc2) *before* bias/residual; all-reduce across
///   the MP group, or identity when N_m = 1.
///
/// Returns the saved activations for [`block_backward`].
pub fn block_forward(
    dims: &BlockDims,
    params: &[f32],
    off: &BlockOffsets,
    x: &[f32],
    y: &mut [f32],
    reduce: &mut dyn FnMut(&mut [f32]),
) -> BlockSaved {
    block_forward_dropout(dims, params, off, x, y, reduce, Dropout::OFF)
}

/// [`block_forward`] with residual-branch dropout.
#[allow(clippy::too_many_arguments)]
pub fn block_forward_dropout(
    dims: &BlockDims,
    params: &[f32],
    off: &BlockOffsets,
    x: &[f32],
    y: &mut [f32],
    reduce: &mut dyn FnMut(&mut [f32]),
    drop: Dropout,
) -> BlockSaved {
    let t = dims.rows();
    let h = dims.hidden;
    let aw = dims.attn_width();
    let ffn = dims.ffn;
    assert_eq!(x.len(), t * h, "block_forward: x shape");
    assert_eq!(y.len(), t * h, "block_forward: y shape");

    // LN1.
    let mut h1 = vec![0.0; t * h];
    let mut ln1_mean = vec![0.0; t];
    let mut ln1_rstd = vec![0.0; t];
    layernorm_forward(
        x,
        &params[off.ln1_g.clone()],
        &params[off.ln1_b.clone()],
        &mut h1,
        &mut ln1_mean,
        &mut ln1_rstd,
        t,
        h,
        LN_EPS,
    );

    // QKV projection (column-parallel under MP: no communication).
    let mut qkv = vec![0.0; t * 3 * aw];
    sgemm_nt(&h1, &params[off.w_qkv.clone()], &mut qkv, t, h, 3 * aw);
    add_bias(&mut qkv, &params[off.b_qkv.clone()]);

    // Per-(batch, head) causal attention.
    let (probs, attn_out) = attention_forward(dims, &qkv);

    // Output projection (row-parallel under MP: partial sums reduced).
    let mut ao = vec![0.0; t * h];
    sgemm_nt(&attn_out, &params[off.w_o.clone()], &mut ao, t, aw, h);
    reduce(&mut ao);
    add_bias(&mut ao, &params[off.b_o.clone()]);
    dropout_forward(&mut ao, drop.p, drop.site(1));

    // Residual 1.
    let mut x2 = vec![0.0; t * h];
    add(x, &ao, &mut x2);

    // LN2.
    let mut h2 = vec![0.0; t * h];
    let mut ln2_mean = vec![0.0; t];
    let mut ln2_rstd = vec![0.0; t];
    layernorm_forward(
        &x2,
        &params[off.ln2_g.clone()],
        &params[off.ln2_b.clone()],
        &mut h2,
        &mut ln2_mean,
        &mut ln2_rstd,
        t,
        h,
        LN_EPS,
    );

    // MLP: fc1 (column-parallel) → GELU → fc2 (row-parallel, reduced).
    let mut fc1 = vec![0.0; t * ffn];
    sgemm_nt(&h2, &params[off.w_fc1.clone()], &mut fc1, t, h, ffn);
    add_bias(&mut fc1, &params[off.b_fc1.clone()]);
    let mut gelu = vec![0.0; t * ffn];
    gelu_forward(&fc1, &mut gelu);
    let mut f2 = vec![0.0; t * h];
    sgemm_nt(&gelu, &params[off.w_fc2.clone()], &mut f2, t, ffn, h);
    reduce(&mut f2);
    add_bias(&mut f2, &params[off.b_fc2.clone()]);
    dropout_forward(&mut f2, drop.p, drop.site(2));

    // Residual 2.
    add(&x2, &f2, y);

    BlockSaved {
        x: x.to_vec(),
        ln1_mean,
        ln1_rstd,
        h1,
        qkv,
        probs,
        attn_out,
        x2,
        ln2_mean,
        ln2_rstd,
        h2,
        fc1,
        gelu,
    }
}

/// Backward pass of one block.
///
/// * `dy` — gradient w.r.t. the block output `[T, h]`.
/// * `dx` — receives the gradient w.r.t. the block input `[T, h]`.
/// * `grads` — this block's flat gradient slice; contributions are
///   **accumulated** (callers zero it when appropriate).
/// * `reduce_back` — Megatron's `f` operator: all-reduce of the partial
///   input gradients of the two column-parallel matmuls; identity for
///   N_m = 1.
#[allow(clippy::too_many_arguments)]
pub fn block_backward(
    dims: &BlockDims,
    params: &[f32],
    off: &BlockOffsets,
    saved: &BlockSaved,
    dy: &[f32],
    dx: &mut [f32],
    grads: &mut [f32],
    reduce_back: &mut dyn FnMut(&mut [f32]),
) {
    block_backward_dropout(dims, params, off, saved, dy, dx, grads, reduce_back, Dropout::OFF)
}

/// [`block_backward`] with residual-branch dropout; `drop` must match the
/// forward call's.
#[allow(clippy::too_many_arguments)]
pub fn block_backward_dropout(
    dims: &BlockDims,
    params: &[f32],
    off: &BlockOffsets,
    saved: &BlockSaved,
    dy: &[f32],
    dx: &mut [f32],
    grads: &mut [f32],
    reduce_back: &mut dyn FnMut(&mut [f32]),
    drop: Dropout,
) {
    let t = dims.rows();
    let h = dims.hidden;
    let aw = dims.attn_width();
    let ffn = dims.ffn;
    assert_eq!(dy.len(), t * h, "block_backward: dy shape");
    assert_eq!(dx.len(), t * h, "block_backward: dx shape");

    // --- MLP path ---
    // y = x2 + dropout(f2): dL/d(fc2 out) = dropout'(dy); dL/dx2 = dy.
    let mut df2 = dy.to_vec();
    dropout_backward(&mut df2, drop.p, drop.site(2));
    let mut dgelu = vec![0.0; t * ffn];
    sgemm(&df2, &params[off.w_fc2.clone()], &mut dgelu, t, h, ffn);
    sgemm_tn_into(grads, off.w_fc2.clone(), &df2, &saved.gelu, h, t, ffn);
    bias_grad(&df2, &mut grads[off.b_fc2.clone()]);

    // GELU.
    let mut dfc1 = vec![0.0; t * ffn];
    gelu_backward(&saved.fc1, &dgelu, &mut dfc1);

    // fc1: fc1 = h2 · W1^T + b1.
    let mut dh2 = vec![0.0; t * h];
    sgemm(&dfc1, &params[off.w_fc1.clone()], &mut dh2, t, ffn, h);
    reduce_back(&mut dh2); // f-operator: sum partial dh2 across MP shards
    sgemm_tn_into(grads, off.w_fc1.clone(), &dfc1, &saved.h2, ffn, t, h);
    bias_grad(&dfc1, &mut grads[off.b_fc1.clone()]);

    // LN2 backward: accumulate into dx2.
    let mut dx2 = dy.to_vec(); // residual branch
    {
        let mut d_from_ln2 = vec![0.0; t * h];
        let (dg_range, db_range) = (off.ln2_g.clone(), off.ln2_b.clone());
        let mut dg = vec![0.0; h];
        let mut db = vec![0.0; h];
        layernorm_backward(
            &saved.x2,
            &params[off.ln2_g.clone()],
            &saved.ln2_mean,
            &saved.ln2_rstd,
            &dh2,
            &mut d_from_ln2,
            &mut dg,
            &mut db,
            t,
            h,
        );
        acc(&mut grads[dg_range], &dg);
        acc(&mut grads[db_range], &db);
        acc(&mut dx2, &d_from_ln2);
    }

    // --- Attention path ---
    // x2 = x + dropout(ao) ⇒ dao = dropout'(dx2); dx starts as dx2.
    // ao = attn_out · Wo^T + bo (bias added after MP reduce; its gradient
    // is consistent because b_o is replicated).
    let mut dao = dx2.clone();
    dropout_backward(&mut dao, drop.p, drop.site(1));
    let dao = &dao;
    let mut dattn = vec![0.0; t * aw];
    sgemm(dao, &params[off.w_o.clone()], &mut dattn, t, h, aw);
    sgemm_tn_into(grads, off.w_o.clone(), dao, &saved.attn_out, h, t, aw);
    bias_grad(dao, &mut grads[off.b_o.clone()]);

    // Attention core backward.
    let dqkv = attention_backward(dims, &saved.qkv, &saved.probs, &dattn);

    // QKV: qkv = h1 · Wqkv^T + bqkv.
    let mut dh1 = vec![0.0; t * h];
    sgemm(&dqkv, &params[off.w_qkv.clone()], &mut dh1, t, 3 * aw, h);
    reduce_back(&mut dh1); // f-operator
    sgemm_tn_into(grads, off.w_qkv.clone(), &dqkv, &saved.h1, 3 * aw, t, h);
    bias_grad(&dqkv, &mut grads[off.b_qkv.clone()]);

    // LN1 backward.
    {
        let mut d_from_ln1 = vec![0.0; t * h];
        let mut dg = vec![0.0; h];
        let mut db = vec![0.0; h];
        layernorm_backward(
            &saved.x,
            &params[off.ln1_g.clone()],
            &saved.ln1_mean,
            &saved.ln1_rstd,
            &dh1,
            &mut d_from_ln1,
            &mut dg,
            &mut db,
            t,
            h,
        );
        acc(&mut grads[off.ln1_g.clone()], &dg);
        acc(&mut grads[off.ln1_b.clone()], &db);
        // dx = residual branch (dx2) + LN1 branch.
        add(&dx2, &d_from_ln1, dx);
    }
}

/// Weight gradient `grads[range] += a^T · b` where `a` is `[t, rows]`
/// (used transposed) and `b` is `[t, cols]`.
fn sgemm_tn_into(
    grads: &mut [f32],
    range: std::ops::Range<usize>,
    a: &[f32],
    b: &[f32],
    rows: usize,
    t: usize,
    cols: usize,
) {
    let mut tmp = vec![0.0; rows * cols];
    sgemm_tn(a, b, &mut tmp, rows, t, cols);
    acc(&mut grads[range], &tmp);
}

/// Causal multi-head attention forward over local heads.
///
/// Returns `(probs, attn_out)` where `probs` stores `batch·local_heads`
/// causal maps of `[s, s]` and `attn_out` is `[T, attn_width]`.
fn attention_forward(dims: &BlockDims, qkv: &[f32]) -> (Vec<f32>, Vec<f32>) {
    use rayon::prelude::*;
    let (b, s, nh, hd) = (dims.batch, dims.seq, dims.local_heads, dims.head_dim);
    let aw = nh * hd;
    let t = b * s;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut probs = vec![0.0; b * nh * s * s];
    let mut attn_out = vec![0.0; t * aw];
    // One (batch, head) map per probs chunk: embarrassingly parallel — the
    // CPU stand-in for per-head attention kernels running on separate SMs.
    let contexts: Vec<Vec<f32>> = probs
        .par_chunks_mut(s * s)
        .enumerate()
        .map(|(map, p)| {
            let (bi, head) = (map / nh, map % nh);
            let mut q = vec![0.0; s * hd];
            let mut k = vec![0.0; s * hd];
            let mut v = vec![0.0; s * hd];
            let mut scores = vec![0.0; s * s];
            let mut ctx = vec![0.0; s * hd];
            gather_head(qkv, &mut q, bi, head, 0, s, nh, hd);
            gather_head(qkv, &mut k, bi, head, 1, s, nh, hd);
            gather_head(qkv, &mut v, bi, head, 2, s, nh, hd);
            // scores = Q · K^T, scaled.
            sgemm_nt(&q, &k, &mut scores, s, hd, s);
            scores.iter_mut().for_each(|x| *x *= scale);
            causal_softmax_forward(&scores, p, 1, s);
            // ctx = P · V.
            sgemm(p, &v, &mut ctx, s, s, hd);
            ctx
        })
        .collect();
    for (map, ctx) in contexts.iter().enumerate() {
        scatter_head(ctx, &mut attn_out, map / nh, map % nh, s, nh, hd);
    }
    (probs, attn_out)
}

/// Backward of [`attention_forward`]; returns `dqkv` `[T, 3·attn_width]`.
fn attention_backward(dims: &BlockDims, qkv: &[f32], probs: &[f32], dattn: &[f32]) -> Vec<f32> {
    use rayon::prelude::*;
    let (b, s, nh, hd) = (dims.batch, dims.seq, dims.local_heads, dims.head_dim);
    let aw = nh * hd;
    let t = b * s;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut dqkv = vec![0.0; t * 3 * aw];
    // Per-(batch, head) gradients in parallel; the scatter back into the
    // interleaved dqkv layout is serial (disjoint but strided regions).
    let grads: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = (0..b * nh)
        .into_par_iter()
        .map(|map| {
            let (bi, head) = (map / nh, map % nh);
            let mut q = vec![0.0; s * hd];
            let mut k = vec![0.0; s * hd];
            let mut v = vec![0.0; s * hd];
            let mut dctx = vec![0.0; s * hd];
            let mut dp = vec![0.0; s * s];
            let mut dscores = vec![0.0; s * s];
            let mut dq = vec![0.0; s * hd];
            let mut dk = vec![0.0; s * hd];
            let mut dv = vec![0.0; s * hd];
            gather_head(qkv, &mut q, bi, head, 0, s, nh, hd);
            gather_head(qkv, &mut k, bi, head, 1, s, nh, hd);
            gather_head(qkv, &mut v, bi, head, 2, s, nh, hd);
            gather_out(dattn, &mut dctx, bi, head, s, nh, hd);
            let p = &probs[map * s * s..(map + 1) * s * s];
            // ctx = P·V ⇒ dP = dctx·V^T, dV = P^T·dctx.
            sgemm_nt(&dctx, &v, &mut dp, s, hd, s);
            sgemm_tn(p, &dctx, &mut dv, s, s, hd);
            // P = softmax(scores) ⇒ dscores (masked entries have P = 0 and
            // contribute nothing).
            softmax_backward(p, &dp, &mut dscores, s, s);
            dscores.iter_mut().for_each(|x| *x *= scale);
            // scores = Q·K^T ⇒ dQ = dS·K, dK = dS^T·Q.
            sgemm(&dscores, &k, &mut dq, s, s, hd);
            sgemm_tn(&dscores, &q, &mut dk, s, s, hd);
            (dq, dk, dv)
        })
        .collect();
    for (map, (dq, dk, dv)) in grads.iter().enumerate() {
        let (bi, head) = (map / nh, map % nh);
        scatter_qkv(dq, &mut dqkv, bi, head, 0, s, nh, hd);
        scatter_qkv(dk, &mut dqkv, bi, head, 1, s, nh, hd);
        scatter_qkv(dv, &mut dqkv, bi, head, 2, s, nh, hd);
    }
    dqkv
}

/// Copies one head's Q/K/V (`which` ∈ {0,1,2}) from `[T, 3·aw]` into a
/// contiguous `[s, hd]` scratch.
#[inline]
#[allow(clippy::too_many_arguments)]
fn gather_head(
    qkv: &[f32],
    out: &mut [f32],
    bi: usize,
    head: usize,
    which: usize,
    s: usize,
    nh: usize,
    hd: usize,
) {
    let aw = nh * hd;
    let row_w = 3 * aw;
    let col0 = which * aw + head * hd;
    for i in 0..s {
        let src = (bi * s + i) * row_w + col0;
        out[i * hd..(i + 1) * hd].copy_from_slice(&qkv[src..src + hd]);
    }
}

/// Scatter-adds a `[s, hd]` head gradient back into `dqkv`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn scatter_qkv(
    src: &[f32],
    dqkv: &mut [f32],
    bi: usize,
    head: usize,
    which: usize,
    s: usize,
    nh: usize,
    hd: usize,
) {
    let aw = nh * hd;
    let row_w = 3 * aw;
    let col0 = which * aw + head * hd;
    for i in 0..s {
        let dst = (bi * s + i) * row_w + col0;
        for (d, &v) in dqkv[dst..dst + hd].iter_mut().zip(&src[i * hd..(i + 1) * hd]) {
            *d += v;
        }
    }
}

/// Writes a head's `[s, hd]` context into the `[T, aw]` output.
#[inline]
fn scatter_head(src: &[f32], out: &mut [f32], bi: usize, head: usize, s: usize, nh: usize, hd: usize) {
    let aw = nh * hd;
    for i in 0..s {
        let dst = (bi * s + i) * aw + head * hd;
        out[dst..dst + hd].copy_from_slice(&src[i * hd..(i + 1) * hd]);
    }
}

/// Reads a head's slice of the `[T, aw]` gradient into `[s, hd]` scratch.
#[inline]
fn gather_out(dattn: &[f32], out: &mut [f32], bi: usize, head: usize, s: usize, nh: usize, hd: usize) {
    let aw = nh * hd;
    for i in 0..s {
        let src = (bi * s + i) * aw + head * hd;
        out[i * hd..(i + 1) * hd].copy_from_slice(&dattn[src..src + hd]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::layout::Layout;
    use zero_tensor::init::normal_init;

    fn ident() -> impl FnMut(&mut [f32]) {
        |_: &mut [f32]| {}
    }

    fn setup() -> (BlockDims, Vec<f32>, BlockOffsets) {
        let cfg = ModelConfig {
            vocab: 17,
            seq: 5,
            hidden: 8,
            layers: 1,
            heads: 2,
        };
        let layout = Layout::build(&cfg);
        let dims = BlockDims {
            hidden: cfg.hidden,
            local_heads: cfg.heads,
            head_dim: cfg.head_dim(),
            ffn: 4 * cfg.hidden,
            batch: 2,
            seq: cfg.seq,
        };
        let mut params = vec![0.0; cfg.block_params()];
        normal_init(&mut params, 0.2, 11);
        let off = layout.block_offsets(0);
        // Layernorm gains start at 1.
        for v in &mut params[off.ln1_g.clone()] {
            *v = 1.0 + *v * 0.1;
        }
        for v in &mut params[off.ln2_g.clone()] {
            *v = 1.0 + *v * 0.1;
        }
        (dims, params, off)
    }

    #[test]
    fn forward_is_deterministic_and_finite() {
        let (dims, params, off) = setup();
        let t = dims.rows();
        let mut x = vec![0.0; t * dims.hidden];
        normal_init(&mut x, 1.0, 3);
        let mut y1 = vec![0.0; t * dims.hidden];
        let mut y2 = vec![0.0; t * dims.hidden];
        let _ = block_forward(&dims, &params, &off, &x, &mut y1, &mut ident());
        let _ = block_forward(&dims, &params, &off, &x, &mut y2, &mut ident());
        assert_eq!(y1, y2);
        assert!(y1.iter().all(|v| v.is_finite()));
        assert!(y1.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn backward_matches_finite_difference_on_input() {
        let (dims, params, off) = setup();
        let t = dims.rows();
        let n = t * dims.hidden;
        let mut x = vec![0.0; n];
        normal_init(&mut x, 0.8, 5);
        let mut dy = vec![0.0; n];
        normal_init(&mut dy, 1.0, 6);

        let mut y = vec![0.0; n];
        let saved = block_forward(&dims, &params, &off, &x, &mut y, &mut ident());
        let mut dx = vec![0.0; n];
        let mut grads = vec![0.0; params.len()];
        block_backward(&dims, &params, &off, &saved, &dy, &mut dx, &mut grads, &mut ident());

        let loss = |x: &[f32]| -> f64 {
            let mut y = vec![0.0; n];
            let _ = block_forward(&dims, &params, &off, x, &mut y, &mut ident());
            y.iter().zip(&dy).map(|(a, b)| (*a as f64) * (*b as f64)).sum()
        };
        let h = 1e-3;
        // Spot-check a spread of input coordinates (full sweep is slow).
        for i in (0..n).step_by(7) {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = ((loss(&xp) - loss(&xm)) / (2.0 * h as f64)) as f32;
            assert!(
                (fd - dx[i]).abs() < 5e-2 * (1.0 + fd.abs()),
                "dx[{i}]: fd={fd} analytic={}",
                dx[i]
            );
        }
    }

    #[test]
    fn backward_matches_finite_difference_on_params() {
        let (dims, params, off) = setup();
        let t = dims.rows();
        let n = t * dims.hidden;
        let mut x = vec![0.0; n];
        normal_init(&mut x, 0.8, 5);
        let mut dy = vec![0.0; n];
        normal_init(&mut dy, 1.0, 6);

        let mut y = vec![0.0; n];
        let saved = block_forward(&dims, &params, &off, &x, &mut y, &mut ident());
        let mut dx = vec![0.0; n];
        let mut grads = vec![0.0; params.len()];
        block_backward(&dims, &params, &off, &saved, &dy, &mut dx, &mut grads, &mut ident());

        let loss = |p: &[f32]| -> f64 {
            let mut y = vec![0.0; n];
            let _ = block_forward(&dims, p, &off, &x, &mut y, &mut ident());
            y.iter().zip(&dy).map(|(a, b)| (*a as f64) * (*b as f64)).sum()
        };
        let h = 1e-3;
        // One probe per parameter field.
        let probes = [
            off.ln1_g.start,
            off.ln1_b.start + 1,
            off.w_qkv.start + 5,
            off.b_qkv.start + 2,
            off.w_o.start + 9,
            off.b_o.start,
            off.ln2_g.start + 3,
            off.ln2_b.start,
            off.w_fc1.start + 11,
            off.b_fc1.start + 4,
            off.w_fc2.start + 7,
            off.b_fc2.start + 1,
        ];
        for &i in &probes {
            let mut pp = params.clone();
            pp[i] += h;
            let mut pm = params.clone();
            pm[i] -= h;
            let fd = ((loss(&pp) - loss(&pm)) / (2.0 * h as f64)) as f32;
            assert!(
                (fd - grads[i]).abs() < 5e-2 * (1.0 + fd.abs()),
                "grad[{i}]: fd={fd} analytic={}",
                grads[i]
            );
        }
    }

    #[test]
    fn saved_activation_size_is_accounted() {
        let (dims, params, off) = setup();
        let t = dims.rows();
        let mut x = vec![0.1; t * dims.hidden];
        normal_init(&mut x, 0.5, 9);
        let mut y = vec![0.0; t * dims.hidden];
        let saved = block_forward(&dims, &params, &off, &x, &mut y, &mut ident());
        // x, h1, x2, h2 (4·T·h) + qkv (3·T·h) + attn_out (T·h) + fc1, gelu
        // (2·T·4h) + probs (b·nh·s²) + 4 LN stat vectors (4·T).
        let t_h = t * dims.hidden;
        let want = 8 * t_h + 2 * t * dims.ffn
            + dims.batch * dims.local_heads * dims.seq * dims.seq
            + 4 * t;
        assert_eq!(saved.elems(), want);
    }

    #[test]
    fn causal_masking_blocks_future_influence() {
        // Changing the input at position j must not affect outputs at
        // positions i < j (within the attention path; LN/MLP act per-token).
        let (dims, params, off) = setup();
        let t = dims.rows();
        let n = t * dims.hidden;
        let mut x = vec![0.0; n];
        normal_init(&mut x, 0.8, 5);
        let mut y1 = vec![0.0; n];
        let _ = block_forward(&dims, &params, &off, &x, &mut y1, &mut ident());
        // Perturb the LAST position of batch 0.
        let j = dims.seq - 1;
        for c in 0..dims.hidden {
            x[j * dims.hidden + c] += 1.0;
        }
        let mut y2 = vec![0.0; n];
        let _ = block_forward(&dims, &params, &off, &x, &mut y2, &mut ident());
        for i in 0..j {
            for c in 0..dims.hidden {
                let a = y1[i * dims.hidden + c];
                let b = y2[i * dims.hidden + c];
                assert_eq!(a, b, "future token leaked into position {i}");
            }
        }
        // And the perturbed position itself must change.
        assert_ne!(
            &y1[j * dims.hidden..(j + 1) * dims.hidden],
            &y2[j * dims.hidden..(j + 1) * dims.hidden]
        );
    }
}
