//! Synthetic language-modeling data.
//!
//! The paper trains on WebText-style corpora we cannot ship; the
//! substitution (documented in DESIGN.md) is a seeded synthetic token
//! stream with genuine sequential structure — a sparse random Markov chain
//! plus periodic patterns — so models *can* learn it, perplexity falls
//! with training, and larger models reach lower perplexity (the property
//! Figure 5 demonstrates).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic synthetic token corpus.
pub struct SyntheticCorpus {
    tokens: Vec<u32>,
    vocab: usize,
}

impl SyntheticCorpus {
    /// Generates `len` tokens over `vocab` symbols.
    ///
    /// Each symbol has a sparse successor distribution (4 likely
    /// successors out of `vocab`) drawn from `seed`; 10% of transitions are
    /// uniform noise. This gives an entropy floor well below `ln(vocab)`
    /// that a competent LM approaches.
    pub fn generate(vocab: usize, len: usize, seed: u64) -> SyntheticCorpus {
        assert!(vocab >= 8, "vocab too small for structure");
        let mut rng = StdRng::seed_from_u64(seed);
        // Successor table: 4 preferred next-tokens per token.
        let succ: Vec<[u32; 4]> = (0..vocab)
            .map(|_| {
                [
                    rng.gen_range(0..vocab) as u32,
                    rng.gen_range(0..vocab) as u32,
                    rng.gen_range(0..vocab) as u32,
                    rng.gen_range(0..vocab) as u32,
                ]
            })
            .collect();
        let mut tokens = Vec::with_capacity(len);
        let mut cur = rng.gen_range(0..vocab) as u32;
        for _ in 0..len {
            tokens.push(cur);
            cur = if rng.gen::<f32>() < 0.1 {
                rng.gen_range(0..vocab) as u32
            } else {
                succ[cur as usize][rng.gen_range(0..4)]
            };
        }
        SyntheticCorpus { tokens, vocab }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Raw token stream.
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// Cuts batch `index` of `batch` sequences of length `seq` (+1 for the
    /// shifted target), wrapping around the corpus. Returns `(ids, targets)`
    /// each of `batch·seq` tokens.
    pub fn batch(&self, index: usize, batch: usize, seq: usize) -> (Vec<u32>, Vec<u32>) {
        let span = seq + 1;
        let mut ids = Vec::with_capacity(batch * seq);
        let mut targets = Vec::with_capacity(batch * seq);
        for b in 0..batch {
            let start = (index * batch * span + b * span) % (self.len() - span);
            let window = &self.tokens[start..start + span];
            ids.extend_from_slice(&window[..seq]);
            targets.extend_from_slice(&window[1..]);
        }
        (ids, targets)
    }

    /// Slices a *rank's* share of a global batch: the global batch
    /// `index` is split evenly over `dp` ranks; rank `r` receives
    /// sequences `r·(batch/dp) .. (r+1)·(batch/dp)`. Data-parallel
    /// equivalence tests rely on this exact split.
    ///
    /// # Panics
    /// Panics if `dp` does not divide `batch`.
    pub fn rank_batch(
        &self,
        index: usize,
        global_batch: usize,
        seq: usize,
        dp: usize,
        rank: usize,
    ) -> (Vec<u32>, Vec<u32>) {
        assert_eq!(global_batch % dp, 0, "batch {global_batch} not divisible by dp {dp}");
        let local = global_batch / dp;
        let (ids, tg) = self.batch(index, global_batch, seq);
        let a = rank * local * seq;
        let b = (rank + 1) * local * seq;
        (ids[a..b].to_vec(), tg[a..b].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = SyntheticCorpus::generate(64, 1000, 9);
        let b = SyntheticCorpus::generate(64, 1000, 9);
        assert_eq!(a.tokens(), b.tokens());
        let c = SyntheticCorpus::generate(64, 1000, 10);
        assert_ne!(a.tokens(), c.tokens());
    }

    #[test]
    fn tokens_in_range_and_structured() {
        let vocab = 32;
        let c = SyntheticCorpus::generate(vocab, 20_000, 4);
        assert!(c.tokens().iter().all(|&t| (t as usize) < vocab));
        // Structure check: most transitions concentrate on each token's
        // top-4 successors (the Markov structure), far from uniform where
        // the top 4 of 32 would capture only ~12.5% of mass.
        let mut counts = vec![0u32; vocab * vocab];
        for w in c.tokens().windows(2) {
            counts[w[0] as usize * vocab + w[1] as usize] += 1;
        }
        let mut concentrated = 0u64;
        let mut total = 0u64;
        for row in counts.chunks(vocab) {
            let mut sorted: Vec<u32> = row.to_vec();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            concentrated += sorted[..4].iter().map(|&c| c as u64).sum::<u64>();
            total += row.iter().map(|&c| c as u64).sum::<u64>();
        }
        let frac = concentrated as f64 / total as f64;
        assert!(frac > 0.6, "top-4 successor mass {frac} too low");
    }

    #[test]
    fn batch_shapes_and_shift() {
        let c = SyntheticCorpus::generate(64, 10_000, 4);
        let (ids, tg) = c.batch(3, 4, 16);
        assert_eq!(ids.len(), 64);
        assert_eq!(tg.len(), 64);
        // Targets are inputs shifted by one within each sequence.
        for b in 0..4 {
            for i in 0..15 {
                assert_eq!(ids[b * 16 + i + 1], tg[b * 16 + i]);
            }
        }
    }

    #[test]
    fn rank_batches_partition_global_batch() {
        let c = SyntheticCorpus::generate(64, 10_000, 4);
        let (global_ids, global_tg) = c.batch(1, 8, 16);
        let mut re_ids = Vec::new();
        let mut re_tg = Vec::new();
        for r in 0..4 {
            let (ids, tg) = c.rank_batch(1, 8, 16, 4, r);
            assert_eq!(ids.len(), 2 * 16);
            re_ids.extend(ids);
            re_tg.extend(tg);
        }
        assert_eq!(re_ids, global_ids);
        assert_eq!(re_tg, global_tg);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn uneven_rank_batch_rejected() {
        let c = SyntheticCorpus::generate(64, 1000, 4);
        let _ = c.rank_batch(0, 6, 8, 4, 0);
    }
}

/// A byte-level corpus over real text: every byte is a token (vocab 256).
///
/// Lets the training examples run on user-supplied text instead of the
/// synthetic Markov stream, with zero tokenizer machinery.
pub struct ByteCorpus {
    tokens: Vec<u32>,
}

impl ByteCorpus {
    /// Builds a corpus from UTF-8 (or any) text; each byte is one token.
    ///
    /// # Panics
    /// Panics if the text is shorter than 2 bytes (no next-token pairs).
    pub fn from_text(text: &str) -> ByteCorpus {
        assert!(text.len() >= 2, "text too short to model");
        ByteCorpus {
            tokens: text.bytes().map(u32::from).collect(),
        }
    }

    /// Token count.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The byte-level vocabulary size (always 256).
    pub fn vocab(&self) -> usize {
        256
    }

    /// The raw token stream.
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// Cuts batch `index` exactly like [`SyntheticCorpus::batch`].
    pub fn batch(&self, index: usize, batch: usize, seq: usize) -> (Vec<u32>, Vec<u32>) {
        let span = seq + 1;
        assert!(self.tokens.len() > span, "corpus shorter than one sequence");
        let mut ids = Vec::with_capacity(batch * seq);
        let mut targets = Vec::with_capacity(batch * seq);
        for b in 0..batch {
            let start = (index * batch * span + b * span) % (self.tokens.len() - span);
            let window = &self.tokens[start..start + span];
            ids.extend_from_slice(&window[..seq]);
            targets.extend_from_slice(&window[1..]);
        }
        (ids, targets)
    }

    /// Decodes generated tokens back to (lossy) text.
    pub fn decode(tokens: &[u32]) -> String {
        let bytes: Vec<u8> = tokens.iter().map(|&t| (t % 256) as u8).collect();
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

#[cfg(test)]
mod byte_tests {
    use super::*;

    #[test]
    fn text_round_trips_through_tokens() {
        let c = ByteCorpus::from_text("hello zero!");
        assert_eq!(c.len(), 11);
        assert_eq!(c.vocab(), 256);
        assert_eq!(ByteCorpus::decode(&c.tokens[..5]), "hello");
    }

    #[test]
    fn batches_shift_by_one() {
        let text = "abcdefghijklmnopqrstuvwxyz".repeat(4);
        let c = ByteCorpus::from_text(&text);
        let (ids, tg) = c.batch(0, 2, 8);
        assert_eq!(ids.len(), 16);
        for i in 0..7 {
            assert_eq!(ids[i + 1], tg[i]);
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn empty_text_rejected() {
        let _ = ByteCorpus::from_text("x");
    }
}
