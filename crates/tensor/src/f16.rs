//! IEEE 754 binary16 ("half precision") implemented from scratch.
//!
//! ZeRO's memory arithmetic (§3.1 of the paper) depends on parameters and
//! gradients being stored in *2 bytes per element* while the optimizer keeps
//! 4-byte master copies (K = 12 for mixed-precision Adam). This module
//! provides that 2-byte storage type with correct round-to-nearest-even
//! conversion, so the engine's measured memory matches the paper's formulas
//! byte for byte.
//!
//! Arithmetic is performed by converting to `f32`, mirroring how V100 tensor
//! cores accumulate fp16 products in fp32.

/// A 16-bit IEEE 754 binary16 floating point number.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct F16(pub u16);

const F16_MAN_BITS: u32 = 10;
const F16_EXP_BIAS: i32 = 15;
const F32_MAN_BITS: u32 = 23;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    ///
    /// Values above `F16::MAX` overflow to infinity; subnormal results are
    /// produced for magnitudes below 2^-14; magnitudes below 2^-24 round to
    /// (signed) zero. NaN payloads are not preserved beyond quietness.
    #[inline]
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> F32_MAN_BITS) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN.
            return if man == 0 {
                F16(sign | 0x7C00)
            } else {
                // Quiet NaN, keep the top mantissa bit set.
                F16(sign | 0x7C00 | 0x0200 | ((man >> 13) as u16 & 0x01FF))
            };
        }

        // Unbiased exponent of the f32 value.
        let unbiased = exp - 127;
        // Target binary16 biased exponent.
        let f16_exp = unbiased + F16_EXP_BIAS;

        if f16_exp >= 0x1F {
            // Overflow to infinity.
            return F16(sign | 0x7C00);
        }

        if f16_exp <= 0 {
            // Subnormal or zero. The implicit leading 1 must become explicit
            // and the mantissa shifted right by (1 - f16_exp) extra places.
            if f16_exp < -10 {
                // Too small even for the largest subnormal: round to zero.
                return F16(sign);
            }
            // Make the implicit bit explicit. The subnormal result stores
            // round(value / 2^-24) = 1.f · 2^(unbiased+24); with 1.f held
            // as man·2^-23 that is a right shift by (-1 − unbiased), i.e.
            // 14 (largest subnormal) through 24 (round-up from below the
            // smallest subnormal).
            let man = (man | 0x0080_0000) as u64;
            let shift = (-1 - unbiased) as u32;
            let halfway = 1u64 << (shift - 1);
            let mut out = (man >> shift) as u16;
            let rem = man & ((1u64 << shift) - 1);
            // Round to nearest, ties to even.
            if rem > halfway || (rem == halfway && (out & 1) == 1) {
                out += 1; // may carry into the exponent field: that is correct
            }
            return F16(sign | out);
        }

        // Normal case: shift the 23-bit mantissa down to 10 bits with RNE.
        let shift = F32_MAN_BITS - F16_MAN_BITS; // 13
        let halfway = 1u32 << (shift - 1);
        let rem = man & ((1 << shift) - 1);
        let mut out = ((f16_exp as u32) << F16_MAN_BITS | (man >> shift)) as u16;
        if rem > halfway || (rem == halfway && (out & 1) == 1) {
            // Carry may ripple into the exponent, turning e.g. 0x3BFF into
            // 0x3C00 (1.0) or the max normal into infinity — both correct.
            out += 1;
        }
        F16(sign | out)
    }

    /// Converts this binary16 value to `f32` exactly (every f16 is
    /// representable in f32).
    #[inline]
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> F16_MAN_BITS) & 0x1F) as u32;
        let man = (self.0 & 0x03FF) as u32;

        let bits = if exp == 0 {
            if man == 0 {
                sign // signed zero
            } else {
                // Subnormal: the stored value is man·2^-24. Normalize by
                // shifting the leading 1 up to the implicit-bit position
                // (bit 10), adjusting the exponent accordingly: a leading
                // bit at position p gives unbiased exponent p − 24, i.e. a
                // biased f32 exponent of 113 − shift with shift = 10 − p.
                let shift = man.leading_zeros() - (32 - F16_MAN_BITS - 1);
                let man = (man << shift) & 0x03FF;
                let exp = 127 - F16_EXP_BIAS as u32 + 1 - shift;
                sign | (exp << F32_MAN_BITS) | (man << (F32_MAN_BITS - F16_MAN_BITS))
            }
        } else if exp == 0x1F {
            // Infinity / NaN.
            sign | 0x7F80_0000 | (man << (F32_MAN_BITS - F16_MAN_BITS))
        } else {
            let exp = exp + 127 - F16_EXP_BIAS as u32;
            sign | (exp << F32_MAN_BITS) | (man << (F32_MAN_BITS - F16_MAN_BITS))
        };
        f32::from_bits(bits)
    }

    /// Raw bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// True if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True if this value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// True if the value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }
}

impl std::fmt::Debug for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}f16", self.to_f32())
    }
}

impl std::fmt::Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

/// Converts a slice of `f32` into freshly allocated `F16` storage.
pub fn f32_to_f16_vec(src: &[f32]) -> Vec<F16> {
    src.iter().map(|&v| F16::from_f32(v)).collect()
}

/// Converts `F16` storage back to `f32`, writing into `dst`.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn f16_to_f32_slice(src: &[F16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "f16->f32 length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.to_f32();
    }
}

/// Converts `f32` values into an existing `F16` buffer.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn f32_to_f16_slice(src: &[f32], dst: &mut [F16]) {
    assert_eq!(src.len(), dst.len(), "f32->f16 length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d = F16::from_f32(*s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let f = i as f32;
            assert_eq!(F16::from_f32(f).to_f32(), f, "integer {i} must be exact");
        }
    }

    #[test]
    fn constants_match_ieee() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0_f32.powi(-14));
        assert_eq!(F16::INFINITY.to_f32(), f32::INFINITY);
        assert_eq!(F16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
        assert!(F16::NAN.is_nan());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(65520.0).is_infinite());
        assert!(F16::from_f32(1e9).is_infinite());
        assert_eq!(F16::from_f32(-1e9), F16::NEG_INFINITY);
        // 65504 + half a ulp rounds back down (ties-to-even would go up, but
        // 65519.999 < halfway to the next representable 65536).
        assert_eq!(F16::from_f32(65519.0).to_f32(), 65504.0);
        assert!(F16::from_f32(65520.0).is_infinite(), "65520 is the tie, rounds to even=inf");
    }

    #[test]
    fn subnormals_convert_exactly() {
        // Smallest positive subnormal is 2^-24.
        let tiny = 2.0_f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_bits(), 0x0001);
        assert_eq!(F16::from_bits(0x0001).to_f32(), tiny);
        // Largest subnormal.
        let big_sub = 2.0_f32.powi(-14) - 2.0_f32.powi(-24);
        assert_eq!(F16::from_f32(big_sub).to_bits(), 0x03FF);
        assert_eq!(F16::from_bits(0x03FF).to_f32(), big_sub);
        // Below half the smallest subnormal: flush to zero.
        assert_eq!(F16::from_f32(2.0_f32.powi(-26)).to_bits(), 0x0000);
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16 value
        // (1 + 2^-10); RNE keeps the even mantissa, i.e. 1.0.
        let tie_down = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(F16::from_f32(tie_down).to_f32(), 1.0);
        // (1 + 2^-10) + 2^-11 is halfway between odd mantissa 1 and even
        // mantissa 2; RNE rounds up to the even one.
        let tie_up = 1.0 + 2.0_f32.powi(-10) + 2.0_f32.powi(-11);
        assert_eq!(F16::from_f32(tie_up).to_f32(), 1.0 + 2.0_f32.powi(-9));
    }

    #[test]
    fn signed_zero_preserved() {
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_bits(0x8000).to_f32().to_bits(), (-0.0_f32).to_bits());
    }

    #[test]
    fn nan_round_trips_as_nan() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.to_f32().is_nan());
    }

    #[test]
    fn all_f16_bit_patterns_round_trip_through_f32() {
        // Every finite f16 is exactly representable in f32, so the
        // f16 -> f32 -> f16 round trip must be the identity.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    F16::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bit pattern {bits:#06x} failed to round trip"
                );
            }
        }
    }

    #[test]
    fn slice_conversions() {
        let src = [0.5_f32, -1.25, 3.0, 1e-3];
        let h = f32_to_f16_vec(&src);
        let mut back = [0.0_f32; 4];
        f16_to_f32_slice(&h, &mut back);
        for (a, b) in src.iter().zip(&back) {
            assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-7);
        }
    }
}
