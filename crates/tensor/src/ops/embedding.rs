//! Token/position embedding lookup and its scatter-add backward.

/// Embedding lookup: for each token id, copies the corresponding row of the
/// `vocab × dim` table into the output.
///
/// # Panics
/// Panics on out-of-range token ids.
pub fn embedding_forward(table: &[f32], ids: &[u32], out: &mut [f32], vocab: usize, dim: usize) {
    assert_eq!(table.len(), vocab * dim, "embedding: table length");
    assert_eq!(out.len(), ids.len() * dim, "embedding: out length");
    for (t, &id) in ids.iter().enumerate() {
        let id = id as usize;
        assert!(id < vocab, "token id {id} out of range (vocab {vocab})");
        out[t * dim..(t + 1) * dim].copy_from_slice(&table[id * dim..(id + 1) * dim]);
    }
}

/// Embedding backward: scatter-adds each output-position gradient into the
/// gradient of the table row selected by its token id.
pub fn embedding_backward(dtable: &mut [f32], ids: &[u32], dy: &[f32], vocab: usize, dim: usize) {
    assert_eq!(dtable.len(), vocab * dim, "embedding_backward: dtable length");
    assert_eq!(dy.len(), ids.len() * dim, "embedding_backward: dy length");
    for (t, &id) in ids.iter().enumerate() {
        let id = id as usize;
        assert!(id < vocab, "token id {id} out of range (vocab {vocab})");
        let drow = &mut dtable[id * dim..(id + 1) * dim];
        let g = &dy[t * dim..(t + 1) * dim];
        for (d, &v) in drow.iter_mut().zip(g) {
            *d += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_copies_rows() {
        let table: Vec<f32> = (0..12).map(|i| i as f32).collect(); // vocab=4, dim=3
        let ids = [2u32, 0, 2];
        let mut out = vec![0.0; 9];
        embedding_forward(&table, &ids, &mut out, 4, 3);
        assert_eq!(&out[0..3], &[6.0, 7.0, 8.0]);
        assert_eq!(&out[3..6], &[0.0, 1.0, 2.0]);
        assert_eq!(&out[6..9], &[6.0, 7.0, 8.0]);
    }

    #[test]
    fn backward_accumulates_repeated_ids() {
        let ids = [1u32, 1, 3];
        let dy = vec![1.0; 9];
        let mut dt = vec![0.0; 12];
        embedding_backward(&mut dt, &ids, &dy, 4, 3);
        assert_eq!(&dt[3..6], &[2.0, 2.0, 2.0], "id 1 hit twice");
        assert_eq!(&dt[9..12], &[1.0, 1.0, 1.0]);
        assert_eq!(&dt[0..3], &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_ids() {
        let table = vec![0.0; 12];
        let mut out = vec![0.0; 3];
        embedding_forward(&table, &[7], &mut out, 4, 3);
    }
}
