//! Layer normalization with exact backward pass.

/// Forward layer norm over the last dimension.
///
/// For each row of `x` (`rows × dim`):
/// `y = (x − mean) / √(var + eps) · gamma + beta`.
///
/// `mean_out` and `rstd_out` (length `rows`) receive the per-row mean and
/// reciprocal standard deviation, which the backward pass consumes.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_forward(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    y: &mut [f32],
    mean_out: &mut [f32],
    rstd_out: &mut [f32],
    rows: usize,
    dim: usize,
    eps: f32,
) {
    assert_eq!(x.len(), rows * dim, "layernorm: x length");
    assert_eq!(y.len(), rows * dim, "layernorm: y length");
    assert_eq!(gamma.len(), dim, "layernorm: gamma length");
    assert_eq!(beta.len(), dim, "layernorm: beta length");
    assert_eq!(mean_out.len(), rows, "layernorm: mean length");
    assert_eq!(rstd_out.len(), rows, "layernorm: rstd length");
    for r in 0..rows {
        let xr = &x[r * dim..(r + 1) * dim];
        let yr = &mut y[r * dim..(r + 1) * dim];
        let mean = xr.iter().sum::<f32>() / dim as f32;
        let var = xr.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / dim as f32;
        let rstd = 1.0 / (var + eps).sqrt();
        mean_out[r] = mean;
        rstd_out[r] = rstd;
        for ((o, &v), (&g, &b)) in yr.iter_mut().zip(xr).zip(gamma.iter().zip(beta)) {
            *o = (v - mean) * rstd * g + b;
        }
    }
}

/// Backward layer norm.
///
/// Consumes the forward inputs `x`, saved `mean`/`rstd`, and upstream
/// gradient `dy`; produces `dx` and accumulates into `dgamma`/`dbeta`.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_backward(
    x: &[f32],
    gamma: &[f32],
    mean: &[f32],
    rstd: &[f32],
    dy: &[f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
    rows: usize,
    dim: usize,
) {
    assert_eq!(x.len(), rows * dim, "layernorm_backward: x length");
    assert_eq!(dy.len(), rows * dim, "layernorm_backward: dy length");
    assert_eq!(dx.len(), rows * dim, "layernorm_backward: dx length");
    assert_eq!(gamma.len(), dim, "layernorm_backward: gamma length");
    assert_eq!(dgamma.len(), dim, "layernorm_backward: dgamma length");
    assert_eq!(dbeta.len(), dim, "layernorm_backward: dbeta length");
    let n = dim as f32;
    for r in 0..rows {
        let xr = &x[r * dim..(r + 1) * dim];
        let dyr = &dy[r * dim..(r + 1) * dim];
        let dxr = &mut dx[r * dim..(r + 1) * dim];
        let (m, rs) = (mean[r], rstd[r]);

        // xhat = (x - m) * rs;  dy_hat = dy * gamma
        // dx = rs/n * (n*dy_hat - sum(dy_hat) - xhat * sum(dy_hat * xhat))
        let mut sum_dyh = 0.0_f32;
        let mut sum_dyh_xhat = 0.0_f32;
        for i in 0..dim {
            let xhat = (xr[i] - m) * rs;
            let dyh = dyr[i] * gamma[i];
            sum_dyh += dyh;
            sum_dyh_xhat += dyh * xhat;
            dgamma[i] += dyr[i] * xhat;
            dbeta[i] += dyr[i];
        }
        for i in 0..dim {
            let xhat = (xr[i] - m) * rs;
            let dyh = dyr[i] * gamma[i];
            dxr[i] = rs / n * (n * dyh - sum_dyh - xhat * sum_dyh_xhat);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f32 = 1e-5;

    fn forward_loss(x: &[f32], gamma: &[f32], beta: &[f32], dy: &[f32], rows: usize, dim: usize) -> f32 {
        // Scalar loss = <y, dy> so that dL/dy = dy.
        let mut y = vec![0.0; rows * dim];
        let mut mean = vec![0.0; rows];
        let mut rstd = vec![0.0; rows];
        layernorm_forward(x, gamma, beta, &mut y, &mut mean, &mut rstd, rows, dim, EPS);
        y.iter().zip(dy).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn forward_normalizes() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let gamma = vec![1.0; 4];
        let beta = vec![0.0; 4];
        let mut y = vec![0.0; 4];
        let mut mean = vec![0.0; 1];
        let mut rstd = vec![0.0; 1];
        layernorm_forward(&x, &gamma, &beta, &mut y, &mut mean, &mut rstd, 1, 4, EPS);
        assert!((mean[0] - 2.5).abs() < 1e-6);
        let out_mean: f32 = y.iter().sum::<f32>() / 4.0;
        let out_var: f32 = y.iter().map(|v| (v - out_mean).powi(2)).sum::<f32>() / 4.0;
        assert!(out_mean.abs() < 1e-6);
        assert!((out_var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let rows = 2;
        let dim = 5;
        let x: Vec<f32> = (0..rows * dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let gamma: Vec<f32> = (0..dim).map(|i| 1.0 + 0.1 * i as f32).collect();
        let beta: Vec<f32> = (0..dim).map(|i| -0.05 * i as f32).collect();
        let dy: Vec<f32> = (0..rows * dim).map(|i| ((i * 3) as f32 * 0.21).cos()).collect();

        let mut y = vec![0.0; rows * dim];
        let mut mean = vec![0.0; rows];
        let mut rstd = vec![0.0; rows];
        layernorm_forward(&x, &gamma, &beta, &mut y, &mut mean, &mut rstd, rows, dim, EPS);

        let mut dx = vec![0.0; rows * dim];
        let mut dgamma = vec![0.0; dim];
        let mut dbeta = vec![0.0; dim];
        layernorm_backward(&x, &gamma, &mean, &rstd, &dy, &mut dx, &mut dgamma, &mut dbeta, rows, dim);

        let h = 1e-3;
        for i in 0..rows * dim {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (forward_loss(&xp, &gamma, &beta, &dy, rows, dim)
                - forward_loss(&xm, &gamma, &beta, &dy, rows, dim))
                / (2.0 * h);
            assert!((fd - dx[i]).abs() < 2e-2, "dx[{i}]: fd={fd} analytic={}", dx[i]);
        }
        for i in 0..dim {
            let mut gp = gamma.clone();
            gp[i] += h;
            let mut gm = gamma.clone();
            gm[i] -= h;
            let fd = (forward_loss(&x, &gp, &beta, &dy, rows, dim)
                - forward_loss(&x, &gm, &beta, &dy, rows, dim))
                / (2.0 * h);
            assert!((fd - dgamma[i]).abs() < 2e-2, "dgamma[{i}]: fd={fd} vs {}", dgamma[i]);
            let mut bp = beta.clone();
            bp[i] += h;
            let mut bm = beta.clone();
            bm[i] -= h;
            let fd = (forward_loss(&x, &gamma, &bp, &dy, rows, dim)
                - forward_loss(&x, &gamma, &bm, &dy, rows, dim))
                / (2.0 * h);
            assert!((fd - dbeta[i]).abs() < 2e-2, "dbeta[{i}]: fd={fd} vs {}", dbeta[i]);
        }
    }
}
