//! Elementwise activation kernels with exact backward passes.

/// GELU, tanh approximation as used by GPT-2/Megatron:
/// `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`.
#[inline]
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of the tanh-approximate GELU.
#[inline]
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044_715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Forward GELU over a slice: `out[i] = gelu(input[i])`.
pub fn gelu_forward(input: &[f32], out: &mut [f32]) {
    assert_eq!(input.len(), out.len(), "gelu_forward length mismatch");
    for (o, &x) in out.iter_mut().zip(input) {
        *o = gelu_scalar(x);
    }
}

/// Backward GELU: `dx[i] = dy[i] · gelu'(input[i])`, where `input` is the
/// value seen by the forward pass.
pub fn gelu_backward(input: &[f32], dy: &[f32], dx: &mut [f32]) {
    assert_eq!(input.len(), dy.len(), "gelu_backward dy length mismatch");
    assert_eq!(input.len(), dx.len(), "gelu_backward dx length mismatch");
    for ((d, &g), &x) in dx.iter_mut().zip(dy).zip(input) {
        *d = g * gelu_grad_scalar(x);
    }
}

/// Adds a bias vector to every row of a `rows×cols` matrix in place.
pub fn add_bias(x: &mut [f32], bias: &[f32]) {
    assert_eq!(x.len() % bias.len(), 0, "add_bias: rows not divisible");
    for row in x.chunks_mut(bias.len()) {
        for (v, b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Accumulates the bias gradient: `dbias[j] += Σ_rows dy[row][j]`.
pub fn bias_grad(dy: &[f32], dbias: &mut [f32]) {
    assert_eq!(dy.len() % dbias.len(), 0, "bias_grad: rows not divisible");
    for row in dy.chunks(dbias.len()) {
        for (d, &g) in dbias.iter_mut().zip(row) {
            *d += g;
        }
    }
}

/// `out[i] = a[i] + b[i]` (residual connection).
pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    assert_eq!(a.len(), out.len(), "add: out length mismatch");
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// `acc[i] += x[i]` — gradient accumulation.
pub fn acc(accum: &mut [f32], x: &[f32]) {
    assert_eq!(accum.len(), x.len(), "acc: length mismatch");
    for (a, &v) in accum.iter_mut().zip(x) {
        *a += v;
    }
}

/// `x[i] *= s`.
pub fn scale(x: &mut [f32], s: f32) {
    for v in x {
        *v *= s;
    }
}

/// Dropout with a fixed keep mask derived from a counter-based hash, so the
/// forward and backward passes agree without storing the mask.
///
/// `seed` must be identical between the forward call and the backward call
/// of the same layer invocation (the model uses a per-step, per-layer seed).
pub fn dropout_forward(x: &mut [f32], p_drop: f32, seed: u64) {
    if p_drop <= 0.0 {
        return;
    }
    let keep = 1.0 - p_drop;
    let inv_keep = 1.0 / keep;
    for (i, v) in x.iter_mut().enumerate() {
        if !keep_element(seed, i as u64, keep) {
            *v = 0.0;
        } else {
            *v *= inv_keep;
        }
    }
}

/// Backward of [`dropout_forward`] with the same seed.
pub fn dropout_backward(dy: &mut [f32], p_drop: f32, seed: u64) {
    // Dropout is its own backward: the same mask and scaling apply.
    dropout_forward(dy, p_drop, seed);
}

#[inline]
fn keep_element(seed: u64, index: u64, keep: f32) -> bool {
    // SplitMix64 finalizer: cheap, stateless, high-quality per-index bits.
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 11) as f64 / (1u64 << 53) as f64) < keep as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gelu_known_values() {
        assert_eq!(gelu_scalar(0.0), 0.0);
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.1588).abs() < 1e-3);
        // Large positive ~ identity, large negative ~ 0.
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu_scalar(-10.0).abs() < 1e-4);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0_f32, -1.0, -0.1, 0.0, 0.5, 2.0, 4.0] {
            let h = 1e-3;
            let fd = (gelu_scalar(x + h) - gelu_scalar(x - h)) / (2.0 * h);
            let an = gelu_grad_scalar(x);
            assert!((fd - an).abs() < 1e-3, "x={x}: fd={fd} analytic={an}");
        }
    }

    #[test]
    fn bias_round_trip() {
        let mut x = vec![1.0; 6];
        add_bias(&mut x, &[0.5, -0.5, 2.0]);
        assert_eq!(x, vec![1.5, 0.5, 3.0, 1.5, 0.5, 3.0]);
        let mut db = vec![0.0; 3];
        bias_grad(&x, &mut db);
        assert_eq!(db, vec![3.0, 1.0, 6.0]);
    }

    #[test]
    fn dropout_mask_is_deterministic_and_scaled() {
        let mut a: Vec<f32> = vec![1.0; 1000];
        let mut b = a.clone();
        dropout_forward(&mut a, 0.3, 42);
        dropout_forward(&mut b, 0.3, 42);
        assert_eq!(a, b, "same seed must produce the same mask");
        let kept = a.iter().filter(|&&v| v != 0.0).count();
        assert!(kept > 600 && kept < 800, "kept {kept} of 1000 at p=0.3");
        for &v in &a {
            assert!(v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-6);
        }
        let mut c: Vec<f32> = vec![1.0; 1000];
        dropout_forward(&mut c, 0.3, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let mut x = vec![1.0, 2.0, 3.0];
        dropout_forward(&mut x, 0.0, 7);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }
}
