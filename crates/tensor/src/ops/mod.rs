//! Compute kernels: the FLOP substrate standing in for cuBLAS/cuDNN.

pub mod activation;
pub mod embedding;
pub mod loss;
pub mod matmul;
pub mod norm;
pub mod softmax;
pub mod vector;
