//! Row-wise (optionally causal) softmax with exact backward pass.

/// Numerically stable softmax over each row of a `rows × cols` matrix.
pub fn softmax_forward(x: &[f32], y: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(x.len(), rows * cols, "softmax: x length");
    assert_eq!(y.len(), rows * cols, "softmax: y length");
    for r in 0..rows {
        let xr = &x[r * cols..(r + 1) * cols];
        let yr = &mut y[r * cols..(r + 1) * cols];
        softmax_row(xr, yr);
    }
}

#[inline]
fn softmax_row(xr: &[f32], yr: &mut [f32]) {
    let max = xr.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let mut sum = 0.0_f32;
    for (o, &v) in yr.iter_mut().zip(xr) {
        let e = (v - max).exp();
        *o = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in yr.iter_mut() {
        *o *= inv;
    }
}

/// Causal softmax for attention scores.
///
/// `x` is `(rows_outer · seq) × seq` where each group of `seq` rows is one
/// attention map; row `i` of each map may only attend to columns `0..=i`.
/// Masked positions get probability exactly 0.
pub fn causal_softmax_forward(x: &[f32], y: &mut [f32], maps: usize, seq: usize) {
    assert_eq!(x.len(), maps * seq * seq, "causal_softmax: x length");
    assert_eq!(y.len(), maps * seq * seq, "causal_softmax: y length");
    for m in 0..maps {
        for i in 0..seq {
            let base = (m * seq + i) * seq;
            let xr = &x[base..base + i + 1];
            let yr = &mut y[base..base + seq];
            softmax_row(xr, &mut yr[..i + 1]);
            for v in &mut yr[i + 1..] {
                *v = 0.0;
            }
        }
    }
}

/// Backward of softmax given the forward *output* `y`:
/// `dx = y ⊙ (dy − Σ_j dy_j·y_j)` per row. Works for causal maps too since
/// masked outputs are exactly zero.
pub fn softmax_backward(y: &[f32], dy: &[f32], dx: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(y.len(), rows * cols, "softmax_backward: y length");
    assert_eq!(dy.len(), rows * cols, "softmax_backward: dy length");
    assert_eq!(dx.len(), rows * cols, "softmax_backward: dx length");
    for r in 0..rows {
        let yr = &y[r * cols..(r + 1) * cols];
        let dyr = &dy[r * cols..(r + 1) * cols];
        let dxr = &mut dx[r * cols..(r + 1) * cols];
        let dot: f32 = yr.iter().zip(dyr).map(|(a, b)| a * b).sum();
        for ((d, &p), &g) in dxr.iter_mut().zip(yr).zip(dyr) {
            *d = p * (g - dot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        let mut y = vec![0.0; 6];
        softmax_forward(&x, &mut y, 2, 3);
        for r in 0..2 {
            let s: f32 = y[r * 3..r * 3 + 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(y[2] > y[1] && y[1] > y[0], "monotone in logits");
    }

    #[test]
    fn stable_under_large_logits() {
        let x = vec![1000.0, 1001.0, 999.0];
        let mut y = vec![0.0; 3];
        softmax_forward(&x, &mut y, 1, 3);
        assert!(y.iter().all(|v| v.is_finite()));
        assert!((y.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn causal_masks_upper_triangle() {
        let seq = 4;
        let x: Vec<f32> = (0..seq * seq).map(|i| i as f32 * 0.1).collect();
        let mut y = vec![0.0; seq * seq];
        causal_softmax_forward(&x, &mut y, 1, seq);
        for i in 0..seq {
            for j in 0..seq {
                let v = y[i * seq + j];
                if j > i {
                    assert_eq!(v, 0.0, "position ({i},{j}) must be masked");
                } else {
                    assert!(v > 0.0);
                }
            }
            let s: f32 = y[i * seq..(i + 1) * seq].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let cols = 5;
        let x: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.7).sin()).collect();
        let dy: Vec<f32> = (0..cols).map(|i| (i as f32 * 1.3).cos()).collect();
        let mut y = vec![0.0; cols];
        softmax_forward(&x, &mut y, 1, cols);
        let mut dx = vec![0.0; cols];
        softmax_backward(&y, &dy, &mut dx, 1, cols);

        let loss = |x: &[f32]| -> f32 {
            let mut y = vec![0.0; cols];
            softmax_forward(x, &mut y, 1, cols);
            y.iter().zip(&dy).map(|(a, b)| a * b).sum()
        };
        let h = 1e-3;
        for i in 0..cols {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * h);
            assert!((fd - dx[i]).abs() < 1e-3, "dx[{i}] fd={fd} analytic={}", dx[i]);
        }
    }
}
