//! Fused softmax + cross-entropy loss for language modeling.

/// Computes mean cross-entropy over `tokens` rows of logits
/// (`tokens × vocab`) against integer targets, and writes the gradient of
/// the *mean* loss w.r.t. the logits into `dlogits`.
///
/// Fusing forward and backward avoids materializing full probability
/// tensors twice — the same fusion DL frameworks apply, and the reason the
/// paper counts the LM head as one GEMM plus an elementwise pass.
///
/// Returns the mean loss in nats.
pub fn cross_entropy_fused(
    logits: &[f32],
    targets: &[u32],
    dlogits: &mut [f32],
    tokens: usize,
    vocab: usize,
) -> f32 {
    assert_eq!(logits.len(), tokens * vocab, "cross_entropy: logits length");
    assert_eq!(dlogits.len(), tokens * vocab, "cross_entropy: dlogits length");
    assert_eq!(targets.len(), tokens, "cross_entropy: targets length");
    let inv_tokens = 1.0 / tokens as f32;
    let mut total = 0.0_f64;
    for t in 0..tokens {
        let target = targets[t] as usize;
        assert!(target < vocab, "target {target} out of range (vocab {vocab})");
        let lr = &logits[t * vocab..(t + 1) * vocab];
        let dr = &mut dlogits[t * vocab..(t + 1) * vocab];
        let max = lr.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0_f32;
        for (d, &v) in dr.iter_mut().zip(lr) {
            let e = (v - max).exp();
            *d = e;
            sum += e;
        }
        let log_sum = sum.ln();
        total += (log_sum - (lr[target] - max)) as f64;
        let inv_sum = 1.0 / sum;
        for d in dr.iter_mut() {
            *d *= inv_sum * inv_tokens;
        }
        dr[target] -= inv_tokens;
    }
    (total / tokens as f64) as f32
}

/// Forward-only mean cross-entropy (for validation perplexity).
pub fn cross_entropy_loss(logits: &[f32], targets: &[u32], tokens: usize, vocab: usize) -> f32 {
    assert_eq!(logits.len(), tokens * vocab, "cross_entropy: logits length");
    assert_eq!(targets.len(), tokens, "cross_entropy: targets length");
    let mut total = 0.0_f64;
    for t in 0..tokens {
        let target = targets[t] as usize;
        assert!(target < vocab, "target {target} out of range (vocab {vocab})");
        let lr = &logits[t * vocab..(t + 1) * vocab];
        let max = lr.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let sum: f32 = lr.iter().map(|&v| (v - max).exp()).sum();
        total += (sum.ln() - (lr[target] - max)) as f64;
    }
    (total / tokens as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_vocab() {
        let vocab = 8;
        let logits = vec![0.0; vocab];
        let mut d = vec![0.0; vocab];
        let loss = cross_entropy_fused(&logits, &[3], &mut d, 1, vocab);
        assert!((loss - (vocab as f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = vec![0.0; 4];
        logits[2] = 20.0;
        let mut d = vec![0.0; 4];
        let loss = cross_entropy_fused(&logits, &[2], &mut d, 1, 4);
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let vocab = 6;
        let tokens = 3;
        let logits: Vec<f32> = (0..tokens * vocab).map(|i| (i as f32 * 0.31).sin()).collect();
        let targets = [1u32, 4, 0];
        let mut d = vec![0.0; tokens * vocab];
        cross_entropy_fused(&logits, &targets, &mut d, tokens, vocab);
        let h = 1e-3;
        for i in 0..tokens * vocab {
            let mut lp = logits.clone();
            lp[i] += h;
            let mut lm = logits.clone();
            lm[i] -= h;
            let fd = (cross_entropy_loss(&lp, &targets, tokens, vocab)
                - cross_entropy_loss(&lm, &targets, tokens, vocab))
                / (2.0 * h);
            assert!((fd - d[i]).abs() < 1e-3, "dlogits[{i}] fd={fd} analytic={}", d[i]);
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let vocab = 5;
        let logits: Vec<f32> = (0..vocab).map(|i| i as f32 * 0.2).collect();
        let mut d = vec![0.0; vocab];
        cross_entropy_fused(&logits, &[2], &mut d, 1, vocab);
        let s: f32 = d.iter().sum();
        assert!(s.abs() < 1e-6, "softmax-CE gradient sums to zero, got {s}");
    }

    #[test]
    fn forward_only_matches_fused() {
        let vocab = 7;
        let tokens = 4;
        let logits: Vec<f32> = (0..tokens * vocab).map(|i| (i as f32 * 0.17).cos()).collect();
        let targets = [0u32, 3, 6, 2];
        let mut d = vec![0.0; tokens * vocab];
        let a = cross_entropy_fused(&logits, &targets, &mut d, tokens, vocab);
        let b = cross_entropy_loss(&logits, &targets, tokens, vocab);
        assert!((a - b).abs() < 1e-6);
    }
}
