//! Unrolled vector primitives (dot, axpy, scaled sums).
//!
//! The scalar loops elsewhere are correct but serialize on one FP
//! accumulator; these variants keep four independent accumulators so the
//! compiler can vectorize and the CPU can overlap FMA latency — the
//! standard ILP trick for memory-resident vector math.

/// Dot product with four-way unrolled accumulation.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = [0.0_f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// `y += alpha · x` (the BLAS axpy).
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Sum with four-way unrolled accumulation.
pub fn sum(a: &[f32]) -> f32 {
    let mut acc = [0.0_f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j];
        acc[1] += a[j + 1];
        acc[2] += a[j + 2];
        acc[3] += a[j + 3];
    }
    let mut tail = 0.0;
    for &v in &a[chunks * 4..] {
        tail += v;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Squared L2 norm with unrolled accumulation.
pub fn sq_norm(a: &[f32]) -> f32 {
    dot(a, a)
}

/// `out = a·x + b·y` elementwise (fused scaled add).
pub fn scaled_add(a: f32, x: &[f32], b: f32, y: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "scaled_add: length mismatch");
    assert_eq!(x.len(), out.len(), "scaled_add: out length mismatch");
    for ((o, &xi), &yi) in out.iter_mut().zip(x).zip(y) {
        *o = a * xi + b * yi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 13 % 31) as f32 - 15.0) / 7.0).collect()
    }

    #[test]
    fn dot_matches_naive_for_all_tail_lengths() {
        for n in 0..20 {
            let a = seq(n);
            let b: Vec<f32> = a.iter().map(|v| v * 0.5 + 1.0).collect();
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-4, "n={n}");
        }
    }

    #[test]
    fn sum_matches_naive() {
        for n in [0usize, 1, 3, 4, 7, 100, 1001] {
            let a = seq(n);
            let naive: f32 = a.iter().sum();
            assert!((sum(&a) - naive).abs() < 1e-3, "n={n}");
        }
    }

    #[test]
    fn axpy_and_scaled_add() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        let mut out = vec![0.0; 3];
        scaled_add(0.5, &x, 2.0, &[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![2.5, 3.0, 3.5]);
    }

    #[test]
    fn sq_norm_is_dot_with_self() {
        let a = seq(17);
        assert_eq!(sq_norm(&a), dot(&a, &a));
    }
}
