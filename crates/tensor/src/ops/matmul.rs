//! Matrix multiplication kernels.
//!
//! These are the FLOP-dominant kernels of transformer training. They are
//! written as cache-blocked loops parallelized with rayon over output rows —
//! the CPU stand-in for the GPU GEMMs that dominate the paper's workloads.
//! All variants accumulate in `f32` over `f32` inputs (the engine converts
//! fp16 storage to f32 before compute, as tensor cores do).

use rayon::prelude::*;

/// Minimum per-thread row count before splitting; keeps rayon overhead
/// negligible for the small matrices used in tests.
const PAR_ROW_MIN: usize = 8;

/// `c[m×n] = a[m×k] · b[k×n]` (row-major).
///
/// # Panics
/// Panics if slice lengths are inconsistent with the dimensions.
pub fn sgemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "sgemm: a has wrong length");
    assert_eq!(b.len(), k * n, "sgemm: b has wrong length");
    assert_eq!(c.len(), m * n, "sgemm: c has wrong length");
    let body = |(row, c_row): (usize, &mut [f32])| {
        c_row.iter_mut().for_each(|v| *v = 0.0);
        let a_row = &a[row * k..(row + 1) * k];
        // ikj loop order: stream through b rows, accumulate into the c row
        // kept hot in cache.
        for (p, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += a_val * bv;
            }
        }
    };
    if m >= PAR_ROW_MIN {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

/// `c[m×n] += a[m×k] · b[k×n]`.
pub fn sgemm_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "sgemm_acc: a has wrong length");
    assert_eq!(b.len(), k * n, "sgemm_acc: b has wrong length");
    assert_eq!(c.len(), m * n, "sgemm_acc: c has wrong length");
    let body = |(row, c_row): (usize, &mut [f32])| {
        let a_row = &a[row * k..(row + 1) * k];
        for (p, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += a_val * bv;
            }
        }
    };
    if m >= PAR_ROW_MIN {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

/// `c[m×n] = a[m×k] · b[n×k]^T` — i.e. B is stored row-major as `n×k` and
/// used transposed. This is the natural layout for `dX = dY · W^T` with W
/// stored `[out, in]`... here expressed generically.
pub fn sgemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "sgemm_nt: a has wrong length");
    assert_eq!(b.len(), n * k, "sgemm_nt: b has wrong length");
    assert_eq!(c.len(), m * n, "sgemm_nt: c has wrong length");
    let body = |(row, c_row): (usize, &mut [f32])| {
        let a_row = &a[row * k..(row + 1) * k];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0_f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv = acc;
        }
    };
    if m >= PAR_ROW_MIN {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

/// `c[m×n] = a[k×m]^T · b[k×n]` — A stored row-major as `k×m`, used
/// transposed. This is the natural layout for weight gradients
/// `dW = X^T · dY`.
///
/// The transposed operand is packed into an `m×k` panel once per call,
/// so every output row streams its A coefficients stride-1 instead of
/// gathering a stride-`m` column per product term. The O(k·m) pack is
/// amortized over the O(k·m·n) multiply; the per-element accumulation
/// order is untouched, so results are bit-identical to
/// [`sgemm_tn_unpacked`] (the baseline kept for the micro-benchmark).
pub fn sgemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "sgemm_tn: a has wrong length");
    assert_eq!(b.len(), k * n, "sgemm_tn: b has wrong length");
    assert_eq!(c.len(), m * n, "sgemm_tn: c has wrong length");
    let mut panel = vec![0.0_f32; m * k];
    transpose(a, &mut panel, k, m);
    let panel = &panel;
    let body = |(row, c_row): (usize, &mut [f32])| {
        c_row.iter_mut().for_each(|v| *v = 0.0);
        // c[row, :] = sum_p panel[row, p] * b[p, :] — stride-1 in panel,
        // b, and c.
        let a_row = &panel[row * k..(row + 1) * k];
        for (p, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += a_val * bv;
            }
        }
    };
    if m >= PAR_ROW_MIN {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

/// The pre-packing [`sgemm_tn`] body: reads `a[p·m + row]` directly, a
/// stride-`m` gather per product term. Kept (not used by the model) as
/// the before/after baseline for `bench_matmul` and the bit-exactness
/// test of the packed kernel.
pub fn sgemm_tn_unpacked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "sgemm_tn: a has wrong length");
    assert_eq!(b.len(), k * n, "sgemm_tn: b has wrong length");
    assert_eq!(c.len(), m * n, "sgemm_tn: c has wrong length");
    let body = |(row, c_row): (usize, &mut [f32])| {
        c_row.iter_mut().for_each(|v| *v = 0.0);
        // c[row, :] = sum_p a[p, row] * b[p, :]
        for p in 0..k {
            let a_val = a[p * m + row];
            if a_val == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += a_val * bv;
            }
        }
    };
    if m >= PAR_ROW_MIN {
        c.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.chunks_mut(n).enumerate().for_each(body);
    }
}

/// Out-of-place transpose of a row-major `rows×cols` matrix.
pub fn transpose(src: &[f32], dst: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols, "transpose: src has wrong length");
    assert_eq!(dst.len(), rows * cols, "transpose: dst has wrong length");
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn seq(len: usize, scale: f32) -> Vec<f32> {
        (0..len).map(|i| ((i * 7 % 13) as f32 - 6.0) * scale).collect()
    }

    #[test]
    fn sgemm_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (17, 9, 23), (32, 32, 32)] {
            let a = seq(m * k, 0.25);
            let b = seq(k * n, 0.5);
            let mut c = vec![f32::NAN; m * n];
            sgemm(&a, &b, &mut c, m, k, n);
            let want = naive(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&want) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y} at ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn sgemm_acc_accumulates() {
        let (m, k, n) = (5, 4, 6);
        let a = seq(m * k, 0.1);
        let b = seq(k * n, 0.2);
        let mut c = vec![1.0; m * n];
        sgemm_acc(&a, &b, &mut c, m, k, n);
        let want: Vec<f32> = naive(&a, &b, m, k, n).iter().map(|v| v + 1.0).collect();
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn sgemm_nt_matches_explicit_transpose() {
        let (m, k, n) = (7, 5, 9);
        let a = seq(m * k, 0.3);
        let b_t = seq(n * k, 0.2); // stored n×k
        let mut b = vec![0.0; k * n];
        transpose(&b_t, &mut b, n, k);
        let mut c = vec![0.0; m * n];
        sgemm_nt(&a, &b_t, &mut c, m, k, n);
        let want = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn sgemm_tn_matches_explicit_transpose() {
        let (m, k, n) = (6, 8, 5);
        let a_t = seq(k * m, 0.15); // stored k×m
        let b = seq(k * n, 0.25);
        let mut a = vec![0.0; m * k];
        transpose(&a_t, &mut a, k, m);
        let mut c = vec![0.0; m * n];
        sgemm_tn(&a_t, &b, &mut c, m, k, n);
        let want = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn packed_tn_is_bitwise_identical_to_unpacked() {
        // The panel pack only changes *where* A coefficients are read
        // from, never the accumulation order — bit-exact, not approximate.
        for &(m, k, n) in &[(1, 1, 1), (6, 8, 5), (17, 33, 9), (32, 64, 32)] {
            let a = seq(k * m, 0.15);
            let b = seq(k * n, 0.25);
            let mut packed = vec![f32::NAN; m * n];
            let mut unpacked = vec![f32::NAN; m * n];
            sgemm_tn(&a, &b, &mut packed, m, k, n);
            sgemm_tn_unpacked(&a, &b, &mut unpacked, m, k, n);
            for (x, y) in packed.iter().zip(&unpacked) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let src = seq(12, 1.0);
        let mut t = vec![0.0; 12];
        let mut back = vec![0.0; 12];
        transpose(&src, &mut t, 3, 4);
        transpose(&t, &mut back, 4, 3);
        assert_eq!(src, back);
    }
}
