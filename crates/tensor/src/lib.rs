//! # zero-tensor
//!
//! Dense tensor substrate for the ZeRO reproduction: an `f32` row-major
//! [`Tensor`], a from-scratch IEEE binary16 [`F16`] storage type, and the
//! forward/backward kernels a GPT-2-like transformer needs (GEMM,
//! layernorm, softmax, GELU, embedding, cross-entropy).
//!
//! The paper's workloads run their FLOPs on V100 tensor cores; here they
//! run on CPU threads via rayon. ZeRO itself (`zero-core`) is agnostic to
//! where the FLOPs happen — it only manipulates parameter, gradient and
//! optimizer-state buffers, which this crate represents exactly
//! (2 bytes/element fp16, 4 bytes/element fp32).
//!
//! ```
//! use zero_tensor::F16;
//! use zero_tensor::ops::matmul::sgemm;
//!
//! // Genuine 2-byte fp16 storage with round-to-nearest-even.
//! assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
//! assert_eq!(std::mem::size_of::<F16>(), 2);
//!
//! // 2x2 GEMM.
//! let a = [1.0, 2.0, 3.0, 4.0];
//! let b = [1.0, 0.0, 0.0, 1.0];
//! let mut c = [0.0; 4];
//! sgemm(&a, &b, &mut c, 2, 2, 2);
//! assert_eq!(c, a);
//! ```

pub mod f16;
pub mod init;
pub mod ops;
pub mod tensor;

pub use f16::F16;
pub use tensor::Tensor;
