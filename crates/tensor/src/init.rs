//! Deterministic, seeded parameter initialization.
//!
//! Every experiment in the reproduction is seeded so that baseline-DP and
//! ZeRO runs start from identical parameters — a precondition for the
//! convergence-equivalence tests.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tensor::Tensor;

/// Fills `out` with samples from N(0, std²) using the given seed.
pub fn normal_init(out: &mut [f32], std: f32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = NormalBoxMuller::new(0.0, std);
    for v in out {
        *v = dist.sample_one(&mut rng);
    }
}

/// GPT-2 style initialization: N(0, 0.02²), scaled residual projections are
/// the caller's concern.
pub fn gpt2_init(shape: &[usize], seed: u64) -> Tensor {
    let mut t = Tensor::zeros(shape);
    normal_init(t.data_mut(), 0.02, seed);
    t
}

/// Xavier/Glorot uniform initialization for a `fan_out × fan_in` matrix.
pub fn xavier_init(fan_out: usize, fan_in: usize, seed: u64) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = rand::distributions::Uniform::new_inclusive(-limit, limit);
    let data: Vec<f32> = (0..fan_in * fan_out).map(|_| dist.sample(&mut rng)).collect();
    Tensor::from_vec(data, &[fan_out, fan_in])
}

/// Box–Muller normal sampler. `rand` 0.8 ships `StandardNormal` only behind
/// `rand_distr`; this avoids the extra dependency while staying exact and
/// deterministic across platforms.
struct NormalBoxMuller {
    mean: f32,
    std: f32,
}

impl NormalBoxMuller {
    fn new(mean: f32, std: f32) -> Self {
        NormalBoxMuller { mean, std }
    }

    fn sample_one(&self, rng: &mut StdRng) -> f32 {
        use rand::Rng;
        // Draw in (0, 1] to keep ln() finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std * z as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_values() {
        let mut a = vec![0.0; 64];
        let mut b = vec![0.0; 64];
        normal_init(&mut a, 0.02, 7);
        normal_init(&mut b, 0.02, 7);
        assert_eq!(a, b);
        let mut c = vec![0.0; 64];
        normal_init(&mut c, 0.02, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let n = 20_000;
        let mut v = vec![0.0; n];
        normal_init(&mut v, 1.0, 123);
        let mean: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var: f64 = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "sample mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "sample variance {var}");
    }

    #[test]
    fn xavier_respects_limit() {
        let t = xavier_init(16, 48, 3);
        let limit = (6.0 / 64.0_f32).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= limit));
        assert!(t.max_abs() > limit * 0.5, "should use the range");
    }
}
