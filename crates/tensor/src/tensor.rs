//! Dense row-major tensor storage.
//!
//! The engine deliberately keeps one concrete storage type (`Vec<f32>`)
//! rather than a generic tensor framework: ZeRO operates on flat parameter
//! buffers and rank-2/3 activations, and a simple contiguous layout keeps
//! kernels cache-friendly and the memory accounting exact.

use crate::f16::F16;

/// A dense, row-major, contiguously stored tensor of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Tensor {
        let numel = shape.iter().product();
        Tensor {
            data: vec![0.0; numel],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Tensor {
        let numel = shape.iter().product();
        Tensor {
            data: vec![value; numel],
            shape: shape.to_vec(),
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The shape as a slice.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(self.numel(), numel, "reshape {:?} -> {:?}", self.shape, shape);
        self.shape = shape.to_vec();
        self
    }

    /// Returns element `(row, col)` of a rank-2 tensor.
    #[inline]
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        self.data[row * self.shape[1] + col]
    }

    /// Row `r` of a rank-2 tensor as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert_eq!(self.ndim(), 2);
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable row `r` of a rank-2 tensor.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert_eq!(self.ndim(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Fills the tensor with zeros in place.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Elementwise `self += other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self *= s`.
    pub fn scale_(&mut self, s: f32) {
        self.data.iter_mut().for_each(|v| *v *= s);
    }

    /// Sum of all elements (f64 accumulation for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Maximum absolute element, 0.0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &v| m.max(v.abs()))
    }

    /// L2 norm of the flattened tensor (f64 accumulation).
    pub fn l2_norm(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Lossy conversion to fp16 storage (used by the mixed-precision path).
    pub fn to_f16(&self) -> Vec<F16> {
        self.data.iter().map(|&v| F16::from_f32(v)).collect()
    }

    /// Builds a tensor from fp16 storage.
    pub fn from_f16(data: &[F16], shape: &[usize]) -> Tensor {
        let v: Vec<f32> = data.iter().map(|h| h.to_f32()).collect();
        Tensor::from_vec(v, shape)
    }

    /// Simulates a round trip through fp16 storage (quantization noise of
    /// the mixed-precision forward pass) without allocating u16 storage.
    pub fn quantize_f16_(&mut self) {
        for v in &mut self.data {
            *v = F16::from_f32(*v).to_f32();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.ndim(), 2);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_length() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let t = t.reshape(&[3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at2(1, 0), 2.0);
    }

    #[test]
    fn rows_and_indexing() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(t.at2(0, 2), 2.0);
    }

    #[test]
    fn arithmetic_helpers() {
        let mut a = Tensor::full(&[4], 2.0);
        let b = Tensor::full(&[4], 0.5);
        a.add_assign(&b);
        assert_eq!(a.data(), &[2.5; 4]);
        a.scale_(2.0);
        assert_eq!(a.data(), &[5.0; 4]);
        assert_eq!(a.sum(), 20.0);
        assert_eq!(a.max_abs(), 5.0);
        assert!((a.l2_norm() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
        t.data_mut()[1] = f32::INFINITY;
        assert!(t.has_non_finite());
    }

    #[test]
    fn f16_round_trip_close() {
        let t = Tensor::from_vec(vec![0.1, -2.5, 1000.0, 1e-4], &[4]);
        let h = t.to_f16();
        let back = Tensor::from_f16(&h, &[4]);
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-7);
        }
    }
}

// ----- op wrappers: the convenience API over the slice kernels -----

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] · [k, n] → [m, n]`.
    ///
    /// # Panics
    /// Panics if either tensor is not rank-2 or the inner dims differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul: self must be rank-2");
        assert_eq!(other.ndim(), 2, "matmul: other must be rank-2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul: inner dimensions {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        crate::ops::matmul::sgemm(&self.data, &other.data, &mut out.data, m, k, n);
        out
    }

    /// `self · other^T`: the `x · W^T` linear-layer product with `other`
    /// stored row-major as `[n, k]`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_nt: self must be rank-2");
        assert_eq!(other.ndim(), 2, "matmul_nt: other must be rank-2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_nt: inner dimensions {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        crate::ops::matmul::sgemm_nt(&self.data, &other.data, &mut out.data, m, k, n);
        out
    }

    /// Transpose of a rank-2 tensor.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transposed: must be rank-2");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[c, r]);
        crate::ops::matmul::transpose(&self.data, &mut out.data, r, c);
        out
    }

    /// Row-wise softmax of a rank-2 tensor.
    pub fn softmax(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "softmax: must be rank-2");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[r, c]);
        crate::ops::softmax::softmax_forward(&self.data, &mut out.data, r, c);
        out
    }

    /// Elementwise GELU.
    pub fn gelu(&self) -> Tensor {
        let mut out = Tensor::zeros(&self.shape);
        crate::ops::activation::gelu_forward(&self.data, &mut out.data);
        out
    }

    /// Layer norm over the last dimension with unit gain and zero shift.
    pub fn layernorm(&self) -> Tensor {
        assert!(self.ndim() >= 1, "layernorm: needs at least one dim");
        let dim = *self.shape.last().unwrap();
        let rows = self.numel() / dim;
        let gamma = vec![1.0; dim];
        let beta = vec![0.0; dim];
        let mut out = Tensor::zeros(&self.shape);
        let mut mean = vec![0.0; rows];
        let mut rstd = vec![0.0; rows];
        crate::ops::norm::layernorm_forward(
            &self.data, &gamma, &beta, &mut out.data, &mut mean, &mut rstd, rows, dim, 1e-5,
        );
        out
    }
}

#[cfg(test)]
mod op_wrapper_tests {
    use super::*;

    #[test]
    fn matmul_agrees_with_nt_through_transpose() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|i| (i as f32) * 0.5).collect(), &[3, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 4]);
        let c2 = a.matmul_nt(&b.transposed());
        for (x, y) in c.data().iter().zip(c2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn softmax_rows_normalize() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0], &[2, 3]);
        let s = a.softmax();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!((s.at2(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn layernorm_standardizes_rows() {
        let a = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 4]);
        let n = a.layernorm();
        let mean: f32 = n.data().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn gelu_matches_scalar() {
        let a = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        let g = a.gelu();
        assert_eq!(g.data()[1], 0.0);
        assert!((g.data()[2] - crate::ops::activation::gelu_scalar(2.0)).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }
}
