//! Property tests for the tensor substrate: f16 conversion invariants and
//! kernel identities that must hold for arbitrary shapes and values.

use proptest::prelude::*;
use zero_tensor::ops::loss::{cross_entropy_fused, cross_entropy_loss};
use zero_tensor::ops::matmul::{sgemm, sgemm_nt, sgemm_tn, transpose};
use zero_tensor::ops::norm::layernorm_forward;
use zero_tensor::ops::softmax::softmax_forward;
use zero_tensor::F16;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn f16_round_trip_error_is_within_half_ulp(v in -60000.0f32..60000.0) {
        let h = F16::from_f32(v).to_f32();
        // Relative error ≤ 2^-11 for normals; absolute ≤ 2^-25 near zero.
        let tol = (v.abs() * 2.0_f32.powi(-11)).max(2.0_f32.powi(-25));
        prop_assert!((v - h).abs() <= tol, "{v} -> {h}");
    }

    #[test]
    fn f16_conversion_is_monotone(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }

    #[test]
    fn f16_preserves_sign_and_zero(v in -60000.0f32..60000.0) {
        let h = F16::from_f32(v).to_f32();
        if v > 2.0_f32.powi(-24) {
            prop_assert!(h >= 0.0);
        } else if v < -2.0_f32.powi(-24) {
            prop_assert!(h <= 0.0);
        }
    }

    #[test]
    fn f16_idempotent(v in -60000.0f32..60000.0) {
        // Quantizing twice equals quantizing once.
        let once = F16::from_f32(v);
        let twice = F16::from_f32(once.to_f32());
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    #[test]
    fn matmul_identity(n in 1usize..12, seed in 0u64..100) {
        // A · I = A.
        let a: Vec<f32> = (0..n * n)
            .map(|i| (((i as u64 + seed) * 37 % 97) as f32 - 48.0) / 10.0)
            .collect();
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut c = vec![0.0; n * n];
        sgemm(&a, &eye, &mut c, n, n, n);
        for (x, y) in a.iter().zip(&c) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transposed_variants_agree(
        m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..100,
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| ((i as u64 * 13 + seed) % 19) as f32 - 9.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i as u64 * 7 + seed) % 23) as f32 - 11.0).collect();
        let mut want = vec![0.0; m * n];
        sgemm(&a, &b, &mut want, m, k, n);
        // sgemm_nt with explicitly transposed B.
        let mut b_t = vec![0.0; k * n];
        transpose(&b, &mut b_t, k, n);
        let mut got = vec![0.0; m * n];
        sgemm_nt(&a, &b_t, &mut got, m, k, n);
        for (x, y) in want.iter().zip(&got) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        // sgemm_tn with explicitly transposed A.
        let mut a_t = vec![0.0; m * k];
        transpose(&a, &mut a_t, m, k);
        let mut got = vec![0.0; m * n];
        sgemm_tn(&a_t, &b, &mut got, m, k, n);
        for (x, y) in want.iter().zip(&got) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(
        rows in 1usize..6, cols in 1usize..12, seed in 0u64..100,
    ) {
        let x: Vec<f32> = (0..rows * cols)
            .map(|i| (((i as u64 + seed) * 31 % 41) as f32 - 20.0) / 4.0)
            .collect();
        let mut y = vec![0.0; rows * cols];
        softmax_forward(&x, &mut y, rows, cols);
        for r in 0..rows {
            let row = &y[r * cols..(r + 1) * cols];
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn layernorm_output_is_normalized(
        rows in 1usize..5, dim in 2usize..16, seed in 0u64..100,
    ) {
        let x: Vec<f32> = (0..rows * dim)
            .map(|i| (((i as u64 * 29 + seed) % 53) as f32 - 26.0) / 5.0)
            .collect();
        let gamma = vec![1.0; dim];
        let beta = vec![0.0; dim];
        let mut y = vec![0.0; rows * dim];
        let mut mean = vec![0.0; rows];
        let mut rstd = vec![0.0; rows];
        layernorm_forward(&x, &gamma, &beta, &mut y, &mut mean, &mut rstd, rows, dim, 1e-5);
        for r in 0..rows {
            let row = &y[r * dim..(r + 1) * dim];
            let m: f32 = row.iter().sum::<f32>() / dim as f32;
            prop_assert!(m.abs() < 1e-4, "row mean {m}");
        }
    }

    #[test]
    fn cross_entropy_fused_matches_forward_only(
        tokens in 1usize..6, vocab in 2usize..12, seed in 0u64..100,
    ) {
        let logits: Vec<f32> = (0..tokens * vocab)
            .map(|i| (((i as u64 + seed) * 17 % 31) as f32 - 15.0) / 4.0)
            .collect();
        let targets: Vec<u32> = (0..tokens).map(|i| ((i as u64 + seed) % vocab as u64) as u32).collect();
        let mut d = vec![0.0; tokens * vocab];
        let a = cross_entropy_fused(&logits, &targets, &mut d, tokens, vocab);
        let b = cross_entropy_loss(&logits, &targets, tokens, vocab);
        prop_assert!((a - b).abs() < 1e-5);
        // Gradient rows sum to ~0 and loss is non-negative.
        prop_assert!(a >= 0.0);
        for t in 0..tokens {
            let s: f32 = d[t * vocab..(t + 1) * vocab].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }
}
