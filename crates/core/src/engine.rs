//! The per-rank ZeRO training engine.
//!
//! One `RankEngine` runs on each rank (thread) of a `dp × mp` grid and
//! implements the paper's four data-parallel regimes over the same model
//! and collectives:
//!
//! * [`ZeroStage::Ddp`] — replicate everything, all-reduce gradients
//!   (the PyTorch-DDP baseline of §10.1).
//! * [`ZeroStage::One`] — P_os (§5.1): optimizer states sharded 1/N_d;
//!   gradients reduce-scattered so each rank owns its shard's average,
//!   updated parameters all-gathered.
//! * [`ZeroStage::Two`] — P_os+g (§5.2): gradients partitioned too;
//!   per-unit gradients are bucketized (CB, §6.2) and reduce-scattered to
//!   their owners as backward proceeds, then freed.
//! * [`ZeroStage::Three`] — P_os+g+p (§5.3): parameters partitioned;
//!   each unit's parameters are all-gathered right before use in forward
//!   and again in backward, and discarded right after — the dynamic
//!   communication schedule of §7.2.2 with its 3Ψ total volume.
//!
//! ZeRO-R is layered on top: activation checkpointing with optional
//! MP-partitioned checkpoints P_a and CPU offload P_a+cpu (§6.1),
//! constant-size fused buffers CB for every flat-space collective (§6.2),
//! and a contiguous checkpoint arena MD (§6.3).

use std::sync::Arc;

use zero_comm::{
    CollectiveKind, CommError, Communicator, Grid, Group, PendingOp, Precision, ReduceOp,
};
use zero_model::{BlockSaved, Gpt};
use zero_trace::{SpanCategory, StepTimeline, TraceRecorder};
use zero_optim::{
    apply_clip, clip_coefficient, local_sq_norm, Adam, DynamicLossScaler, Sgd,
};
use zero_tensor::F16;

use crate::config::OptimizerKind;

use crate::arena::{ArenaSlot, ContiguousArena};
use crate::bucket::GradBucket;
use crate::config::{ZeroConfig, ZeroStage};
use crate::memory::{MemCategory, MemoryTracker};
use crate::partition::Partitioner;
use crate::plan::{CommPlan, EffectiveCompression, EffectiveOffload, PlanCursor, TierDir, WireFmt};
use crate::store::FlatStore;
use crate::tier::{TierStats, TierStore};

/// Result of one training step.
#[derive(Clone, Copy, Debug)]
pub struct StepOutcome {
    /// Mean loss over this rank's micro-batch (identical across MP ranks).
    pub loss: f32,
    /// True if the optimizer step was skipped (fp16 overflow).
    pub skipped: bool,
    /// Global gradient norm, when clipping is enabled.
    pub grad_norm: Option<f64>,
    /// Loss scale in effect during the step (1.0 in fp32 mode).
    pub loss_scale: f32,
}

/// Storage for one activation checkpoint.
struct Checkpoint {
    data: CkptData,
    /// Elements of the full (unpartitioned) activation.
    full_len: usize,
    /// Whether only this rank's 1/N_m slice is stored (P_a).
    partitioned: bool,
    /// Whether the slice lives in CPU memory (P_a+cpu).
    offloaded: bool,
    /// Logical bytes accounted (for the matching free).
    bytes: u64,
}

enum CkptData {
    Own(Vec<f32>),
    Arena(ArenaSlot),
}

/// A bucket flush whose reduce-scatter is in flight on the progress
/// thread: the handle plus where its owner piece lands when waited.
struct InflightReduce {
    /// Destination range within `grad_shard` (shard-local coordinates).
    local: std::ops::Range<usize>,
    op: PendingOp,
    /// Fused-buffer bytes held until the wait (memory accounting).
    bytes: u64,
}

/// A stage-3 parameter all-gather issued ahead of use (the double-buffered
/// prefetch slot: at most one of these is outstanding).
struct PendingFetch {
    /// Unit index the gather materializes.
    unit: usize,
    op: PendingOp,
    /// Full unit length in elements.
    len: usize,
    /// hpZ: when this is a global (first-touch) gather, the unit's flat
    /// range — on completion the rank's secondary slice is stashed into
    /// the node-local replica. `None` for node-scope refetches.
    stash: Option<std::ops::Range<usize>>,
    /// Offload: the host→device fetch of this rank's shard piece, issued
    /// to the FIFO progress thread ahead of the gather (so the modeled
    /// transfer completes before the ring starts) and waited first.
    tier: Option<PendingOp>,
}

/// The optimizer over the master shard, selected by
/// [`OptimizerKind`](crate::config::OptimizerKind).
enum OptState {
    Adam(Adam),
    Sgd(Sgd),
}

impl OptState {
    fn new(numel: usize, kind: OptimizerKind) -> OptState {
        match kind {
            OptimizerKind::Adam(cfg) => OptState::Adam(Adam::new(numel, cfg)),
            OptimizerKind::Sgd(cfg) => OptState::Sgd(Sgd::new(numel, cfg)),
        }
    }

    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        match self {
            OptState::Adam(a) => a.step(params, grads),
            OptState::Sgd(s) => s.step(params, grads),
        }
    }

    fn set_lr(&mut self, lr: f32) {
        match self {
            OptState::Adam(a) => a.set_lr(lr),
            OptState::Sgd(s) => s.set_lr(lr),
        }
    }
}

/// One rank's ZeRO engine.
pub struct RankEngine {
    gpt: Gpt,
    zcfg: ZeroConfig,
    grid: Grid,
    comm: Communicator,
    dp_group: Group,
    mp_group: Group,
    dp_idx: usize,
    mp_idx: usize,
    part: Partitioner,
    /// Effective ZeRO++ levers for this run (qwZ/hpZ/qgZ after stage and
    /// topology gating) — resolved identically to the plan builder's.
    comp: EffectiveCompression,
    /// Effective tier-offload levers (which state classes live in the
    /// host tier) — resolved identically to the plan builder's.
    off: EffectiveOffload,
    /// The memory tier: byte meter and modeled host-link clock for every
    /// spill/fetch the engine issues. `None` when offload is off.
    tier: Option<TierStore>,
    /// hpZ: this rank's intra-node group (`node_size` consecutive ranks);
    /// aliases the DP group when hpZ is off.
    node_group: Group,
    /// hpZ: partition of flat parameter space over the node's G slots.
    sec_part: Partitioner,
    /// hpZ secondary parameter partition: the node-local replica shard
    /// (≈ 2Ψ/G), populated by each unit's first global all-gather of the
    /// step and served back by node-scope refetches.
    secondary: Option<FlatStore>,
    /// hpZ per-unit first-touch flags, reset at every plan install: once a
    /// unit's global gather has been issued this step, every later fetch
    /// of it resolves intra-node over the secondary partition.
    sec_stashed: Vec<bool>,

    /// Working parameters consumed by forward/backward: full flat buffer
    /// (stages DDP/1/2) or this rank's 1/N_d shard (stage 3).
    work: FlatStore,
    /// fp32 master parameters: full (DDP) or the DP shard (stages 1–3).
    master: Vec<f32>,
    /// Optimizer state over `master`.
    opt: OptState,
    /// Full flat gradient buffer (stages DDP/1 only).
    full_grads: Option<FlatStore>,
    /// Reduced gradient shard (stages 2/3 only).
    grad_shard: Option<FlatStore>,

    bucket: GradBucket,
    /// In-flight bucket reduce-scatters (overlap mode): issued as backward
    /// produces them, waited in FIFO order at end-of-backward so gradient
    /// accumulation order — and therefore the loss — is bitwise identical
    /// to synchronous execution.
    inflight_rs: Vec<InflightReduce>,
    /// The stage-3 prefetch slot: the next unit's parameter all-gather,
    /// issued one layer ahead (overlap mode).
    prefetch: Option<PendingFetch>,
    /// The declarative schedule the runtime collectives are derived from:
    /// every engine entry point installs its [`CommPlan`] here, and every
    /// collective call site pops (and is parameterized by) the next
    /// planned op — see [`crate::plan`].
    plan: PlanCursor,
    scaler: Option<DynamicLossScaler>,
    arena: Option<ContiguousArena>,
    mem: MemoryTracker,
    /// This rank's span recorder — shared with the communicator, whose
    /// progress thread records collective execution spans on it.
    trace: Arc<TraceRecorder>,
    step: u64,
    /// Monotone micro-batch counter (drives deterministic dropout seeds).
    micro_seq: u64,
}

impl RankEngine {
    /// Builds the engine for one rank.
    ///
    /// `initial_params` is this MP shard's full flat fp32 parameter buffer
    /// (every DP replica passes identical values); the engine derives its
    /// working copy and master shard from it.
    ///
    /// # Panics
    /// Panics on configuration inconsistencies (grid vs. world size,
    /// parameter length vs. layout, invalid `ZeroConfig`).
    pub fn new(
        gpt: Gpt,
        initial_params: &[f32],
        zcfg: ZeroConfig,
        grid: Grid,
        comm: Communicator,
    ) -> RankEngine {
        zcfg.validate();
        assert_eq!(
            grid.world_size(),
            comm.world_size(),
            "grid does not match communicator world"
        );
        assert_eq!(
            initial_params.len(),
            gpt.num_params(),
            "initial params do not match model layout"
        );
        assert_eq!(
            gpt.mp_degree(),
            grid.mp_degree(),
            "model MP degree does not match grid"
        );
        let rank = comm.rank();
        let trace = comm.trace();
        let (dp_idx, mp_idx) = grid.coords(rank);
        let dp_group = grid.dp_group(rank);
        let mp_group = grid.mp_group(rank);
        let psi = gpt.num_params();
        let part = Partitioner::new(psi, grid.dp_degree());
        let my_shard = part.shard_range(dp_idx);

        let comp = EffectiveCompression::resolve(&zcfg, grid);
        let off = EffectiveOffload::resolve(&zcfg, grid);
        let node_group = if comp.hpz {
            zero_comm::NodeTopology::new(comp.node_size).node_group(rank)
        } else {
            dp_group.clone()
        };
        let sec_part = Partitioner::new(psi, comp.node_size.max(1));

        let mut mem = MemoryTracker::new();
        // Arm the device budget before the first allocation: from here on
        // the tracker panics the moment live device bytes would exceed it,
        // so a run that completes has *proved* peak device memory fit.
        if zcfg.tier.enabled {
            mem.set_device_budget(Some(zcfg.tier.device_budget));
        }

        // hpZ secondary partition: the node-local replica shard, priced as
        // device memory (but not a §3 model state — it is a derived cache).
        let secondary = comp.hpz.then(|| {
            // Node groups are G consecutive ranks, so the slot is direct.
            let slot = rank % comp.node_size;
            let sec = FlatStore::zeros(sec_part.shard_range(slot).len(), zcfg.fp16);
            mem.alloc(MemCategory::SecondaryParams, sec.bytes());
            sec
        });
        let sec_stashed = vec![false; gpt.layout().units().len()];

        // Working parameters. Under stage-3 offload the shard's home is
        // the host tier (every use fetches a unit's piece up), so it is
        // priced as host — not device — residency.
        let work = if zcfg.stage.partitions_params() {
            FlatStore::from_f32(&initial_params[my_shard.clone()], zcfg.fp16)
        } else {
            FlatStore::from_f32(initial_params, zcfg.fp16)
        };
        let work_cat = if off.params {
            MemCategory::HostParamShard
        } else {
            MemCategory::ParamsFp16
        };
        mem.alloc(work_cat, work.bytes());

        // fp32 master copy: full for DDP, shard otherwise. With offload
        // the master and both moments are host-resident (ZeRO-Offload's
        // host optimizer), collapsing into one host category.
        let (master_cat, mom_cat, var_cat) = if off.opt_state {
            (
                MemCategory::HostOptimizerStates,
                MemCategory::HostOptimizerStates,
                MemCategory::HostOptimizerStates,
            )
        } else {
            (
                MemCategory::MasterParams,
                MemCategory::Momentum,
                MemCategory::Variance,
            )
        };
        let master: Vec<f32> = if zcfg.stage.partitions_optimizer() {
            initial_params[my_shard].to_vec()
        } else {
            initial_params.to_vec()
        };
        mem.alloc(master_cat, 4 * master.len() as u64);
        let mut opt = OptState::new(master.len(), zcfg.optimizer);
        if let OptState::Adam(a) = &mut opt {
            a.attach_trace(trace.clone());
        }
        // Optimizer-state accounting: Adam = momentum + variance (K = 12
        // with the master copy); SGD-momentum = velocity only (K = 8);
        // plain SGD = nothing (K = 4).
        match &opt {
            OptState::Adam(_) => {
                mem.alloc(mom_cat, 4 * master.len() as u64);
                mem.alloc(var_cat, 4 * master.len() as u64);
            }
            OptState::Sgd(s) => {
                mem.alloc(mom_cat, s.state_bytes() as u64);
            }
        }

        // Gradient storage. Offloaded stages 2/3 keep the reduced shard
        // host-resident (it feeds the host optimizer, spilled bucket by
        // bucket as backward reduces).
        let (full_grads, grad_shard) = if zcfg.stage.partitions_grads() {
            let shard = FlatStore::zeros(part.shard_range(dp_idx).len(), zcfg.fp16);
            let cat = if off.grads {
                MemCategory::HostGradShard
            } else {
                MemCategory::Gradients
            };
            mem.alloc(cat, shard.bytes());
            (None, Some(shard))
        } else {
            let full = FlatStore::zeros(psi, zcfg.fp16);
            mem.alloc(MemCategory::Gradients, full.bytes());
            (Some(full), None)
        };

        RankEngine {
            bucket: GradBucket::new(zcfg.bucket_elems),
            inflight_rs: Vec::new(),
            prefetch: None,
            plan: PlanCursor::idle(),
            scaler: zcfg.fp16.then(|| DynamicLossScaler::new(zcfg.initial_loss_scale)),
            arena: None,
            gpt,
            zcfg,
            grid,
            comm,
            dp_group,
            mp_group,
            dp_idx,
            mp_idx,
            part,
            comp,
            tier: off.any().then(|| TierStore::new(zcfg.tier)),
            off,
            node_group,
            sec_part,
            secondary,
            sec_stashed,
            work,
            master,
            opt,
            full_grads,
            grad_shard,
            mem,
            trace,
            step: 0,
            micro_seq: 0,
        }
    }

    /// This rank's global id.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Data-parallel coordinate.
    pub fn dp_rank(&self) -> usize {
        self.dp_idx
    }

    /// Model-parallel coordinate.
    pub fn mp_rank(&self) -> usize {
        self.mp_idx
    }

    /// The memory tracker (read it after steps for measured footprints).
    pub fn memory(&self) -> &MemoryTracker {
        &self.mem
    }

    /// Which state classes cross the memory tier on this rank.
    pub fn offload(&self) -> EffectiveOffload {
        self.off
    }

    /// Byte/op meters for this rank's tier traffic (zero when offload is
    /// off).
    pub fn tier_stats(&self) -> TierStats {
        self.tier.as_ref().map(|t| t.stats()).unwrap_or_default()
    }

    /// Modeled wall time this rank's tier transfers would take on the
    /// configured host link.
    pub fn tier_time(&self) -> std::time::Duration {
        self.tier
            .as_ref()
            .map(|t| t.modeled_time())
            .unwrap_or_default()
    }

    /// Communication counters for this rank.
    pub fn traffic(&self) -> zero_comm::TrafficSnapshot {
        self.comm.stats().snapshot()
    }

    /// Per-kind wait vs in-flight execution timing for this rank's
    /// collectives. Under overlap, wait time shrinks toward zero while
    /// execution time (on the progress thread) stays put.
    pub fn timing(&self) -> zero_comm::TimingSnapshot {
        self.comm.stats().timing()
    }

    /// This rank's span recorder (shared with the communicator).
    pub fn trace(&self) -> Arc<TraceRecorder> {
        self.trace.clone()
    }

    /// Snapshot of everything traced on this rank so far: spans, instant
    /// events, and counter samples, ready for querying or Chrome export.
    pub fn timeline(&self) -> StepTimeline {
        self.trace.timeline()
    }

    /// The flat range of this rank's DP shard.
    pub fn dp_shard_range(&self) -> std::ops::Range<usize> {
        self.part.shard_range(self.dp_idx)
    }

    /// The flat range covered by [`Self::master_params`]: the DP shard for
    /// stages 1–3, the full space for DDP.
    pub fn master_range(&self) -> std::ops::Range<usize> {
        if self.zcfg.stage.partitions_optimizer() {
            self.part.shard_range(self.dp_idx)
        } else {
            0..self.part.total()
        }
    }

    /// fp32 master parameters: the full buffer under DDP, the DP shard
    /// otherwise.
    pub fn master_params(&self) -> &[f32] {
        &self.master
    }

    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Current loss scale (1.0 in fp32 mode).
    pub fn loss_scale(&self) -> f32 {
        self.scaler.as_ref().map_or(1.0, |s| s.scale())
    }

    /// The model.
    pub fn model(&self) -> &Gpt {
        &self.gpt
    }

    /// The process grid this engine runs on.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Tears the engine down, returning its communicator — used when
    /// rebuilding an engine in place (e.g. restart-and-resume tests).
    pub fn into_comm(self) -> Communicator {
        self.comm
    }

    // ----- tier movement (offload) -----

    /// Pops the next planned tier op, meters it through the [`TierStore`]
    /// (bytes + modeled host-link time), and submits the transfer to the
    /// FIFO progress thread. The plan's `issue_pos` anchor is checked by
    /// the pop — the engine cannot reorder tier traffic against the
    /// collective stream without panicking. FIFO submission means a fetch
    /// issued before an all-gather completes before that gather starts.
    fn start_tier_op(&mut self, dir: TierDir, label: &str) -> PendingOp {
        let t = self.plan.take_tier(dir, label);
        let store = self.tier.as_mut().expect("tier store when offload is on");
        let delay = match dir {
            TierDir::Fetch => store.record_fetch(t.bytes),
            TierDir::Spill => store.record_spill(t.bytes),
        };
        self.comm.start_tier_move(t.label, t.bytes, delay)
    }

    // ----- parameter materialization -----

    /// Materializes unit `u`'s parameters as an f32 buffer.
    ///
    /// Stage 3 all-gathers the pieces from every DP rank's shard (the
    /// "broadcast … from the data parallel process responsible for that
    /// partition" of §5.3, realized as a ring all-gather of uneven
    /// pieces); other stages widen the local slice.
    fn fetch_unit(&mut self, u: usize) -> Result<Vec<f32>, CommError> {
        let unit_range = self.gpt.layout().units()[u].range.clone();
        let len = unit_range.len();
        self.mem.alloc(MemCategory::Buffers, 4 * len as u64);
        if self.zcfg.stage.partitions_params() {
            let prec = self.precision();
            // Offload: the local shard piece lives in the host tier and
            // must be fetched up before it can seed the gather. Sync path
            // blocks on the modeled transfer here (demand = issue).
            if self.off.params {
                self.start_tier_op(TierDir::Fetch, "tier-param-fetch")
                    .wait()?;
            }
            let mut out = vec![0.0; len];
            if self.comp.hpz && self.sec_stashed[u] {
                // hpZ refetch: raw all-gather over the node-local
                // secondary partition — never crosses a node boundary.
                let op = self.plan.take(CollectiveKind::AllGather, &self.node_group);
                assert_eq!(op.total_elems(), len, "planned fetch-unit size");
                let piece = self.read_secondary_piece(&unit_range);
                self.comm
                    .all_gather_var_in(&self.node_group, &piece, &mut out, &op.counts, prec)?;
                return Ok(out);
            }
            let op = self.plan.take(CollectiveKind::AllGather, &self.dp_group);
            assert_eq!(op.total_elems(), len, "planned fetch-unit size");
            let local = self.part.local_slice_of(self.dp_idx, &unit_range);
            let piece = self.work.read_vec(local);
            match op.wire {
                WireFmt::Int8Block { block } => self.comm.all_gather_quant_in(
                    &self.dp_group,
                    &piece,
                    &mut out,
                    &op.counts,
                    block,
                )?,
                _ => self
                    .comm
                    .all_gather_var_in(&self.dp_group, &piece, &mut out, &op.counts, prec)?,
            }
            if self.comp.hpz {
                self.sec_stashed[u] = true;
                self.stash_secondary(&unit_range, &out);
            }
            Ok(out)
        } else {
            Ok(self.work.read_vec(unit_range))
        }
    }

    /// Releases a fetched unit buffer (the stage-3 "discard after use").
    fn release_unit(&mut self, params: Vec<f32>) {
        self.mem.free(MemCategory::Buffers, 4 * params.len() as u64);
        drop(params);
    }

    /// True when stage-3 fetches go through the double-buffered prefetch.
    #[inline]
    fn prefetches(&self) -> bool {
        self.zcfg.overlap && self.zcfg.stage.partitions_params()
    }

    /// Issues unit `u`'s parameter all-gather to the progress thread
    /// without waiting. The plan op is popped here — plan order is issue
    /// order, which is what the static checks verify.
    fn start_fetch(&mut self, u: usize) -> PendingFetch {
        let unit_range = self.gpt.layout().units()[u].range.clone();
        let len = unit_range.len();
        self.mem.alloc(MemCategory::Buffers, 4 * len as u64);
        let prec = self.precision();
        // Offload prefetch: the shard piece's host→device move rides the
        // same FIFO as the gather it seeds — issued here (one unit ahead
        // of use), completed by the progress thread before the ring runs.
        let tier = self
            .off
            .params
            .then(|| self.start_tier_op(TierDir::Fetch, "tier-param-fetch"));
        if self.comp.hpz && self.sec_stashed[u] {
            let op = self.plan.take(CollectiveKind::AllGather, &self.node_group);
            assert_eq!(op.total_elems(), len, "planned fetch-unit size");
            self.trace.instant(SpanCategory::Collective, "prefetch-issue");
            let piece = self.read_secondary_piece(&unit_range);
            let pending = self
                .comm
                .start_all_gather_var(&self.node_group, &piece, &op.counts, prec);
            return PendingFetch { unit: u, op: pending, len, stash: None, tier };
        }
        let op = self.plan.take(CollectiveKind::AllGather, &self.dp_group);
        assert_eq!(op.total_elems(), len, "planned fetch-unit size");
        self.trace.instant(SpanCategory::Collective, "prefetch-issue");
        let local = self.part.local_slice_of(self.dp_idx, &unit_range);
        let piece = self.work.read_vec(local);
        let pending = match op.wire {
            WireFmt::Int8Block { block } => {
                self.comm.start_all_gather_quant(&self.dp_group, &piece, &op.counts, block)
            }
            _ => self.comm.start_all_gather_var(&self.dp_group, &piece, &op.counts, prec),
        };
        // First-touch flags flip at issue time, mirroring the plan
        // builder: any fetch issued after this one sees the stash.
        let stash = self.comp.hpz.then_some(unit_range);
        if stash.is_some() {
            self.sec_stashed[u] = true;
        }
        PendingFetch { unit: u, op: pending, len, stash, tier }
    }

    /// Prefetch-aware [`Self::fetch_unit`]: takes unit `u` from the
    /// prefetch slot (or issues it now), then issues `next`'s gather into
    /// the slot *before* waiting on `u` — so the next unit's communication
    /// rides under this unit's compute.
    fn fetch_unit_pf(&mut self, u: usize, next: Option<usize>) -> Result<Vec<f32>, CommError> {
        if !self.prefetches() {
            return self.fetch_unit(u);
        }
        let mut cur = match self.prefetch.take() {
            Some(pf) => {
                assert_eq!(pf.unit, u, "prefetch drift: slot holds a different unit");
                pf
            }
            None => self.start_fetch(u),
        };
        if let Some(v) = next {
            let pf = self.start_fetch(v);
            self.prefetch = Some(pf);
        }
        // The tier fetch ran first on the FIFO; settle it before the
        // gather so transfer failures surface in issue order.
        if let Some(t) = cur.tier.take() {
            if let Err(e) = t.wait() {
                self.mem.free(MemCategory::Buffers, 4 * cur.len as u64);
                return Err(e);
            }
        }
        match cur.op.wait() {
            Ok(out) => {
                debug_assert_eq!(out.len(), cur.len);
                if let Some(range) = cur.stash {
                    self.stash_secondary(&range, &out);
                }
                Ok(out)
            }
            Err(e) => {
                self.mem.free(MemCategory::Buffers, 4 * cur.len as u64);
                Err(e)
            }
        }
    }

    /// hpZ: this rank's slot within its node (shard index in `sec_part`).
    /// Node groups are G consecutive ranks, so the slot is direct.
    #[inline]
    fn node_slot(&self) -> usize {
        let slot = self.comm.rank() % self.comp.node_size;
        debug_assert_eq!(self.node_group.local_index(self.comm.rank()), Some(slot));
        slot
    }

    /// hpZ: copies this rank's secondary-partition slice of a freshly
    /// gathered unit into the node-local replica. The gathered buffer is
    /// bitwise identical on every rank (raw and qwZ alike), so the replica
    /// stays node-consistent without extra communication. In fp16 mode the
    /// store rounds dequantized values to fp16 — the replica is exactly
    /// the fp16 image of what this step's forward saw.
    fn stash_secondary(&mut self, unit_range: &std::ops::Range<usize>, data: &[f32]) {
        if self.secondary.is_none() {
            return;
        }
        let slot = self.node_slot();
        let sec_range = self.sec_part.shard_range(slot);
        let lo = sec_range.start.max(unit_range.start);
        let hi = sec_range.end.min(unit_range.end);
        if lo >= hi {
            return;
        }
        let local = self.sec_part.local_slice_of(slot, unit_range);
        self.secondary
            .as_mut()
            .expect("hpZ secondary store")
            .write_from(local, &data[lo - unit_range.start..hi - unit_range.start]);
    }

    /// hpZ: this rank's contribution to a node-scope refetch — the
    /// intersection of the unit with its secondary shard.
    fn read_secondary_piece(&self, unit_range: &std::ops::Range<usize>) -> Vec<f32> {
        let slot = self.node_slot();
        let local = self.sec_part.local_slice_of(slot, unit_range);
        self.secondary.as_ref().expect("hpZ secondary store").read_vec(local)
    }

    /// Waits every in-flight bucket reduce-scatter in FIFO (issue) order
    /// and lands the owner pieces in `grad_shard` — called at the end of
    /// each micro-batch's backward. FIFO order makes the accumulation
    /// order identical to the synchronous path.
    fn drain_inflight(&mut self) -> Result<(), CommError> {
        if self.inflight_rs.is_empty() {
            return Ok(());
        }
        let span = self.trace.begin(SpanCategory::Wait, "drain-inflight");
        let mut first_err: Option<CommError> = None;
        for inf in self.inflight_rs.drain(..) {
            if first_err.is_none() {
                match inf.op.wait() {
                    Ok(out) => {
                        let shard = self.grad_shard.as_mut().expect("gradient shard");
                        shard.add_from(inf.local, &out);
                    }
                    Err(e) => first_err = Some(e),
                }
            }
            // After an error the remaining handles are dropped unawaited —
            // their ops still execute on the progress thread, keeping the
            // SPMD schedule aligned for recovery.
            self.mem.free(MemCategory::Buffers, inf.bytes);
        }
        self.trace.end(span);
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Drops any async state left over from a failed step (handles are
    /// dropped unawaited; the progress thread still runs the ops). Called
    /// on entry to every engine entry point that installs a fresh plan.
    fn clear_transients(&mut self) {
        for inf in self.inflight_rs.drain(..) {
            self.mem.free(MemCategory::Buffers, inf.bytes);
            drop(inf.op);
        }
        if let Some(pf) = self.prefetch.take() {
            self.mem.free(MemCategory::Buffers, 4 * pf.len as u64);
            drop(pf.op);
        }
        // hpZ first-touch flags reset with each plan, mirroring the
        // builder's per-plan state.
        for s in &mut self.sec_stashed {
            *s = false;
        }
    }

    #[inline]
    fn precision(&self) -> Precision {
        if self.zcfg.fp16 {
            Precision::Fp16
        } else {
            Precision::Fp32
        }
    }

    /// Quantizes activations to fp16 width in mixed-precision mode, so the
    /// values flowing between units are genuine fp16 (and checkpointed
    /// values match recomputed ones bit for bit).
    fn maybe_quantize(&self, x: &mut [f32]) {
        if self.zcfg.fp16 {
            for v in x {
                *v = F16::from_f32(*v).to_f32();
            }
        }
    }

    // ----- checkpoints (ZeRO-R: P_a / P_a+cpu / MD) -----

    fn ckpt_store_len(&self, full_len: usize) -> usize {
        if self.zcfg.partition_activations {
            zero_comm::chunk_range(full_len, self.mp_group.len(), self.mp_idx).len()
        } else {
            full_len
        }
    }

    fn store_checkpoint(&mut self, x: &[f32]) -> Checkpoint {
        let span = self.trace.begin(SpanCategory::Checkpoint, "ckpt-store");
        let full_len = x.len();
        let partitioned = self.zcfg.partition_activations;
        let offloaded = self.zcfg.offload_checkpoints;
        let slice: &[f32] = if partitioned {
            &x[zero_comm::chunk_range(full_len, self.mp_group.len(), self.mp_idx)]
        } else {
            x
        };
        let bytes = self.precision().bytes() * slice.len() as u64;
        let cat = if offloaded {
            MemCategory::CpuOffload
        } else {
            MemCategory::Checkpoints
        };
        self.mem.alloc(cat, bytes);
        if offloaded {
            self.mem.record_cpu_transfer(bytes);
        }
        let data = if self.zcfg.use_arena && !offloaded {
            if self.arena.is_none() {
                // Size the arena once: one checkpoint per block.
                let cap = self.ckpt_store_len(full_len) * self.gpt.config().layers;
                self.arena = Some(ContiguousArena::new(cap));
            }
            CkptData::Arena(self.arena.as_mut().unwrap().store(slice))
        } else {
            CkptData::Own(slice.to_vec())
        };
        self.trace.end(span);
        Checkpoint {
            data,
            full_len,
            partitioned,
            offloaded,
            bytes,
        }
    }

    /// Re-materializes a checkpointed activation: P_a all-gathers the
    /// slices across the MP group (the extra all-gather §8 prices at
    /// seq·hidden per block); P_a+cpu additionally pays the PCIe
    /// round-trip, which we meter.
    fn fetch_checkpoint(&mut self, c: &Checkpoint) -> Result<Vec<f32>, CommError> {
        let span = self.trace.begin(SpanCategory::Checkpoint, "ckpt-fetch");
        let res = self.fetch_checkpoint_inner(c);
        self.trace.end(span);
        res
    }

    fn fetch_checkpoint_inner(&mut self, c: &Checkpoint) -> Result<Vec<f32>, CommError> {
        let slice: Vec<f32> = match &c.data {
            CkptData::Own(v) => v.clone(),
            CkptData::Arena(slot) => self.arena.as_ref().unwrap().slot(slot).to_vec(),
        };
        if c.offloaded {
            self.mem.record_cpu_transfer(c.bytes);
        }
        if c.partitioned {
            let op = self.plan.take(CollectiveKind::AllGather, &self.mp_group);
            assert_eq!(op.total_elems(), c.full_len, "planned ckpt-gather size");
            let mut out = vec![0.0; c.full_len];
            let prec = self.precision();
            self.comm
                .all_gather_var_in(&self.mp_group, &slice, &mut out, &op.counts, prec)?;
            Ok(out)
        } else {
            Ok(slice)
        }
    }

    fn free_checkpoint(&mut self, c: Checkpoint) {
        let cat = if c.offloaded {
            MemCategory::CpuOffload
        } else {
            MemCategory::Checkpoints
        };
        self.mem.free(cat, c.bytes);
    }

    // ----- gradient dispatch (stage-dependent) -----

    /// Consumes one unit's freshly computed gradients.
    ///
    /// Stages DDP/1 accumulate into the persistent full gradient buffer.
    /// Stages 2/3 push into the constant-size bucket; each flush fires one
    /// reduce-scatter whose owner pieces land in `grad_shard`, after which
    /// the bucket contents are dropped — "after the reduction we no longer
    /// need the gradients and their memory can be released" (§5.2).
    fn dispatch_grads(
        &mut self,
        range: std::ops::Range<usize>,
        mut g: Vec<f32>,
    ) -> Result<(), CommError> {
        if !self.zcfg.stage.partitions_grads() {
            self.full_grads
                .as_mut()
                .expect("full gradient buffer")
                .add_from(range, &g);
            return Ok(());
        }
        // fp16 gradients: quantize before they enter the fused buffer.
        self.maybe_quantize(&mut g);
        let prec = self.precision();
        let overlap = self.zcfg.overlap;
        let Self {
            bucket,
            comm,
            dp_group,
            part,
            grad_shard,
            dp_idx,
            mem,
            plan,
            inflight_rs,
            trace,
            tier,
            off,
            ..
        } = self;
        let off_grads = off.grads;
        let grad_shard = grad_shard.as_mut().expect("gradient shard");
        let mut comm_err: Option<CommError> = None;
        bucket.push(range, g, &mut |r, fused| {
            if comm_err.is_some() {
                return;
            }
            trace.instant(SpanCategory::Collective, "bucket-flush");
            mem.alloc(MemCategory::Buffers, 4 * fused.len() as u64);
            let op = plan.take(CollectiveKind::ReduceScatter, dp_group);
            assert_eq!(op.total_elems(), fused.len(), "planned grad-bucket size");
            let local = part.local_slice_of(*dp_idx, &r);
            let pending = match op.wire {
                WireFmt::QgzInt8 { node_size, block } => comm.start_reduce_scatter_qgz(
                    dp_group,
                    fused,
                    ReduceOp::Mean,
                    &op.counts,
                    node_size,
                    block,
                    prec,
                ),
                _ => comm
                    .start_reduce_scatter_var(dp_group, fused, ReduceOp::Mean, &op.counts, prec),
            };
            if overlap {
                // Deferred: backward keeps computing while the ring runs;
                // `drain_inflight` waits and applies at end-of-backward.
                // Offload spills are deferred with it — planned at the
                // drain, the first point the owner piece exists.
                inflight_rs.push(InflightReduce { local, op: pending, bytes: 4 * fused.len() as u64 });
            } else {
                match pending.wait() {
                    Ok(out) => grad_shard.add_from(local, &out),
                    Err(e) => comm_err = Some(e),
                }
                mem.free(MemCategory::Buffers, 4 * fused.len() as u64);
                // Sync spill: the freshly reduced owner piece moves down
                // to the host tier before backward proceeds.
                if off_grads && comm_err.is_none() {
                    let t = plan.take_tier(TierDir::Spill, "tier-grad-spill");
                    let delay = tier
                        .as_mut()
                        .expect("tier store when offload is on")
                        .record_spill(t.bytes);
                    if let Err(e) = comm.start_tier_move(t.label, t.bytes, delay).wait() {
                        comm_err = Some(e);
                    }
                }
            }
        });
        match comm_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// End-of-backward gradient reduction for the non-bucketed stages,
    /// staged through constant-size buffers (CB): DDP all-reduces every
    /// chunk in place; stage 1 reduce-scatters so this rank's shard region
    /// of the full buffer holds the averaged values.
    /// Flushes whatever gradients remain in the bucket (stages 2/3).
    fn flush_pending_grads(&mut self) -> Result<(), CommError> {
        if !self.zcfg.stage.partitions_grads() {
            return Ok(());
        }
        let Self {
            bucket,
            comm,
            dp_group,
            part,
            grad_shard,
            dp_idx,
            mem,
            zcfg,
            plan,
            inflight_rs,
            trace,
            tier,
            off,
            ..
        } = self;
        let off_grads = off.grads;
        let grad_shard = grad_shard.as_mut().expect("gradient shard");
        let prec = if zcfg.fp16 { Precision::Fp16 } else { Precision::Fp32 };
        let overlap = zcfg.overlap;
        let mut comm_err: Option<CommError> = None;
        bucket.flush_all(&mut |r, fused| {
            if comm_err.is_some() {
                return;
            }
            trace.instant(SpanCategory::Collective, "bucket-flush");
            mem.alloc(MemCategory::Buffers, 4 * fused.len() as u64);
            let op = plan.take(CollectiveKind::ReduceScatter, dp_group);
            assert_eq!(op.total_elems(), fused.len(), "planned grad-flush size");
            let local = part.local_slice_of(*dp_idx, &r);
            let pending = match op.wire {
                WireFmt::QgzInt8 { node_size, block } => comm.start_reduce_scatter_qgz(
                    dp_group,
                    fused,
                    ReduceOp::Mean,
                    &op.counts,
                    node_size,
                    block,
                    prec,
                ),
                _ => comm
                    .start_reduce_scatter_var(dp_group, fused, ReduceOp::Mean, &op.counts, prec),
            };
            if overlap {
                inflight_rs.push(InflightReduce { local, op: pending, bytes: 4 * fused.len() as u64 });
            } else {
                match pending.wait() {
                    Ok(out) => grad_shard.add_from(local, &out),
                    Err(e) => comm_err = Some(e),
                }
                mem.free(MemCategory::Buffers, 4 * fused.len() as u64);
                if off_grads && comm_err.is_none() {
                    let t = plan.take_tier(TierDir::Spill, "tier-grad-spill");
                    let delay = tier
                        .as_mut()
                        .expect("tier store when offload is on")
                        .record_spill(t.bytes);
                    if let Err(e) = comm.start_tier_move(t.label, t.bytes, delay).wait() {
                        comm_err = Some(e);
                    }
                }
            }
        });
        match comm_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn reduce_full_grads(&mut self) -> Result<(), CommError> {
        if self.zcfg.stage.partitions_grads() {
            // Stages 2/3 already reduced everything through the bucket.
            debug_assert_eq!(self.bucket.pending_elems(), 0);
            return Ok(());
        }
        let psi = self.part.total();
        let step = self.zcfg.bucket_elems;
        let prec = self.precision();
        let full = self.full_grads.as_mut().expect("full gradient buffer");
        let mut cursor = 0;
        while cursor < psi {
            let end = (cursor + step).min(psi);
            let chunk = cursor..end;
            self.mem.alloc(MemCategory::Buffers, 4 * chunk.len() as u64);
            let mut staging = full.read_vec(chunk.clone());
            match self.zcfg.stage {
                ZeroStage::Ddp => {
                    match self.zcfg.node_size {
                        Some(g) => {
                            assert_eq!(
                                self.grid.mp_degree(),
                                1,
                                "hierarchical all-reduce requires mp = 1"
                            );
                            let topo = zero_comm::NodeTopology::new(g);
                            let rank = self.comm.rank();
                            let world = self.comm.world_size();
                            // The hierarchy is three planned ops: node
                            // reduce-scatter, cross-node all-reduce of the
                            // owned chunk, node all-gather.
                            let node_group = topo.node_group(rank);
                            let cross_group = topo.cross_group(rank, world);
                            let rs = self.plan.take(CollectiveKind::ReduceScatter, &node_group);
                            assert_eq!(rs.total_elems(), staging.len(), "planned hier size");
                            let _ar = self.plan.take(CollectiveKind::AllReduce, &cross_group);
                            let _ag = self.plan.take(CollectiveKind::AllGather, &node_group);
                            self.comm
                                .hierarchical_all_reduce(&topo, &mut staging, ReduceOp::Mean, prec)?;
                        }
                        None => {
                            let op = self.plan.take(CollectiveKind::AllReduce, &self.dp_group);
                            assert_eq!(op.total_elems(), staging.len(), "planned chunk size");
                            self.comm
                                .all_reduce_in(&self.dp_group, &mut staging, ReduceOp::Mean, prec)?;
                        }
                    }
                    full.write_from(chunk.clone(), &staging);
                }
                ZeroStage::One => {
                    let op = self.plan.take(CollectiveKind::ReduceScatter, &self.dp_group);
                    assert_eq!(op.total_elems(), staging.len(), "planned chunk size");
                    let mut out = vec![0.0; op.counts[self.dp_idx]];
                    self.comm.reduce_scatter_var_in(
                        &self.dp_group,
                        &staging,
                        &mut out,
                        ReduceOp::Mean,
                        &op.counts,
                        prec,
                    )?;
                    if !out.is_empty() {
                        let shard = self.part.shard_range(self.dp_idx);
                        let lo = shard.start.max(chunk.start);
                        full.write_from(lo..lo + out.len(), &out);
                    }
                }
                _ => unreachable!(),
            }
            staging.clear();
            self.mem.free(MemCategory::Buffers, 4 * chunk.len() as u64);
            cursor = end;
        }
        Ok(())
    }

    /// Reads the reduced gradients covering [`Self::master_range`] as f32:
    /// the full averaged buffer under DDP, this rank's shard otherwise.
    fn read_grad_shard(&self) -> Vec<f32> {
        match (&self.full_grads, &self.grad_shard) {
            (Some(full), None) => full.read_vec(self.master_range()),
            (None, Some(s)) => s.read_vec(0..s.len()),
            _ => unreachable!("exactly one gradient store exists"),
        }
    }

    /// True if this rank's reduced gradients contain NaN/Inf.
    fn shard_has_overflow(&self) -> bool {
        let shard = self.part.shard_range(self.dp_idx);
        match (&self.full_grads, &self.grad_shard) {
            (Some(full), None) => full.has_non_finite(shard),
            (None, Some(s)) => s.has_non_finite(0..s.len()),
            _ => unreachable!(),
        }
    }

    /// Publishes updated master parameters into the working copy.
    /// Stages 1/2 all-gather the updated fp16 shards across DP — "an
    /// all-gather … to get the fully updated parameters" (§5.1) — staged
    /// through CB-sized chunks; stage 3 keeps only the local shard; DDP
    /// wrote the full buffer locally.
    fn publish_params(&mut self) -> Result<(), CommError> {
        match self.zcfg.stage {
            ZeroStage::Ddp => {
                let master = std::mem::take(&mut self.master);
                self.work.write_from(0..master.len(), &master);
                self.master = master;
            }
            ZeroStage::Three => {
                let master = std::mem::take(&mut self.master);
                self.work.write_from(0..master.len(), &master);
                self.master = master;
            }
            ZeroStage::One | ZeroStage::Two => {
                // First refresh the local shard region from master…
                let shard = self.part.shard_range(self.dp_idx);
                let master = std::mem::take(&mut self.master);
                self.work.write_from(shard.clone(), &master);
                self.master = master;
                // …then all-gather the (quantized) shards chunk by chunk.
                let psi = self.part.total();
                let step = self.zcfg.bucket_elems;
                let prec = self.precision();
                let mut cursor = 0;
                while cursor < psi {
                    let end = (cursor + step).min(psi);
                    let chunk = cursor..end;
                    self.mem.alloc(MemCategory::Buffers, 4 * chunk.len() as u64);
                    // Host optimizer: the updated shard chunk is fetched
                    // up from the host-resident master before the gather.
                    if self.off.opt_state {
                        self.start_tier_op(TierDir::Fetch, "tier-publish-fetch")
                            .wait()?;
                    }
                    let op = self.plan.take(CollectiveKind::AllGather, &self.dp_group);
                    assert_eq!(op.total_elems(), chunk.len(), "planned publish size");
                    let lo = shard.start.max(chunk.start);
                    let piece = self
                        .work
                        .read_vec(lo..lo + op.counts[self.dp_idx]);
                    let mut out = vec![0.0; chunk.len()];
                    self.comm
                        .all_gather_var_in(&self.dp_group, &piece, &mut out, &op.counts, prec)?;
                    self.work.write_from(chunk.clone(), &out);
                    self.mem.free(MemCategory::Buffers, 4 * chunk.len() as u64);
                    cursor = end;
                }
            }
        }
        Ok(())
    }

    /// Global gradient norm across the whole grid, counting every logical
    /// parameter exactly once: under partitioned stages each DP rank
    /// contributes only its shard and the squares are summed over the
    /// whole world; under DDP every rank already holds the full averaged
    /// gradients, so only the MP dimension is summed. Fields replicated
    /// across MP are down-weighted by 1/N_m either way.
    fn global_grad_norm(&mut self, grads: &[f32]) -> Result<f64, CommError> {
        let range = self.master_range();
        let nm = self.mp_group.len() as f64;
        let mut sq = 0.0_f64;
        if nm > 1.0 {
            let layout = self.gpt.layout();
            for field in layout.fields() {
                let lo = field.range.start.max(range.start);
                let hi = field.range.end.min(range.end);
                if lo >= hi {
                    continue;
                }
                let w = if field.replicated_under_mp() { 1.0 / nm } else { 1.0 };
                sq += w * local_sq_norm(&grads[lo - range.start..hi - range.start]);
            }
        } else {
            sq = local_sq_norm(grads);
        }
        let mut buf = [sq as f32];
        if self.zcfg.stage.partitions_optimizer() {
            let world_group = Group::world(self.comm.world_size());
            let _op = self.plan.take(CollectiveKind::AllReduce, &world_group);
            self.comm.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp32)?;
        } else {
            let Self { comm, mp_group, plan, .. } = self;
            let _op = plan.take(CollectiveKind::AllReduce, mp_group);
            comm.all_reduce_in(mp_group, &mut buf, ReduceOp::Sum, Precision::Fp32)?;
        }
        Ok((buf[0] as f64).sqrt())
    }

    // ----- sharded checkpointing -----

    /// Captures this rank's training-state shard (master parameters,
    /// optimizer state, loss-scaler state). Under stages 1-3 the N_d
    /// shards together hold exactly one copy of the training state --
    /// ZeRO's natural sharded-checkpoint layout.
    pub fn save_snapshot(&self) -> crate::snapshot::RankSnapshot {
        let span = self.trace.begin(SpanCategory::Checkpoint, "snapshot-capture");
        let range = self.master_range();
        let (opt_m, opt_v, opt_t) = match &self.opt {
            OptState::Adam(a) => {
                let (m, v) = a.moments();
                (m.to_vec(), v.to_vec(), a.steps())
            }
            OptState::Sgd(s) => (
                s.velocity().map(|v| v.to_vec()).unwrap_or_default(),
                Vec::new(),
                0,
            ),
        };
        let snap = crate::snapshot::RankSnapshot {
            rank: self.comm.rank() as u32,
            world: self.comm.world_size() as u32,
            step: self.step,
            shard_start: range.start as u64,
            shard_end: range.end as u64,
            master: self.master.clone(),
            opt_m,
            opt_v,
            opt_t,
            scaler: self.scaler.as_ref().map(|s| s.state()),
        };
        self.trace.instant(SpanCategory::Checkpoint, "snapshot-write");
        self.trace.end(span);
        snap
    }

    /// Restores training state from a snapshot and re-publishes the
    /// working parameters. **Collective**: every rank of the grid must
    /// call this (stages 1/2 all-gather the refreshed fp16 parameters).
    ///
    /// # Panics
    /// Panics if the snapshot's rank/world/shard do not match this engine,
    /// or on a communication failure (see [`Self::try_restore_snapshot`]).
    pub fn restore_snapshot(&mut self, snap: &crate::snapshot::RankSnapshot) {
        self.try_restore_snapshot(snap)
            .unwrap_or_else(|e| std::panic::panic_any(e));
    }

    /// Fallible [`Self::restore_snapshot`]: surfaces communication failures
    /// during the parameter re-publish as [`CommError`] instead of
    /// panicking, so a supervisor can treat them as recoverable.
    pub fn try_restore_snapshot(
        &mut self,
        snap: &crate::snapshot::RankSnapshot,
    ) -> Result<(), CommError> {
        let span = self.trace.begin(SpanCategory::Checkpoint, "snapshot-restore");
        let res = self.try_restore_snapshot_inner(snap);
        self.trace.end(span);
        res
    }

    fn try_restore_snapshot_inner(
        &mut self,
        snap: &crate::snapshot::RankSnapshot,
    ) -> Result<(), CommError> {
        assert_eq!(snap.rank as usize, self.comm.rank(), "snapshot rank mismatch");
        assert_eq!(
            snap.world as usize,
            self.comm.world_size(),
            "snapshot world-size mismatch (resume requires the same grid)"
        );
        let range = self.master_range();
        assert_eq!(
            (snap.shard_start as usize, snap.shard_end as usize),
            (range.start, range.end),
            "snapshot shard mismatch"
        );
        assert_eq!(snap.master.len(), self.master.len(), "master length mismatch");
        self.master.copy_from_slice(&snap.master);
        self.opt = match self.zcfg.optimizer {
            OptimizerKind::Adam(cfg) => OptState::Adam(Adam::from_state(
                cfg,
                snap.opt_m.clone(),
                snap.opt_v.clone(),
                snap.opt_t,
            )),
            OptimizerKind::Sgd(cfg) => OptState::Sgd(Sgd::from_state(
                cfg,
                (cfg.momentum != 0.0).then(|| snap.opt_m.clone()),
            )),
        };
        if let OptState::Adam(a) = &mut self.opt {
            a.attach_trace(self.trace.clone());
        }
        self.step = snap.step;
        if let (Some(scaler), Some((scale, good, skipped))) = (&mut self.scaler, snap.scaler) {
            scaler.restore(scale, good, skipped);
        }
        self.clear_transients();
        let refresh = CommPlan::publish_refresh(self.gpt.layout(), &self.zcfg, self.grid);
        self.plan.install(&refresh, self.comm.rank(), "publish-refresh");
        self.publish_params()?;
        self.plan.assert_exhausted("snapshot restore");
        Ok(())
    }

    // ----- the training step -----

    /// Runs one training step over this rank's micro-batch.
    ///
    /// `ids`/`targets` hold `local_batch · seq` tokens. Under MP, all
    /// ranks of an MP group must receive identical data.
    ///
    /// # Panics
    /// Panics on a communication failure — the [`CommError`] itself is the
    /// panic payload, so [`zero_comm::try_launch`] recovers it typed. Use
    /// [`Self::try_train_step`] to handle failures in-line.
    pub fn train_step(&mut self, ids: &[u32], targets: &[u32], local_batch: usize) -> StepOutcome {
        self.train_step_micro(&[(ids, targets)], local_batch)
    }

    /// Fallible [`Self::train_step`]: a dead, hung, or corrupting peer
    /// surfaces as `Err(CommError)` instead of a panic.
    pub fn try_train_step(
        &mut self,
        ids: &[u32],
        targets: &[u32],
        local_batch: usize,
    ) -> Result<StepOutcome, CommError> {
        self.try_train_step_micro(&[(ids, targets)], local_batch)
    }

    /// Runs one training step with gradient accumulation over several
    /// micro-batches: forward+backward per micro-batch, gradients
    /// accumulated (and, under stages 2/3, reduce-scattered as they are
    /// produced), one optimizer step at the end. This is how the paper's
    /// large total batch sizes (Tables 5–6) are realized on limited
    /// memory: total batch = micro-batch × accumulation × N_d.
    ///
    /// # Panics
    /// Panics if `micros` is empty, or on a communication failure (the
    /// [`CommError`] is the panic payload — see [`Self::try_train_step_micro`]).
    pub fn train_step_micro(
        &mut self,
        micros: &[(&[u32], &[u32])],
        local_batch: usize,
    ) -> StepOutcome {
        self.try_train_step_micro(micros, local_batch)
            .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Self::train_step_micro`].
    ///
    /// On `Err` the engine's own state may be mid-step (partially
    /// accumulated gradients) but the master parameters and optimizer state
    /// are untouched — recovery is "restore the last snapshot", not "patch
    /// the wreckage".
    pub fn try_train_step_micro(
        &mut self,
        micros: &[(&[u32], &[u32])],
        local_batch: usize,
    ) -> Result<StepOutcome, CommError> {
        assert!(!micros.is_empty(), "need at least one micro-batch");
        // A previously failed step may have left handles in flight; they
        // are dropped (not cancelled) before the fresh plan goes in.
        self.clear_transients();
        let scale = self.loss_scale();

        // Declare the step's communication schedule up front; every
        // collective below is derived from (and checked against) it.
        let act_elems = local_batch * self.gpt.config().seq * self.gpt.config().hidden;
        let prefix =
            CommPlan::step_prefix(self.gpt.layout(), &self.zcfg, self.grid, micros.len(), act_elems);
        self.plan.install(&prefix, self.comm.rank(), "step-prefix");

        // Zero persistent gradient storage once per optimizer step.
        if let Some(full) = &mut self.full_grads {
            let len = full.len();
            full.zero_range(0..len);
        }
        if let Some(shard) = &mut self.grad_shard {
            let len = shard.len();
            shard.zero_range(0..len);
        }

        let mut loss_sum = 0.0_f32;
        for &(ids, targets) in micros {
            loss_sum += self.accumulate_micro(ids, targets, local_batch, scale)?;
        }
        let loss = loss_sum / micros.len() as f32;
        self.finish_step(loss, scale, micros.len())
    }

    /// One micro-batch's forward + backward, dispatching gradients into
    /// the stage-appropriate stores. Returns the micro-batch loss.
    fn accumulate_micro(
        &mut self,
        ids: &[u32],
        targets: &[u32],
        local_batch: usize,
        scale: f32,
    ) -> Result<f32, CommError> {
        // The model's MP hook is an infallible `FnMut(&mut [f32])`, so
        // errors inside it are parked here and surfaced right after the
        // block call returns.
        let mut mp_err: Option<CommError> = None;
        let layers = self.gpt.config().layers;
        let units: Vec<std::ops::Range<usize>> = self
            .gpt
            .layout()
            .units()
            .iter()
            .map(|u| u.range.clone())
            .collect();
        let mp_prec = self.precision();
        if let Some(arena) = &mut self.arena {
            arena.reset();
        }
        // Deterministic per-(micro, layer) dropout seeds: the checkpoint
        // recompute in backward regenerates identical masks.
        self.micro_seq += 1;
        let drop_base = self
            .micro_seq
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        let drop_p = self.zcfg.dropout;
        let drop_for = move |layer: usize| zero_model::Dropout {
            p: drop_p,
            seed: drop_base ^ (layer as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
        };

        // ---------- forward ----------
        // Prefetch window (overlap + stage 3): each fetch issues the next
        // unit's all-gather before waiting its own, so unit u+1's ring
        // runs under unit u's compute.
        let p_embed = self.fetch_unit_pf(0, Some(1))?;
        let span = self.trace.begin(SpanCategory::Compute, "embed-fwd");
        let mut x = self.gpt.embed(&p_embed, ids, local_batch);
        self.trace.end(span);
        self.release_unit(p_embed);
        self.maybe_quantize(&mut x);

        let interval = self.zcfg.checkpoint_interval.max(1);
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let mut saveds: Vec<Option<BlockSaved>> = Vec::new();
        for l in 0..layers {
            // `2 + l` is the next block — or the head when this is the
            // last block.
            let p = self.fetch_unit_pf(1 + l, Some(2 + l))?;
            if self.zcfg.checkpoint_activations && l % interval == 0 {
                // One checkpoint per segment of `interval` blocks (§3.2's
                // memory/recompute dial; interval 1 = one per layer).
                let c = self.store_checkpoint(&x);
                checkpoints.push(c);
            }
            let (mut y, saved) = {
                let Self { gpt, comm, mp_group, plan, trace, .. } = self;
                let span = trace.begin(SpanCategory::Compute, "block-fwd");
                let out = gpt.block_fwd_dropout(l, &p, &x, local_batch, &mut |buf: &mut [f32]| {
                    if mp_err.is_none() {
                        let op = plan.take(CollectiveKind::AllReduce, mp_group);
                        assert_eq!(op.total_elems(), buf.len(), "planned MP hook size");
                        mp_err = comm.all_reduce_in(mp_group, buf, ReduceOp::Sum, mp_prec).err();
                    }
                }, drop_for(l));
                trace.end(span);
                out
            };
            if let Some(e) = mp_err.take() {
                return Err(e);
            }
            self.release_unit(p);
            if self.zcfg.checkpoint_activations {
                drop(saved);
                saveds.push(None);
            } else {
                self.mem
                    .alloc(MemCategory::Activations, 4 * saved.elems() as u64);
                saveds.push(Some(saved));
            }
            self.maybe_quantize(&mut y);
            x = y;
        }

        // ---------- head forward + backward (loss gradient is born here) ----------
        // The head's fetch chains the prefetch into backward's first
        // block refetch (non-checkpointed mode only: checkpointed
        // segments restart the chain at each recompute).
        let head_next = (!self.zcfg.checkpoint_activations && layers > 0).then_some(layers);
        let p_head = self.fetch_unit_pf(1 + layers, head_next)?;
        let head_len = units[1 + layers].len();
        let mut head_grads = vec![0.0; head_len];
        let span = self.trace.begin(SpanCategory::Compute, "head-fwd-bwd");
        let (loss, mut dy) =
            self.gpt
                .head_fwd_bwd(&p_head, &x, targets, &mut head_grads, local_batch);
        self.trace.end(span);
        self.release_unit(p_head);
        drop(x);
        // Apply the loss scale to everything downstream of the loss.
        if scale != 1.0 {
            for v in &mut dy {
                *v *= scale;
            }
            for v in &mut head_grads {
                *v *= scale;
            }
        }
        self.dispatch_grads(units[1 + layers].clone(), head_grads)?;

        // ---------- backward through blocks ----------
        if self.zcfg.checkpoint_activations {
            // Segment-wise: re-materialize `interval` blocks from their
            // checkpoint (the §8-counted recompute all-reduces), then walk
            // the segment backward.
            let mut seg_end = layers;
            while seg_end > 0 {
                let seg_start = ((seg_end - 1) / interval) * interval;
                let ck = checkpoints.pop().expect("checkpoint for segment");
                let mut x_in = self.fetch_checkpoint(&ck)?;
                self.free_checkpoint(ck);
                let mut segment: Vec<(Vec<f32>, BlockSaved)> = Vec::new();
                for l in seg_start..seg_end {
                    let p = self.fetch_unit_pf(1 + l, (l + 1 < seg_end).then(|| 2 + l))?;
                    let (mut y, saved) = {
                        let Self { gpt, comm, mp_group, plan, trace, .. } = self;
                        let span = trace.begin(SpanCategory::Compute, "block-refwd");
                        let out = gpt.block_fwd_dropout(
                            l,
                            &p,
                            &x_in,
                            local_batch,
                            &mut |buf: &mut [f32]| {
                                if mp_err.is_none() {
                                    let op = plan.take(CollectiveKind::AllReduce, mp_group);
                                    assert_eq!(op.total_elems(), buf.len(), "planned MP hook size");
                                    mp_err = comm
                                        .all_reduce_in(mp_group, buf, ReduceOp::Sum, mp_prec)
                                        .err();
                                }
                            },
                            drop_for(l),
                        );
                        trace.end(span);
                        out
                    };
                    if let Some(e) = mp_err.take() {
                        return Err(e);
                    }
                    self.mem
                        .alloc(MemCategory::Activations, 4 * saved.elems() as u64);
                    self.maybe_quantize(&mut y);
                    x_in = y;
                    segment.push((p, saved));
                }
                for l in (seg_start..seg_end).rev() {
                    let (p, saved) = segment.pop().expect("segment entry");
                    self.mem
                        .free(MemCategory::Activations, 4 * saved.elems() as u64);
                    let block_len = units[1 + l].len();
                    let mut block_grads = vec![0.0; block_len];
                    dy = {
                        let Self { gpt, comm, mp_group, plan, trace, .. } = self;
                        let span = trace.begin(SpanCategory::Compute, "block-bwd");
                        let out = gpt.block_bwd_dropout(
                            l,
                            &p,
                            &saved,
                            &dy,
                            &mut block_grads,
                            local_batch,
                            &mut |buf: &mut [f32]| {
                                if mp_err.is_none() {
                                    let op = plan.take(CollectiveKind::AllReduce, mp_group);
                                    assert_eq!(op.total_elems(), buf.len(), "planned MP hook size");
                                    mp_err = comm
                                        .all_reduce_in(mp_group, buf, ReduceOp::Sum, mp_prec)
                                        .err();
                                }
                            },
                            drop_for(l),
                        );
                        trace.end(span);
                        out
                    };
                    if let Some(e) = mp_err.take() {
                        return Err(e);
                    }
                    self.release_unit(p);
                    self.dispatch_grads(units[1 + l].clone(), block_grads)?;
                }
                seg_end = seg_start;
            }
        } else {
            for l in (0..layers).rev() {
                // `l` is block l-1's unit; the last block was issued by
                // the head's fetch above.
                let p = self.fetch_unit_pf(1 + l, (l > 0).then_some(l))?;
                let saved = saveds[l].take().expect("saved activations for block");
                self.mem
                    .free(MemCategory::Activations, 4 * saved.elems() as u64);
                let block_len = units[1 + l].len();
                let mut block_grads = vec![0.0; block_len];
                dy = {
                    let Self { gpt, comm, mp_group, plan, trace, .. } = self;
                    let span = trace.begin(SpanCategory::Compute, "block-bwd");
                    let out = gpt.block_bwd_dropout(
                        l,
                        &p,
                        &saved,
                        &dy,
                        &mut block_grads,
                        local_batch,
                        &mut |buf: &mut [f32]| {
                            if mp_err.is_none() {
                                let op = plan.take(CollectiveKind::AllReduce, mp_group);
                                assert_eq!(op.total_elems(), buf.len(), "planned MP hook size");
                                mp_err =
                                    comm.all_reduce_in(mp_group, buf, ReduceOp::Sum, mp_prec).err();
                            }
                        },
                        drop_for(l),
                    );
                    trace.end(span);
                    out
                };
                if let Some(e) = mp_err.take() {
                    return Err(e);
                }
                self.release_unit(p);
                self.dispatch_grads(units[1 + l].clone(), block_grads)?;
            }
        }

        // ---------- embedding backward ----------
        let embed_len = units[0].len();
        let mut embed_grads = vec![0.0; embed_len];
        let span = self.trace.begin(SpanCategory::Compute, "embed-bwd");
        self.gpt
            .embed_backward(ids, &dy, &mut embed_grads, local_batch);
        self.trace.end(span);
        drop(dy);
        self.dispatch_grads(units[0].clone(), embed_grads)?;
        // Drain the bucket so the next micro-batch's head-first pushes
        // start a fresh contiguous descending run, then wait every
        // reduce-scatter still in flight (the end-of-backward barrier the
        // tentpole moves the waits to).
        self.flush_pending_grads()?;
        let drained = self.inflight_rs.len();
        self.drain_inflight()?;
        // Overlap-mode spills are planned at this drain barrier — the
        // first point the reduced owner pieces exist — one per in-flight
        // reduce-scatter (sync mode spilled inline at each flush).
        if self.off.grads && self.zcfg.overlap {
            for _ in 0..drained {
                self.start_tier_op(TierDir::Spill, "tier-grad-spill").wait()?;
            }
        }
        debug_assert!(self.prefetch.is_none(), "prefetch slot must drain with backward");
        Ok(loss)
    }

    /// Reduces accumulated gradients (stages DDP/1), synchronizes the
    /// overflow flag, and applies (or skips) the optimizer update.
    fn finish_step(
        &mut self,
        loss: f32,
        scale: f32,
        n_micro: usize,
    ) -> Result<StepOutcome, CommError> {
        // ---------- reduce & update ----------
        debug_assert!(self.inflight_rs.is_empty(), "in-flight reduces must drain per micro");
        self.reduce_full_grads()?;

        let local_overflow = self.shard_has_overflow();
        let mut flag = [if local_overflow { 1.0_f32 } else { 0.0 }];
        let world_group = Group::world(self.comm.world_size());
        let _op = self.plan.take(CollectiveKind::AllReduce, &world_group);
        self.comm.all_reduce(&mut flag, ReduceOp::Max, Precision::Fp32)?;
        let overflow = flag[0] > 0.0;
        // The prefix plan ends at the flag — the one data-dependent branch
        // point in the schedule; the rest of the step follows the suffix
        // plan for the observed skip outcome.
        self.plan.assert_exhausted("after overflow flag");

        let skipped = match &mut self.scaler {
            Some(s) => s.update_traced(overflow, &self.trace),
            None => overflow, // fp32 overflow: skip, nothing to rescale
        };
        let suffix = CommPlan::step_suffix(self.gpt.layout(), &self.zcfg, self.grid, skipped);
        self.plan.install(&suffix, self.comm.rank(), "step-suffix");

        let mut grad_norm = None;
        if !skipped {
            let mut g = self.read_grad_shard();
            // Stage 1 host optimizer: gradients reduced into the full
            // device buffer, so the owned shard region spills down once
            // per step (stages 2/3 already spilled bucket by bucket).
            if self.off.opt_state && !self.zcfg.stage.partitions_grads() {
                self.start_tier_op(TierDir::Spill, "tier-grad-spill").wait()?;
            }
            // Undo the loss scale and average over accumulation steps.
            let inv = 1.0 / (scale * n_micro as f32);
            if inv != 1.0 {
                for v in &mut g {
                    *v *= inv;
                }
            }
            if let Some(max_norm) = self.zcfg.clip_grad_norm {
                let norm = self.global_grad_norm(&g)?;
                grad_norm = Some(norm);
                apply_clip(&mut g, clip_coefficient(norm, max_norm));
            }
            let base_lr = match self.zcfg.optimizer {
                OptimizerKind::Adam(c) => c.lr,
                OptimizerKind::Sgd(c) => c.lr,
            };
            self.opt
                .set_lr(base_lr * self.zcfg.lr_schedule.factor(self.step));
            let span = self.trace.begin(SpanCategory::Optimizer, "opt-step");
            self.opt.step(&mut self.master, &g);
            self.trace.end(span);
            self.publish_params()?;
        }
        self.plan.assert_exhausted("end of step");
        self.step += 1;
        self.trace.counter("peak-device-bytes", self.mem.peak_device());
        Ok(StepOutcome {
            loss,
            skipped,
            grad_norm,
            loss_scale: scale,
        })
    }

    /// Forward-only validation loss over this rank's micro-batch.
    ///
    /// # Panics
    /// Panics on a communication failure (the [`CommError`] is the panic
    /// payload — see [`Self::try_eval_loss`]).
    pub fn eval_loss(&mut self, ids: &[u32], targets: &[u32], local_batch: usize) -> f32 {
        self.try_eval_loss(ids, targets, local_batch)
            .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Self::eval_loss`].
    pub fn try_eval_loss(
        &mut self,
        ids: &[u32],
        targets: &[u32],
        local_batch: usize,
    ) -> Result<f32, CommError> {
        let layers = self.gpt.config().layers;
        let mp_prec = self.precision();
        let mut mp_err: Option<CommError> = None;
        let act_elems = local_batch * self.gpt.config().seq * self.gpt.config().hidden;
        self.clear_transients();
        let eval_plan = CommPlan::eval_pass(self.gpt.layout(), &self.zcfg, self.grid, act_elems);
        self.plan.install(&eval_plan, self.comm.rank(), "eval-pass");
        let p = self.fetch_unit_pf(0, Some(1))?;
        let span = self.trace.begin(SpanCategory::Compute, "embed-fwd");
        let mut x = self.gpt.embed(&p, ids, local_batch);
        self.trace.end(span);
        self.release_unit(p);
        self.maybe_quantize(&mut x);
        for l in 0..layers {
            let p = self.fetch_unit_pf(1 + l, Some(2 + l))?;
            let (mut y, saved) = {
                let Self { gpt, comm, mp_group, plan, trace, .. } = self;
                let span = trace.begin(SpanCategory::Compute, "block-fwd");
                let out = gpt.block_fwd(l, &p, &x, local_batch, &mut |buf: &mut [f32]| {
                    if mp_err.is_none() {
                        let op = plan.take(CollectiveKind::AllReduce, mp_group);
                        assert_eq!(op.total_elems(), buf.len(), "planned MP hook size");
                        mp_err = comm.all_reduce_in(mp_group, buf, ReduceOp::Sum, mp_prec).err();
                    }
                });
                trace.end(span);
                out
            };
            if let Some(e) = mp_err.take() {
                return Err(e);
            }
            drop(saved);
            self.release_unit(p);
            self.maybe_quantize(&mut y);
            x = y;
        }
        let p = self.fetch_unit_pf(1 + layers, None)?;
        let span = self.trace.begin(SpanCategory::Compute, "head-loss");
        let loss = self.gpt.head_loss(&p, &x, targets, local_batch);
        self.trace.end(span);
        self.release_unit(p);
        self.plan.assert_exhausted("end of eval");
        Ok(loss)
    }
}
