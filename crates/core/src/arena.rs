//! MD: contiguous pre-allocated memory for long-lived tensors (§6.3).
//!
//! Memory fragmentation arises from interleaving short-lived tensors
//! (recomputed activations, activation gradients) with long-lived ones
//! (checkpoints, parameter gradients). ZeRO "performs on-the-fly memory
//! defragmentation by moving activation checkpoints and gradients to
//! pre-allocated contiguous memory buffers". [`ContiguousArena`] is that
//! pre-allocated buffer: long-lived values are *copied into* it as they
//! are produced, so the general allocator only ever sees short-lived
//! traffic, and the long-lived region is one contiguous block by
//! construction.

/// A handle to a slice placed in the arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaSlot {
    offset: usize,
    len: usize,
    epoch: u64,
}

/// A bump allocator over one pre-allocated contiguous `f32` buffer,
/// reset once per training iteration.
pub struct ContiguousArena {
    buf: Vec<f32>,
    cursor: usize,
    epoch: u64,
    high_water: usize,
}

impl ContiguousArena {
    /// Pre-allocates `capacity` elements.
    pub fn new(capacity: usize) -> ContiguousArena {
        ContiguousArena {
            buf: vec![0.0; capacity],
            cursor: 0,
            epoch: 0,
            high_water: 0,
        }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Elements currently allocated in this epoch.
    pub fn used(&self) -> usize {
        self.cursor
    }

    /// Largest `used()` ever observed — sizes the pre-allocation.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Copies `data` into the arena and returns its slot.
    ///
    /// # Panics
    /// Panics if the arena is out of capacity — the engine sizes arenas
    /// from the model configuration, so overflow is a sizing bug, not a
    /// runtime condition to limp through.
    pub fn store(&mut self, data: &[f32]) -> ArenaSlot {
        let slot = self.reserve(data.len());
        self.slot_mut(&slot).copy_from_slice(data);
        slot
    }

    /// Reserves an uninitialized (zero-filled on first use) slice.
    ///
    /// # Panics
    /// Panics if capacity is exceeded.
    pub fn reserve(&mut self, len: usize) -> ArenaSlot {
        assert!(
            self.cursor + len <= self.buf.len(),
            "arena overflow: need {} more elements, capacity {}",
            self.cursor + len - self.buf.len(),
            self.buf.len()
        );
        let slot = ArenaSlot {
            offset: self.cursor,
            len,
            epoch: self.epoch,
        };
        self.cursor += len;
        if self.cursor > self.high_water {
            self.high_water = self.cursor;
        }
        slot
    }

    /// Reads a slot.
    ///
    /// # Panics
    /// Panics if the slot is from a previous epoch (stale handle).
    pub fn slot(&self, slot: &ArenaSlot) -> &[f32] {
        assert_eq!(slot.epoch, self.epoch, "stale arena slot (epoch mismatch)");
        &self.buf[slot.offset..slot.offset + slot.len]
    }

    /// Mutable access to a slot.
    ///
    /// # Panics
    /// Panics if the slot is stale.
    pub fn slot_mut(&mut self, slot: &ArenaSlot) -> &mut [f32] {
        assert_eq!(slot.epoch, self.epoch, "stale arena slot (epoch mismatch)");
        &mut self.buf[slot.offset..slot.offset + slot.len]
    }

    /// Frees everything at an iteration boundary. Existing slots become
    /// stale; capacity is retained (that is the point: the block is
    /// allocated once and reused every iteration).
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_read_back() {
        let mut a = ContiguousArena::new(16);
        let s1 = a.store(&[1.0, 2.0, 3.0]);
        let s2 = a.store(&[4.0, 5.0]);
        assert_eq!(a.slot(&s1), &[1.0, 2.0, 3.0]);
        assert_eq!(a.slot(&s2), &[4.0, 5.0]);
        assert_eq!(a.used(), 5);
    }

    #[test]
    fn slots_are_contiguous() {
        let mut a = ContiguousArena::new(8);
        let s1 = a.store(&[1.0; 3]);
        let s2 = a.store(&[2.0; 2]);
        assert_eq!(s1.offset + s1.len, s2.offset, "no gaps between slots");
    }

    #[test]
    fn reset_reuses_capacity_and_invalidates() {
        let mut a = ContiguousArena::new(4);
        let s = a.store(&[1.0; 4]);
        a.reset();
        assert_eq!(a.used(), 0);
        assert_eq!(a.high_water(), 4);
        let s2 = a.store(&[2.0; 4]); // same capacity, fresh epoch
        assert_eq!(a.slot(&s2), &[2.0; 4]);
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = a.slot(&s);
        }));
        assert!(stale.is_err(), "stale slot must be rejected");
    }

    #[test]
    #[should_panic(expected = "arena overflow")]
    fn overflow_panics() {
        let mut a = ContiguousArena::new(2);
        let _ = a.store(&[0.0; 3]);
    }
}
