//! Elastic training supervisor: run under fault injection, survive.
//!
//! The supervisor owns the whole-run lifecycle that a single
//! [`RankEngine`](crate::engine::RankEngine) cannot: it launches one engine
//! per rank under a [`FaultPlan`], watches for per-rank failures (typed
//! [`CommError`]s, hangs surfacing as timeouts, outright panics), and when
//! a round dies it
//!
//! 1. classifies the casualties — ranks that *caused* the failure are
//!    removed, ranks that merely *observed* it (peer-lost / timeout /
//!    corrupt-message errors) are survivors;
//! 2. walks the snapshot directory backwards to the newest checkpoint that
//!    is complete, checksum-clean, and cross-rank consistent;
//! 3. reshards that checkpoint to the surviving world size with
//!    [`crate::snapshot::reshard`];
//! 4. relaunches fresh engines on a fresh world and resumes from the
//!    snapshot step, recording a [`RecoveryReport`].
//!
//! Because the data schedule is a pure function of (step, global batch,
//! DP coordinates), a recovered run is *bitwise identical* to a clean run
//! started from the same resharded snapshot — the property the
//! fault-recovery tests assert.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use zero_comm::{try_launch_with_config, CommError, FaultPlan, Grid, WorldConfig};
use zero_model::{init_full_params, Gpt, SyntheticCorpus};

use crate::engine::RankEngine;
use crate::snapshot::{reshard, RankSnapshot};
use crate::trainer::TrainSetup;

/// Everything the supervisor needs for one supervised run.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Model/ZeRO/grid/batch specification. The grid must be pure data
    /// parallel (mp = 1) and the stage must shard optimizer state
    /// (stages 1–3) so checkpoints can be resharded across world sizes.
    pub setup: TrainSetup,
    /// Total optimizer steps to complete.
    pub steps: usize,
    /// Snapshot cadence: a sharded checkpoint is written after every this
    /// many steps (plus one at step 0, so recovery always has a floor).
    pub snapshot_every: usize,
    /// Directory for checkpoint subdirectories (`step_00005/`, …).
    pub snapshot_dir: PathBuf,
    /// Faults injected into the first round (recovered rounds run clean).
    pub faults: FaultPlan,
    /// Receive timeout: how long a rank waits on a silent peer before
    /// surfacing [`CommError::Timeout`].
    pub recv_timeout: Duration,
    /// Abort after this many recoveries (guards against a fault that
    /// reproduces forever).
    pub max_recoveries: usize,
}

impl SupervisorConfig {
    /// A config with conventional defaults: snapshot every 5 steps, 1 s
    /// receive timeout, at most 4 recoveries, no faults.
    pub fn new(setup: TrainSetup, steps: usize, snapshot_dir: PathBuf) -> SupervisorConfig {
        SupervisorConfig {
            setup,
            steps,
            snapshot_every: 5,
            snapshot_dir,
            faults: FaultPlan::new(),
            recv_timeout: Duration::from_secs(1),
            max_recoveries: 4,
        }
    }
}

/// What one recovery cost.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Ranks removed from the world (crashed, hung, or panicked).
    pub failed_ranks: Vec<usize>,
    /// Human-readable description per failed or erroring rank.
    pub failures: Vec<(usize, String)>,
    /// World size before the failure.
    pub old_world: usize,
    /// World size after resharding to the survivors.
    pub new_world: usize,
    /// Step of the snapshot training resumed from.
    pub resumed_from_step: u64,
    /// Completed optimizer steps whose work was discarded by the rollback
    /// (work past the snapshot that the failed round had already done).
    pub steps_lost: u64,
    /// Bytes of checkpoint state re-read and re-moved by the reshard.
    pub bytes_moved: u64,
    /// Wall time from failure detection to the relaunch being ready.
    pub wall_time: Duration,
}

/// Outcome of a supervised run.
#[derive(Clone, Debug)]
pub struct SupervisedReport {
    /// Mean training loss per completed step (averaged over DP ranks),
    /// stitched across recoveries: rolled-back steps appear once, with the
    /// values from the round that finally completed them.
    pub losses: Vec<f32>,
    /// Final evaluation loss on the held-out batch, averaged over ranks.
    pub final_eval: f32,
    /// World size the run finished with.
    pub final_world: usize,
    /// One entry per recovery, in order.
    pub recoveries: Vec<RecoveryReport>,
    /// Per-rank span timelines from the final (clean) round. After a
    /// recovery, each contains the `checkpoint`-category
    /// `"snapshot-restore"` span the rollback executed.
    pub timelines: Vec<zero_trace::StepTimeline>,
}

/// One rank's output from one round: the losses it completed, the final
/// eval (if the round finished), and the error that stopped it (if any).
struct RoundOut {
    losses: Vec<f32>,
    eval: Option<f32>,
    error: Option<CommError>,
    timeline: zero_trace::StepTimeline,
}

/// Runs `cfg.steps` optimizer steps under `cfg.faults`, recovering from
/// rank failures by snapshot rollback + reshard, and returns the stitched
/// history. See the module docs for the recovery protocol.
///
/// # Panics
/// Panics if the configuration is unsupported (mp > 1, DDP stage, zero
/// world), if a failure leaves no survivors, if no loadable snapshot
/// exists, or if `max_recoveries` is exceeded.
pub fn run_supervised(cfg: &SupervisorConfig) -> SupervisedReport {
    assert_eq!(
        cfg.setup.grid.mp_degree(),
        1,
        "supervisor supports pure data-parallel grids (mp = 1)"
    );
    assert!(
        cfg.setup.zero.stage.partitions_optimizer(),
        "supervisor requires sharded optimizer state (ZeRO stages 1-3) for resharding"
    );
    assert!(cfg.snapshot_every > 0, "snapshot_every must be positive");
    let setup = &cfg.setup;
    setup.model.validate();
    setup.zero.validate();

    // One corpus for the whole run: the schedule is a function of the
    // global step, so it survives world-size changes.
    let corpus = SyntheticCorpus::generate(
        setup.model.vocab,
        (setup.global_batch * (setup.model.seq + 1) * (cfg.steps + 2)).max(10_000),
        setup.seed ^ 0x5EED,
    );
    let full_params = init_full_params(&setup.model, setup.seed);

    let mut world = setup.grid.dp_degree();
    let mut start_step: u64 = 0;
    let mut restore: Option<Vec<RankSnapshot>> = None;
    let mut recoveries: Vec<RecoveryReport> = Vec::new();
    let mut losses: Vec<f32> = Vec::new();

    loop {
        let plan = if recoveries.is_empty() { cfg.faults.clone() } else { FaultPlan::new() };
        let outcomes = run_round(
            cfg,
            &corpus,
            &full_params,
            world,
            start_step,
            restore.as_deref(),
            plan,
        );

        // Collect what each rank managed, and who died of what.
        let mut dead: Vec<usize> = Vec::new();
        let mut failures: Vec<(usize, String)> = Vec::new();
        let mut outs: Vec<Option<RoundOut>> = Vec::new();
        for (rank, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(out) => {
                    if let Some(e) = &out.error {
                        failures.push((rank, e.to_string()));
                        if e.is_self_fault() {
                            dead.push(rank);
                        }
                    }
                    outs.push(Some(out));
                }
                Err(failure) => {
                    // A panic (not a typed comm error): the rank is gone
                    // and its partial history with it.
                    failures.push((rank, failure.message.clone()));
                    dead.push(rank);
                    outs.push(None);
                }
            }
        }

        if failures.is_empty() {
            // Clean round: stitch and finish.
            let round: Vec<&RoundOut> = outs.iter().map(|o| o.as_ref().unwrap()).collect();
            let completed = round[0].losses.len();
            for i in 0..completed {
                let mean =
                    round.iter().map(|o| o.losses[i]).sum::<f32>() / round.len() as f32;
                losses.push(mean);
            }
            let final_eval = round.iter().filter_map(|o| o.eval).sum::<f32>()
                / round.iter().filter(|o| o.eval.is_some()).count().max(1) as f32;
            let timelines = round.iter().map(|o| o.timeline.clone()).collect();
            return SupervisedReport {
                losses,
                final_eval,
                final_world: world,
                recoveries,
                timelines,
            };
        }

        // ----- recovery -----
        let t0 = Instant::now();
        assert!(
            recoveries.len() < cfg.max_recoveries,
            "supervisor: exceeded {} recoveries; last failures: {failures:?}",
            cfg.max_recoveries
        );
        let new_world = world - dead.len();
        assert!(new_world > 0, "no surviving ranks to recover with: {failures:?}");

        // Furthest step any rank reached, to price the discarded work.
        let reached = outs
            .iter()
            .flatten()
            .map(|o| start_step + o.losses.len() as u64)
            .max()
            .unwrap_or(start_step);

        // Newest complete, checksum-clean, cross-rank-consistent snapshot.
        let (snap_step, snaps) = latest_consistent_snapshot(
            &cfg.snapshot_dir,
            reached,
            cfg.snapshot_every as u64,
        )
        .unwrap_or_else(|| {
            panic!("supervisor: no consistent snapshot to recover from in {:?}", cfg.snapshot_dir)
        });
        let bytes_moved = snaps
            .iter()
            .map(|s| 4 * (s.master.len() + s.opt_m.len() + s.opt_v.len()) as u64)
            .sum();

        // Keep the stitched history only up to the rollback point; the
        // next round recomputes everything past it.
        losses.truncate(snap_step as usize);
        // Append the failed round's per-step means for steps the snapshot
        // covers but the stitched history does not (every rank that wrote
        // the snapshot completed those steps; panicked ranks may be
        // missing, so average over who reported).
        for step in losses.len() as u64..snap_step {
            let i = (step - start_step) as usize;
            let vals: Vec<f32> = outs
                .iter()
                .flatten()
                .filter_map(|o| o.losses.get(i).copied())
                .collect();
            assert!(
                !vals.is_empty(),
                "no loss record for step {step} below snapshot step {snap_step}"
            );
            losses.push(vals.iter().sum::<f32>() / vals.len() as f32);
        }

        let resharded = reshard(&snaps, new_world);
        recoveries.push(RecoveryReport {
            failed_ranks: dead.clone(),
            failures,
            old_world: world,
            new_world,
            resumed_from_step: snap_step,
            steps_lost: reached.saturating_sub(snap_step),
            bytes_moved,
            wall_time: t0.elapsed(),
        });

        world = new_world;
        start_step = snap_step;
        restore = Some(resharded);
    }
}

/// Launches one round of `world` engines and runs them from `start_step`
/// toward `cfg.steps`, snapshotting on cadence. Returns per-rank outcomes.
fn run_round(
    cfg: &SupervisorConfig,
    corpus: &SyntheticCorpus,
    full_params: &[f32],
    world: usize,
    start_step: u64,
    restore: Option<&[RankSnapshot]>,
    plan: FaultPlan,
) -> Vec<Result<RoundOut, zero_comm::RankFailure>> {
    let setup = &cfg.setup;
    let grid = Grid::new(world, 1);
    let local_batch = setup.global_batch / world;
    assert_eq!(
        setup.global_batch % world,
        0,
        "global batch {} must divide the surviving world {world}",
        setup.global_batch
    );
    let config = WorldConfig { recv_timeout: cfg.recv_timeout, faults: plan, ..WorldConfig::default() };

    try_launch_with_config(world, config, move |comm| {
        let rank = comm.rank();
        let gpt = Gpt::new_mp(setup.model, 1);
        let mut engine = RankEngine::new(gpt, full_params, setup.zero, grid, comm);
        if let Some(snaps) = restore {
            if let Err(e) = engine.try_restore_snapshot(&snaps[rank]) {
                return RoundOut {
                    losses: Vec::new(),
                    eval: None,
                    error: Some(e),
                    timeline: engine.timeline(),
                };
            }
        } else {
            // Step-0 floor: recovery can always fall back to initial state.
            engine
                .save_snapshot()
                .save(&snapshot_dir_for(&cfg.snapshot_dir, 0))
                .expect("write step-0 snapshot");
        }

        let mut losses = Vec::new();
        for step in start_step as usize..cfg.steps {
            let (ids, targets) =
                corpus.rank_batch(step, setup.global_batch, setup.model.seq, world, rank);
            match engine.try_train_step(&ids, &targets, local_batch) {
                Ok(out) => losses.push(out.loss),
                Err(e) => {
                    return RoundOut {
                        losses,
                        eval: None,
                        error: Some(e),
                        timeline: engine.timeline(),
                    }
                }
            }
            if (step + 1) % cfg.snapshot_every == 0 {
                engine
                    .save_snapshot()
                    .save(&snapshot_dir_for(&cfg.snapshot_dir, (step + 1) as u64))
                    .expect("write snapshot shard");
            }
        }

        // Held-out batch, same convention as the trainer: one past the end.
        let (ids, targets) = corpus.rank_batch(
            cfg.steps + 1,
            setup.global_batch,
            setup.model.seq,
            world,
            rank,
        );
        let (eval, error) = match engine.try_eval_loss(&ids, &targets, local_batch) {
            Ok(l) => (Some(l), None),
            Err(e) => (None, Some(e)),
        };
        RoundOut { losses, eval, error, timeline: engine.timeline() }
    })
}

/// The checkpoint subdirectory for a given step.
pub fn snapshot_dir_for(root: &Path, step: u64) -> PathBuf {
    root.join(format!("step_{step:05}"))
}

/// Scans snapshot steps `reached, reached-1, … 0` (on the cadence grid,
/// plus the step-0 floor) for the newest directory holding a complete,
/// checksum-clean, cross-rank-consistent shard set. Torn, corrupt,
/// missing, or inconsistent checkpoints are skipped — that is the point.
/// The writing world size is read from the shards themselves, so a
/// checkpoint from a larger (pre-failure) world remains usable.
pub(crate) fn latest_consistent_snapshot(
    root: &Path,
    reached: u64,
    cadence: u64,
) -> Option<(u64, Vec<RankSnapshot>)> {
    let mut candidates: Vec<u64> = (1..=reached / cadence).map(|k| k * cadence).collect();
    candidates.push(0);
    candidates.sort_unstable_by(|a, b| b.cmp(a));
    for step in candidates {
        let dir = snapshot_dir_for(root, step);
        if let Some(snaps) = try_load_set(&dir) {
            if snaps.iter().all(|s| s.step == step) {
                return Some((step, snaps));
            }
        }
    }
    None
}

/// Loads a shard set from one checkpoint directory: rank 0 declares the
/// world size, the rest must exist, load cleanly, and agree.
fn try_load_set(dir: &Path) -> Option<Vec<RankSnapshot>> {
    let first = RankSnapshot::load(dir, 0).ok()?;
    let world = first.world as usize;
    let mut snaps = Vec::with_capacity(world);
    snaps.push(first);
    for r in 1..world {
        snaps.push(RankSnapshot::load(dir, r).ok()?);
    }
    crate::snapshot::validate_consistent(&snaps).ok()?;
    Some(snaps)
}

/// Resumes a *clean* run from an on-disk checkpoint written by a possibly
/// different world size: loads `old_world` shards from `snapshot_dir`,
/// reshards them to `setup.grid`, and trains to `steps` — the control
/// arm the fault-recovery tests compare against, and the user-facing
/// elastic-resume entry point.
///
/// Returns the per-step mean losses from the snapshot step onward and the
/// final eval loss.
///
/// # Panics
/// Panics on unsupported configs (see [`run_supervised`]), unreadable
/// snapshots, or rank failures (none are expected in a clean run).
pub fn resume_from_snapshot(
    setup: &TrainSetup,
    steps: usize,
    snapshot_dir: &Path,
    old_world: usize,
) -> (Vec<f32>, f32) {
    assert_eq!(setup.grid.mp_degree(), 1, "resume supports mp = 1");
    let snaps = RankSnapshot::load_all(snapshot_dir, old_world)
        .unwrap_or_else(|e| panic!("cannot resume from {snapshot_dir:?}: {e}"));
    let snap_step = snaps[0].step;
    let world = setup.grid.dp_degree();
    let resharded = reshard(&snaps, world);

    let mut cfg = SupervisorConfig::new(*setup, steps, std::env::temp_dir());
    // Snapshots during the control run are not needed; park them far out.
    cfg.snapshot_every = steps.max(1) * 2;
    let corpus = SyntheticCorpus::generate(
        setup.model.vocab,
        (setup.global_batch * (setup.model.seq + 1) * (steps + 2)).max(10_000),
        setup.seed ^ 0x5EED,
    );
    let full_params = init_full_params(&setup.model, setup.seed);
    let outcomes = run_round(
        &cfg,
        &corpus,
        &full_params,
        world,
        snap_step,
        Some(&resharded),
        FaultPlan::new(),
    );
    let outs: Vec<RoundOut> = outcomes
        .into_iter()
        .map(|o| o.unwrap_or_else(|f| panic!("clean resume rank failed: {f}")))
        .collect();
    for o in &outs {
        assert!(o.error.is_none(), "clean resume hit a comm error: {:?}", o.error);
    }
    let completed = outs[0].losses.len();
    let losses = (0..completed)
        .map(|i| outs.iter().map(|o| o.losses[i]).sum::<f32>() / outs.len() as f32)
        .collect();
    let eval = outs.iter().filter_map(|o| o.eval).sum::<f32>() / outs.len() as f32;
    (losses, eval)
}
