//! # zero-core
//!
//! The paper's primary contribution: ZeRO-DP stages 1–3 (P_os, P_os+g,
//! P_os+g+p) and ZeRO-R (partitioned activation checkpointing P_a /
//! P_a+cpu, constant-size buffers CB, contiguous-memory defragmentation
//! MD), implemented as a real distributed training engine over the
//! `zero-comm` collectives and the `zero-model` transformer — plus the
//! DDP baseline it is compared against.
//!
//! Every byte of model state the engine allocates is registered with a
//! [`MemoryTracker`], and every byte any collective sends is metered, so
//! the paper's memory (§3, §5) and communication (§7, §8) analyses are
//! *measured properties* of this implementation, verified in tests.
//!
//! ```
//! use zero_core::Partitioner;
//!
//! // ZeRO's flat-space partition: Ψ elements over N_d owners.
//! let p = Partitioner::new(100, 8);
//! assert_eq!(p.counts().iter().sum::<usize>(), 100);
//! // A layer's range straddles owners; the pieces drive the
//! // variable-count collectives.
//! let counts = p.intersect_counts(&(10..40));
//! assert_eq!(counts.iter().sum::<usize>(), 30);
//! ```

pub mod arena;
pub mod bucket;
pub mod config;
pub mod engine;
pub mod memory;
pub mod metrics;
pub mod partition;
pub mod plan;
pub mod procworld;
pub mod snapshot;
pub mod store;
pub mod supervisor;
pub mod tier;
pub mod trainer;

pub use arena::ContiguousArena;
pub use bucket::GradBucket;
pub use config::{CompressionConfig, OptimizerKind, TierConfig, ZeroConfig, ZeroStage};
pub use engine::{RankEngine, StepOutcome};
pub use memory::{MemCategory, MemoryTracker, ALL_CATEGORIES, CATEGORY_COUNT, MODEL_STATE_CATEGORIES};
pub use metrics::TrainingMetrics;
pub use partition::Partitioner;
pub use procworld::{
    maybe_run_worker, run_supervised_process, KillSpec, ProcessSupervisedReport,
    ProcessWorldOptions, WorkerCommand, WORKER_SPEC_ENV,
};
pub use plan::{
    CommPlan, CountSpec, EffectiveCompression, EffectiveOffload, PlanCursor, PlanOp, PlanScope,
    ResolvedOp, ResolvedTierOp, StepShape, TierDir, TierOp, WireFmt,
};
pub use snapshot::{
    export_inference_shards, reshard, validate_consistent, RankSnapshot, SnapshotError,
};
pub use store::FlatStore;
pub use tier::{PageId, TierStats, TierStore};
pub use supervisor::{
    resume_from_snapshot, run_supervised, RecoveryReport, SupervisedReport, SupervisorConfig,
};
pub use trainer::{
    model_state_bytes, run_training, run_training_on, run_training_world, RankReport, TrainReport,
    TrainSetup,
};
