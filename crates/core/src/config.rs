//! ZeRO engine configuration: the stage and ZeRO-R switches (Table 3's
//! C1–C5 configurations are combinations of these flags).

use zero_optim::{AdamConfig, LrSchedule, SgdConfig};

/// Which optimizer the engine runs over the (possibly sharded) fp32
/// master parameters.
///
/// The choice sets the paper's K multiplier: mixed-precision Adam keeps
/// momentum + variance + master copy (K = 12); SGD with momentum keeps
/// velocity + master (K = 8); plain SGD only the master (K = 4). §2.3
/// argues ZeRO "makes it possible to develop and use even more complex
/// and memory hungry optimizers" — the K-dependence is measurable here.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OptimizerKind {
    /// Adam with fp32 moments (K = 12).
    Adam(AdamConfig),
    /// SGD, optionally with momentum (K = 8 or 4).
    Sgd(SgdConfig),
}

impl OptimizerKind {
    /// Optimizer-state bytes per parameter (excluding the fp32 master).
    pub fn state_bytes_per_param(&self) -> u64 {
        match self {
            OptimizerKind::Adam(_) => 8,
            OptimizerKind::Sgd(c) if c.momentum != 0.0 => 4,
            OptimizerKind::Sgd(_) => 0,
        }
    }

    /// The paper's K: fp32 master + optimizer state bytes per parameter.
    pub fn k_multiplier(&self) -> u64 {
        4 + self.state_bytes_per_param()
    }
}

/// The ZeRO-DP optimization stage (§5, Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZeroStage {
    /// Baseline data parallelism: full replication, gradient all-reduce —
    /// what PyTorch DDP does. Memory: (4 + K)·Ψ with fp16 params/grads.
    Ddp,
    /// P_os — optimizer state partitioning: 4Ψ + KΨ/N_d.
    One,
    /// P_os+g — plus gradient partitioning: 2Ψ + (2+K)Ψ/N_d.
    Two,
    /// P_os+g+p — plus parameter partitioning: (4+K)Ψ/N_d.
    Three,
}

impl ZeroStage {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ZeroStage::Ddp => "DDP",
            ZeroStage::One => "ZeRO-1 (Pos)",
            ZeroStage::Two => "ZeRO-2 (Pos+g)",
            ZeroStage::Three => "ZeRO-3 (Pos+g+p)",
        }
    }

    /// True if gradients are partitioned (stages 2 and 3).
    pub fn partitions_grads(&self) -> bool {
        matches!(self, ZeroStage::Two | ZeroStage::Three)
    }

    /// True if parameters are partitioned (stage 3).
    pub fn partitions_params(&self) -> bool {
        matches!(self, ZeroStage::Three)
    }

    /// True if optimizer states are partitioned (stages 1–3).
    pub fn partitions_optimizer(&self) -> bool {
        !matches!(self, ZeroStage::Ddp)
    }
}

/// ZeRO++-style communication compression switches.
///
/// Three independent levers shrink the bytes each collective puts on the
/// wire, trading a bounded quantization error for bandwidth:
///
/// - **qwZ** — quantized weight all-gather: stage-3 forward/eval parameter
///   fetches circulate block-quantized int8 streams instead of raw fp16.
/// - **hpZ** — hierarchical (secondary) parameter partition: each rank
///   additionally keeps a node-local fp16 copy of every unit, so the
///   *backward* all-gathers resolve inside the node and never cross the
///   slow inter-node links (extra Ψ/G memory per rank, priced under
///   `MemCategory::SecondaryParams`).
/// - **qgZ** — quantized gradient reduce-scatter: the bucket flush runs a
///   two-phase all-to-all (raw intra-node, int8 inter-node) instead of
///   the raw ring.
///
/// All three require mp = 1 and a DP degree divisible by `node_size`.
/// With everything off (the default) plans and runs are bitwise identical
/// to the uncompressed engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompressionConfig {
    /// Quantized weight all-gather on stage-3 forward/eval fetches.
    pub qwz: bool,
    /// Secondary node-local parameter partition serving backward fetches.
    pub hpz: bool,
    /// Quantized all-to-all gradient reduce-scatter on bucket flushes.
    pub qgz: bool,
    /// Ranks per node G for the two-tier topology the levers exploit.
    pub node_size: usize,
    /// Quantization block length (elements per scale/zero pair).
    pub block: usize,
}

impl CompressionConfig {
    /// Everything off; the engine behaves exactly as without ZeRO++.
    pub const fn off() -> CompressionConfig {
        CompressionConfig { qwz: false, hpz: false, qgz: false, node_size: 1, block: 64 }
    }

    /// True if any lever is enabled.
    pub fn any(&self) -> bool {
        self.qwz || self.hpz || self.qgz
    }
}

impl Default for CompressionConfig {
    fn default() -> Self {
        CompressionConfig::off()
    }
}

/// Memory-tier offload switches (ZeRO-Offload / ZeRO-Infinity direction).
///
/// When enabled, the engine spills the big per-rank states to a modeled
/// slower host tier — optimizer states + fp32 master (stage ≥ 1), the
/// reduced gradient shard (stage ≥ 2), and the stage-3 parameter shard —
/// and every byte crossing the tier boundary is metered, priced at
/// `host_lat + bytes / host_bw`, and checked against the `CommPlan`'s
/// tier-movement stream. The [`crate::MemoryTracker`] then *proves* the
/// configured `device_budget`: any allocation that would push live device
/// bytes past it panics.
///
/// Offload moves exact copies (no re-quantization), so losses are bitwise
/// identical to the unconstrained run; only residency and modeled time
/// change. Requires mp = 1, a partitioned-optimizer stage, and no
/// ZeRO++ compression (the lever interactions are not modeled).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierConfig {
    /// Master switch; everything below is inert when false.
    pub enabled: bool,
    /// Device-tier byte budget the tracker enforces (`u64::MAX` = no cap).
    pub device_budget: u64,
    /// Host-tier bandwidth in bytes/second (0 = unthrottled: transfers
    /// cost only `host_lat` of modeled time).
    pub host_bw: u64,
    /// Per-transfer latency added to every tier crossing.
    pub host_lat: std::time::Duration,
    /// Prefetch depth in units. The engine's double-buffered slot is
    /// depth 1 — the only depth currently implemented.
    pub depth: usize,
}

impl TierConfig {
    /// Offload off; the engine behaves exactly as without a tier.
    pub const fn off() -> TierConfig {
        TierConfig {
            enabled: false,
            device_budget: u64::MAX,
            host_bw: 0,
            host_lat: std::time::Duration::ZERO,
            depth: 1,
        }
    }

    /// Offload on with an explicit device budget and free transfers.
    pub const fn budgeted(device_budget: u64) -> TierConfig {
        TierConfig { enabled: true, device_budget, ..TierConfig::off() }
    }

    /// Modeled seconds one `bytes`-sized transfer spends on the tier link.
    pub fn transfer_time(&self, bytes: u64) -> std::time::Duration {
        let bw = if self.host_bw == 0 {
            std::time::Duration::ZERO
        } else {
            std::time::Duration::from_secs_f64(bytes as f64 / self.host_bw as f64)
        };
        self.host_lat + bw
    }
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig::off()
    }
}

/// Full engine configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZeroConfig {
    /// ZeRO-DP stage.
    pub stage: ZeroStage,
    /// Mixed precision: fp16 working params/grads + fp32 master states
    /// (K = 12). When false, everything is fp32 (the bit-exactness test
    /// mode; K = 8).
    pub fp16: bool,
    /// Activation checkpointing: store only each block's input, recompute
    /// the rest in backward (§6.1 prerequisite).
    pub checkpoint_activations: bool,
    /// Checkpoint every k-th block input (1 = every block). Larger
    /// intervals store ~L/k checkpoints and recompute whole segments —
    /// the √L memory/recompute dial of §3.2.
    pub checkpoint_interval: usize,
    /// P_a: partition activation checkpoints across the MP group (§6.1).
    /// Requires `checkpoint_activations`.
    pub partition_activations: bool,
    /// P_a+cpu: hold the partitioned checkpoints in CPU memory.
    /// Requires `partition_activations`.
    pub offload_checkpoints: bool,
    /// CB: fused-buffer capacity in elements (§6.2). Collectives over the
    /// flat space are staged through buffers of at most this size.
    pub bucket_elems: usize,
    /// MD: copy long-lived per-iteration tensors (checkpoints) into a
    /// pre-allocated contiguous arena (§6.3).
    pub use_arena: bool,
    /// Initial dynamic loss scale (fp16 only).
    pub initial_loss_scale: f32,
    /// Global gradient-norm clip; `None` disables.
    pub clip_grad_norm: Option<f64>,
    /// Optimizer over the (possibly sharded) fp32 master parameters.
    pub optimizer: OptimizerKind,
    /// Learning-rate schedule (multiplier of the optimizer's base rate).
    pub lr_schedule: LrSchedule,
    /// Residual-branch dropout probability (0 disables; applied in
    /// training only, never in eval, with deterministic per-step masks).
    pub dropout: f32,
    /// Ranks per node for topology-aware (two-level) gradient all-reduce
    /// under DDP; `None` uses the flat ring. Requires mp = 1 and a world
    /// size divisible by the node size.
    pub node_size: Option<usize>,
    /// Overlap-centric execution: stage-2/3 gradient bucket flushes launch
    /// their reduce-scatter asynchronously (waited at end-of-backward) and
    /// stage 3 prefetches the next unit's parameter all-gather one layer
    /// ahead through a double-buffered slot. Losses are bitwise identical
    /// to synchronous execution: the same ops run in the same issue order,
    /// only the waits move.
    pub overlap: bool,
    /// ZeRO++-style communication compression (qwZ / hpZ / qgZ).
    pub compression: CompressionConfig,
    /// Memory-tier offload (ZeRO-Offload / ZeRO-Infinity direction).
    pub tier: TierConfig,
}

impl Default for ZeroConfig {
    fn default() -> Self {
        ZeroConfig {
            stage: ZeroStage::Two,
            fp16: true,
            checkpoint_activations: true,
            checkpoint_interval: 1,
            partition_activations: false,
            offload_checkpoints: false,
            bucket_elems: 1 << 16,
            use_arena: true,
            initial_loss_scale: 4096.0,
            clip_grad_norm: None,
            optimizer: OptimizerKind::Adam(AdamConfig::default()),
            lr_schedule: LrSchedule::Constant,
            dropout: 0.0,
            node_size: None,
            overlap: false,
            compression: CompressionConfig::off(),
            tier: TierConfig::off(),
        }
    }
}

impl ZeroConfig {
    /// Validates flag dependencies.
    ///
    /// # Panics
    /// Panics on inconsistent combinations.
    pub fn validate(&self) {
        assert!(self.bucket_elems > 0, "bucket_elems must be positive");
        assert!(
            self.checkpoint_interval >= 1,
            "checkpoint_interval must be at least 1"
        );
        assert!(
            (0.0..1.0).contains(&self.dropout),
            "dropout must be in [0, 1)"
        );
        if self.partition_activations {
            assert!(
                self.checkpoint_activations,
                "P_a requires activation checkpointing"
            );
        }
        if self.offload_checkpoints {
            assert!(
                self.partition_activations,
                "P_a+cpu requires P_a (partitioned checkpoints)"
            );
        }
        if self.compression.any() {
            assert!(
                self.compression.node_size >= 1,
                "compression node_size must be at least 1"
            );
            assert!(
                self.compression.block >= 1,
                "compression block must be at least 1"
            );
        }
        if self.tier.enabled {
            assert!(
                self.stage.partitions_optimizer(),
                "tier offload requires a partitioned-optimizer stage (ZeRO >= 1)"
            );
            assert!(self.tier.device_budget > 0, "tier device_budget must be positive");
            assert_eq!(
                self.tier.depth, 1,
                "tier prefetch depth {} unsupported: only the double-buffered \
                 depth 1 is implemented",
                self.tier.depth
            );
            assert!(
                !self.compression.any(),
                "tier offload cannot combine with ZeRO++ compression"
            );
        }
    }

    /// The pure-fp32 exactness-test configuration at a given stage.
    pub fn fp32_exact(stage: ZeroStage) -> ZeroConfig {
        ZeroConfig {
            stage,
            fp16: false,
            checkpoint_activations: false,
            partition_activations: false,
            offload_checkpoints: false,
            initial_loss_scale: 1.0,
            ..ZeroConfig::default()
        }
    }

    /// The same configuration with overlap-centric execution switched on.
    pub fn overlapped(self) -> ZeroConfig {
        ZeroConfig { overlap: true, ..self }
    }

    /// The paper's ZeRO-100B implementation profile: P_os+g + ZeRO-R.
    pub fn zero_100b() -> ZeroConfig {
        ZeroConfig {
            stage: ZeroStage::Two,
            fp16: true,
            checkpoint_activations: true,
            partition_activations: true,
            offload_checkpoints: false,
            ..ZeroConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_predicates() {
        assert!(!ZeroStage::Ddp.partitions_optimizer());
        assert!(ZeroStage::One.partitions_optimizer());
        assert!(!ZeroStage::One.partitions_grads());
        assert!(ZeroStage::Two.partitions_grads());
        assert!(!ZeroStage::Two.partitions_params());
        assert!(ZeroStage::Three.partitions_params());
    }

    #[test]
    #[should_panic(expected = "P_a requires")]
    fn pa_without_checkpointing_rejected() {
        ZeroConfig {
            checkpoint_activations: false,
            partition_activations: true,
            ..ZeroConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "P_a+cpu requires")]
    fn pa_cpu_without_pa_rejected() {
        ZeroConfig {
            partition_activations: false,
            offload_checkpoints: true,
            ..ZeroConfig::default()
        }
        .validate();
    }

    #[test]
    fn presets_are_valid() {
        ZeroConfig::default().validate();
        ZeroConfig::zero_100b().validate();
        ZeroConfig::fp32_exact(ZeroStage::Three).validate();
    }

    #[test]
    fn compression_defaults_off() {
        let c = CompressionConfig::off();
        assert!(!c.any());
        assert_eq!(ZeroConfig::default().compression, c);
        let on = CompressionConfig { qwz: true, ..c };
        assert!(on.any());
    }

    #[test]
    #[should_panic(expected = "node_size")]
    fn zero_node_size_compression_rejected() {
        ZeroConfig {
            compression: CompressionConfig {
                qgz: true,
                node_size: 0,
                ..CompressionConfig::off()
            },
            ..ZeroConfig::default()
        }
        .validate();
    }

    #[test]
    fn tier_defaults_off() {
        let t = TierConfig::off();
        assert!(!t.enabled);
        assert_eq!(ZeroConfig::default().tier, t);
        assert_eq!(t.transfer_time(1 << 30), std::time::Duration::ZERO);
        let throttled = TierConfig {
            host_bw: 1 << 30,
            host_lat: std::time::Duration::from_micros(10),
            ..t
        };
        assert_eq!(
            throttled.transfer_time(1 << 30),
            std::time::Duration::from_micros(10) + std::time::Duration::from_secs(1)
        );
    }

    #[test]
    #[should_panic(expected = "partitioned-optimizer")]
    fn tier_offload_requires_zero_stage() {
        ZeroConfig {
            stage: ZeroStage::Ddp,
            tier: TierConfig::budgeted(1 << 20),
            ..ZeroConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "compression")]
    fn tier_offload_rejects_compression() {
        ZeroConfig {
            stage: ZeroStage::Three,
            tier: TierConfig::budgeted(1 << 20),
            compression: CompressionConfig { qwz: true, ..CompressionConfig::off() },
            ..ZeroConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "block")]
    fn zero_block_compression_rejected() {
        ZeroConfig {
            compression: CompressionConfig {
                qwz: true,
                block: 0,
                ..CompressionConfig::off()
            },
            ..ZeroConfig::default()
        }
        .validate();
    }
}
