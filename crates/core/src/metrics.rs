//! Training-run metrics: smoothed loss, throughput, and skip-rate
//! tracking for long runs (what the `zero-train` CLI and the Figure 5
//! driver report).

use std::time::{Duration, Instant};

use crate::engine::StepOutcome;

/// Rolling statistics over a training run.
#[derive(Debug)]
pub struct TrainingMetrics {
    started: Instant,
    tokens_per_step: u64,
    steps: u64,
    skipped: u64,
    loss_ema: Option<f64>,
    ema_beta: f64,
    best_loss: f32,
    last_loss: f32,
}

impl TrainingMetrics {
    /// Creates metrics for a run processing `tokens_per_step` tokens per
    /// optimizer step (global batch × seq).
    pub fn new(tokens_per_step: u64) -> TrainingMetrics {
        TrainingMetrics {
            started: Instant::now(),
            tokens_per_step,
            steps: 0,
            skipped: 0,
            loss_ema: None,
            ema_beta: 0.9,
            best_loss: f32::INFINITY,
            last_loss: f32::NAN,
        }
    }

    /// Records one step's outcome.
    pub fn record(&mut self, out: &StepOutcome) {
        self.steps += 1;
        if out.skipped {
            self.skipped += 1;
            return;
        }
        self.last_loss = out.loss;
        self.best_loss = self.best_loss.min(out.loss);
        let l = out.loss as f64;
        self.loss_ema = Some(match self.loss_ema {
            Some(e) => self.ema_beta * e + (1.0 - self.ema_beta) * l,
            None => l,
        });
    }

    /// Steps recorded (including skipped).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Fraction of steps skipped by the loss scaler.
    pub fn skip_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.skipped as f64 / self.steps as f64
        }
    }

    /// Exponentially smoothed loss (β = 0.9), if any step completed.
    pub fn smoothed_loss(&self) -> Option<f64> {
        self.loss_ema
    }

    /// Best (lowest) per-step loss seen.
    pub fn best_loss(&self) -> f32 {
        self.best_loss
    }

    /// Most recent non-skipped loss.
    pub fn last_loss(&self) -> f32 {
        self.last_loss
    }

    /// Wall-clock elapsed.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Tokens processed per wall-clock second (skipped steps still cost
    /// the forward/backward, so they count).
    pub fn tokens_per_second(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            (self.steps * self.tokens_per_step) as f64 / secs
        }
    }

    /// Perplexity of the smoothed loss.
    pub fn smoothed_perplexity(&self) -> Option<f64> {
        self.loss_ema.map(f64::exp)
    }

    /// One-line progress summary.
    pub fn summary(&self) -> String {
        format!(
            "step {:>5}  loss {:.4} (ema {:.4}, best {:.4})  ppl {:.2}  {:.0} tok/s  skip {:.1}%",
            self.steps,
            self.last_loss,
            self.smoothed_loss().unwrap_or(f64::NAN),
            self.best_loss,
            self.smoothed_perplexity().unwrap_or(f64::NAN),
            self.tokens_per_second(),
            100.0 * self.skip_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(loss: f32, skipped: bool) -> StepOutcome {
        StepOutcome {
            loss,
            skipped,
            grad_norm: None,
            loss_scale: 1.0,
        }
    }

    #[test]
    fn ema_tracks_and_best_is_min() {
        let mut m = TrainingMetrics::new(128);
        m.record(&outcome(4.0, false));
        m.record(&outcome(2.0, false));
        m.record(&outcome(3.0, false));
        let ema = m.smoothed_loss().unwrap();
        assert!(ema > 2.0 && ema < 4.0, "ema {ema}");
        assert_eq!(m.best_loss(), 2.0);
        assert_eq!(m.last_loss(), 3.0);
        assert_eq!(m.steps(), 3);
    }

    #[test]
    fn skips_are_counted_but_do_not_move_the_loss() {
        let mut m = TrainingMetrics::new(1);
        m.record(&outcome(5.0, false));
        let ema_before = m.smoothed_loss();
        m.record(&outcome(f32::NAN, true));
        assert_eq!(m.smoothed_loss(), ema_before);
        assert!((m.skip_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perplexity_is_exp_loss() {
        let mut m = TrainingMetrics::new(1);
        m.record(&outcome(0.0, false));
        assert!((m.smoothed_perplexity().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_renders() {
        let mut m = TrainingMetrics::new(64);
        m.record(&outcome(1.5, false));
        let s = m.summary();
        assert!(s.contains("loss 1.5"), "{s}");
        assert!(s.contains("skip 0.0%"), "{s}");
    }
}
