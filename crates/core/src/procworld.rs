//! Process-world driver: [`crate::supervisor`]'s recovery protocol run
//! over *real OS processes* on the socket fabric of `zero_comm::process`.
//!
//! The thread-backed supervisor simulates rank death cooperatively — a
//! faulted rank returns an error and drops its endpoints. Here every rank
//! is a spawned child process; `kill -9` actually severs its sockets
//! mid-step, and the driver must notice (via exit status and missing
//! result files), roll survivors back to the last CRC-consistent
//! snapshot, reshard to the shrunken world, and relaunch — producing
//! losses bitwise identical to a clean thread-backend resume from the
//! same snapshot. That equivalence is the backend-parity contract.
//!
//! ## Worker protocol
//!
//! The driver writes one *spec file* per rank (a `key=value` text file:
//! model + ZeRO config with floats as exact bit patterns, fault plan,
//! fabric timing, socket/snapshot/result paths) and spawns the caller's
//! worker command with `ZERO_WORKER_SPEC` pointing at it. Any binary
//! whose `main` (or a test shim) calls [`maybe_run_worker`] first can
//! host a rank — `zero-train` does, and so do the integration tests by
//! re-executing themselves.
//!
//! Workers report through the filesystem, never through pipes: a
//! per-step `progress` file (the kill watcher's trigger), and an
//! atomically renamed `result` file carrying bit-exact losses, the eval
//! loss, any typed comm error (with its self-fault classification), the
//! per-kind traffic totals, and the count of `snapshot-restore` spans.
//! A rank that dies — by SIGKILL or panic — simply never renames its
//! result file, which is exactly how the driver detects death.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

use zero_comm::{
    connect_process_rank, CommError, FaultKind, FaultPlan, FaultSpec, FaultTrigger, Grid,
    ProcessWorldConfig, RankProcs, ALL_KINDS,
};
use zero_model::{init_full_params, Gpt, ModelConfig, SyntheticCorpus};
use zero_optim::{AdamConfig, LrSchedule, SgdConfig};
use zero_trace::SpanCategory;

use crate::config::{CompressionConfig, OptimizerKind, TierConfig, ZeroConfig, ZeroStage};
use crate::engine::RankEngine;
use crate::snapshot::{reshard, RankSnapshot};
use crate::supervisor::{
    latest_consistent_snapshot, snapshot_dir_for, RecoveryReport, SupervisorConfig,
};

/// Environment variable carrying the spec-file path to a worker process.
pub const WORKER_SPEC_ENV: &str = "ZERO_WORKER_SPEC";

// ---------------------------------------------------------------------------
// Driver-side API
// ---------------------------------------------------------------------------

/// How to start one rank process. The driver appends only the
/// [`WORKER_SPEC_ENV`] environment variable; everything in `args` is the
/// caller's (e.g. a `--zero-worker` marker for leak checks, or libtest
/// filter flags when a test binary re-executes itself).
#[derive(Clone, Debug)]
pub struct WorkerCommand {
    /// Binary to execute.
    pub program: PathBuf,
    /// Arguments passed verbatim.
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// The current executable with the given arguments — the usual
    /// self-exec shape for both `zero-train` and test binaries.
    pub fn current_exe(args: Vec<String>) -> std::io::Result<WorkerCommand> {
        Ok(WorkerCommand {
            program: std::env::current_exe()?,
            args,
        })
    }

    fn command(&self, spec_path: &Path) -> Command {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args).env(WORKER_SPEC_ENV, spec_path);
        cmd
    }
}

/// SIGKILL injection: kill `rank` once its progress file shows
/// `after_step` completed optimizer steps — i.e. mid-way through step
/// `after_step`, after snapshots up to that point exist.
#[derive(Clone, Copy, Debug)]
pub struct KillSpec {
    /// Victim rank (in the first round's numbering).
    pub rank: usize,
    /// Completed-step count that triggers the kill.
    pub after_step: u64,
}

/// Driver options: worker command, scratch layout, fault injection, and
/// the fabric timing parameters shared by every rank.
#[derive(Clone, Debug)]
pub struct ProcessWorldOptions {
    /// How to spawn one rank.
    pub worker: WorkerCommand,
    /// Scratch root for sockets, specs, progress, and result files
    /// (per-round subdirectories are created inside).
    pub run_dir: PathBuf,
    /// Optional SIGKILL injection, applied in the first round only —
    /// mirroring the thread supervisor, which injects faults only into
    /// the round they were scripted for.
    pub kill: Option<KillSpec>,
    /// Wall-clock budget for one round; children still alive at the
    /// deadline are killed (and the round treated as failed).
    pub round_timeout: Duration,
    /// See [`ProcessWorldConfig::heartbeat_interval`].
    pub heartbeat_interval: Duration,
    /// See [`ProcessWorldConfig::liveness_timeout`].
    pub liveness_timeout: Duration,
    /// See [`ProcessWorldConfig::handshake_timeout`].
    pub handshake_timeout: Duration,
}

impl ProcessWorldOptions {
    /// Defaults sized for test-scale models on a loaded CI machine.
    pub fn new(worker: WorkerCommand, run_dir: impl Into<PathBuf>) -> ProcessWorldOptions {
        ProcessWorldOptions {
            worker,
            run_dir: run_dir.into(),
            kill: None,
            round_timeout: Duration::from_secs(300),
            heartbeat_interval: Duration::from_millis(25),
            liveness_timeout: Duration::from_secs(1),
            handshake_timeout: Duration::from_secs(20),
        }
    }
}

/// What [`run_supervised_process`] returns: the same stitched history the
/// thread supervisor produces, plus the per-rank measurements the parity
/// tests compare across backends.
#[derive(Clone, Debug)]
pub struct ProcessSupervisedReport {
    /// Per-step mean losses, stitched across recoveries.
    pub losses: Vec<f32>,
    /// Final eval loss, averaged over ranks.
    pub final_eval: f32,
    /// World size the run finished with.
    pub final_world: usize,
    /// One entry per recovery, in order.
    pub recoveries: Vec<RecoveryReport>,
    /// Final round, per rank: `(collective-kind name, bytes, messages)`.
    pub traffic: Vec<Vec<(String, u64, u64)>>,
    /// Final round, per rank: number of `snapshot-restore` spans the
    /// rank's timeline recorded (> 0 after a rollback).
    pub restore_spans: Vec<usize>,
}

/// Runs `cfg.steps` optimizer steps with every rank a spawned OS process,
/// recovering from real process death (including injected `kill -9`) by
/// snapshot rollback + reshard + relaunch.
///
/// Faults from `cfg.faults` are injected in the first round only, same as
/// the thread supervisor; `opts.kill` adds genuine SIGKILL on top.
///
/// # Panics
/// Panics on unsupported configs (mp > 1, DDP stage), when no consistent
/// snapshot survives a failure, or when `cfg.max_recoveries` is exceeded.
pub fn run_supervised_process(
    cfg: &SupervisorConfig,
    opts: &ProcessWorldOptions,
) -> ProcessSupervisedReport {
    assert_eq!(
        cfg.setup.grid.mp_degree(),
        1,
        "process supervisor supports pure data-parallel grids (mp = 1)"
    );
    assert!(
        cfg.setup.zero.stage.partitions_optimizer(),
        "process supervisor requires sharded optimizer state (ZeRO stages 1-3)"
    );
    assert!(cfg.snapshot_every > 0, "snapshot_every must be positive");
    cfg.setup.model.validate();
    cfg.setup.zero.validate();

    let mut world = cfg.setup.grid.dp_degree();
    let mut start_step: u64 = 0;
    let mut restore_dir: Option<PathBuf> = None;
    let mut recoveries: Vec<RecoveryReport> = Vec::new();
    let mut losses: Vec<f32> = Vec::new();
    let mut round = 0usize;

    loop {
        assert_eq!(
            cfg.setup.global_batch % world,
            0,
            "global batch {} must divide the surviving world {world}",
            cfg.setup.global_batch
        );
        let plan = if round == 0 {
            cfg.faults.clone()
        } else {
            FaultPlan::new()
        };
        let outs = run_process_round(
            cfg,
            opts,
            world,
            start_step,
            restore_dir.as_deref(),
            &plan,
            round,
        );

        let mut dead: Vec<usize> = Vec::new();
        let mut failures: Vec<(usize, String)> = Vec::new();
        for (rank, out) in outs.iter().enumerate() {
            match out {
                RankOutcome::Finished(res) => {
                    if let Some(msg) = &res.error {
                        failures.push((rank, msg.clone()));
                        if res.self_fault {
                            dead.push(rank);
                        }
                    }
                }
                RankOutcome::Died(msg) => {
                    failures.push((rank, msg.clone()));
                    dead.push(rank);
                }
            }
        }

        if failures.is_empty() {
            let finished: Vec<&WorkerResult> = outs
                .iter()
                .map(|o| match o {
                    RankOutcome::Finished(res) => res,
                    RankOutcome::Died(_) => unreachable!("no failures yet a rank died"),
                })
                .collect();
            let completed = finished[0].losses.len();
            for i in 0..completed {
                let mean = finished.iter().map(|r| r.losses[i]).sum::<f32>()
                    / finished.len() as f32;
                losses.push(mean);
            }
            let evals: Vec<f32> = finished.iter().filter_map(|r| r.eval).collect();
            let final_eval = evals.iter().sum::<f32>() / evals.len().max(1) as f32;
            return ProcessSupervisedReport {
                losses,
                final_eval,
                final_world: world,
                recoveries,
                traffic: finished.iter().map(|r| r.traffic.clone()).collect(),
                restore_spans: finished.iter().map(|r| r.restore_spans).collect(),
            };
        }

        // ----- recovery: identical protocol to the thread supervisor -----
        let t0 = Instant::now();
        assert!(
            recoveries.len() < cfg.max_recoveries,
            "process supervisor: exceeded {} recoveries; last failures: {failures:?}",
            cfg.max_recoveries
        );
        let new_world = world - dead.len();
        assert!(
            new_world > 0,
            "no surviving ranks to recover with: {failures:?}"
        );

        let reached = outs
            .iter()
            .filter_map(|o| match o {
                RankOutcome::Finished(res) => Some(start_step + res.losses.len() as u64),
                RankOutcome::Died(_) => None,
            })
            .max()
            .unwrap_or(start_step);

        let (snap_step, snaps) =
            latest_consistent_snapshot(&cfg.snapshot_dir, reached, cfg.snapshot_every as u64)
                .unwrap_or_else(|| {
                    panic!(
                        "process supervisor: no consistent snapshot to recover from in {:?}",
                        cfg.snapshot_dir
                    )
                });
        let bytes_moved = snaps
            .iter()
            .map(|s| 4 * (s.master.len() + s.opt_m.len() + s.opt_v.len()) as u64)
            .sum();

        losses.truncate(snap_step as usize);
        for step in losses.len() as u64..snap_step {
            let i = (step - start_step) as usize;
            let vals: Vec<f32> = outs
                .iter()
                .filter_map(|o| match o {
                    RankOutcome::Finished(res) => res.losses.get(i).copied(),
                    RankOutcome::Died(_) => None,
                })
                .collect();
            assert!(
                !vals.is_empty(),
                "no loss record for step {step} below snapshot step {snap_step}"
            );
            losses.push(vals.iter().sum::<f32>() / vals.len() as f32);
        }

        // Reshard on the driver and hand each survivor its shard on disk.
        let resharded = reshard(&snaps, new_world);
        let rdir = opts.run_dir.join(format!("restore-{round}"));
        std::fs::create_dir_all(&rdir).expect("create restore dir");
        for shard in &resharded {
            shard.save(&rdir).expect("write resharded shard");
        }

        recoveries.push(RecoveryReport {
            failed_ranks: dead.clone(),
            failures,
            old_world: world,
            new_world,
            resumed_from_step: snap_step,
            steps_lost: reached.saturating_sub(snap_step),
            bytes_moved,
            wall_time: t0.elapsed(),
        });

        world = new_world;
        start_step = snap_step;
        restore_dir = Some(rdir);
        round += 1;
    }
}

/// One rank's fate in one round, from the driver's point of view.
enum RankOutcome {
    /// The process exited and renamed a parseable result file into place.
    Finished(WorkerResult),
    /// SIGKILL, panic, or a vanished result file: the rank is gone and
    /// its partial history with it.
    Died(String),
}

/// Spawns `world` workers, runs the kill watcher, reaps everyone, and
/// collects per-rank outcomes.
fn run_process_round(
    cfg: &SupervisorConfig,
    opts: &ProcessWorldOptions,
    world: usize,
    start_step: u64,
    restore_dir: Option<&Path>,
    plan: &FaultPlan,
    round: usize,
) -> Vec<RankOutcome> {
    let round_dir = opts.run_dir.join(format!("round-{round}"));
    let sock_dir = round_dir.join("sockets");
    std::fs::create_dir_all(&sock_dir).expect("create fabric socket dir");
    let token = zero_comm::process::fresh_token();

    let mut specs = Vec::with_capacity(world);
    for rank in 0..world {
        let spec = WorkerSpec {
            rank,
            world,
            token,
            socket_dir: sock_dir.clone(),
            snapshot_dir: cfg.snapshot_dir.clone(),
            restore_dir: restore_dir.map(Path::to_path_buf),
            result_path: round_dir.join(format!("result-{rank}.txt")),
            progress_path: round_dir.join(format!("progress-{rank}.txt")),
            model: cfg.setup.model,
            zero: cfg.setup.zero,
            global_batch: cfg.setup.global_batch,
            seed: cfg.setup.seed,
            steps: cfg.steps,
            start_step,
            snapshot_every: cfg.snapshot_every,
            recv_timeout: cfg.recv_timeout,
            heartbeat_interval: opts.heartbeat_interval,
            liveness_timeout: opts.liveness_timeout,
            handshake_timeout: opts.handshake_timeout,
            faults: plan.clone(),
        };
        let spec_path = round_dir.join(format!("spec-{rank}.txt"));
        std::fs::write(&spec_path, spec.serialize()).expect("write worker spec");
        specs.push((spec, spec_path));
    }

    let cmds: Vec<Command> = specs
        .iter()
        .map(|(_, path)| opts.worker.command(path))
        .collect();
    let mut procs = RankProcs::spawn(cmds).expect("spawn rank processes");

    // Kill watcher: poll the victim's progress file and SIGKILL it the
    // moment it has completed `after_step` steps — a genuinely
    // asynchronous death in the middle of the following step.
    if round == 0 {
        if let Some(kill) = opts.kill {
            assert!(kill.rank < world, "kill target outside the world");
            let progress = specs[kill.rank].0.progress_path.clone();
            let deadline = Instant::now() + opts.round_timeout;
            loop {
                if read_progress(&progress).is_some_and(|done| done >= kill.after_step) {
                    procs.kill(kill.rank);
                    break;
                }
                // If the fleet already exited (fast failure), stop waiting.
                if procs.poll() == 0 || Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    procs.wait_all(Instant::now() + opts.round_timeout);

    (0..world)
        .map(|rank| {
            let (spec, _) = &specs[rank];
            if procs.died_of_signal(rank) {
                return RankOutcome::Died(format!("rank {rank}: killed by signal"));
            }
            match std::fs::read_to_string(&spec.result_path) {
                Ok(text) => match WorkerResult::parse(&text) {
                    Ok(res) => RankOutcome::Finished(res),
                    Err(e) => RankOutcome::Died(format!("rank {rank}: bad result file: {e}")),
                },
                Err(_) => {
                    let status = procs
                        .status(rank)
                        .map(|s| format!("{s}"))
                        .unwrap_or_else(|| "unreaped".into());
                    RankOutcome::Died(format!(
                        "rank {rank}: exited ({status}) without a result"
                    ))
                }
            }
        })
        .collect()
}

fn read_progress(path: &Path) -> Option<u64> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Worker dispatch hook: call this *first* in `main` (or from a test
/// shim). If [`WORKER_SPEC_ENV`] is set, the process runs one rank to
/// completion and exits — it never returns. Otherwise it returns
/// immediately and the caller proceeds as the driver / CLI.
pub fn maybe_run_worker() {
    let Ok(spec_path) = std::env::var(WORKER_SPEC_ENV) else {
        return;
    };
    let code = match std::fs::read_to_string(&spec_path) {
        Ok(text) => run_worker(&text),
        Err(e) => {
            eprintln!("zero worker: cannot read spec {spec_path}: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn run_worker(text: &str) -> i32 {
    let spec = match WorkerSpec::parse(text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("zero worker: bad spec: {e}");
            return 2;
        }
    };
    let mut pcfg = ProcessWorldConfig::new(&spec.socket_dir, spec.world);
    pcfg.token = spec.token;
    pcfg.recv_timeout = spec.recv_timeout;
    pcfg.heartbeat_interval = spec.heartbeat_interval;
    pcfg.liveness_timeout = spec.liveness_timeout;
    pcfg.handshake_timeout = spec.handshake_timeout;
    pcfg.faults = spec.faults.clone();
    let comm = match connect_process_rank(spec.rank, &pcfg) {
        Ok(comm) => comm,
        Err(e) => {
            eprintln!("zero worker rank {}: handshake failed: {e}", spec.rank);
            return 3;
        }
    };
    let result = run_rank(&spec, comm);
    match result.write_atomic(&spec.result_path) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("zero worker rank {}: cannot write result: {e}", spec.rank);
            4
        }
    }
}

/// The worker-side mirror of the thread supervisor's per-rank round
/// closure: restore (or write the step-0 floor), train with snapshot
/// cadence and per-step progress reporting, then eval.
fn run_rank(spec: &WorkerSpec, comm: zero_comm::Communicator) -> WorkerResult {
    let rank = spec.rank;
    let world = spec.world;
    let local_batch = spec.global_batch / world;
    // Same corpus formula as the thread supervisor — the schedule is a
    // function of the global step, which is what makes cross-backend and
    // cross-world-size comparisons bitwise meaningful.
    let corpus = SyntheticCorpus::generate(
        spec.model.vocab,
        (spec.global_batch * (spec.model.seq + 1) * (spec.steps + 2)).max(10_000),
        spec.seed ^ 0x5EED,
    );
    let full_params = init_full_params(&spec.model, spec.seed);
    let gpt = Gpt::new_mp(spec.model, 1);
    let grid = Grid::new(world, 1);
    let mut engine = RankEngine::new(gpt, &full_params, spec.zero, grid, comm);

    let finish = |engine: &RankEngine, losses: Vec<f32>, eval, error: Option<CommError>| {
        let timeline = engine.timeline();
        let snap = engine.traffic();
        WorkerResult {
            losses,
            eval,
            self_fault: error.as_ref().is_some_and(|e| e.is_self_fault()),
            error: error.map(|e| e.to_string()),
            restore_spans: timeline.count_named(SpanCategory::Checkpoint, "snapshot-restore"),
            traffic: ALL_KINDS
                .iter()
                .map(|&k| (k.name().to_string(), snap.bytes(k), snap.messages(k)))
                .collect(),
        }
    };

    if let Some(rdir) = &spec.restore_dir {
        let shard = match RankSnapshot::load(rdir, rank) {
            Ok(shard) => shard,
            Err(e) => {
                return WorkerResult {
                    losses: Vec::new(),
                    eval: None,
                    error: Some(format!("restore shard unreadable: {e}")),
                    self_fault: true,
                    restore_spans: 0,
                    traffic: Vec::new(),
                };
            }
        };
        if let Err(e) = engine.try_restore_snapshot(&shard) {
            return finish(&engine, Vec::new(), None, Some(e));
        }
    } else {
        engine
            .save_snapshot()
            .save(&snapshot_dir_for(&spec.snapshot_dir, 0))
            .expect("write step-0 snapshot");
    }

    let mut losses = Vec::new();
    for step in spec.start_step as usize..spec.steps {
        let (ids, targets) =
            corpus.rank_batch(step, spec.global_batch, spec.model.seq, world, rank);
        match engine.try_train_step(&ids, &targets, local_batch) {
            Ok(out) => losses.push(out.loss),
            Err(e) => return finish(&engine, losses, None, Some(e)),
        }
        if (step + 1) % spec.snapshot_every == 0 {
            engine
                .save_snapshot()
                .save(&snapshot_dir_for(&spec.snapshot_dir, (step + 1) as u64))
                .expect("write snapshot shard");
        }
        write_atomic(&spec.progress_path, &format!("{}\n", step + 1))
            .expect("write progress file");
    }

    let (ids, targets) = corpus.rank_batch(
        spec.steps + 1,
        spec.global_batch,
        spec.model.seq,
        world,
        rank,
    );
    match engine.try_eval_loss(&ids, &targets, local_batch) {
        Ok(l) => finish(&engine, losses, Some(l), None),
        Err(e) => finish(&engine, losses, None, Some(e)),
    }
}

// ---------------------------------------------------------------------------
// Spec + result serialization (bit-exact, line-oriented key=value text)
// ---------------------------------------------------------------------------

/// Everything one rank process needs, self-contained. Floats travel as
/// exact bit patterns so the worker reconstructs configs bitwise.
#[derive(Clone, Debug)]
struct WorkerSpec {
    rank: usize,
    world: usize,
    token: u64,
    socket_dir: PathBuf,
    snapshot_dir: PathBuf,
    restore_dir: Option<PathBuf>,
    result_path: PathBuf,
    progress_path: PathBuf,
    model: ModelConfig,
    zero: ZeroConfig,
    global_batch: usize,
    seed: u64,
    steps: usize,
    start_step: u64,
    snapshot_every: usize,
    recv_timeout: Duration,
    heartbeat_interval: Duration,
    liveness_timeout: Duration,
    handshake_timeout: Duration,
    faults: FaultPlan,
}

fn f32_hex(v: f32) -> String {
    format!("{:08x}", v.to_bits())
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

impl WorkerSpec {
    fn serialize(&self) -> String {
        let mut s = String::new();
        let mut kv = |k: &str, v: String| {
            s.push_str(k);
            s.push('=');
            s.push_str(&v);
            s.push('\n');
        };
        kv("rank", self.rank.to_string());
        kv("world", self.world.to_string());
        kv("token", self.token.to_string());
        kv("socket_dir", self.socket_dir.display().to_string());
        kv("snapshot_dir", self.snapshot_dir.display().to_string());
        if let Some(r) = &self.restore_dir {
            kv("restore_dir", r.display().to_string());
        }
        kv("result_path", self.result_path.display().to_string());
        kv("progress_path", self.progress_path.display().to_string());

        kv("vocab", self.model.vocab.to_string());
        kv("seq", self.model.seq.to_string());
        kv("hidden", self.model.hidden.to_string());
        kv("layers", self.model.layers.to_string());
        kv("heads", self.model.heads.to_string());

        let z = &self.zero;
        kv(
            "stage",
            match z.stage {
                ZeroStage::Ddp => "ddp".into(),
                ZeroStage::One => "1".into(),
                ZeroStage::Two => "2".into(),
                ZeroStage::Three => "3".into(),
            },
        );
        kv("fp16", z.fp16.to_string());
        kv("checkpoint_activations", z.checkpoint_activations.to_string());
        kv("checkpoint_interval", z.checkpoint_interval.to_string());
        kv("partition_activations", z.partition_activations.to_string());
        kv("offload_checkpoints", z.offload_checkpoints.to_string());
        kv("bucket_elems", z.bucket_elems.to_string());
        kv("use_arena", z.use_arena.to_string());
        kv("initial_loss_scale", f32_hex(z.initial_loss_scale));
        if let Some(c) = z.clip_grad_norm {
            kv("clip_grad_norm", f64_hex(c));
        }
        kv("dropout", f32_hex(z.dropout));
        if let Some(n) = z.node_size {
            kv("node_size", n.to_string());
        }
        kv("overlap", z.overlap.to_string());
        let c = &z.compression;
        kv(
            "compression",
            format!("{}:{}:{}:{}:{}", c.qwz, c.hpz, c.qgz, c.node_size, c.block),
        );
        let t = &z.tier;
        kv(
            "tier",
            format!(
                "{}:{}:{}:{}:{}",
                t.enabled,
                t.device_budget,
                t.host_bw,
                t.host_lat.as_nanos(),
                t.depth
            ),
        );
        match &z.optimizer {
            OptimizerKind::Adam(a) => kv(
                "optimizer",
                format!(
                    "adam:{}:{}:{}:{}:{}",
                    f32_hex(a.lr),
                    f32_hex(a.beta1),
                    f32_hex(a.beta2),
                    f32_hex(a.eps),
                    f32_hex(a.weight_decay)
                ),
            ),
            OptimizerKind::Sgd(c) => kv(
                "optimizer",
                format!("sgd:{}:{}", f32_hex(c.lr), f32_hex(c.momentum)),
            ),
        }
        match z.lr_schedule {
            LrSchedule::Constant => kv("lr_schedule", "constant".into()),
            LrSchedule::Warmup { warmup } => kv("lr_schedule", format!("warmup:{warmup}")),
            LrSchedule::WarmupLinear {
                warmup,
                total,
                floor,
            } => kv(
                "lr_schedule",
                format!("warmup_linear:{warmup}:{total}:{}", f32_hex(floor)),
            ),
            LrSchedule::WarmupCosine {
                warmup,
                total,
                floor,
            } => kv(
                "lr_schedule",
                format!("warmup_cosine:{warmup}:{total}:{}", f32_hex(floor)),
            ),
        }

        kv("global_batch", self.global_batch.to_string());
        kv("seed", self.seed.to_string());
        kv("steps", self.steps.to_string());
        kv("start_step", self.start_step.to_string());
        kv("snapshot_every", self.snapshot_every.to_string());
        kv("recv_timeout_ms", self.recv_timeout.as_millis().to_string());
        kv(
            "heartbeat_ms",
            self.heartbeat_interval.as_millis().to_string(),
        );
        kv("liveness_ms", self.liveness_timeout.as_millis().to_string());
        kv(
            "handshake_ms",
            self.handshake_timeout.as_millis().to_string(),
        );

        kv("fault_seed", self.faults.seed().to_string());
        for f in self.faults.specs() {
            kv("fault", serialize_fault(f));
        }
        s
    }

    fn parse(text: &str) -> Result<WorkerSpec, String> {
        let kv = Kv::parse(text);
        let model = ModelConfig {
            vocab: kv.req("vocab")?,
            seq: kv.req("seq")?,
            hidden: kv.req("hidden")?,
            layers: kv.req("layers")?,
            heads: kv.req("heads")?,
        };
        let stage = match kv.str("stage")? {
            "ddp" => ZeroStage::Ddp,
            "1" => ZeroStage::One,
            "2" => ZeroStage::Two,
            "3" => ZeroStage::Three,
            other => return Err(format!("unknown stage {other:?}")),
        };
        let optimizer = parse_optimizer(kv.str("optimizer")?)?;
        let lr_schedule = parse_schedule(kv.str("lr_schedule")?)?;
        let zero = ZeroConfig {
            stage,
            fp16: kv.req("fp16")?,
            checkpoint_activations: kv.req("checkpoint_activations")?,
            checkpoint_interval: kv.req("checkpoint_interval")?,
            partition_activations: kv.req("partition_activations")?,
            offload_checkpoints: kv.req("offload_checkpoints")?,
            bucket_elems: kv.req("bucket_elems")?,
            use_arena: kv.req("use_arena")?,
            initial_loss_scale: kv.f32_bits("initial_loss_scale")?,
            clip_grad_norm: kv.opt_f64_bits("clip_grad_norm")?,
            optimizer,
            lr_schedule,
            dropout: kv.f32_bits("dropout")?,
            node_size: kv.opt("node_size")?,
            overlap: kv.req("overlap")?,
            compression: match kv.get("compression") {
                Some(s) => parse_compression(s)?,
                None => CompressionConfig::off(),
            },
            tier: match kv.get("tier") {
                Some(s) => parse_tier(s)?,
                None => TierConfig::off(),
            },
        };
        let mut faults = FaultPlan::seeded(kv.req("fault_seed")?);
        for line in kv.all("fault") {
            faults = faults.with(parse_fault(line)?);
        }
        Ok(WorkerSpec {
            rank: kv.req("rank")?,
            world: kv.req("world")?,
            token: kv.req("token")?,
            socket_dir: PathBuf::from(kv.str("socket_dir")?),
            snapshot_dir: PathBuf::from(kv.str("snapshot_dir")?),
            restore_dir: kv.get("restore_dir").map(PathBuf::from),
            result_path: PathBuf::from(kv.str("result_path")?),
            progress_path: PathBuf::from(kv.str("progress_path")?),
            model,
            zero,
            global_batch: kv.req("global_batch")?,
            seed: kv.req("seed")?,
            steps: kv.req("steps")?,
            start_step: kv.req("start_step")?,
            snapshot_every: kv.req("snapshot_every")?,
            recv_timeout: Duration::from_millis(kv.req("recv_timeout_ms")?),
            heartbeat_interval: Duration::from_millis(kv.req("heartbeat_ms")?),
            liveness_timeout: Duration::from_millis(kv.req("liveness_ms")?),
            handshake_timeout: Duration::from_millis(kv.req("handshake_ms")?),
            faults,
        })
    }
}

fn serialize_fault(f: &FaultSpec) -> String {
    let trigger = match f.trigger {
        FaultTrigger::AtOp(n) => format!("op:{n}"),
        FaultTrigger::AtKindOp(kind, n) => format!("kindop:{}:{n}", kind.name()),
    };
    let kind = match f.kind {
        FaultKind::Crash => "crash".to_string(),
        FaultKind::Hang => "hang".to_string(),
        FaultKind::CorruptNextSend => "corrupt".to_string(),
        FaultKind::Delay(d) => format!("delay:{}", d.as_millis()),
    };
    format!("rank:{};{trigger};{kind}", f.rank)
}

fn parse_fault(line: &str) -> Result<FaultSpec, String> {
    let parts: Vec<&str> = line.split(';').collect();
    let [rank_part, trigger_part, kind_part] = parts.as_slice() else {
        return Err(format!("fault spec {line:?} needs 3 ;-separated parts"));
    };
    let rank = rank_part
        .strip_prefix("rank:")
        .and_then(|r| r.parse().ok())
        .ok_or_else(|| format!("bad fault rank in {line:?}"))?;
    let trigger = if let Some(n) = trigger_part.strip_prefix("op:") {
        FaultTrigger::AtOp(n.parse().map_err(|_| format!("bad op in {line:?}"))?)
    } else if let Some(rest) = trigger_part.strip_prefix("kindop:") {
        let (name, n) = rest
            .rsplit_once(':')
            .ok_or_else(|| format!("bad kindop in {line:?}"))?;
        let kind = ALL_KINDS
            .iter()
            .copied()
            .find(|k| k.name() == name)
            .ok_or_else(|| format!("unknown collective kind {name:?}"))?;
        FaultTrigger::AtKindOp(kind, n.parse().map_err(|_| format!("bad op in {line:?}"))?)
    } else {
        return Err(format!("bad fault trigger in {line:?}"));
    };
    let kind = match *kind_part {
        "crash" => FaultKind::Crash,
        "hang" => FaultKind::Hang,
        "corrupt" => FaultKind::CorruptNextSend,
        other => {
            let ms = other
                .strip_prefix("delay:")
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| format!("bad fault kind in {line:?}"))?;
            FaultKind::Delay(Duration::from_millis(ms))
        }
    };
    Ok(FaultSpec {
        rank,
        trigger,
        kind,
    })
}

fn parse_tier(text: &str) -> Result<TierConfig, String> {
    let parts: Vec<&str> = text.split(':').collect();
    match parts.as_slice() {
        [enabled, budget, bw, lat_ns, depth] => Ok(TierConfig {
            enabled: enabled.parse().map_err(|e| format!("tier enabled: {e}"))?,
            device_budget: budget.parse().map_err(|e| format!("tier device_budget: {e}"))?,
            host_bw: bw.parse().map_err(|e| format!("tier host_bw: {e}"))?,
            host_lat: Duration::from_nanos(
                lat_ns.parse().map_err(|e| format!("tier host_lat: {e}"))?,
            ),
            depth: depth.parse().map_err(|e| format!("tier depth: {e}"))?,
        }),
        _ => Err(format!("malformed tier spec {text:?}")),
    }
}

fn parse_compression(text: &str) -> Result<CompressionConfig, String> {
    let parts: Vec<&str> = text.split(':').collect();
    match parts.as_slice() {
        [qwz, hpz, qgz, node_size, block] => Ok(CompressionConfig {
            qwz: qwz.parse().map_err(|e| format!("compression qwz: {e}"))?,
            hpz: hpz.parse().map_err(|e| format!("compression hpz: {e}"))?,
            qgz: qgz.parse().map_err(|e| format!("compression qgz: {e}"))?,
            node_size: node_size.parse().map_err(|e| format!("compression node_size: {e}"))?,
            block: block.parse().map_err(|e| format!("compression block: {e}"))?,
        }),
        _ => Err(format!("malformed compression spec {text:?}")),
    }
}

fn parse_optimizer(text: &str) -> Result<OptimizerKind, String> {
    let parts: Vec<&str> = text.split(':').collect();
    match parts.as_slice() {
        ["adam", lr, b1, b2, eps, wd] => Ok(OptimizerKind::Adam(AdamConfig {
            lr: parse_f32_bits(lr)?,
            beta1: parse_f32_bits(b1)?,
            beta2: parse_f32_bits(b2)?,
            eps: parse_f32_bits(eps)?,
            weight_decay: parse_f32_bits(wd)?,
        })),
        ["sgd", lr, momentum] => Ok(OptimizerKind::Sgd(SgdConfig {
            lr: parse_f32_bits(lr)?,
            momentum: parse_f32_bits(momentum)?,
        })),
        _ => Err(format!("unknown optimizer {text:?}")),
    }
}

fn parse_schedule(text: &str) -> Result<LrSchedule, String> {
    let parts: Vec<&str> = text.split(':').collect();
    match parts.as_slice() {
        ["constant"] => Ok(LrSchedule::Constant),
        ["warmup", w] => Ok(LrSchedule::Warmup {
            warmup: w.parse().map_err(|_| format!("bad warmup in {text:?}"))?,
        }),
        ["warmup_linear", w, t, f] => Ok(LrSchedule::WarmupLinear {
            warmup: w.parse().map_err(|_| format!("bad warmup in {text:?}"))?,
            total: t.parse().map_err(|_| format!("bad total in {text:?}"))?,
            floor: parse_f32_bits(f)?,
        }),
        ["warmup_cosine", w, t, f] => Ok(LrSchedule::WarmupCosine {
            warmup: w.parse().map_err(|_| format!("bad warmup in {text:?}"))?,
            total: t.parse().map_err(|_| format!("bad total in {text:?}"))?,
            floor: parse_f32_bits(f)?,
        }),
        _ => Err(format!("unknown lr schedule {text:?}")),
    }
}

fn parse_f32_bits(hex: &str) -> Result<f32, String> {
    u32::from_str_radix(hex, 16)
        .map(f32::from_bits)
        .map_err(|_| format!("bad f32 bit pattern {hex:?}"))
}

fn parse_f64_bits(hex: &str) -> Result<f64, String> {
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 bit pattern {hex:?}"))
}

/// What a worker reports back; floats travel as bit patterns so the
/// driver's stitched history is bitwise identical to an in-process run.
#[derive(Clone, Debug)]
struct WorkerResult {
    losses: Vec<f32>,
    eval: Option<f32>,
    error: Option<String>,
    self_fault: bool,
    restore_spans: usize,
    traffic: Vec<(String, u64, u64)>,
}

impl WorkerResult {
    fn serialize(&self) -> String {
        let losses: Vec<String> = self.losses.iter().map(|l| f32_hex(*l)).collect();
        let traffic: Vec<String> = self
            .traffic
            .iter()
            .map(|(name, b, m)| format!("{name}:{b}:{m}"))
            .collect();
        let mut s = String::new();
        s.push_str(&format!("losses={}\n", losses.join(",")));
        if let Some(eval) = self.eval {
            s.push_str(&format!("eval={}\n", f32_hex(eval)));
        }
        if let Some(err) = &self.error {
            // Result files are line-oriented; typed comm errors render on
            // one line, but don't let a future multi-line Display tear it.
            s.push_str(&format!("error={}\n", err.replace('\n', " ")));
        }
        s.push_str(&format!("self_fault={}\n", self.self_fault));
        s.push_str(&format!("restore_spans={}\n", self.restore_spans));
        s.push_str(&format!("traffic={}\n", traffic.join(";")));
        s
    }

    fn parse(text: &str) -> Result<WorkerResult, String> {
        let kv = Kv::parse(text);
        let losses = kv
            .str("losses")?
            .split(',')
            .filter(|part| !part.is_empty())
            .map(parse_f32_bits)
            .collect::<Result<Vec<f32>, String>>()?;
        let eval = match kv.get("eval") {
            Some(hex) => Some(parse_f32_bits(hex)?),
            None => None,
        };
        let traffic = kv
            .str("traffic")?
            .split(';')
            .filter(|part| !part.is_empty())
            .map(|part| {
                let fields: Vec<&str> = part.split(':').collect();
                let [name, b, m] = fields.as_slice() else {
                    return Err(format!("bad traffic entry {part:?}"));
                };
                let parsed_b = b.parse().map_err(|_| format!("bad bytes in {part:?}"))?;
                let parsed_m = m.parse().map_err(|_| format!("bad count in {part:?}"))?;
                Ok((name.to_string(), parsed_b, parsed_m))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(WorkerResult {
            losses,
            eval,
            error: kv.get("error").map(str::to_string),
            self_fault: kv.req("self_fault")?,
            restore_spans: kv.req("restore_spans")?,
            traffic,
        })
    }

    fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        write_atomic(path, &self.serialize())
    }
}

/// Write-then-rename so readers never observe a torn file: the rename is
/// what commits a worker's result (or progress tick).
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Minimal line-oriented `key=value` store with typed, error-reporting
/// accessors. Repeated keys are kept in order (fault specs).
struct Kv<'a> {
    entries: Vec<(&'a str, &'a str)>,
}

impl<'a> Kv<'a> {
    fn parse(text: &'a str) -> Kv<'a> {
        let entries = text
            .lines()
            .filter_map(|line| line.split_once('='))
            .map(|(k, v)| (k.trim(), v.trim()))
            .collect();
        Kv { entries }
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    fn all(&self, key: &str) -> impl Iterator<Item = &'a str> + '_ {
        let key = key.to_string();
        self.entries
            .iter()
            .filter(move |(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    fn str(&self, key: &str) -> Result<&'a str, String> {
        self.get(key).ok_or_else(|| format!("missing key {key:?}"))
    }

    fn req<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.str(key)?
            .parse()
            .map_err(|_| format!("unparseable value for {key:?}"))
    }

    fn opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("unparseable value for {key:?}")),
        }
    }

    fn f32_bits(&self, key: &str) -> Result<f32, String> {
        parse_f32_bits(self.str(key)?)
    }

    fn opt_f64_bits(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(hex) => parse_f64_bits(hex).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zero_comm::CollectiveKind;

    fn sample_spec() -> WorkerSpec {
        let mut zero = ZeroConfig::fp32_exact(ZeroStage::Two);
        zero.bucket_elems = 512;
        zero.clip_grad_norm = Some(0.75);
        zero.lr_schedule = LrSchedule::WarmupCosine {
            warmup: 3,
            total: 50,
            floor: 0.1,
        };
        WorkerSpec {
            rank: 2,
            world: 4,
            token: 0xDEAD_BEEF_CAFE,
            socket_dir: PathBuf::from("/tmp/fabric"),
            snapshot_dir: PathBuf::from("/tmp/snaps"),
            restore_dir: Some(PathBuf::from("/tmp/restore-0")),
            result_path: PathBuf::from("/tmp/result-2.txt"),
            progress_path: PathBuf::from("/tmp/progress-2.txt"),
            model: ModelConfig {
                vocab: 32,
                seq: 8,
                hidden: 16,
                layers: 2,
                heads: 2,
            },
            zero,
            global_batch: 12,
            seed: 11,
            steps: 20,
            start_step: 5,
            snapshot_every: 5,
            recv_timeout: Duration::from_millis(500),
            heartbeat_interval: Duration::from_millis(25),
            liveness_timeout: Duration::from_secs(1),
            handshake_timeout: Duration::from_secs(20),
            faults: FaultPlan::seeded(99)
                .with_crash(2, 7)
                .with_crash_at_kind(1, CollectiveKind::AllGather, 3)
                .with_hang(0, 40)
                .with_corruption(1, 25)
                .with_delay(3, 2, Duration::from_millis(15)),
        }
    }

    #[test]
    fn worker_spec_round_trips_exactly() {
        let spec = sample_spec();
        let parsed = WorkerSpec::parse(&spec.serialize()).expect("parse spec");
        assert_eq!(parsed.rank, spec.rank);
        assert_eq!(parsed.world, spec.world);
        assert_eq!(parsed.token, spec.token);
        assert_eq!(parsed.restore_dir, spec.restore_dir);
        assert_eq!(parsed.model, spec.model);
        assert_eq!(parsed.zero, spec.zero);
        assert_eq!(parsed.global_batch, spec.global_batch);
        assert_eq!(parsed.start_step, spec.start_step);
        assert_eq!(parsed.recv_timeout, spec.recv_timeout);
        assert_eq!(parsed.faults.seed(), spec.faults.seed());
        assert_eq!(parsed.faults.specs(), spec.faults.specs());
    }

    #[test]
    fn worker_spec_floats_survive_bitwise() {
        let mut spec = sample_spec();
        // Values with no short decimal representation.
        if let OptimizerKind::Adam(a) = &mut spec.zero.optimizer {
            a.lr = f32::from_bits(0x3a83_126f);
            a.eps = f32::MIN_POSITIVE;
        }
        spec.zero.dropout = f32::from_bits(0x3e99_999a);
        spec.zero.clip_grad_norm = Some(f64::from_bits(0x3FB9_9999_9999_999A));
        let parsed = WorkerSpec::parse(&spec.serialize()).expect("parse spec");
        assert_eq!(parsed.zero, spec.zero);
    }

    #[test]
    fn worker_result_round_trips_bitwise_including_nan_free_extremes() {
        let res = WorkerResult {
            losses: vec![f32::from_bits(0x7f7f_ffff), 1.5e-40, -0.0],
            eval: Some(f32::from_bits(0x0000_0001)),
            error: Some("rank 1 lost peer 2".to_string()),
            self_fault: true,
            restore_spans: 2,
            traffic: vec![
                ("all-reduce".into(), 123_456, 42),
                ("p2p".into(), 0, 0),
            ],
        };
        let parsed = WorkerResult::parse(&res.serialize()).expect("parse result");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        assert_eq!(bits(&parsed.losses), bits(&res.losses));
        assert_eq!(parsed.eval.map(f32::to_bits), res.eval.map(f32::to_bits));
        assert_eq!(parsed.error, res.error);
        assert!(parsed.self_fault);
        assert_eq!(parsed.restore_spans, 2);
        assert_eq!(parsed.traffic, res.traffic);
    }

    #[test]
    fn empty_loss_list_round_trips() {
        let res = WorkerResult {
            losses: Vec::new(),
            eval: None,
            error: None,
            self_fault: false,
            restore_spans: 0,
            traffic: Vec::new(),
        };
        let parsed = WorkerResult::parse(&res.serialize()).expect("parse result");
        assert!(parsed.losses.is_empty());
        assert!(parsed.eval.is_none());
        assert!(parsed.error.is_none());
    }

    #[test]
    fn malformed_spec_reports_missing_keys_not_panics() {
        let err = WorkerSpec::parse("rank=0\nworld=2\n").expect_err("must fail");
        assert!(err.contains("missing key"), "got {err}");
        let err = WorkerSpec::parse("").expect_err("must fail");
        assert!(err.contains("missing key"), "got {err}");
    }
}
