//! The two-tier memory store behind ZeRO-Offload-style training.
//!
//! ZeRO §3 bounds per-device model state at 16Ψ/N, but the follow-on work
//! (ZeRO-Offload, ZeRO-Infinity) trains past even that bound by spilling
//! optimizer states, gradients, and stage-3 parameter shards to a slower
//! host/NVMe tier. [`TierStore`] models that tier for one rank:
//!
//! - a **paged container**: pages hold real `f32` payloads, each resident
//!   in exactly one tier at a time; fetching past the device budget evicts
//!   least-recently-used pages automatically, so resident device bytes
//!   can never exceed the budget (the tier proptests drive arbitrary
//!   spill/fetch/evict interleavings against this invariant);
//! - a **byte meter and clock**: every crossing is counted in
//!   [`TierStats`] and priced at `host_lat + bytes / host_bw` of modeled
//!   time, the quantity `zero-sim`'s cadence model consumes.
//!
//! The engine keeps its flat training buffers where they are and uses the
//! store as the residency ledger and meter for them (the same modeling
//! precedent as P_a+cpu checkpoint offload): host residency is priced
//! under the `MemCategory::Host*` categories, and every planned tier
//! crossing is metered here, checked against the `CommPlan` tier stream,
//! and slept on the communicator's progress thread so the modeled latency
//! genuinely overlaps (or fails to overlap) with compute.

use crate::config::TierConfig;
use std::time::Duration;

/// Byte/op meters for one rank's tier traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Bytes moved host → device.
    pub fetch_bytes: u64,
    /// Bytes moved device → host.
    pub spill_bytes: u64,
    /// Number of host → device transfers.
    pub fetch_ops: u64,
    /// Number of device → host transfers.
    pub spill_ops: u64,
}

impl TierStats {
    /// Total bytes crossing the tier boundary in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.fetch_bytes + self.spill_bytes
    }
}

/// Handle to a page allocated in a [`TierStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageId(usize);

struct Page {
    data: Vec<f32>,
    on_device: bool,
    /// Logical clock of the last fetch/read/write touch (LRU eviction).
    last_use: u64,
}

impl Page {
    fn bytes(&self) -> u64 {
        4 * self.data.len() as u64
    }
}

/// A device tier with a hard byte budget over a bandwidth/latency-priced
/// host tier. See the module docs for the two roles it plays.
pub struct TierStore {
    cfg: TierConfig,
    pages: Vec<Page>,
    device_bytes: u64,
    clock: u64,
    stats: TierStats,
    modeled: Duration,
}

impl TierStore {
    /// An empty store enforcing `cfg.device_budget`.
    pub fn new(cfg: TierConfig) -> TierStore {
        TierStore {
            cfg,
            pages: Vec::new(),
            device_bytes: 0,
            clock: 0,
            stats: TierStats::default(),
            modeled: Duration::ZERO,
        }
    }

    /// The configuration this store prices transfers with.
    pub fn config(&self) -> &TierConfig {
        &self.cfg
    }

    /// Byte meters so far.
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    /// Modeled seconds spent on tier transfers so far.
    pub fn modeled_time(&self) -> Duration {
        self.modeled
    }

    /// Bytes currently resident in the device tier.
    pub fn device_bytes(&self) -> u64 {
        self.device_bytes
    }

    /// Bytes currently resident in the host tier.
    pub fn host_bytes(&self) -> u64 {
        self.pages
            .iter()
            .filter(|p| !p.on_device)
            .map(|p| p.bytes())
            .sum()
    }

    // ----- the meter/clock face (engine call sites) -----

    /// Meters one host → device transfer of `bytes` and returns its
    /// modeled duration.
    pub fn record_fetch(&mut self, bytes: u64) -> Duration {
        self.stats.fetch_bytes += bytes;
        self.stats.fetch_ops += 1;
        let t = self.cfg.transfer_time(bytes);
        self.modeled += t;
        t
    }

    /// Meters one device → host transfer of `bytes` and returns its
    /// modeled duration.
    pub fn record_spill(&mut self, bytes: u64) -> Duration {
        self.stats.spill_bytes += bytes;
        self.stats.spill_ops += 1;
        let t = self.cfg.transfer_time(bytes);
        self.modeled += t;
        t
    }

    // ----- the paged-container face -----

    /// Allocates a page holding `data`, host-resident (spilled) initially.
    pub fn alloc(&mut self, data: Vec<f32>) -> PageId {
        self.pages.push(Page { data, on_device: false, last_use: self.clock });
        self.clock += 1;
        PageId(self.pages.len() - 1)
    }

    /// True if the page currently lives in the device tier.
    pub fn on_device(&self, id: PageId) -> bool {
        self.pages[id.0].on_device
    }

    /// Reads the page's contents (either tier) and marks it touched.
    pub fn read(&mut self, id: PageId) -> &[f32] {
        self.clock += 1;
        let p = &mut self.pages[id.0];
        p.last_use = self.clock;
        &p.data
    }

    /// Overwrites `vals` into the page starting at element `offset`.
    ///
    /// # Panics
    /// Panics if the write runs past the end of the page.
    pub fn write(&mut self, id: PageId, offset: usize, vals: &[f32]) {
        self.clock += 1;
        let p = &mut self.pages[id.0];
        p.last_use = self.clock;
        p.data[offset..offset + vals.len()].copy_from_slice(vals);
    }

    /// Brings the page into the device tier, evicting least-recently-used
    /// resident pages as needed to stay inside the budget. Metered as a
    /// fetch (no-op if already resident). Returns the modeled transfer
    /// time.
    ///
    /// # Panics
    /// Panics if the page alone exceeds the device budget.
    pub fn fetch(&mut self, id: PageId) -> Duration {
        self.clock += 1;
        self.pages[id.0].last_use = self.clock;
        if self.pages[id.0].on_device {
            return Duration::ZERO;
        }
        let need = self.pages[id.0].bytes();
        assert!(
            need <= self.cfg.device_budget,
            "page of {need} bytes cannot fit device budget {}",
            self.cfg.device_budget
        );
        while self.device_bytes + need > self.cfg.device_budget {
            let victim = self
                .pages
                .iter()
                .enumerate()
                .filter(|(i, p)| p.on_device && *i != id.0)
                .min_by_key(|(_, p)| p.last_use)
                .map(|(i, _)| PageId(i))
                .expect("budget exceeded with no evictable page");
            self.evict(victim);
        }
        self.pages[id.0].on_device = true;
        self.device_bytes += need;
        self.record_fetch(need)
    }

    /// Moves the page back to the host tier, metered as a spill (no-op if
    /// already there). Returns the modeled transfer time.
    pub fn spill(&mut self, id: PageId) -> Duration {
        self.clock += 1;
        if !self.pages[id.0].on_device {
            return Duration::ZERO;
        }
        self.pages[id.0].on_device = false;
        self.device_bytes -= self.pages[id.0].bytes();
        self.record_spill(self.pages[id.0].bytes())
    }

    /// Evicts the page to the host tier without touching its LRU stamp —
    /// what [`TierStore::fetch`] does under budget pressure. Contents are
    /// preserved exactly; the write-back is metered as a spill.
    pub fn evict(&mut self, id: PageId) -> Duration {
        if !self.pages[id.0].on_device {
            return Duration::ZERO;
        }
        self.pages[id.0].on_device = false;
        self.device_bytes -= self.pages[id.0].bytes();
        self.record_spill(self.pages[id.0].bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(budget: u64) -> TierConfig {
        TierConfig { enabled: true, device_budget: budget, ..TierConfig::off() }
    }

    #[test]
    fn fetch_evicts_lru_to_respect_budget() {
        let mut ts = TierStore::new(cfg(10 * 4));
        let a = ts.alloc(vec![1.0; 6]);
        let b = ts.alloc(vec![2.0; 4]);
        let c = ts.alloc(vec![3.0; 8]);
        ts.fetch(a);
        ts.fetch(b); // a (24B) + b (16B) = 40B = budget
        assert_eq!(ts.device_bytes(), 40);
        ts.fetch(c); // needs 32B: evicts a (LRU), then b
        assert!(ts.on_device(c));
        assert!(!ts.on_device(a) && !ts.on_device(b));
        assert_eq!(ts.device_bytes(), 32);
        assert_eq!(ts.stats().fetch_bytes, 24 + 16 + 32);
        assert_eq!(ts.stats().spill_bytes, 24 + 16);
        assert_eq!(ts.read(a), &[1.0; 6], "eviction preserves contents");
    }

    #[test]
    fn transfers_are_priced() {
        let throttled = TierConfig {
            enabled: true,
            device_budget: 1 << 20,
            host_bw: 4_000, // 1000 elems/sec
            host_lat: Duration::from_millis(1),
            depth: 1,
        };
        let mut ts = TierStore::new(throttled);
        let p = ts.alloc(vec![0.0; 1000]);
        let t = ts.fetch(p);
        assert_eq!(t, Duration::from_millis(1) + Duration::from_secs(1));
        assert_eq!(ts.modeled_time(), t);
    }

    #[test]
    #[should_panic(expected = "cannot fit device budget")]
    fn oversized_page_rejected() {
        let mut ts = TierStore::new(cfg(8));
        let p = ts.alloc(vec![0.0; 100]);
        ts.fetch(p);
    }

    #[test]
    fn meter_face_accumulates() {
        let mut ts = TierStore::new(cfg(u64::MAX));
        ts.record_fetch(100);
        ts.record_spill(40);
        ts.record_fetch(1);
        let s = ts.stats();
        assert_eq!((s.fetch_bytes, s.fetch_ops), (101, 2));
        assert_eq!((s.spill_bytes, s.spill_ops), (40, 1));
        assert_eq!(s.total_bytes(), 141);
    }
}
