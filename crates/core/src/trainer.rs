//! Multi-rank training harness.
//!
//! Spawns one [`RankEngine`] per grid rank (each a thread, per
//! `zero-comm`), feeds every rank its share of each global batch, and
//! collects losses, memory footprints, and communication traffic — the
//! measurements the reproduction's experiments and equivalence tests
//! consume.

use zero_comm::{Grid, TimingSnapshot, TrafficSnapshot, World, WorldConfig};
use zero_model::{init_full_params, shard_params, Gpt, ModelConfig, SyntheticCorpus};

use crate::config::ZeroConfig;
use crate::engine::RankEngine;
use crate::memory::{MemCategory, ALL_CATEGORIES, CATEGORY_COUNT};

/// A complete training-run specification.
#[derive(Clone, Copy, Debug)]
pub struct TrainSetup {
    /// Model configuration (per the full, unsharded model).
    pub model: ModelConfig,
    /// ZeRO engine configuration.
    pub zero: ZeroConfig,
    /// Process grid (dp × mp).
    pub grid: Grid,
    /// Global batch size (split evenly over DP replicas).
    pub global_batch: usize,
    /// Parameter-init and data seed.
    pub seed: u64,
}

/// Per-rank measurements captured after a run.
#[derive(Clone, Debug)]
pub struct RankReport {
    /// Global rank.
    pub rank: usize,
    /// Peak device bytes.
    pub peak_device_bytes: u64,
    /// Peak model-state bytes (Figure 1 / Table 1 quantity).
    pub peak_model_state_bytes: u64,
    /// Live bytes per category at end of run (discriminant order).
    pub live_by_category: [u64; CATEGORY_COUNT],
    /// Peak bytes per category over the run (discriminant order).
    pub peak_by_category: [u64; CATEGORY_COUNT],
    /// Bytes moved over the simulated PCIe link (P_a+cpu).
    pub cpu_transfer_bytes: u64,
    /// Memory-tier fetch/spill meters (zero when offload is off).
    pub tier: crate::tier::TierStats,
    /// Modeled wall time of all tier transfers on the configured link.
    pub tier_time: std::time::Duration,
    /// Communication traffic snapshot.
    pub traffic: TrafficSnapshot,
    /// Per-kind wait vs in-flight execution timing.
    pub timing: TimingSnapshot,
    /// Everything this rank traced: spans, instants, counter samples
    /// (see [`zero_trace::StepTimeline`]).
    pub timeline: zero_trace::StepTimeline,
    /// This rank's fp32 master shard (or full buffer under DDP).
    pub master: Vec<f32>,
    /// The flat range the master shard covers.
    pub shard_range: std::ops::Range<usize>,
}

/// Results of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean loss per step, averaged over DP replicas.
    pub losses: Vec<f32>,
    /// Steps skipped by the loss scaler, per step (true = skipped).
    pub skipped: Vec<bool>,
    /// Validation losses, if eval points were requested.
    pub val_losses: Vec<f32>,
    /// Per-rank measurements.
    pub ranks: Vec<RankReport>,
}

impl TrainReport {
    /// Peak model-state bytes, maximum over ranks.
    pub fn max_model_state_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.peak_model_state_bytes).max().unwrap_or(0)
    }

    /// Reassembles the full fp32 master parameter buffer from the MP-rank-0
    /// replicas' shards (valid for mp = 1; for mp > 1 use per-shard
    /// comparisons instead). Under DDP each rank holds the full buffer and
    /// rank 0's copy is returned.
    ///
    /// # Panics
    /// Panics if the shards do not tile the flat space.
    pub fn gather_master_mp1(&self) -> Vec<f32> {
        if self.ranks[0].shard_range.start == 0 && !self.ranks.is_empty() {
            if let Some(full) = self
                .ranks
                .iter()
                .find(|r| r.shard_range.start == 0 && r.master.len() == r.shard_range.len())
            {
                let covers_all = self
                    .ranks
                    .iter()
                    .all(|r| r.shard_range == full.shard_range);
                if covers_all {
                    return full.master.clone();
                }
            }
        }
        let mut pieces: Vec<&RankReport> = self.ranks.iter().collect();
        pieces.sort_by_key(|r| r.shard_range.start);
        pieces.dedup_by_key(|r| r.shard_range.start);
        let mut out = Vec::new();
        for r in pieces {
            assert_eq!(r.shard_range.start, out.len(), "shards must tile the space");
            out.extend_from_slice(&r.master);
        }
        out
    }
}

/// Runs `steps` training steps on a fresh model over a synthetic corpus.
///
/// `eval_every` (if nonzero) runs a validation pass on a held-out batch
/// after every that many steps.
pub fn run_training(setup: &TrainSetup, steps: usize, eval_every: usize) -> TrainReport {
    let corpus = SyntheticCorpus::generate(
        setup.model.vocab,
        (setup.global_batch * (setup.model.seq + 1) * (steps + 2)).max(10_000),
        setup.seed ^ 0x5EED,
    );
    run_training_on(setup, steps, eval_every, corpus.tokens())
}

/// Like [`run_training`] but over a fabric built from the given
/// [`WorldConfig`] — e.g. with a nonzero link latency, which is what
/// makes computation/communication overlap measurable on one host.
pub fn run_training_world(
    setup: &TrainSetup,
    steps: usize,
    eval_every: usize,
    world: WorldConfig,
) -> TrainReport {
    let corpus = SyntheticCorpus::generate(
        setup.model.vocab,
        (setup.global_batch * (setup.model.seq + 1) * (steps + 2)).max(10_000),
        setup.seed ^ 0x5EED,
    );
    run_training_inner(setup, steps, eval_every, corpus.tokens(), world)
}

/// Like [`run_training`] but over a caller-supplied token stream (e.g. a
/// [`zero_model::ByteCorpus`] built from real text). Every token must be
/// `< model.vocab`.
/// Per-rank results collected by the training driver: losses, skipped
/// flags, final master params, and the rank's report.
type RankOutput = (Vec<f32>, Vec<bool>, Vec<f32>, RankReport);

pub fn run_training_on(
    setup: &TrainSetup,
    steps: usize,
    eval_every: usize,
    tokens: &[u32],
) -> TrainReport {
    run_training_inner(setup, steps, eval_every, tokens, WorldConfig::default())
}

fn run_training_inner(
    setup: &TrainSetup,
    steps: usize,
    eval_every: usize,
    tokens: &[u32],
    world_cfg: WorldConfig,
) -> TrainReport {
    setup.model.validate();
    setup.zero.validate();
    let n = setup.grid.world_size();
    assert_eq!(
        setup.global_batch % setup.grid.dp_degree(),
        0,
        "global batch must divide evenly over DP replicas"
    );
    assert!(
        tokens.iter().all(|&t| (t as usize) < setup.model.vocab),
        "token stream exceeds the model vocabulary"
    );
    assert!(
        tokens.len() > setup.model.seq + 1,
        "token stream shorter than one sequence"
    );
    let full = init_full_params(&setup.model, setup.seed);
    let corpus = TokenStream { tokens, seq: setup.model.seq };

    let mut world = World::with_config(n, world_cfg);
    let comms: Vec<_> = (0..n).map(|r| world.take(r)).collect();
    let setup_ref = &setup;
    let full_ref = &full;
    let corpus_ref = &corpus;

    let mut rank_outputs: Vec<Option<RankOutput>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                s.spawn(move || {
                    let rank = comm.rank();
                    let (dp_rank, mp_rank) = setup_ref.grid.coords(rank);
                    let mp = setup_ref.grid.mp_degree();
                    let gpt = Gpt::new_mp(setup_ref.model, mp);
                    let my_params = if mp == 1 {
                        full_ref.clone()
                    } else {
                        shard_params(&setup_ref.model, full_ref, mp, mp_rank)
                    };
                    let mut engine =
                        RankEngine::new(gpt, &my_params, setup_ref.zero, setup_ref.grid, comm);
                    drop(my_params);

                    let local_batch = setup_ref.global_batch / setup_ref.grid.dp_degree();
                    let mut losses = Vec::with_capacity(steps);
                    let mut skipped = Vec::with_capacity(steps);
                    let mut val_losses = Vec::new();
                    for step in 0..steps {
                        let (ids, targets) = corpus_ref.rank_batch(
                            step,
                            setup_ref.global_batch,
                            setup_ref.model.seq,
                            setup_ref.grid.dp_degree(),
                            dp_rank,
                        );
                        let out = engine.train_step(&ids, &targets, local_batch);
                        losses.push(out.loss);
                        skipped.push(out.skipped);
                        if eval_every > 0 && (step + 1) % eval_every == 0 {
                            // Held-out batch: beyond the training range.
                            let (ids, targets) = corpus_ref.rank_batch(
                                steps + 1,
                                setup_ref.global_batch,
                                setup_ref.model.seq,
                                setup_ref.grid.dp_degree(),
                                dp_rank,
                            );
                            val_losses.push(engine.eval_loss(&ids, &targets, local_batch));
                        }
                    }
                    let mem = engine.memory();
                    let mut live = [0u64; CATEGORY_COUNT];
                    let mut peak = [0u64; CATEGORY_COUNT];
                    for (i, c) in ALL_CATEGORIES.iter().enumerate() {
                        live[i] = mem.live(*c);
                        peak[i] = mem.peak(*c);
                    }
                    let report = RankReport {
                        rank,
                        peak_device_bytes: mem.peak_device(),
                        peak_model_state_bytes: mem.peak_model_states(),
                        live_by_category: live,
                        peak_by_category: peak,
                        cpu_transfer_bytes: mem.cpu_transfer_bytes(),
                        tier: engine.tier_stats(),
                        tier_time: engine.tier_time(),
                        traffic: engine.traffic(),
                        timing: engine.timing(),
                        timeline: engine.timeline(),
                        master: engine.master_params().to_vec(),
                        shard_range: engine.master_range(),
                    };
                    (losses, skipped, val_losses, report)
                })
            })
            .collect();
        for (slot, h) in rank_outputs.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank panicked"));
        }
    });

    let outputs: Vec<_> = rank_outputs.into_iter().map(|o| o.unwrap()).collect();
    // Average losses over DP replicas (take mp_rank 0 of each replica —
    // MP ranks report identical losses).
    let dp = setup.grid.dp_degree();
    let steps_run = outputs[0].0.len();
    let mut losses = vec![0.0_f32; steps_run];
    for d in 0..dp {
        let rank = setup.grid.rank_at(d, 0);
        for (i, l) in outputs[rank].0.iter().enumerate() {
            losses[i] += l / dp as f32;
        }
    }
    let mut val_losses = vec![0.0_f32; outputs[0].2.len()];
    for d in 0..dp {
        let rank = setup.grid.rank_at(d, 0);
        for (i, l) in outputs[rank].2.iter().enumerate() {
            val_losses[i] += l / dp as f32;
        }
    }
    let skipped = outputs[0].1.clone();
    let ranks = outputs.into_iter().map(|o| o.3).collect();
    TrainReport {
        losses,
        skipped,
        val_losses,
        ranks,
    }
}

/// Convenience: the live model-state bytes of one rank report.
pub fn model_state_bytes(report: &RankReport) -> u64 {
    use MemCategory::*;
    [ParamsFp16, Gradients, MasterParams, Momentum, Variance]
        .iter()
        .map(|&c| report.live_by_category[c as usize])
        .sum()
}

/// A borrowed token stream with the same batch-slicing semantics as
/// [`SyntheticCorpus::rank_batch`].
struct TokenStream<'a> {
    tokens: &'a [u32],
    seq: usize,
}

impl TokenStream<'_> {
    fn rank_batch(
        &self,
        index: usize,
        global_batch: usize,
        seq: usize,
        dp: usize,
        rank: usize,
    ) -> (Vec<u32>, Vec<u32>) {
        debug_assert_eq!(seq, self.seq);
        assert_eq!(global_batch % dp, 0, "batch not divisible by dp");
        let span = seq + 1;
        let local = global_batch / dp;
        let mut ids = Vec::with_capacity(local * seq);
        let mut targets = Vec::with_capacity(local * seq);
        for b in 0..local {
            let global_b = rank * local + b;
            let start = (index * global_batch * span + global_b * span)
                % (self.tokens.len() - span);
            let window = &self.tokens[start..start + span];
            ids.extend_from_slice(&window[..seq]);
            targets.extend_from_slice(&window[1..]);
        }
        (ids, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ZeroConfig, ZeroStage};

    fn tiny_setup(stage: ZeroStage, dp: usize, mp: usize) -> TrainSetup {
        TrainSetup {
            model: ModelConfig {
                vocab: 32,
                seq: 8,
                hidden: 16,
                layers: 2,
                heads: 2,
            },
            zero: ZeroConfig {
                stage,
                bucket_elems: 512,
                ..ZeroConfig::default()
            },
            grid: Grid::new(dp, mp),
            global_batch: 4,
            seed: 7,
        }
    }

    #[test]
    fn smoke_train_all_stages_fp16() {
        for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
            let setup = tiny_setup(stage, 2, 1);
            let report = run_training(&setup, 3, 0);
            assert_eq!(report.losses.len(), 3);
            assert!(
                report.losses.iter().all(|l| l.is_finite()),
                "{stage:?}: losses finite"
            );
        }
    }

    #[test]
    fn smoke_train_with_mp() {
        let setup = tiny_setup(ZeroStage::Two, 2, 2);
        let report = run_training(&setup, 2, 1);
        assert_eq!(report.losses.len(), 2);
        assert_eq!(report.val_losses.len(), 2);
        assert!(report.losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn smoke_train_offload_stages() {
        for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
            for overlap in [false, true] {
                let mut setup = tiny_setup(stage, 2, 1);
                setup.zero.overlap = overlap;
                setup.zero.tier = crate::config::TierConfig::budgeted(64 << 20);
                let report = run_training(&setup, 2, 1);
                assert!(
                    report.losses.iter().all(|l| l.is_finite()),
                    "{stage:?} overlap={overlap}: losses finite"
                );
                let t = &report.ranks[0].tier;
                assert!(
                    t.total_bytes() > 0,
                    "{stage:?} overlap={overlap}: tier traffic metered"
                );
                assert!(
                    report.ranks[0].peak_device_bytes <= 64 << 20,
                    "{stage:?} overlap={overlap}: budget respected"
                );
            }
        }
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut setup = tiny_setup(ZeroStage::Two, 2, 1);
        setup.zero.fp16 = false; // avoid scaler warm-up noise in a short run
        setup.zero.optimizer = crate::config::OptimizerKind::Adam(zero_optim::AdamConfig {
            lr: 3e-3,
            ..Default::default()
        });
        let report = run_training(&setup, 25, 0);
        let first: f32 = report.losses[..5].iter().sum::<f32>() / 5.0;
        let last: f32 = report.losses[20..].iter().sum::<f32>() / 5.0;
        assert!(last < first, "loss should fall: {first} -> {last}");
    }
}
