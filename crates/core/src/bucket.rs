//! CB: constant-size fused gradient buckets (§5.2, §6.2).
//!
//! Fusing many small gradients into one large buffer before a collective
//! is how DL stacks keep all-reduce bandwidth-efficient — but a fused
//! buffer proportional to model size "can become inhibiting" (12 GB for a
//! 3B model, §6.2). ZeRO instead uses a *constant-size* bucket: unit
//! gradients accumulate until the bucket reaches its capacity, then a
//! single reduction fires for the fused range. This also implements §5.2's
//! "bucketization strategy … we perform a reduction instead of an
//! all-reduce at the partition boundaries to … overlap computation and
//! communication".
//!
//! Gradients are produced in *reverse* flat order during backward (head
//! unit first, embedding last), so the pending region is always one
//! contiguous flat range growing downward.

/// Accumulates per-unit gradients and fires a flush callback whenever the
/// fused pending region reaches the capacity.
pub struct GradBucket {
    capacity: usize,
    /// Pending spans in arrival (descending) order; contiguity invariant:
    /// each new span ends where the previous began.
    pending: Vec<(std::ops::Range<usize>, Vec<f32>)>,
    pending_elems: usize,
    flushes: u64,
    max_fused: usize,
}

impl GradBucket {
    /// Creates a bucket that flushes at `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> GradBucket {
        assert!(capacity > 0, "bucket capacity must be positive");
        GradBucket {
            capacity,
            pending: Vec::new(),
            pending_elems: 0,
            flushes: 0,
            max_fused: 0,
        }
    }

    /// Bucket capacity in elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Elements currently pending.
    pub fn pending_elems(&self) -> usize {
        self.pending_elems
    }

    /// Number of flushes fired so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Largest fused buffer ever assembled (to verify the constant-size
    /// property: ≤ capacity + largest single unit).
    pub fn max_fused_elems(&self) -> usize {
        self.max_fused
    }

    /// Adds one unit's gradients (flat `range`, matching `data`), flushing
    /// if the pending region reaches capacity. `flush(range, fused)`
    /// receives the contiguous flat range and the fused values in flat
    /// order.
    ///
    /// # Panics
    /// Panics if `range`/`data` lengths differ or contiguity (descending,
    /// adjacent) is violated.
    pub fn push(
        &mut self,
        range: std::ops::Range<usize>,
        data: Vec<f32>,
        flush: &mut dyn FnMut(std::ops::Range<usize>, &mut [f32]),
    ) {
        assert_eq!(range.len(), data.len(), "bucket: range/data mismatch");
        if let Some((last, _)) = self.pending.last() {
            assert_eq!(
                range.end, last.start,
                "bucket: spans must arrive in descending contiguous order"
            );
        }
        self.pending_elems += data.len();
        self.pending.push((range, data));
        if self.pending_elems >= self.capacity {
            self.flush_all(flush);
        }
    }

    /// Flushes whatever is pending (end of backward pass).
    pub fn flush_all(&mut self, flush: &mut dyn FnMut(std::ops::Range<usize>, &mut [f32])) {
        if self.pending.is_empty() {
            return;
        }
        let start = self.pending.last().unwrap().0.start;
        let end = self.pending.first().unwrap().0.end;
        let mut fused = vec![0.0; end - start];
        for (r, d) in self.pending.drain(..) {
            fused[r.start - start..r.end - start].copy_from_slice(&d);
        }
        self.max_fused = self.max_fused.max(fused.len());
        self.pending_elems = 0;
        self.flushes += 1;
        flush(start..end, &mut fused);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_when_capacity_reached() {
        let mut b = GradBucket::new(10);
        let mut flushed: Vec<(std::ops::Range<usize>, Vec<f32>)> = Vec::new();
        let mut cb = |r: std::ops::Range<usize>, d: &mut [f32]| flushed.push((r, d.to_vec()));
        b.push(20..26, vec![6.0; 6], &mut cb);
        b.push(14..20, vec![4.0; 6], &mut cb);
        assert_eq!(flushed.len(), 1, "flush only at capacity");
        let (r, d) = &flushed[0];
        assert_eq!(*r, 14..26);
        assert_eq!(&d[..6], &[4.0; 6]);
        assert_eq!(&d[6..], &[6.0; 6]);
        assert_eq!(b.pending_elems(), 0);
    }

    #[test]
    fn flush_all_drains_remainder() {
        let mut b = GradBucket::new(100);
        let mut count = 0;
        let mut cb = |_: std::ops::Range<usize>, _: &mut [f32]| count += 1;
        b.push(5..8, vec![1.0; 3], &mut cb);
        b.push(0..5, vec![2.0; 5], &mut cb);
        b.flush_all(&mut cb);
        b.flush_all(&mut cb);
        assert_eq!(count, 1, "one real flush; the empty one is a no-op");
    }

    #[test]
    fn oversized_unit_flushes_alone() {
        let mut b = GradBucket::new(4);
        let mut sizes = Vec::new();
        let mut cb = |r: std::ops::Range<usize>, _: &mut [f32]| sizes.push(r.len());
        b.push(10..20, vec![0.0; 10], &mut cb);
        assert_eq!(sizes, vec![10]);
        assert_eq!(b.max_fused_elems(), 10);
    }

    #[test]
    #[should_panic(expected = "descending contiguous")]
    fn non_contiguous_spans_rejected() {
        let mut b = GradBucket::new(100);
        let mut cb = |_: std::ops::Range<usize>, _: &mut [f32]| {};
        b.push(10..20, vec![0.0; 10], &mut cb);
        b.push(0..5, vec![0.0; 5], &mut cb); // gap 5..10
    }

    #[test]
    fn fused_values_are_in_flat_order() {
        let mut b = GradBucket::new(6);
        let mut got = Vec::new();
        let mut cb = |_: std::ops::Range<usize>, d: &mut [f32]| got = d.to_vec();
        b.push(3..6, vec![30.0, 31.0, 32.0], &mut cb);
        b.push(0..3, vec![0.0, 1.0, 2.0], &mut cb);
        assert_eq!(got, vec![0.0, 1.0, 2.0, 30.0, 31.0, 32.0]);
    }
}
