//! Explicit per-rank memory accounting.
//!
//! §3 of the paper decomposes training memory into model states (fp16
//! parameters 2Ψ, fp16 gradients 2Ψ, fp32 master + Adam moments KΨ = 12Ψ)
//! and residual states (activations, temporary buffers, fragmentation).
//! The engine registers every allocation it makes against one of those
//! categories, so tests can assert the *measured* peak equals the paper's
//! closed-form expressions — the same validation Table 2 performs at
//! cluster scale ("the measured model size with P_os matches the
//! theoretical maximum").

/// Memory categories, mirroring the paper's taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum MemCategory {
    /// fp16 working parameters (2 bytes/param) — the "parameters" term.
    ParamsFp16 = 0,
    /// fp16 gradients (2 bytes/param) — the "gradients" term.
    Gradients = 1,
    /// fp32 master parameters (4 bytes/param) — part of K.
    MasterParams = 2,
    /// Adam first moment, fp32 — part of K.
    Momentum = 3,
    /// Adam second moment, fp32 — part of K.
    Variance = 4,
    /// Saved activations for backward (non-checkpointed).
    Activations = 5,
    /// Activation checkpoints (§6.1).
    Checkpoints = 6,
    /// Temporary fused buffers (§6.2 CB) and per-unit working copies.
    Buffers = 7,
    /// Bytes resident in CPU memory via P_a+cpu offload — NOT device
    /// memory; excluded from [`MemoryTracker::device_live`].
    CpuOffload = 8,
    /// hpZ secondary parameter partition: the node-local fp16 replica
    /// (≈ 2Ψ/G per rank) that lets backward all-gathers stay intra-node.
    /// Device memory, but NOT a model state in the paper's §3 sense —
    /// it is a derived cache rebuilt from the primary partition.
    SecondaryParams = 9,
    /// Tier offload: fp32 master + optimizer moments resident in the host
    /// tier (stage ≥ 1). NOT device memory.
    HostOptimizerStates = 10,
    /// Tier offload: the reduced gradient shard resident in the host tier
    /// (stage ≥ 2). NOT device memory.
    HostGradShard = 11,
    /// Tier offload: the stage-3 working parameter shard resident in the
    /// host tier. NOT device memory.
    HostParamShard = 12,
}

/// Number of categories.
pub const CATEGORY_COUNT: usize = 13;

/// All categories in discriminant order.
pub const ALL_CATEGORIES: [MemCategory; CATEGORY_COUNT] = [
    MemCategory::ParamsFp16,
    MemCategory::Gradients,
    MemCategory::MasterParams,
    MemCategory::Momentum,
    MemCategory::Variance,
    MemCategory::Activations,
    MemCategory::Checkpoints,
    MemCategory::Buffers,
    MemCategory::CpuOffload,
    MemCategory::SecondaryParams,
    MemCategory::HostOptimizerStates,
    MemCategory::HostGradShard,
    MemCategory::HostParamShard,
];

impl MemCategory {
    /// True for categories that occupy device memory (everything except
    /// the CPU-offload and host-tier residency categories).
    pub fn is_device(self) -> bool {
        !matches!(
            self,
            MemCategory::CpuOffload
                | MemCategory::HostOptimizerStates
                | MemCategory::HostGradShard
                | MemCategory::HostParamShard
        )
    }
}

/// Categories that constitute "model states" in the paper's sense.
pub const MODEL_STATE_CATEGORIES: [MemCategory; 5] = [
    MemCategory::ParamsFp16,
    MemCategory::Gradients,
    MemCategory::MasterParams,
    MemCategory::Momentum,
    MemCategory::Variance,
];

/// Live/peak byte counters per category for one rank.
///
/// Single-threaded by design (each rank owns its tracker), which keeps the
/// accounting exact and free of ordering questions.
#[derive(Clone, Debug, Default)]
pub struct MemoryTracker {
    live: [u64; CATEGORY_COUNT],
    peak: [u64; CATEGORY_COUNT],
    peak_device_total: u64,
    peak_model_states: u64,
    cpu_transfer_bytes: u64,
    device_budget: Option<u64>,
}

impl MemoryTracker {
    /// A fresh tracker with all counters zero.
    pub fn new() -> MemoryTracker {
        MemoryTracker::default()
    }

    /// Installs a hard device-byte budget: any allocation that would push
    /// live device bytes past it panics, so a run that completes has
    /// *proved* `peak_device() <= budget` rather than asserted it after
    /// the fact.
    pub fn set_device_budget(&mut self, budget: Option<u64>) {
        self.device_budget = budget;
    }

    /// The enforced device budget, if any.
    pub fn device_budget(&self) -> Option<u64> {
        self.device_budget
    }

    /// Registers an allocation of `bytes` under `cat`.
    ///
    /// # Panics
    /// Panics when a device budget is installed and this allocation would
    /// exceed it.
    pub fn alloc(&mut self, cat: MemCategory, bytes: u64) {
        let i = cat as usize;
        self.live[i] += bytes;
        if self.live[i] > self.peak[i] {
            self.peak[i] = self.live[i];
        }
        let dev = self.device_live();
        if let Some(budget) = self.device_budget {
            assert!(
                dev <= budget,
                "device budget exceeded: {dev} live device bytes > budget {budget} \
                 (allocating {bytes} under {cat:?})"
            );
        }
        if dev > self.peak_device_total {
            self.peak_device_total = dev;
        }
        let ms = self.model_state_live();
        if ms > self.peak_model_states {
            self.peak_model_states = ms;
        }
    }

    /// Registers a release of `bytes` under `cat`.
    ///
    /// # Panics
    /// Panics on a release exceeding the live amount (a double free in the
    /// engine's accounting).
    pub fn free(&mut self, cat: MemCategory, bytes: u64) {
        let i = cat as usize;
        assert!(
            self.live[i] >= bytes,
            "memory accounting underflow in {:?}: freeing {} of {}",
            cat,
            bytes,
            self.live[i]
        );
        self.live[i] -= bytes;
    }

    /// Records `bytes` moved over the (simulated) PCIe link for P_a+cpu;
    /// §8 prices this at 2× the P_a all-gather volume.
    pub fn record_cpu_transfer(&mut self, bytes: u64) {
        self.cpu_transfer_bytes += bytes;
    }

    /// Total bytes moved to/from CPU so far.
    pub fn cpu_transfer_bytes(&self) -> u64 {
        self.cpu_transfer_bytes
    }

    /// Live bytes in one category.
    pub fn live(&self, cat: MemCategory) -> u64 {
        self.live[cat as usize]
    }

    /// Peak bytes in one category.
    pub fn peak(&self, cat: MemCategory) -> u64 {
        self.peak[cat as usize]
    }

    /// Live device bytes (everything except CPU offload and the host-tier
    /// residency categories).
    pub fn device_live(&self) -> u64 {
        ALL_CATEGORIES
            .iter()
            .filter(|&&c| c.is_device())
            .map(|&c| self.live[c as usize])
            .sum()
    }

    /// Peak simultaneous device bytes (the paper's "max cached memory",
    /// Figure 7 analogue).
    pub fn peak_device(&self) -> u64 {
        self.peak_device_total
    }

    /// Live model-state bytes (params + grads + optimizer states).
    pub fn model_state_live(&self) -> u64 {
        MODEL_STATE_CATEGORIES.iter().map(|&c| self.live[c as usize]).sum()
    }

    /// Peak simultaneous model-state bytes — the quantity Figure 1 and
    /// Table 1 tabulate.
    pub fn peak_model_states(&self) -> u64 {
        self.peak_model_states
    }

    /// Resets peaks to current live values (for per-iteration peaks).
    pub fn reset_peaks(&mut self) {
        self.peak = self.live;
        self.peak_device_total = self.device_live();
        self.peak_model_states = self.model_state_live();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_and_peaks() {
        let mut m = MemoryTracker::new();
        m.alloc(MemCategory::ParamsFp16, 100);
        m.alloc(MemCategory::Gradients, 50);
        assert_eq!(m.device_live(), 150);
        m.free(MemCategory::Gradients, 50);
        assert_eq!(m.device_live(), 100);
        assert_eq!(m.peak_device(), 150, "peak remembers the high-water mark");
        m.alloc(MemCategory::Gradients, 20);
        assert_eq!(m.peak(MemCategory::Gradients), 50);
    }

    #[test]
    fn model_states_exclude_activations_and_buffers() {
        let mut m = MemoryTracker::new();
        m.alloc(MemCategory::MasterParams, 400);
        m.alloc(MemCategory::Momentum, 400);
        m.alloc(MemCategory::Variance, 400);
        m.alloc(MemCategory::Activations, 999);
        m.alloc(MemCategory::Buffers, 123);
        assert_eq!(m.model_state_live(), 1200);
        assert_eq!(m.peak_model_states(), 1200);
    }

    #[test]
    fn cpu_offload_not_counted_as_device() {
        let mut m = MemoryTracker::new();
        m.alloc(MemCategory::CpuOffload, 1_000_000);
        assert_eq!(m.device_live(), 0);
        assert_eq!(m.live(MemCategory::CpuOffload), 1_000_000);
        m.record_cpu_transfer(2_000_000);
        assert_eq!(m.cpu_transfer_bytes(), 2_000_000);
    }

    #[test]
    fn secondary_params_are_device_but_not_model_state() {
        let mut m = MemoryTracker::new();
        m.alloc(MemCategory::SecondaryParams, 500);
        assert_eq!(m.device_live(), 500);
        assert_eq!(m.model_state_live(), 0);
    }

    #[test]
    fn host_tier_categories_are_not_device() {
        let mut m = MemoryTracker::new();
        m.alloc(MemCategory::HostOptimizerStates, 1200);
        m.alloc(MemCategory::HostGradShard, 200);
        m.alloc(MemCategory::HostParamShard, 200);
        assert_eq!(m.device_live(), 0);
        assert_eq!(m.model_state_live(), 0);
        m.alloc(MemCategory::Buffers, 10);
        assert_eq!(m.device_live(), 10);
    }

    #[test]
    fn device_budget_admits_runs_under_it() {
        let mut m = MemoryTracker::new();
        m.set_device_budget(Some(100));
        m.alloc(MemCategory::HostOptimizerStates, 1 << 40); // host: free
        m.alloc(MemCategory::Buffers, 60);
        m.free(MemCategory::Buffers, 60);
        m.alloc(MemCategory::Buffers, 100);
        assert_eq!(m.peak_device(), 100);
    }

    #[test]
    #[should_panic(expected = "device budget exceeded")]
    fn device_budget_rejects_overallocation() {
        let mut m = MemoryTracker::new();
        m.set_device_budget(Some(100));
        m.alloc(MemCategory::Buffers, 60);
        m.alloc(MemCategory::Activations, 41);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn double_free_detected() {
        let mut m = MemoryTracker::new();
        m.alloc(MemCategory::Buffers, 10);
        m.free(MemCategory::Buffers, 11);
    }

    #[test]
    fn reset_peaks_tracks_per_iteration() {
        let mut m = MemoryTracker::new();
        m.alloc(MemCategory::Activations, 100);
        m.free(MemCategory::Activations, 100);
        assert_eq!(m.peak(MemCategory::Activations), 100);
        m.reset_peaks();
        assert_eq!(m.peak(MemCategory::Activations), 0);
        m.alloc(MemCategory::Activations, 40);
        assert_eq!(m.peak(MemCategory::Activations), 40);
    }
}
