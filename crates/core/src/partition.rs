//! Flat-space partitioning of model states across data-parallel ranks.
//!
//! ZeRO-DP groups the flattened model states "into N_d equal partitions,
//! such that the i-th data parallel process only updates the optimizer
//! states corresponding to the i-th partition" (§5.1). The partition is
//! over the *global flat element space*, so a layer's parameter range
//! generally straddles several owners; [`Partitioner::intersect_counts`]
//! computes the per-owner pieces the variable-count collectives consume.

use zero_comm::chunk_range;

/// A balanced partition of `total` flat elements over `n` owners.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partitioner {
    total: usize,
    n: usize,
}

impl Partitioner {
    /// Creates a partition of `total` elements over `n` owners.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(total: usize, n: usize) -> Partitioner {
        assert!(n > 0, "cannot partition over zero owners");
        Partitioner { total, n }
    }

    /// Total flat elements.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of owners N_d.
    pub fn owners(&self) -> usize {
        self.n
    }

    /// Owner `i`'s shard as a range of the flat space.
    pub fn shard_range(&self, i: usize) -> std::ops::Range<usize> {
        assert!(i < self.n, "owner {i} out of range");
        chunk_range(self.total, self.n, i)
    }

    /// All shard lengths, in owner order.
    pub fn counts(&self) -> Vec<usize> {
        (0..self.n).map(|i| self.shard_range(i).len()).collect()
    }

    /// The owner of flat element `idx`.
    pub fn owner_of(&self, idx: usize) -> usize {
        assert!(idx < self.total, "element {idx} out of range");
        // Balanced chunks: the first `rem` owners have base+1 elements.
        let base = self.total / self.n;
        let rem = self.total % self.n;
        let big = (base + 1) * rem;
        if idx < big {
            idx / (base + 1)
        } else {
            rem + (idx - big) / base.max(1)
        }
    }

    /// For a flat subrange (e.g. one layer's parameters), the length of its
    /// intersection with each owner's shard — the `counts` argument for
    /// `all_gather_var_in` / `reduce_scatter_var_in`.
    pub fn intersect_counts(&self, range: &std::ops::Range<usize>) -> Vec<usize> {
        (0..self.n)
            .map(|i| {
                let s = self.shard_range(i);
                let lo = s.start.max(range.start);
                let hi = s.end.min(range.end);
                hi.saturating_sub(lo)
            })
            .collect()
    }

    /// Proves the tiling invariants of this partition by arithmetic:
    ///
    /// * **cover + disjoint**: the shards are contiguous and ordered, so
    ///   `shard_0 ‖ shard_1 ‖ … = 0..total` with no gaps or overlaps —
    ///   every flat element is owned by exactly one rank;
    /// * **balance**: shard lengths differ by at most one element (the
    ///   padding the balanced-uneven split absorbs);
    /// * **owner agreement**: the closed-form [`Self::owner_of`] agrees
    ///   with [`Self::shard_range`] at every shard boundary (first and
    ///   last element of each shard — the only places the closed form can
    ///   break) and on a strided interior sample.
    ///
    /// Returns `Err` with a description of the first violated invariant.
    pub fn verify_tiling(&self) -> Result<(), String> {
        let mut cursor = 0;
        let base = self.total / self.n;
        for i in 0..self.n {
            let r = self.shard_range(i);
            if r.start != cursor {
                return Err(format!(
                    "shard {i} starts at {} but previous shard ended at {cursor} \
                     (total={}, n={})",
                    r.start, self.total, self.n
                ));
            }
            if r.end < r.start {
                return Err(format!("shard {i} is inverted: {r:?}"));
            }
            if r.len() != base && r.len() != base + 1 {
                return Err(format!(
                    "shard {i} has {} elements; balance requires {base} or {} \
                     (total={}, n={})",
                    r.len(),
                    base + 1,
                    self.total,
                    self.n
                ));
            }
            cursor = r.end;
            // Owner agreement at the boundaries and a strided sample.
            if !r.is_empty() {
                let stride = (r.len() / 16).max(1);
                for idx in [r.start, r.end - 1]
                    .into_iter()
                    .chain(r.clone().step_by(stride))
                {
                    let o = self.owner_of(idx);
                    if o != i {
                        return Err(format!(
                            "owner_of({idx}) = {o} but element lies in shard {i} \
                             (total={}, n={})",
                            self.total, self.n
                        ));
                    }
                }
            }
        }
        if cursor != self.total {
            return Err(format!(
                "shards cover 0..{cursor} but the space is 0..{} (n={})",
                self.total, self.n
            ));
        }
        Ok(())
    }

    /// The intersection of owner `i`'s shard with `range`, expressed in
    /// coordinates *relative to the owner's shard start* — i.e. the slice
    /// of the owner's local buffer that stores that part of `range`.
    pub fn local_slice_of(&self, i: usize, range: &std::ops::Range<usize>) -> std::ops::Range<usize> {
        let s = self.shard_range(i);
        let lo = s.start.max(range.start);
        let hi = s.end.min(range.end);
        if lo >= hi {
            // Empty intersection: a canonical empty range, safely sliceable.
            return 0..0;
        }
        lo - s.start..hi - s.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_cover_without_overlap() {
        for total in [0usize, 1, 10, 97, 1024] {
            for n in [1usize, 2, 3, 7, 16] {
                let p = Partitioner::new(total, n);
                let mut cursor = 0;
                for i in 0..n {
                    let r = p.shard_range(i);
                    assert_eq!(r.start, cursor);
                    cursor = r.end;
                }
                assert_eq!(cursor, total);
                assert_eq!(p.counts().iter().sum::<usize>(), total);
            }
        }
    }

    #[test]
    fn owner_of_agrees_with_shard_range() {
        for total in [10usize, 97, 256] {
            for n in [1usize, 3, 8] {
                let p = Partitioner::new(total, n);
                for idx in 0..total {
                    let o = p.owner_of(idx);
                    assert!(p.shard_range(o).contains(&idx), "total={total} n={n} idx={idx}");
                }
            }
        }
    }

    #[test]
    fn intersect_counts_sum_to_range_length() {
        let p = Partitioner::new(100, 7);
        for range in [0..100, 13..57, 0..1, 99..100, 40..40] {
            let counts = p.intersect_counts(&range);
            assert_eq!(counts.iter().sum::<usize>(), range.len(), "{range:?}");
        }
    }

    #[test]
    fn local_slices_are_consistent_with_counts() {
        let p = Partitioner::new(50, 4);
        let range = 10..37;
        let counts = p.intersect_counts(&range);
        for (i, cnt) in counts.iter().enumerate() {
            let local = p.local_slice_of(i, &range);
            assert_eq!(local.len(), *cnt, "owner {i}");
            // The local slice must sit inside the owner's shard.
            assert!(local.end <= p.shard_range(i).len());
        }
    }

    #[test]
    fn verify_tiling_accepts_valid_partitions() {
        for total in [0usize, 1, 7, 100, 12345] {
            for n in [1usize, 2, 3, 8, 64] {
                Partitioner::new(total, n).verify_tiling().unwrap();
            }
        }
    }

    #[test]
    fn empty_intersections_for_disjoint_ranges() {
        let p = Partitioner::new(100, 4); // shards of 25
        let counts = p.intersect_counts(&(0..10));
        assert_eq!(counts, vec![10, 0, 0, 0]);
        let local = p.local_slice_of(3, &(0..10));
        assert_eq!(local.len(), 0);
    }
}
