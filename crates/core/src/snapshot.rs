//! Sharded training-state checkpoints.
//!
//! ZeRO makes checkpointing naturally *sharded*: under stages 1–3 each
//! rank owns a disjoint 1/N_d partition of the fp32 master parameters and
//! optimizer states, so each rank persists only its own shard — N_d files
//! that together hold exactly one copy of the training state, instead of
//! N_d redundant full copies. This mirrors how DeepSpeed stores ZeRO
//! checkpoints.
//!
//! The format is a small self-describing binary layout (no external
//! serialization dependency): a magic/version header followed by
//! length-prefixed little-endian sections, closed by a CRC32 over
//! everything after the version field. The trailing checksum makes three
//! failure modes distinguishable on load:
//!
//! * **not a snapshot** — wrong magic or version ([`SnapshotError::BadMagic`],
//!   [`SnapshotError::UnsupportedVersion`]);
//! * **torn write** — the file ends mid-section, e.g. a rank died while
//!   checkpointing ([`SnapshotError::Torn`]);
//! * **bit rot** — the file is complete but its payload was altered after
//!   the fact ([`SnapshotError::ChecksumMismatch`]).

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use zero_comm::Crc32;

const MAGIC: &[u8; 8] = b"ZEROSNAP";
const VERSION: u32 = 2;

/// Why a snapshot failed to load (or a set failed validation).
#[derive(Debug)]
pub enum SnapshotError {
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The file is a snapshot, but from an incompatible format version.
    UnsupportedVersion(u32),
    /// The file ends mid-section: a torn or truncated write (the writer
    /// died part-way through). Distinct from [`SnapshotError::BadMagic`]
    /// so recovery code can tell "garbage file" from "interrupted save".
    Torn,
    /// The payload is complete but its CRC32 does not match the recorded
    /// one: silent corruption after the write.
    ChecksumMismatch {
        /// CRC recorded in the file.
        declared: u32,
        /// CRC recomputed over the payload as read.
        actual: u32,
    },
    /// A section header requests an absurd allocation (corrupt length).
    ImplausibleLength(u64),
    /// Snapshots in a set disagree with each other (step or world size) —
    /// they cannot all come from the same consistent checkpoint.
    Inconsistent(String),
    /// Any other I/O failure (permissions, missing file, …).
    Io(io::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "bad magic: not a snapshot file"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::Torn => {
                write!(f, "torn snapshot: file ends mid-section (interrupted write)")
            }
            SnapshotError::ChecksumMismatch { declared, actual } => write!(
                f,
                "snapshot checksum mismatch: file declares {declared:#010x}, payload hashes to {actual:#010x}"
            ),
            SnapshotError::ImplausibleLength(len) => {
                write!(f, "implausible section length {len}")
            }
            SnapshotError::Inconsistent(why) => write!(f, "inconsistent snapshot set: {why}"),
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> SnapshotError {
        // `read_exact` hitting EOF mid-field is how truncation manifests.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            SnapshotError::Torn
        } else {
            SnapshotError::Io(e)
        }
    }
}

impl From<SnapshotError> for io::Error {
    fn from(e: SnapshotError) -> io::Error {
        match e {
            SnapshotError::Io(e) => e,
            SnapshotError::Torn => io::Error::new(io::ErrorKind::UnexpectedEof, e.to_string()),
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// `Write` adapter that folds everything written into a CRC32.
struct CrcWriter<'a, W: Write> {
    inner: &'a mut W,
    crc: Crc32,
}

impl<W: Write> Write for CrcWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// `Read` adapter that folds everything read into a CRC32.
struct CrcReader<'a, R: Read> {
    inner: &'a mut R,
    crc: Crc32,
}

impl<R: Read> Read for CrcReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

/// Everything one rank needs to resume training.
#[derive(Clone, Debug, PartialEq)]
pub struct RankSnapshot {
    /// Global rank that wrote the shard.
    pub rank: u32,
    /// World size at save time (resume requires the same grid).
    pub world: u32,
    /// Optimizer steps taken.
    pub step: u64,
    /// Flat range of the master shard within the parameter space.
    pub shard_start: u64,
    pub shard_end: u64,
    /// fp32 master parameters (full buffer under DDP, shard otherwise).
    pub master: Vec<f32>,
    /// Adam moments, or SGD velocity in `opt_m` with `opt_v` empty, or
    /// both empty for stateless SGD.
    pub opt_m: Vec<f32>,
    pub opt_v: Vec<f32>,
    /// Optimizer step counter (Adam's bias-correction t).
    pub opt_t: u64,
    /// Loss-scaler state, if mixed precision: (scale, good_steps, skipped).
    pub scaler: Option<(f32, u32, u64)>,
}

impl RankSnapshot {
    /// The conventional shard filename inside a checkpoint directory.
    pub fn path_for(dir: &Path, rank: usize) -> PathBuf {
        dir.join(format!("rank_{rank:05}.zero"))
    }

    /// Serializes to a writer. Everything after the version field is
    /// covered by a trailing CRC32.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        let mut cw = CrcWriter { inner: w, crc: Crc32::new() };
        cw.write_all(&self.rank.to_le_bytes())?;
        cw.write_all(&self.world.to_le_bytes())?;
        cw.write_all(&self.step.to_le_bytes())?;
        cw.write_all(&self.shard_start.to_le_bytes())?;
        cw.write_all(&self.shard_end.to_le_bytes())?;
        write_f32s(&mut cw, &self.master)?;
        write_f32s(&mut cw, &self.opt_m)?;
        write_f32s(&mut cw, &self.opt_v)?;
        cw.write_all(&self.opt_t.to_le_bytes())?;
        match self.scaler {
            Some((scale, good, skipped)) => {
                cw.write_all(&1u8.to_le_bytes())?;
                cw.write_all(&scale.to_le_bytes())?;
                cw.write_all(&good.to_le_bytes())?;
                cw.write_all(&skipped.to_le_bytes())?;
            }
            None => cw.write_all(&0u8.to_le_bytes())?,
        }
        let crc = cw.crc.finish();
        w.write_all(&crc.to_le_bytes())?;
        Ok(())
    }

    /// Deserializes from a reader, verifying the payload checksum.
    pub fn read_from<R: Read>(r: &mut R) -> Result<RankSnapshot, SnapshotError> {
        let mut magic = [0u8; 8];
        match r.read_exact(&mut magic) {
            Ok(()) => {}
            // An empty or sub-8-byte file cannot even be identified.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(SnapshotError::BadMagic)
            }
            Err(e) => return Err(SnapshotError::Io(e)),
        }
        if &magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let mut cr = CrcReader { inner: r, crc: Crc32::new() };
        let rank = read_u32(&mut cr)?;
        let world = read_u32(&mut cr)?;
        let step = read_u64(&mut cr)?;
        let shard_start = read_u64(&mut cr)?;
        let shard_end = read_u64(&mut cr)?;
        let master = read_f32s(&mut cr)?;
        let opt_m = read_f32s(&mut cr)?;
        let opt_v = read_f32s(&mut cr)?;
        let opt_t = read_u64(&mut cr)?;
        let mut flag = [0u8; 1];
        cr.read_exact(&mut flag)?;
        let scaler = if flag[0] == 1 {
            let scale = f32::from_le_bytes(read_array(&mut cr)?);
            let good = read_u32(&mut cr)?;
            let skipped = read_u64(&mut cr)?;
            Some((scale, good, skipped))
        } else {
            None
        };
        let actual = cr.crc.finish();
        let declared = read_u32(r)?;
        if declared != actual {
            return Err(SnapshotError::ChecksumMismatch { declared, actual });
        }
        Ok(RankSnapshot {
            rank,
            world,
            step,
            shard_start,
            shard_end,
            master,
            opt_m,
            opt_v,
            opt_t,
            scaler,
        })
    }

    /// Writes this shard into `dir` (created if missing).
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = Self::path_for(dir, self.rank as usize);
        let mut f = io::BufWriter::new(std::fs::File::create(&path)?);
        self.write_to(&mut f)?;
        f.flush()?;
        Ok(path)
    }

    /// Loads rank `rank`'s shard from `dir`.
    pub fn load(dir: &Path, rank: usize) -> Result<RankSnapshot, SnapshotError> {
        let mut f = io::BufReader::new(std::fs::File::open(Self::path_for(dir, rank))?);
        RankSnapshot::read_from(&mut f)
    }

    /// Loads all `world` shards of a checkpoint directory and verifies
    /// they form one consistent cut (see [`validate_consistent`]).
    pub fn load_all(dir: &Path, world: usize) -> Result<Vec<RankSnapshot>, SnapshotError> {
        let snaps: Vec<RankSnapshot> = (0..world)
            .map(|r| RankSnapshot::load(dir, r))
            .collect::<Result<_, _>>()?;
        validate_consistent(&snaps)?;
        Ok(snaps)
    }
}

/// Cross-rank consistency check: every shard of a checkpoint must record
/// the same step, world size, and optimizer clock, and the shard ranges
/// must be mutually disjoint in the expected per-rank order. A set that
/// fails this mixes cuts from different moments — resuming from it would
/// silently diverge, so it is rejected up front.
pub fn validate_consistent(snaps: &[RankSnapshot]) -> Result<(), SnapshotError> {
    let first = match snaps.first() {
        Some(s) => s,
        None => return Err(SnapshotError::Inconsistent("empty snapshot set".into())),
    };
    for s in snaps {
        if s.step != first.step {
            return Err(SnapshotError::Inconsistent(format!(
                "rank {} is at step {} but rank {} is at step {}",
                first.rank, first.step, s.rank, s.step
            )));
        }
        if s.world != first.world {
            return Err(SnapshotError::Inconsistent(format!(
                "rank {} believes world={} but rank {} believes world={}",
                first.rank, first.world, s.rank, s.world
            )));
        }
        if s.opt_t != first.opt_t {
            return Err(SnapshotError::Inconsistent(format!(
                "optimizer clock differs: rank {} at t={} vs rank {} at t={}",
                first.rank, first.opt_t, s.rank, s.opt_t
            )));
        }
    }
    Ok(())
}

fn write_f32s<W: Write>(w: &mut W, data: &[f32]) -> io::Result<()> {
    w.write_all(&(data.len() as u64).to_le_bytes())?;
    // Chunked copy through a fixed buffer: no giant intermediate Vec<u8>.
    let mut buf = [0u8; 4096];
    for chunk in data.chunks(1024) {
        let bytes = &mut buf[..chunk.len() * 4];
        for (i, v) in chunk.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        w.write_all(bytes)?;
    }
    Ok(())
}

fn read_f32s<R: Read>(r: &mut R) -> Result<Vec<f32>, SnapshotError> {
    let len = read_u64(r)? as usize;
    // Guard against corrupt headers requesting absurd allocations.
    if len > (1 << 34) {
        return Err(SnapshotError::ImplausibleLength(len as u64));
    }
    let mut out = Vec::with_capacity(len);
    let mut buf = [0u8; 4096];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(1024);
        let bytes = &mut buf[..take * 4];
        r.read_exact(bytes)?;
        for i in 0..take {
            out.push(f32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap()));
        }
        remaining -= take;
    }
    Ok(out)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    Ok(u32::from_le_bytes(read_array(r)?))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    Ok(u64::from_le_bytes(read_array(r)?))
}

fn read_array<R: Read, const N: usize>(r: &mut R) -> io::Result<[u8; N]> {
    let mut a = [0u8; N];
    r.read_exact(&mut a)?;
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RankSnapshot {
        RankSnapshot {
            rank: 3,
            world: 8,
            step: 1234,
            shard_start: 100,
            shard_end: 200,
            master: (0..100).map(|i| i as f32 * 0.5 - 3.0).collect(),
            opt_m: (0..100).map(|i| (i as f32).sin()).collect(),
            opt_v: (0..100).map(|i| (i as f32).cos().abs()).collect(),
            opt_t: 1234,
            scaler: Some((2048.0, 17, 5)),
        }
    }

    #[test]
    fn round_trip_through_memory() {
        let snap = sample();
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        let back = RankSnapshot::read_from(&mut &buf[..]).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn round_trip_without_scaler() {
        let snap = RankSnapshot {
            scaler: None,
            opt_v: Vec::new(),
            ..sample()
        };
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        let back = RankSnapshot::read_from(&mut &buf[..]).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("zero-snap-test-{}", std::process::id()));
        let snap = sample();
        let path = snap.save(&dir).unwrap();
        assert!(path.exists());
        let back = RankSnapshot::load(&dir, 3).unwrap();
        assert_eq!(snap, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf[0] = b'X';
        let err = RankSnapshot::read_from(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic), "got {err}");
    }

    #[test]
    fn unsupported_version_named_in_error() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf[8..12].copy_from_slice(&1u32.to_le_bytes());
        let err = RankSnapshot::read_from(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::UnsupportedVersion(1)), "got {err}");
    }

    #[test]
    fn torn_file_is_distinct_from_bad_magic() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = RankSnapshot::read_from(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::Torn), "got {err}");
    }

    #[test]
    fn every_flipped_payload_byte_is_caught() {
        // Flip one byte at a time across a sample of payload offsets: the
        // checksum must catch each one (CRC32 detects all 1-byte errors).
        let mut clean = Vec::new();
        sample().write_to(&mut clean).unwrap();
        let payload = 12..clean.len() - 4; // after magic+version, before crc
        for pos in payload.step_by(97).chain([12, clean.len() - 5]) {
            let mut buf = clean.clone();
            buf[pos] ^= 0x10;
            let err = RankSnapshot::read_from(&mut &buf[..])
                .expect_err("corrupted snapshot must not load");
            assert!(
                matches!(
                    err,
                    SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::ImplausibleLength(_)
                        | SnapshotError::Torn
                ),
                "byte {pos}: got {err}"
            );
        }
    }

    #[test]
    fn flipped_crc_trailer_is_caught_too() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = RankSnapshot::read_from(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::ChecksumMismatch { .. }), "got {err}");
    }

    #[test]
    fn inconsistent_sets_rejected() {
        let a = sample();
        let mut b = sample();
        b.rank = 4;
        b.step += 1;
        let err = validate_consistent(&[a.clone(), b]).unwrap_err();
        assert!(matches!(err, SnapshotError::Inconsistent(_)), "got {err}");
        assert!(validate_consistent(&[a.clone(), a]).is_ok());
    }
}

/// Reshards a complete set of rank snapshots onto a different DP degree —
/// elastic resume: train on N ranks, continue on M.
///
/// Input snapshots must tile the flat parameter space (stages 1–3) or all
/// be full replicas (DDP; any one is used). Output shards follow the
/// balanced [`crate::partition::Partitioner`] layout for `new_world`
/// ranks. The loss-scaler state is taken from rank 0.
///
/// # Panics
/// Panics if the snapshots neither tile the space nor replicate it, mix
/// optimizer kinds, or `new_world` is zero.
pub fn reshard(snapshots: &[RankSnapshot], new_world: usize) -> Vec<RankSnapshot> {
    assert!(new_world > 0, "new world size must be positive");
    assert!(!snapshots.is_empty(), "no snapshots to reshard");
    let mut sorted: Vec<&RankSnapshot> = snapshots.iter().collect();
    sorted.sort_by_key(|s| s.shard_start);

    let has_adam = !sorted[0].opt_v.is_empty();
    let has_velocity = !sorted[0].opt_m.is_empty();
    let step = sorted[0].step;
    let opt_t = sorted[0].opt_t;
    let scaler = sorted[0].scaler;

    // Concatenate the unique tiling (or take one full replica).
    let full_replica = sorted
        .iter()
        .all(|s| s.shard_start == sorted[0].shard_start && s.shard_end == sorted[0].shard_end);
    let (master, opt_m, opt_v) = if full_replica {
        (
            sorted[0].master.clone(),
            sorted[0].opt_m.clone(),
            sorted[0].opt_v.clone(),
        )
    } else {
        let mut master = Vec::new();
        let mut m = Vec::new();
        let mut v = Vec::new();
        for s in &sorted {
            assert_eq!(
                s.shard_start as usize,
                master.len(),
                "snapshots must tile the flat space"
            );
            assert_eq!(s.step, step, "snapshots from different steps");
            master.extend_from_slice(&s.master);
            m.extend_from_slice(&s.opt_m);
            if has_adam {
                v.extend_from_slice(&s.opt_v);
            }
        }
        (master, m, v)
    };
    let total = master.len();

    let part = crate::partition::Partitioner::new(total, new_world);
    (0..new_world)
        .map(|r| {
            let range = part.shard_range(r);
            RankSnapshot {
                rank: r as u32,
                world: new_world as u32,
                step,
                shard_start: range.start as u64,
                shard_end: range.end as u64,
                master: master[range.clone()].to_vec(),
                opt_m: if has_velocity { opt_m[range.clone()].to_vec() } else { Vec::new() },
                opt_v: if has_adam { opt_v[range.clone()].to_vec() } else { Vec::new() },
                opt_t,
                scaler,
            }
        })
        .collect()
}

/// Exports a training checkpoint's fp32 master parameters as *inference*
/// shards for a serving world of `serve_world` ranks — the stage-3 idea
/// (§5.3) applied to serving: each serving rank persists only `Ψ/N`
/// parameters and all-gathers layers on demand.
///
/// Unlike [`reshard`] this drops all optimizer and scaler state (inference
/// needs none of it) and returns typed errors instead of panicking: a
/// serving frontend loads checkpoints that may be foreign or damaged, and
/// must refuse them gracefully. The training world size is arbitrary —
/// snapshots may tile the flat space (stages 1–3) or be full replicas
/// (DDP) — and is re-partitioned onto the serving world's balanced
/// [`crate::partition::Partitioner`] layout, so shard `r` of the result is
/// exactly what serving rank `r` hosts.
pub fn export_inference_shards(
    snapshots: &[RankSnapshot],
    serve_world: usize,
) -> Result<Vec<Vec<f32>>, SnapshotError> {
    if serve_world == 0 {
        return Err(SnapshotError::Inconsistent(
            "serving world size must be positive".into(),
        ));
    }
    validate_consistent(snapshots)?;
    let mut sorted: Vec<&RankSnapshot> = snapshots.iter().collect();
    sorted.sort_by_key(|s| s.shard_start);

    let full_replica = sorted
        .iter()
        .all(|s| s.shard_start == sorted[0].shard_start && s.shard_end == sorted[0].shard_end);
    let master = if full_replica {
        sorted[0].master.clone()
    } else {
        let mut master = Vec::new();
        for s in &sorted {
            if s.shard_start as usize != master.len() {
                return Err(SnapshotError::Inconsistent(format!(
                    "rank {}'s shard starts at {} but the space is only covered to {}",
                    s.rank,
                    s.shard_start,
                    master.len()
                )));
            }
            if s.master.len() != (s.shard_end - s.shard_start) as usize {
                return Err(SnapshotError::Inconsistent(format!(
                    "rank {}'s master holds {} values for a [{}, {}) shard",
                    s.rank,
                    s.master.len(),
                    s.shard_start,
                    s.shard_end
                )));
            }
            master.extend_from_slice(&s.master);
        }
        master
    };

    let part = crate::partition::Partitioner::new(master.len(), serve_world);
    Ok((0..serve_world)
        .map(|r| master[part.shard_range(r)].to_vec())
        .collect())
}

#[cfg(test)]
mod export_tests {
    use super::*;

    fn shard(rank: u32, world: u32, start: u64, end: u64) -> RankSnapshot {
        RankSnapshot {
            rank,
            world,
            step: 11,
            shard_start: start,
            shard_end: end,
            master: (start..end).map(|i| i as f32).collect(),
            opt_m: (start..end).map(|i| i as f32 * 10.0).collect(),
            opt_v: Vec::new(),
            opt_t: 11,
            scaler: None,
        }
    }

    #[test]
    fn shards_tile_the_master_exactly() {
        let snaps = vec![shard(0, 3, 0, 40), shard(1, 3, 40, 70), shard(2, 3, 70, 100)];
        let out = export_inference_shards(&snaps, 4).unwrap();
        assert_eq!(out.len(), 4);
        let rebuilt: Vec<f32> = out.concat();
        let want: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert_eq!(rebuilt, want, "export must reassemble bitwise");
        let part = crate::partition::Partitioner::new(100, 4);
        for (r, s) in out.iter().enumerate() {
            assert_eq!(s.len(), part.shard_range(r).len());
        }
    }

    #[test]
    fn ddp_replicas_export_from_one_copy() {
        let snaps = vec![shard(0, 2, 0, 50), shard(1, 2, 0, 50)];
        let out = export_inference_shards(&snaps, 2).unwrap();
        assert_eq!(out.concat().len(), 50);
    }

    #[test]
    fn gaps_are_a_typed_error_not_a_panic() {
        let snaps = vec![shard(0, 2, 0, 30), shard(1, 2, 40, 60)];
        let err = export_inference_shards(&snaps, 2).unwrap_err();
        assert!(matches!(err, SnapshotError::Inconsistent(_)), "got {err}");
        let err = export_inference_shards(&snaps, 0).unwrap_err();
        assert!(matches!(err, SnapshotError::Inconsistent(_)), "got {err}");
    }

    #[test]
    fn mixed_step_sets_rejected() {
        let mut b = shard(1, 2, 50, 100);
        b.step = 12;
        let err = export_inference_shards(&[shard(0, 2, 0, 50), b], 2).unwrap_err();
        assert!(matches!(err, SnapshotError::Inconsistent(_)), "got {err}");
    }
}

#[cfg(test)]
mod reshard_tests {
    use super::*;

    fn shard(rank: u32, world: u32, start: u64, end: u64) -> RankSnapshot {
        RankSnapshot {
            rank,
            world,
            step: 7,
            shard_start: start,
            shard_end: end,
            master: (start..end).map(|i| i as f32).collect(),
            opt_m: (start..end).map(|i| i as f32 * 10.0).collect(),
            opt_v: (start..end).map(|i| i as f32 * 100.0).collect(),
            opt_t: 7,
            scaler: Some((64.0, 3, 1)),
        }
    }

    #[test]
    fn two_to_three_preserves_every_element() {
        let snaps = vec![shard(0, 2, 0, 50), shard(1, 2, 50, 100)];
        let out = reshard(&snaps, 3);
        assert_eq!(out.len(), 3);
        let mut rebuilt = Vec::new();
        for s in &out {
            assert_eq!(s.world, 3);
            assert_eq!(s.step, 7);
            assert_eq!(s.scaler, Some((64.0, 3, 1)));
            rebuilt.extend_from_slice(&s.master);
        }
        let want: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert_eq!(rebuilt, want);
        // Moments travel with their parameters.
        assert_eq!(out[1].opt_m[0], out[1].master[0] * 10.0);
        assert_eq!(out[2].opt_v[0], out[2].master[0] * 100.0);
    }

    #[test]
    fn ddp_replicas_reshard_from_one_copy() {
        let snaps = vec![shard(0, 2, 0, 40), shard(1, 2, 0, 40)];
        let out = reshard(&snaps, 4);
        assert_eq!(out.len(), 4);
        let rebuilt: Vec<f32> = out.iter().flat_map(|s| s.master.clone()).collect();
        assert_eq!(rebuilt.len(), 40);
        assert_eq!(rebuilt[39], 39.0);
    }

    #[test]
    fn reshard_to_one_concatenates() {
        let snaps = vec![shard(0, 2, 0, 30), shard(1, 2, 30, 60)];
        let out = reshard(&snaps, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].master.len(), 60);
        assert_eq!(out[0].shard_end, 60);
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn gaps_rejected() {
        let snaps = vec![shard(0, 2, 0, 30), shard(1, 2, 40, 60)];
        let _ = reshard(&snaps, 2);
    }
}

#[cfg(test)]
mod corrupt_tests {
    use super::*;

    #[test]
    fn absurd_section_length_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // rank
        buf.extend_from_slice(&1u32.to_le_bytes()); // world
        buf.extend_from_slice(&0u64.to_le_bytes()); // step
        buf.extend_from_slice(&0u64.to_le_bytes()); // shard_start
        buf.extend_from_slice(&0u64.to_le_bytes()); // shard_end
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // master length: absurd
        let err = RankSnapshot::read_from(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::ImplausibleLength(_)), "got {err}");
    }
}
