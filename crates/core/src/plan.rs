//! The declarative communication plan (CommPlan IR).
//!
//! ZeRO's §7 analysis argues about *schedules*: which collectives fire, in
//! what order, over which groups, moving how many bytes per rank. The
//! engine used to realize that schedule implicitly — each call site
//! computed its own group and counts — which made the paper's 2Ψ/3Ψ
//! claims checkable only by running training and metering traffic.
//!
//! This module makes the schedule *first-class*: [`CommPlan`] builds, from
//! a layout + [`ZeroConfig`] + [`Grid`] alone, the exact ordered list of
//! collective operations one training step performs. The engine then
//! **derives its runtime calls from the plan** through a [`PlanCursor`]:
//! every collective call pops the next planned op, asserts kind and group,
//! and uses the planned per-member counts as the collective's counts —
//! the plan is the single source of truth, and any drift between schedule
//! model and execution fails loudly at the first divergent op.
//!
//! Because the plan is pure data, `zero-verify` can *statically* prove,
//! with zero training steps executed:
//! * rank-symmetry / deadlock-freedom (every pair of ranks agrees on the
//!   subsequence of ops they share),
//! * group-membership consistency,
//! * per-rank byte volumes matching the paper's formulas (2Ψ·(N−1)/N for
//!   DDP and stages 1–2, ≤ 3Ψ for stage 3, §7).

use std::collections::VecDeque;
use std::ops::Range;

use zero_comm::{
    chunk_range, quant_wire_bytes, CollectiveKind, Grid, Group, NodeTopology, Precision,
    KIND_COUNT,
};
use zero_model::Layout;

use crate::config::{ZeroConfig, ZeroStage};
use crate::partition::Partitioner;

/// The rank-relative group a planned op runs over. Scopes resolve to
/// concrete [`Group`]s per rank, so one plan describes every rank of the
/// grid (the schedule is SPMD; only the group *instances* differ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanScope {
    /// Every rank of the grid.
    World,
    /// The rank's data-parallel group (same MP column across replicas).
    Dp,
    /// The rank's model-parallel group (contiguous ranks of one replica).
    Mp,
    /// The rank's intra-node group of the two-level all-reduce.
    Node {
        /// Ranks per node G.
        g: usize,
    },
    /// The rank's inter-node group (same node-local slot on every node).
    Cross {
        /// Ranks per node G.
        g: usize,
    },
}

/// How a planned op's per-member element counts are derived at resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CountSpec {
    /// Explicit per-member counts (uneven flat-space intersections).
    Explicit(Vec<usize>),
    /// `total` elements split evenly (balanced-uneven) over the group.
    Even {
        /// Buffer length in elements.
        total: usize,
    },
    /// The cross-node phase of the hierarchical all-reduce: the buffer is
    /// this rank's node-local chunk of `total`, split evenly over the
    /// cross group. Only valid under [`PlanScope::Cross`].
    NodeChunk {
        /// The full (pre-chunking) buffer length in elements.
        total: usize,
    },
}

/// Wire format of a planned collective: how the engine encodes the buffer
/// on the wire, and therefore how many bytes each hop actually carries.
/// `Raw` reproduces the uncompressed engine exactly; the other variants
/// are the ZeRO++ compression levers, whose byte formulas mirror the
/// metered costs of the `zero-comm` compressed collectives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFmt {
    /// Uncompressed `prec`-width elements.
    Raw,
    /// qwZ: ring all-gather of block-quantized streams — 1 byte per
    /// element plus one fp32 scale/zero pair per `block` elements.
    Int8Block {
        /// Quantization block length.
        block: usize,
    },
    /// qgZ: two-phase all-to-all reduce-scatter — raw pairwise exchange
    /// inside each node of `node_size` ranks, block-quantized pairwise
    /// exchange between same-slot ranks across nodes.
    QgzInt8 {
        /// Ranks per node G of the two-tier grouping.
        node_size: usize,
        /// Quantization block length.
        block: usize,
    },
}

/// One planned collective: kind, scope, counts, accounting precision, and
/// a stable label naming the schedule position it models.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanOp {
    /// Collective kind (the traffic-accounting category it lands in).
    pub kind: CollectiveKind,
    /// Group the op runs over, relative to the issuing rank.
    pub scope: PlanScope,
    /// Per-member element counts.
    pub counts: CountSpec,
    /// Logical element width for byte accounting.
    pub prec: Precision,
    /// Schedule position, e.g. `"fetch-unit"` or `"overflow-flag"`.
    pub label: &'static str,
    /// Issue mode: `true` means the engine *issues* the op here (hands it
    /// to its rank's FIFO progress thread) but completes it later — the
    /// overlapped prefetches and bucket reduce-scatters. Plan order is
    /// always **issue order**, which is also per-rank completion order
    /// (one FIFO queue per rank), so the static pairwise-agreement check
    /// proves deadlock-freedom for the async schedule exactly as for the
    /// synchronous one.
    pub nonblocking: bool,
    /// Wire encoding (ZeRO++ compression lever, or `Raw`).
    pub wire: WireFmt,
}

/// A [`PlanOp`] resolved for one concrete rank: explicit members and
/// per-member counts. This is what the static checks compare across ranks
/// and what the engine's [`PlanCursor`] hands to the runtime collectives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedOp {
    /// Collective kind.
    pub kind: CollectiveKind,
    /// Group members in collective order.
    pub members: Vec<usize>,
    /// Element count contributed by / owned by each member (Σ = buffer).
    pub counts: Vec<usize>,
    /// Accounting precision.
    pub prec: Precision,
    /// Schedule position label.
    pub label: &'static str,
    /// Whether the engine issues this op non-blocking (see [`PlanOp`]).
    pub nonblocking: bool,
    /// Wire encoding (ZeRO++ compression lever, or `Raw`).
    pub wire: WireFmt,
}

impl ResolvedOp {
    /// Total buffer elements (`Σ counts`).
    pub fn total_elems(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Elements this `rank` *sends* under the ring schedule of
    /// `zero-comm` — the exact per-rank cost the traffic counters meter.
    ///
    /// Ring algebra (n = group size, L = Σ counts, c = counts, i = local
    /// index): all-gather sends every chunk except `c[(i+1) mod n]`;
    /// reduce-scatter every chunk except `c[i]`; all-reduce is both phases
    /// back to back. Single-member groups exchange nothing.
    ///
    /// # Panics
    /// Panics if `rank` is not a member, or the kind is not one of the
    /// ring collectives the engine plans (AllReduce/ReduceScatter/AllGather).
    pub fn sent_elems(&self, rank: usize) -> usize {
        let n = self.members.len();
        if n == 1 {
            return 0;
        }
        let i = self
            .members
            .iter()
            .position(|&m| m == rank)
            .unwrap_or_else(|| panic!("rank {rank} not in planned op '{}'", self.label));
        let total = self.total_elems();
        match self.kind {
            CollectiveKind::AllReduce => {
                (total - self.counts[i]) + (total - self.counts[(i + 1) % n])
            }
            CollectiveKind::ReduceScatter => total - self.counts[i],
            CollectiveKind::AllGather => total - self.counts[(i + 1) % n],
            other => panic!("plan does not model {other:?} ops"),
        }
    }

    /// Messages this rank sends: `2(n−1)` for all-reduce, `n−1` for the
    /// single-phase ring collectives, `(G−1) + (n/G−1)` for the two-phase
    /// qgZ all-to-all, `0` for single-member groups. (Empty chunks still
    /// travel as zero-length messages.)
    pub fn sent_messages(&self, rank: usize) -> usize {
        let n = self.members.len();
        if n == 1 {
            return 0;
        }
        assert!(
            self.members.contains(&rank),
            "rank {rank} not in planned op '{}'",
            self.label
        );
        if let WireFmt::QgzInt8 { node_size, .. } = self.wire {
            return (node_size - 1) + (n / node_size - 1);
        }
        match self.kind {
            CollectiveKind::AllReduce => 2 * (n - 1),
            CollectiveKind::ReduceScatter | CollectiveKind::AllGather => n - 1,
            other => panic!("plan does not model {other:?} ops"),
        }
    }

    /// Bytes this rank sends, wire-aware: raw ops cost
    /// `sent_elems · precision width`; compressed ops cost exactly what
    /// the `zero-comm` compressed collectives meter.
    pub fn sent_bytes(&self, rank: usize) -> u64 {
        let n = self.members.len();
        if n == 1 {
            return 0;
        }
        match self.wire {
            WireFmt::Raw => self.prec.bytes() * self.sent_elems(rank) as u64,
            WireFmt::Int8Block { block } => {
                // qwZ ring all-gather of encoded streams: forward every
                // member's stream except the successor's own.
                assert_eq!(
                    self.kind,
                    CollectiveKind::AllGather,
                    "Int8Block wire only models all-gathers ('{}')",
                    self.label
                );
                let i = self.member_index(rank);
                self.counts
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != (i + 1) % n)
                    .map(|(_, &c)| quant_wire_bytes(c, block))
                    .sum()
            }
            WireFmt::QgzInt8 { node_size, block } => {
                assert_eq!(
                    self.kind,
                    CollectiveKind::ReduceScatter,
                    "QgzInt8 wire only models reduce-scatters ('{}')",
                    self.label
                );
                let i = self.member_index(rank);
                let (slot, node) = (i % node_size, i / node_size);
                let nodes = n / node_size;
                // Phase 1: raw pairwise intra-node all-to-all — to each
                // local peer s′, the full column of chunks owned by slot
                // s′ on any node.
                let phase1: u64 = (0..node_size)
                    .filter(|&s| s != slot)
                    .map(|s| (0..nodes).map(|m| self.counts[m * node_size + s]).sum::<usize>())
                    .sum::<usize>() as u64
                    * self.prec.bytes();
                // Phase 2: quantized pairwise inter-node exchange of this
                // slot's per-node chunks.
                let phase2: u64 = (0..nodes)
                    .filter(|&m| m != node)
                    .map(|m| quant_wire_bytes(self.counts[m * node_size + slot], block))
                    .sum();
                phase1 + phase2
            }
        }
    }

    /// Bytes this rank pushes across the slow links of a `g`-rank-per-node
    /// topology. Ring collectives send only to the ring successor, so the
    /// whole op is inter-node iff that successor lives on another node;
    /// the qgZ all-to-all is split per partner (phase 1 partners share the
    /// node, phase 2 partners never do).
    pub fn sent_inter_node_bytes(&self, rank: usize, g: usize) -> u64 {
        assert!(g > 0, "node size must be positive");
        let n = self.members.len();
        if n == 1 {
            return 0;
        }
        let node_of = |r: usize| r / g;
        match self.wire {
            WireFmt::QgzInt8 { node_size, block } => {
                let i = self.member_index(rank);
                let (slot, node) = (i % node_size, i / node_size);
                let nodes = n / node_size;
                let mut inter = 0u64;
                for s in 0..node_size {
                    if s == slot {
                        continue;
                    }
                    let partner = self.members[node * node_size + s];
                    if node_of(partner) != node_of(rank) {
                        let col: usize =
                            (0..nodes).map(|m| self.counts[m * node_size + s]).sum();
                        inter += self.prec.bytes() * col as u64;
                    }
                }
                for m in 0..nodes {
                    if m == node {
                        continue;
                    }
                    let partner = self.members[m * node_size + slot];
                    if node_of(partner) != node_of(rank) {
                        inter += quant_wire_bytes(self.counts[m * node_size + slot], block);
                    }
                }
                inter
            }
            _ => {
                let i = self.member_index(rank);
                let succ = self.members[(i + 1) % n];
                if node_of(succ) != node_of(rank) {
                    self.sent_bytes(rank)
                } else {
                    0
                }
            }
        }
    }

    fn member_index(&self, rank: usize) -> usize {
        self.members
            .iter()
            .position(|&m| m == rank)
            .unwrap_or_else(|| panic!("rank {rank} not in planned op '{}'", self.label))
    }
}

/// Direction of a planned tier movement (ZeRO-Offload traffic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierDir {
    /// Device → host (gradient shards headed for the host optimizer).
    Spill,
    /// Host → device (parameter pieces materialized for compute).
    Fetch,
}

/// One planned host↔device tier movement. Tier ops form a second stream
/// alongside the collective ops: each records *where* in the collective
/// stream it is issued (`issue_pos`) and where its result is first needed
/// (`demand_pos`), so the `offload` verify pass can prove the prefetch
/// window statically — `issue_pos ≤ demand_pos` — and the runtime cursor
/// can assert the engine issues each movement at exactly the planned
/// anchor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierOp {
    /// Movement direction.
    pub dir: TierDir,
    /// Schedule position, e.g. `"tier-param-fetch"`.
    pub label: &'static str,
    /// Elements moved by each DP rank (tier traffic is rank-local, so the
    /// counts are per-rank volumes, not collective group counts).
    pub counts: Vec<usize>,
    /// Bytes per element on the tier link.
    pub elem_bytes: u64,
    /// Number of collective ops issued before this movement is submitted.
    pub issue_pos: usize,
    /// Number of collective ops issued before the engine blocks on it.
    pub demand_pos: usize,
}

/// A [`TierOp`] resolved for one concrete rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedTierOp {
    /// Movement direction.
    pub dir: TierDir,
    /// Schedule position label.
    pub label: &'static str,
    /// Bytes this rank moves across the tier link.
    pub bytes: u64,
    /// Collective ops issued before submission.
    pub issue_pos: usize,
    /// Collective ops issued before the engine blocks on it.
    pub demand_pos: usize,
}

/// The shape parameters a step plan depends on beyond config and layout.
#[derive(Clone, Copy, Debug)]
pub struct StepShape {
    /// Gradient-accumulation micro-batches in the step.
    pub micro_batches: usize,
    /// Elements of one block activation (`local_batch · seq · hidden`) —
    /// the buffer every MP all-reduce and P_a gather moves.
    pub act_elems: usize,
    /// Whether the optimizer update is skipped (fp16 overflow). The
    /// schedule is data-dependent at exactly this one point: skipped steps
    /// run neither the grad-norm reduction nor the parameter publish.
    pub skipped: bool,
}

/// An ordered communication schedule for one grid, buildable without
/// running any training.
#[derive(Clone, Debug)]
pub struct CommPlan {
    grid: Grid,
    ops: Vec<PlanOp>,
    tier: Vec<TierOp>,
}

/// Mirrors [`GradBucket`](crate::bucket::GradBucket)'s flush decisions
/// arithmetically (spans only, no data): push descending-contiguous
/// ranges, flush the fused span when pending reaches capacity. The
/// trace-conformance tests pin this mirror to the real bucket.
struct BucketMirror {
    capacity: usize,
    pending: usize,
    start: usize,
    end: usize,
    has: bool,
}

impl BucketMirror {
    fn new(capacity: usize) -> BucketMirror {
        assert!(capacity > 0, "bucket capacity must be positive");
        BucketMirror { capacity, pending: 0, start: 0, end: 0, has: false }
    }

    fn take(&mut self) -> Range<usize> {
        let r = self.start..self.end;
        self.has = false;
        self.pending = 0;
        r
    }

    /// Pushes one unit's span; returns the fused range if this push
    /// reached capacity (same trigger as `GradBucket::push`).
    fn push(&mut self, r: &Range<usize>) -> Option<Range<usize>> {
        if self.has {
            assert_eq!(r.end, self.start, "plan bucket: spans must be descending-contiguous");
        } else {
            self.end = r.end;
            self.has = true;
        }
        self.start = r.start;
        self.pending += r.len();
        (self.pending >= self.capacity).then(|| self.take())
    }

    /// Drains the remainder (end of backward), if any.
    fn flush(&mut self) -> Option<Range<usize>> {
        self.has.then(|| self.take())
    }
}

/// Which ZeRO++ levers are actually in effect for a stage/grid — the
/// config flags gated by the stage that owns the collective each lever
/// compresses. Shared verbatim by the plan [`Builder`] and the engine so
/// the two cannot disagree about when a compressed op appears.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EffectiveCompression {
    /// Quantized weight all-gather (stage-3 parameter fetches only).
    pub qwz: bool,
    /// Secondary node-local parameter partition (stage-3 fetches only).
    pub hpz: bool,
    /// Quantized all-to-all gradient reduce-scatter (bucketed stages 2–3).
    pub qgz: bool,
    /// Ranks per node G.
    pub node_size: usize,
    /// Quantization block length.
    pub block: usize,
}

impl EffectiveCompression {
    /// Resolves the configured levers against the stage and grid.
    ///
    /// # Panics
    /// Panics if a lever is in effect with model parallelism (the two-tier
    /// node grouping is defined over pure DP ranks) or a DP degree not
    /// divisible by the node size.
    pub fn resolve(zcfg: &ZeroConfig, grid: Grid) -> EffectiveCompression {
        let comp = zcfg.compression;
        let eff = EffectiveCompression {
            qwz: comp.qwz && zcfg.stage.partitions_params(),
            hpz: comp.hpz && zcfg.stage.partitions_params(),
            qgz: comp.qgz && zcfg.stage.partitions_grads(),
            node_size: comp.node_size,
            block: comp.block,
        };
        if eff.any() {
            assert_eq!(
                grid.mp_degree(),
                1,
                "compression requires mp = 1 (node grouping is over DP ranks)"
            );
            assert!(eff.node_size >= 1, "compression node_size must be positive");
            assert_eq!(
                grid.dp_degree() % eff.node_size,
                0,
                "DP degree {} must be divisible by node size {}",
                grid.dp_degree(),
                eff.node_size
            );
        }
        eff
    }

    /// True if any lever is in effect.
    pub fn any(&self) -> bool {
        self.qwz || self.hpz || self.qgz
    }
}

/// Which state classes actually cross the memory tier for a stage — the
/// tier flag gated by the stage that owns each class (§3's taxonomy:
/// optimizer states partition at stage ≥ 1, gradients at stage ≥ 2,
/// parameters at stage 3). Shared verbatim by the plan [`Builder`] and
/// the engine so the two cannot disagree about which tier ops appear.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EffectiveOffload {
    /// Master params + Adam moments live in the host tier; the optimizer
    /// updates there (grad shards spill down, updated params fetch up).
    pub opt_state: bool,
    /// Reduced gradient shards spill to the host tier bucket by bucket.
    pub grads: bool,
    /// The stage-3 working parameter shard lives in the host tier; every
    /// unit materialization first fetches the local piece up.
    pub params: bool,
}

impl EffectiveOffload {
    /// Resolves the configured tier against the stage and grid.
    ///
    /// # Panics
    /// Panics if the tier is enabled with model parallelism (tier volumes
    /// are defined over the DP partition of the flat space).
    pub fn resolve(zcfg: &ZeroConfig, grid: Grid) -> EffectiveOffload {
        let on = zcfg.tier.enabled;
        let eff = EffectiveOffload {
            opt_state: on && zcfg.stage.partitions_optimizer(),
            grads: on && zcfg.stage.partitions_grads(),
            params: on && zcfg.stage.partitions_params(),
        };
        if eff.any() {
            assert_eq!(
                grid.mp_degree(),
                1,
                "tier offload requires mp = 1 (tier volumes are over DP shards)"
            );
            assert!(
                !(zcfg.compression.qwz || zcfg.compression.hpz || zcfg.compression.qgz),
                "tier offload cannot combine with ZeRO++ compression"
            );
        }
        eff
    }

    /// True if any state class crosses the tier.
    pub fn any(&self) -> bool {
        self.opt_state || self.grads || self.params
    }
}

/// Internal builder state shared by the plan constructors.
struct Builder {
    ops: Vec<PlanOp>,
    part: Partitioner,
    prec: Precision,
    /// Overlap-centric execution: fetches and bucket reduce-scatters are
    /// issued non-blocking, and stage-3 fetch ops appear in prefetch
    /// *issue* order (one unit ahead of use).
    overlap: bool,
    /// Effective ZeRO++ levers for this stage/grid.
    comp: EffectiveCompression,
    /// hpZ secondary partition: the flat space over the G ranks of a node.
    sec_part: Partitioner,
    /// hpZ: units whose secondary copy is populated at this point of the
    /// step — their re-fetches resolve intra-node. Parameters only change
    /// at the optimizer step, so one global gather per unit per step
    /// suffices; the engine mirrors this first-touch rule exactly.
    stashed: Vec<bool>,
    /// Effective tier-offload levers for this stage/grid.
    off: EffectiveOffload,
    /// The tier-movement stream being built alongside `ops`.
    tier: Vec<TierOp>,
    /// Index into `tier` of each unit's in-flight prefetch param fetch,
    /// until [`Builder::demand_unit`] stamps its demand position.
    unit_tier_idx: Vec<Option<usize>>,
    /// Overlap mode: gradient spills recorded at their reduce-scatter but
    /// issued at the end-of-micro drain (the engine submits a spill only
    /// once the bucket's reduce-scatter has completed on the FIFO).
    pending_spills: Vec<Vec<usize>>,
}

impl Builder {
    fn new(layout: &Layout, zcfg: &ZeroConfig, grid: Grid) -> Builder {
        let comp = EffectiveCompression::resolve(zcfg, grid);
        Builder {
            ops: Vec::new(),
            part: Partitioner::new(layout.total_params(), grid.dp_degree()),
            prec: if zcfg.fp16 { Precision::Fp16 } else { Precision::Fp32 },
            overlap: zcfg.overlap,
            comp,
            sec_part: Partitioner::new(layout.total_params(), comp.node_size.max(1)),
            stashed: vec![false; layout.units().len()],
            off: EffectiveOffload::resolve(zcfg, grid),
            tier: Vec::new(),
            unit_tier_idx: vec![None; layout.units().len()],
            pending_spills: Vec::new(),
        }
    }

    /// Pushes a tier movement anchored at the current op position. Sync
    /// call sites both issue and block here (`demand = issue`); prefetch
    /// fetches get their demand stamped later by [`Builder::demand_unit`].
    fn tier_op(&mut self, dir: TierDir, label: &'static str, counts: Vec<usize>) -> usize {
        let pos = self.ops.len();
        self.tier.push(TierOp {
            dir,
            label,
            counts,
            elem_bytes: self.prec.bytes(),
            issue_pos: pos,
            demand_pos: pos,
        });
        self.tier.len() - 1
    }

    /// Marks the point where the engine blocks on unit `u`'s prefetched
    /// tier fetch (the `fetch_unit_pf` wait). No-op unless a prefetch
    /// fetch for `u` is outstanding.
    fn demand_unit(&mut self, u: usize) {
        if let Some(idx) = self.unit_tier_idx[u].take() {
            self.tier[idx].demand_pos = self.ops.len();
        }
    }

    /// Flushes overlap-mode gradient spills at the end-of-micro drain:
    /// the engine waits each bucket's reduce-scatter there, accumulates,
    /// and only then submits the spill of the reduced piece.
    fn drain_spills(&mut self) {
        let pending = std::mem::take(&mut self.pending_spills);
        for counts in pending {
            self.tier_op(TierDir::Spill, "tier-grad-spill", counts);
        }
    }

    fn op(&mut self, kind: CollectiveKind, scope: PlanScope, counts: CountSpec, prec: Precision, label: &'static str) {
        self.ops.push(PlanOp { kind, scope, counts, prec, label, nonblocking: false, wire: WireFmt::Raw });
    }

    /// Pushes an op the engine issues through a non-blocking handle when
    /// overlap is on (the marker is informative: volumes and issue order
    /// are identical either way).
    fn op_nb(&mut self, kind: CollectiveKind, scope: PlanScope, counts: CountSpec, prec: Precision, label: &'static str, wire: WireFmt) {
        let nonblocking = self.overlap;
        self.ops.push(PlanOp { kind, scope, counts, prec, label, nonblocking, wire });
    }

    /// Stage-3 parameter materialization of unit `u` (§5.3): all-gather
    /// the flat-space intersections from every DP shard. Under hpZ the
    /// *first* fetch of a unit in the step is the global gather (qwZ wire
    /// if enabled) that also populates the node-local secondary copy;
    /// every later fetch of the same unit resolves inside the node.
    fn fetch_unit(&mut self, zcfg: &ZeroConfig, unit: &Range<usize>, u: usize) {
        if !zcfg.stage.partitions_params() {
            return;
        }
        if self.off.params {
            // The local shard piece of the unit climbs host → device right
            // before it seeds the all-gather (the FIFO serializes the two,
            // so both hide behind compute together under overlap).
            let counts = self.part.intersect_counts(unit);
            let idx = self.tier_op(TierDir::Fetch, "tier-param-fetch", counts);
            if self.prefetches(zcfg) {
                self.unit_tier_idx[u] = Some(idx);
            }
        }
        if self.comp.hpz && self.stashed[u] {
            let counts = self.sec_part.intersect_counts(unit);
            self.op_nb(
                CollectiveKind::AllGather,
                PlanScope::Node { g: self.comp.node_size },
                CountSpec::Explicit(counts),
                self.prec,
                "fetch-unit",
                WireFmt::Raw,
            );
            return;
        }
        self.stashed[u] = true;
        let wire = if self.comp.qwz {
            WireFmt::Int8Block { block: self.comp.block }
        } else {
            WireFmt::Raw
        };
        let counts = self.part.intersect_counts(unit);
        self.op_nb(
            CollectiveKind::AllGather,
            PlanScope::Dp,
            CountSpec::Explicit(counts),
            self.prec,
            "fetch-unit",
            wire,
        );
    }

    /// One block pass's Megatron hooks: two MP all-reduces of the
    /// activation buffer (§8: two in forward, two in backward, and two
    /// more per recomputed block).
    fn mp_block_pass(&mut self, act_elems: usize) {
        for _ in 0..2 {
            self.op(
                CollectiveKind::AllReduce,
                PlanScope::Mp,
                CountSpec::Even { total: act_elems },
                self.prec,
                "mp-block-allreduce",
            );
        }
    }

    /// P_a checkpoint re-materialization: all-gather the 1/N_m slices
    /// across the MP group (§6.1).
    fn ckpt_gather(&mut self, act_elems: usize) {
        self.op(
            CollectiveKind::AllGather,
            PlanScope::Mp,
            CountSpec::Even { total: act_elems },
            self.prec,
            "ckpt-gather",
        );
    }

    /// Stages 2/3 gradient dispatch: bucket the unit's span, emit one
    /// reduce-scatter per flush (§5.2 bucketization).
    fn dispatch_grads(&mut self, zcfg: &ZeroConfig, unit: &Range<usize>, bucket: &mut BucketMirror) {
        if !zcfg.stage.partitions_grads() {
            return;
        }
        if let Some(r) = bucket.push(unit) {
            self.grad_flush(&r);
        }
    }

    fn grad_flush(&mut self, fused: &Range<usize>) {
        let counts = self.part.intersect_counts(fused);
        let wire = if self.comp.qgz {
            WireFmt::QgzInt8 { node_size: self.comp.node_size, block: self.comp.block }
        } else {
            WireFmt::Raw
        };
        self.op_nb(
            CollectiveKind::ReduceScatter,
            PlanScope::Dp,
            CountSpec::Explicit(counts),
            self.prec,
            "grad-bucket",
            wire,
        );
        if self.off.grads {
            // Each rank spills its reduced piece of the bucket to the host
            // optimizer. The spill can only leave once the reduce-scatter
            // has produced it: sync mode spills right here, overlap mode
            // at the end-of-micro drain (where the engine first waits the
            // bucket's reduce-scatter).
            let counts = self.part.intersect_counts(fused);
            if self.overlap {
                self.pending_spills.push(counts);
            } else {
                self.tier_op(TierDir::Spill, "tier-grad-spill", counts);
            }
        }
    }

    /// True when the plan must list stage-3 fetches in prefetch *issue*
    /// order (the engine pops a plan op when it hands the all-gather to
    /// the progress thread, one unit ahead of use).
    fn prefetches(&self, zcfg: &ZeroConfig) -> bool {
        self.overlap && zcfg.stage.partitions_params()
    }

    /// One micro-batch's forward + backward comm, mirroring
    /// `RankEngine::accumulate_micro` op for op.
    fn micro(&mut self, layout: &Layout, zcfg: &ZeroConfig, act_elems: usize) {
        let units: Vec<Range<usize>> = layout.units().iter().map(|u| u.range.clone()).collect();
        let layers = units.len() - 2;
        let mut bucket = BucketMirror::new(zcfg.bucket_elems);
        let pf = self.prefetches(zcfg);

        // Forward: embed, blocks (two MP all-reduces each), head. Under
        // prefetch the first call issues units 0 and 1 back to back, and
        // each block's call issues the *next* unit before its own MP ops
        // (the double-buffered one-ahead window).
        if pf {
            self.fetch_unit(zcfg, &units[0], 0);
            self.fetch_unit(zcfg, &units[1], 1);
            self.demand_unit(0);
            for l in 0..layers {
                self.fetch_unit(zcfg, &units[2 + l], 2 + l);
                self.demand_unit(1 + l);
                self.mp_block_pass(act_elems);
            }
            // The head's call chains the prefetch into backward's first
            // refetch (non-checkpointed mode refetches block params).
            if !zcfg.checkpoint_activations && layers > 0 {
                self.fetch_unit(zcfg, &units[layers], layers);
            }
            self.demand_unit(1 + layers);
        } else {
            self.fetch_unit(zcfg, &units[0], 0);
            for l in 0..layers {
                self.fetch_unit(zcfg, &units[1 + l], 1 + l);
                self.mp_block_pass(act_elems);
            }
            self.fetch_unit(zcfg, &units[1 + layers], 1 + layers);
        }
        // Head forward+backward births the first gradients.
        self.dispatch_grads(zcfg, &units[1 + layers], &mut bucket);

        // Backward through blocks.
        if zcfg.checkpoint_activations {
            let interval = zcfg.checkpoint_interval.max(1);
            let mut seg_end = layers;
            while seg_end > 0 {
                let seg_start = ((seg_end - 1) / interval) * interval;
                if zcfg.partition_activations {
                    self.ckpt_gather(act_elems);
                }
                // Recompute the segment forward (block params are fetched
                // again; each recomputed block fires its two MP hooks)…
                // Under prefetch the chain restarts per segment: the first
                // block issues itself and its successor, later blocks issue
                // one ahead, the last issues nothing.
                for l in seg_start..seg_end {
                    if pf {
                        if l == seg_start {
                            self.fetch_unit(zcfg, &units[1 + l], 1 + l);
                        }
                        if l + 1 < seg_end {
                            self.fetch_unit(zcfg, &units[2 + l], 2 + l);
                        }
                        self.demand_unit(1 + l);
                    } else {
                        self.fetch_unit(zcfg, &units[1 + l], 1 + l);
                    }
                    self.mp_block_pass(act_elems);
                }
                // …then walk it backward (two MP hooks per block, grads
                // dispatched head-to-embed).
                for l in (seg_start..seg_end).rev() {
                    self.mp_block_pass(act_elems);
                    self.dispatch_grads(zcfg, &units[1 + l], &mut bucket);
                }
                seg_end = seg_start;
            }
        } else {
            for l in (0..layers).rev() {
                if pf {
                    // Block `layers-1` was issued by the head's call; each
                    // block issues its predecessor one ahead.
                    if l > 0 {
                        self.fetch_unit(zcfg, &units[l], l);
                    }
                    self.demand_unit(1 + l);
                } else {
                    self.fetch_unit(zcfg, &units[1 + l], 1 + l);
                }
                self.mp_block_pass(act_elems);
                self.dispatch_grads(zcfg, &units[1 + l], &mut bucket);
            }
        }

        // Embedding backward, then drain the bucket for the next micro.
        self.dispatch_grads(zcfg, &units[0], &mut bucket);
        if let Some(r) = bucket.flush() {
            self.grad_flush(&r);
        }
        self.drain_spills();
    }

    /// End-of-step gradient reduction for the non-bucketed stages,
    /// chunked through CB-sized buffers (mirrors `reduce_full_grads`).
    fn grad_reduce(&mut self, zcfg: &ZeroConfig) {
        if zcfg.stage.partitions_grads() {
            return;
        }
        let psi = self.part.total();
        let step = zcfg.bucket_elems;
        let mut cursor = 0;
        while cursor < psi {
            let end = (cursor + step).min(psi);
            let chunk = cursor..end;
            match zcfg.stage {
                ZeroStage::Ddp => match zcfg.node_size {
                    Some(g) => {
                        // Two-level all-reduce: node reduce-scatter,
                        // cross-node all-reduce of the owned chunk, node
                        // all-gather.
                        self.op(
                            CollectiveKind::ReduceScatter,
                            PlanScope::Node { g },
                            CountSpec::Even { total: chunk.len() },
                            self.prec,
                            "hier-node-rs",
                        );
                        self.op(
                            CollectiveKind::AllReduce,
                            PlanScope::Cross { g },
                            CountSpec::NodeChunk { total: chunk.len() },
                            self.prec,
                            "hier-cross-ar",
                        );
                        self.op(
                            CollectiveKind::AllGather,
                            PlanScope::Node { g },
                            CountSpec::Even { total: chunk.len() },
                            self.prec,
                            "hier-node-ag",
                        );
                    }
                    None => self.op(
                        CollectiveKind::AllReduce,
                        PlanScope::Dp,
                        CountSpec::Even { total: chunk.len() },
                        self.prec,
                        "grad-allreduce",
                    ),
                },
                ZeroStage::One => {
                    let counts = self.part.intersect_counts(&chunk);
                    self.op(
                        CollectiveKind::ReduceScatter,
                        PlanScope::Dp,
                        CountSpec::Explicit(counts),
                        self.prec,
                        "grad-reduce-scatter",
                    );
                }
                _ => unreachable!("stages 2/3 reduce through the bucket"),
            }
            cursor = end;
        }
    }

    /// Stage 1/2 parameter publish: all-gather updated shards chunk by
    /// chunk (mirrors `publish_params`).
    fn publish(&mut self, zcfg: &ZeroConfig) {
        if !matches!(zcfg.stage, ZeroStage::One | ZeroStage::Two) {
            return;
        }
        let psi = self.part.total();
        let step = zcfg.bucket_elems;
        let mut cursor = 0;
        while cursor < psi {
            let end = (cursor + step).min(psi);
            let counts = self.part.intersect_counts(&(cursor..end));
            if self.off.opt_state {
                // The host optimizer's freshly updated fp16 shard piece
                // climbs host → device to seed the publish all-gather.
                self.tier_op(TierDir::Fetch, "tier-publish-fetch", counts.clone());
            }
            self.op(
                CollectiveKind::AllGather,
                PlanScope::Dp,
                CountSpec::Explicit(counts),
                self.prec,
                "publish-params",
            );
            cursor = end;
        }
    }

    /// Seals the builder into a plan, checking the tier mirror is
    /// balanced: every prefetch fetch got a demand stamp and every
    /// overlap spill was drained.
    fn finish(self, grid: Grid) -> CommPlan {
        debug_assert!(
            self.unit_tier_idx.iter().all(Option::is_none),
            "plan builder: a prefetched tier fetch was never demanded"
        );
        debug_assert!(
            self.pending_spills.is_empty(),
            "plan builder: pending tier spills were never drained"
        );
        CommPlan { grid, ops: self.ops, tier: self.tier }
    }
}

impl CommPlan {
    /// The deterministic prefix of a training step: every micro-batch's
    /// forward/backward comm, the end-of-step gradient reduction, and the
    /// world-wide overflow-flag all-reduce. Everything up to (and
    /// including) the point where the skip decision becomes known.
    pub fn step_prefix(
        layout: &Layout,
        zcfg: &ZeroConfig,
        grid: Grid,
        micro_batches: usize,
        act_elems: usize,
    ) -> CommPlan {
        assert!(micro_batches > 0, "need at least one micro-batch");
        let mut b = Builder::new(layout, zcfg, grid);
        for _ in 0..micro_batches {
            b.micro(layout, zcfg, act_elems);
        }
        b.grad_reduce(zcfg);
        b.op(
            CollectiveKind::AllReduce,
            PlanScope::World,
            CountSpec::Even { total: 1 },
            Precision::Fp32,
            "overflow-flag",
        );
        b.finish(grid)
    }

    /// The data-dependent suffix of a training step, given the skip
    /// outcome: the global grad-norm reduction (when clipping) and the
    /// parameter publish — both absent on skipped steps.
    pub fn step_suffix(layout: &Layout, zcfg: &ZeroConfig, grid: Grid, skipped: bool) -> CommPlan {
        let mut b = Builder::new(layout, zcfg, grid);
        if !skipped {
            if b.off.opt_state && !zcfg.stage.partitions_grads() {
                // Stage 1: gradients were reduced into the full device
                // buffer; the optimizer's shard piece spills to the host
                // before the update (stages 2–3 spilled bucket by bucket
                // during accumulation).
                let counts = b.part.counts().to_vec();
                b.tier_op(TierDir::Spill, "tier-grad-spill", counts);
            }
            if zcfg.clip_grad_norm.is_some() {
                let scope = if zcfg.stage.partitions_optimizer() {
                    // Shard contributions sum across the whole world.
                    PlanScope::World
                } else {
                    // DDP already holds full DP-averaged grads; only MP
                    // contributions remain to be summed.
                    PlanScope::Mp
                };
                b.op(
                    CollectiveKind::AllReduce,
                    scope,
                    CountSpec::Even { total: 1 },
                    Precision::Fp32,
                    "grad-norm",
                );
            }
            b.publish(zcfg);
        }
        b.finish(grid)
    }

    /// One whole training step (prefix + suffix) for a known skip outcome
    /// — what the static checker and the conformance tests consume.
    pub fn train_step(layout: &Layout, zcfg: &ZeroConfig, grid: Grid, shape: &StepShape) -> CommPlan {
        let mut plan = CommPlan::step_prefix(layout, zcfg, grid, shape.micro_batches, shape.act_elems);
        let suffix = CommPlan::step_suffix(layout, zcfg, grid, shape.skipped);
        let base = plan.ops.len();
        plan.ops.extend(suffix.ops);
        plan.tier.extend(suffix.tier.into_iter().map(|mut t| {
            t.issue_pos += base;
            t.demand_pos += base;
            t
        }));
        plan
    }

    /// A forward-only evaluation pass (mirrors `try_eval_loss`).
    pub fn eval_pass(layout: &Layout, zcfg: &ZeroConfig, grid: Grid, act_elems: usize) -> CommPlan {
        let mut b = Builder::new(layout, zcfg, grid);
        let units: Vec<Range<usize>> = layout.units().iter().map(|u| u.range.clone()).collect();
        let layers = units.len() - 2;
        if b.prefetches(zcfg) {
            // Same one-ahead issue order as the forward pass of `micro`;
            // the head's call has nothing left to chain into.
            b.fetch_unit(zcfg, &units[0], 0);
            b.fetch_unit(zcfg, &units[1], 1);
            b.demand_unit(0);
            for l in 0..layers {
                b.fetch_unit(zcfg, &units[2 + l], 2 + l);
                b.demand_unit(1 + l);
                b.mp_block_pass(act_elems);
            }
            b.demand_unit(1 + layers);
        } else {
            b.fetch_unit(zcfg, &units[0], 0);
            for l in 0..layers {
                b.fetch_unit(zcfg, &units[1 + l], 1 + l);
                b.mp_block_pass(act_elems);
            }
            b.fetch_unit(zcfg, &units[1 + layers], 1 + layers);
        }
        b.finish(grid)
    }

    /// The standalone parameter re-publish a snapshot restore performs.
    pub fn publish_refresh(layout: &Layout, zcfg: &ZeroConfig, grid: Grid) -> CommPlan {
        let mut b = Builder::new(layout, zcfg, grid);
        b.publish(zcfg);
        b.finish(grid)
    }

    /// One shard-hosted *serving* step over `n` inference ranks: every
    /// unit (embed, blocks…, head) is all-gathered from the balanced
    /// [`Partitioner`] shards in walk order — the stage-3 fetch schedule
    /// (§5.3) without any gradient or optimizer traffic. With `overlap`
    /// the gathers are issued non-blocking (the serving engine runs them
    /// one unit ahead of compute, the PR-3 double-buffer shape); issue
    /// order is identical either way, so the same static symmetry and
    /// volume checks apply.
    pub fn serve_step(layout: &Layout, n: usize, overlap: bool) -> CommPlan {
        assert!(n > 0, "serving world must be non-empty");
        let grid = Grid::new(n, 1);
        let part = Partitioner::new(layout.total_params(), n);
        let ops = layout
            .units()
            .iter()
            .map(|u| PlanOp {
                kind: CollectiveKind::AllGather,
                scope: PlanScope::Dp,
                counts: CountSpec::Explicit(part.intersect_counts(&u.range)),
                prec: Precision::Fp32,
                label: "serve-fetch-unit",
                nonblocking: overlap,
                wire: WireFmt::Raw,
            })
            .collect();
        CommPlan { grid, ops, tier: Vec::new() }
    }

    /// The grid this plan is for.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// The scope-relative ops in schedule order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// The tier-movement stream in submission order (empty unless the
    /// config offloads to the memory tier).
    pub fn tier_ops(&self) -> &[TierOp] {
        &self.tier
    }

    /// Resolves the tier stream for one concrete rank. Tier offload
    /// requires mp = 1, so the rank indexes the DP partition directly.
    ///
    /// # Panics
    /// Panics if `rank` is outside the grid, or the plan has tier ops but
    /// a model-parallel grid.
    pub fn resolve_tier_for(&self, rank: usize) -> Vec<ResolvedTierOp> {
        let world = self.grid.world_size();
        assert!(rank < world, "rank {rank} outside grid of {world}");
        if !self.tier.is_empty() {
            assert_eq!(self.grid.mp_degree(), 1, "tier plans are mp = 1 only");
        }
        self.tier
            .iter()
            .map(|t| {
                assert_eq!(t.counts.len(), world, "tier counts cover every DP rank");
                ResolvedTierOp {
                    dir: t.dir,
                    label: t.label,
                    bytes: t.elem_bytes * t.counts[rank] as u64,
                    issue_pos: t.issue_pos,
                    demand_pos: t.demand_pos,
                }
            })
            .collect()
    }

    /// Analytic tier bytes `rank` moves executing this plan, as
    /// `(fetch_bytes, spill_bytes)` — directly comparable to a
    /// [`crate::tier::TierStats`].
    pub fn rank_tier_bytes(&self, rank: usize) -> (u64, u64) {
        let mut fetch = 0u64;
        let mut spill = 0u64;
        for t in self.resolve_tier_for(rank) {
            match t.dir {
                TierDir::Fetch => fetch += t.bytes,
                TierDir::Spill => spill += t.bytes,
            }
        }
        (fetch, spill)
    }

    /// Resolves the schedule for one concrete rank: explicit group members
    /// and per-member counts for every op.
    ///
    /// # Panics
    /// Panics if `rank` is outside the grid or a `Node`/`Cross` scope's
    /// node size does not divide the world.
    pub fn resolve_for(&self, rank: usize) -> Vec<ResolvedOp> {
        let world = self.grid.world_size();
        assert!(rank < world, "rank {rank} outside grid of {world}");
        self.ops
            .iter()
            .map(|op| {
                let group = match op.scope {
                    PlanScope::World => Group::world(world),
                    PlanScope::Dp => self.grid.dp_group(rank),
                    PlanScope::Mp => self.grid.mp_group(rank),
                    PlanScope::Node { g } => {
                        assert_eq!(world % g, 0, "node size {g} must divide world {world}");
                        NodeTopology::new(g).node_group(rank)
                    }
                    PlanScope::Cross { g } => {
                        assert_eq!(world % g, 0, "node size {g} must divide world {world}");
                        NodeTopology::new(g).cross_group(rank, world)
                    }
                };
                let n = group.len();
                let counts: Vec<usize> = match &op.counts {
                    CountSpec::Explicit(v) => {
                        assert_eq!(v.len(), n, "explicit counts match group size");
                        v.clone()
                    }
                    CountSpec::Even { total } => {
                        (0..n).map(|i| chunk_range(*total, n, i).len()).collect()
                    }
                    CountSpec::NodeChunk { total } => {
                        let g = match op.scope {
                            PlanScope::Cross { g } => g,
                            other => panic!("NodeChunk counts need a Cross scope, got {other:?}"),
                        };
                        // This rank's node-local chunk is the cross-phase
                        // buffer; every member of the cross group shares
                        // the same node-local slot, hence the same length.
                        let slot_len = chunk_range(*total, g, rank % g).len();
                        (0..n).map(|i| chunk_range(slot_len, n, i).len()).collect()
                    }
                };
                ResolvedOp {
                    kind: op.kind,
                    members: group.members().to_vec(),
                    counts,
                    prec: op.prec,
                    label: op.label,
                    nonblocking: op.nonblocking,
                    wire: op.wire,
                }
            })
            .collect()
    }

    /// Analytic bytes `rank` sends executing this plan, by collective kind
    /// — directly comparable to a [`zero_comm::TrafficSnapshot`].
    pub fn rank_bytes(&self, rank: usize) -> [u64; KIND_COUNT] {
        let mut out = [0u64; KIND_COUNT];
        for op in self.resolve_for(rank) {
            out[op.kind as usize] += op.sent_bytes(rank);
        }
        out
    }

    /// Analytic messages `rank` sends, by collective kind.
    pub fn rank_messages(&self, rank: usize) -> [u64; KIND_COUNT] {
        let mut out = [0u64; KIND_COUNT];
        for op in self.resolve_for(rank) {
            out[op.kind as usize] += op.sent_messages(rank) as u64;
        }
        out
    }

    /// Total analytic bytes `rank` sends executing this plan.
    pub fn total_rank_bytes(&self, rank: usize) -> u64 {
        self.rank_bytes(rank).iter().sum()
    }

    /// Analytic bytes `rank` pushes across the slow links of a
    /// `g`-rank-per-node topology executing this plan — the quantity the
    /// ZeRO++ levers shrink.
    pub fn rank_inter_node_bytes(&self, rank: usize, g: usize) -> u64 {
        self.resolve_for(rank)
            .iter()
            .map(|op| op.sent_inter_node_bytes(rank, g))
            .sum()
    }

    /// [`CommPlan::rank_inter_node_bytes`] summed over every rank: the
    /// total load on the inter-node fabric per plan execution.
    pub fn total_inter_node_bytes(&self, g: usize) -> u64 {
        (0..self.grid.world_size())
            .map(|r| self.rank_inter_node_bytes(r, g))
            .sum()
    }
}

/// The engine's handle on the current plan: runtime collective calls pop
/// ops off this cursor, so execution cannot silently diverge from the
/// declared schedule (and the planned counts drive the actual calls).
#[derive(Debug, Default)]
pub struct PlanCursor {
    ops: VecDeque<ResolvedOp>,
    tier: VecDeque<ResolvedTierOp>,
    source: &'static str,
    installed: usize,
    consumed: usize,
}

impl PlanCursor {
    /// An empty cursor (no plan installed yet).
    pub fn idle() -> PlanCursor {
        PlanCursor::default()
    }

    /// Installs `plan` resolved for `rank`, replacing any leftover ops
    /// (a failed step abandons its plan; the next entry point re-plans).
    pub fn install(&mut self, plan: &CommPlan, rank: usize, source: &'static str) {
        self.ops = plan.resolve_for(rank).into();
        self.tier = plan.resolve_tier_for(rank).into();
        self.source = source;
        self.installed = self.ops.len();
        self.consumed = 0;
    }

    /// Pops the next planned op, asserting it is a `kind` collective over
    /// exactly `group`. The returned op's counts parameterize the call.
    ///
    /// # Panics
    /// Panics on schedule drift: the plan is exhausted, or the next op's
    /// kind/group disagree with what the engine is about to execute.
    pub fn take(&mut self, kind: CollectiveKind, group: &Group) -> ResolvedOp {
        let op = self.ops.pop_front().unwrap_or_else(|| {
            panic!(
                "comm-plan drift: engine issued {kind:?} over {:?} but the \
                 '{}' plan ({} ops) is exhausted",
                group.members(),
                self.source,
                self.installed
            )
        });
        assert_eq!(
            op.kind, kind,
            "comm-plan drift at '{}' ({}): planned {:?}, engine issued {kind:?}",
            op.label, self.source, op.kind
        );
        assert_eq!(
            op.members,
            group.members(),
            "comm-plan group drift at '{}' ({})",
            op.label,
            self.source
        );
        self.consumed += 1;
        op
    }

    /// Pops the next planned tier movement, asserting direction, label,
    /// and that the engine is at exactly the planned issue anchor (the
    /// number of collective ops consumed so far).
    ///
    /// # Panics
    /// Panics on tier-schedule drift.
    pub fn take_tier(&mut self, dir: TierDir, label: &str) -> ResolvedTierOp {
        let t = self.tier.pop_front().unwrap_or_else(|| {
            panic!(
                "tier-plan drift: engine issued {dir:?} '{label}' but the \
                 '{}' plan's tier stream is exhausted",
                self.source
            )
        });
        assert!(
            t.dir == dir && t.label == label,
            "tier-plan drift ({}): planned {:?} '{}', engine issued {dir:?} '{label}'",
            self.source,
            t.dir,
            t.label
        );
        assert_eq!(
            t.issue_pos, self.consumed,
            "tier-plan anchor drift at '{}' ({}): planned issue after {} collective \
             op(s), engine has consumed {}",
            t.label, self.source, t.issue_pos, self.consumed
        );
        t
    }

    /// Ops not yet consumed.
    pub fn remaining(&self) -> usize {
        self.ops.len()
    }

    /// Asserts the installed plan was fully consumed — called at the end
    /// of every successful engine entry point.
    ///
    /// # Panics
    /// Panics if planned ops (collective or tier) were never issued.
    pub fn assert_exhausted(&self, context: &str) {
        assert!(
            self.ops.is_empty(),
            "comm-plan drift: {} op(s) of '{}' never executed ({context}); next: '{}'",
            self.ops.len(),
            self.source,
            self.ops.front().map_or("-", |op| op.label)
        );
        assert!(
            self.tier.is_empty(),
            "tier-plan drift: {} tier op(s) of '{}' never executed ({context}); next: '{}'",
            self.tier.len(),
            self.source,
            self.tier.front().map_or("-", |t| t.label)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::GradBucket;
    use zero_model::{Layout, ModelConfig};

    fn tiny() -> ModelConfig {
        ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 }
    }

    fn cfg(stage: ZeroStage) -> ZeroConfig {
        ZeroConfig {
            stage,
            fp16: false,
            checkpoint_activations: false,
            initial_loss_scale: 1.0,
            bucket_elems: 1000,
            ..ZeroConfig::default()
        }
    }

    fn shape() -> StepShape {
        StepShape { micro_batches: 1, act_elems: 2 * 8 * 16, skipped: false }
    }

    #[test]
    fn bucket_mirror_matches_grad_bucket() {
        // Same spans through both implementations → same flush ranges.
        let spans = [90..120, 60..90, 40..60, 10..40, 0..10];
        for cap in [1usize, 25, 64, 1000] {
            let mut real = GradBucket::new(cap);
            let mut real_flushes: Vec<Range<usize>> = Vec::new();
            let mut mirror = BucketMirror::new(cap);
            let mut mirror_flushes: Vec<Range<usize>> = Vec::new();
            for s in &spans {
                real.push(s.clone(), vec![0.0; s.len()], &mut |r, _| real_flushes.push(r));
                if let Some(r) = mirror.push(s) {
                    mirror_flushes.push(r);
                }
            }
            real.flush_all(&mut |r, _| real_flushes.push(r));
            if let Some(r) = mirror.flush() {
                mirror_flushes.push(r);
            }
            assert_eq!(real_flushes, mirror_flushes, "capacity {cap}");
        }
    }

    #[test]
    fn stage2_volume_is_exactly_2_psi_ring() {
        // Per-rank DP traffic for stage 2 telescopes exactly: the
        // reduce-scatters skip this rank's own shard (Ψ − |shard_i|), the
        // publish all-gathers skip the ring successor's shard
        // (Ψ − |shard_{i+1}|) — together the paper's 2Ψ·(N−1)/N.
        let model = tiny();
        let layout = Layout::build(&model);
        let psi = layout.total_params();
        for n in [2usize, 3, 5, 8] {
            let grid = Grid::new(n, 1);
            let plan = CommPlan::train_step(&layout, &cfg(ZeroStage::Two), grid, &shape());
            let part = Partitioner::new(psi, n);
            for rank in 0..n {
                let bytes = plan.rank_bytes(rank);
                let shard = part.shard_range(rank).len();
                let next = part.shard_range((rank + 1) % n).len();
                assert_eq!(
                    bytes[CollectiveKind::ReduceScatter as usize],
                    4 * (psi - shard) as u64,
                    "rs n={n}"
                );
                assert_eq!(
                    bytes[CollectiveKind::AllGather as usize],
                    4 * (psi - next) as u64,
                    "ag n={n}"
                );
            }
        }
    }

    #[test]
    fn skipped_suffix_is_empty_and_unskipped_is_not() {
        let layout = Layout::build(&tiny());
        let grid = Grid::new(4, 1);
        let skipped = CommPlan::step_suffix(&layout, &cfg(ZeroStage::Two), grid, true);
        assert!(skipped.ops().is_empty());
        let live = CommPlan::step_suffix(&layout, &cfg(ZeroStage::Two), grid, false);
        assert!(!live.ops().is_empty());
    }

    #[test]
    fn cursor_rejects_wrong_kind() {
        let layout = Layout::build(&tiny());
        let grid = Grid::new(2, 1);
        let plan = CommPlan::step_prefix(&layout, &cfg(ZeroStage::Ddp), grid, 1, 64);
        let mut cur = PlanCursor::idle();
        cur.install(&plan, 0, "test");
        let g = Group::world(2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // DDP plans MP all-reduces (size-1 groups) first; asking for a
            // ReduceScatter over the world must trip the drift assert.
            cur.take(CollectiveKind::ReduceScatter, &g);
        }));
        assert!(err.is_err());
    }

    fn comp_all() -> crate::config::CompressionConfig {
        crate::config::CompressionConfig {
            qwz: true,
            hpz: true,
            qgz: true,
            node_size: 2,
            block: 64,
        }
    }

    #[test]
    fn compression_off_leaves_plans_bitwise_identical() {
        let layout = Layout::build(&tiny());
        let grid = Grid::new(4, 1);
        for stage in [ZeroStage::Two, ZeroStage::Three] {
            let base = CommPlan::train_step(&layout, &cfg(stage), grid, &shape());
            let explicit_off = ZeroConfig {
                compression: crate::config::CompressionConfig::off(),
                ..cfg(stage)
            };
            let off = CommPlan::train_step(&layout, &explicit_off, grid, &shape());
            assert_eq!(base.ops(), off.ops());
            assert!(base.ops().iter().all(|op| op.wire == WireFmt::Raw));
        }
    }

    #[test]
    fn qwz_fetch_bytes_shrink_but_elems_match() {
        let layout = Layout::build(&tiny());
        let grid = Grid::new(4, 1);
        let zcfg = ZeroConfig {
            compression: crate::config::CompressionConfig {
                qwz: true,
                ..crate::config::CompressionConfig::off()
            },
            ..cfg(ZeroStage::Three)
        };
        let plan = CommPlan::train_step(&layout, &zcfg, grid, &shape());
        let raw = CommPlan::train_step(&layout, &cfg(ZeroStage::Three), grid, &shape());
        let mut saw_fetch = false;
        for (q, r) in plan.resolve_for(1).iter().zip(raw.resolve_for(1).iter()) {
            assert_eq!(q.counts, r.counts, "counts are wire-independent");
            if q.label == "fetch-unit" {
                saw_fetch = true;
                assert!(matches!(q.wire, WireFmt::Int8Block { block: 64 }));
                assert!(q.sent_bytes(1) < r.sent_bytes(1), "int8 beats fp32 on the wire");
                assert_eq!(q.sent_messages(1), r.sent_messages(1));
            }
        }
        assert!(saw_fetch);
    }

    #[test]
    fn hpz_refetches_resolve_intra_node() {
        let layout = Layout::build(&tiny());
        let grid = Grid::new(4, 1);
        let zcfg = ZeroConfig {
            compression: crate::config::CompressionConfig {
                hpz: true,
                node_size: 2,
                ..crate::config::CompressionConfig::off()
            },
            ..cfg(ZeroStage::Three)
        };
        // Two micro-batches: the second micro's forward refetches must all
        // be node-local (first-touch already stashed every unit).
        let shape2 = StepShape { micro_batches: 2, ..shape() };
        let plan = CommPlan::train_step(&layout, &zcfg, grid, &shape2);
        let fetches: Vec<&PlanOp> =
            plan.ops().iter().filter(|op| op.label == "fetch-unit").collect();
        let units = layout.units().len();
        let global: Vec<bool> =
            fetches.iter().map(|op| op.scope == PlanScope::Dp).collect();
        assert_eq!(global.iter().filter(|&&d| d).count(), units, "one global fetch per unit");
        assert!(global[..units].iter().all(|&d| d), "micro 1 forward is global");
        assert!(global[units..].iter().all(|&d| !d), "every refetch is node-local");
        for op in &fetches {
            if op.scope != PlanScope::Dp {
                assert_eq!(op.scope, PlanScope::Node { g: 2 });
            }
        }
        // Node-scope fetches still cover the whole unit.
        for (rank, op) in [(0usize, plan.resolve_for(0)), (3, plan.resolve_for(3))]
            .into_iter()
            .flat_map(|(r, ops)| ops.into_iter().map(move |o| (r, o)))
        {
            if op.label == "fetch-unit" && op.members.len() == 2 {
                assert!(op.members.contains(&rank));
                assert!(op.total_elems() > 0);
            }
        }
    }

    #[test]
    fn qgz_two_phase_messages_and_inter_bytes() {
        let layout = Layout::build(&tiny());
        let grid = Grid::new(4, 1);
        let zcfg = ZeroConfig {
            compression: crate::config::CompressionConfig {
                qgz: true,
                node_size: 2,
                ..crate::config::CompressionConfig::off()
            },
            ..cfg(ZeroStage::Two)
        };
        let plan = CommPlan::train_step(&layout, &zcfg, grid, &shape());
        let mut saw = false;
        for op in plan.resolve_for(0) {
            if op.label == "grad-bucket" {
                saw = true;
                assert!(matches!(op.wire, WireFmt::QgzInt8 { node_size: 2, block: 64 }));
                // (G−1) intra + (N/G−1) inter messages.
                assert_eq!(op.sent_messages(0), 2);
                // Phase 1 is intra-node by construction; only phase 2
                // (one quantized chunk to the other node) crosses.
                let inter = op.sent_inter_node_bytes(0, 2);
                assert_eq!(inter, quant_wire_bytes(op.counts[2], 64));
                assert!(inter <= op.sent_bytes(0));
            }
        }
        assert!(saw);
        // Aggregate: qgZ strictly shrinks the step's inter-node load.
        let raw = CommPlan::train_step(&layout, &cfg(ZeroStage::Two), grid, &shape());
        assert!(plan.total_inter_node_bytes(2) < raw.total_inter_node_bytes(2));
    }

    #[test]
    fn all_levers_cut_inter_node_bytes_past_the_gate() {
        // The ISSUE acceptance bar, straight off the plan algebra:
        // stage 3, N = 4, G = 2, two micro-batches, qwZ+hpZ+qgZ ⇒ the
        // inter-node fabric carries ≥ 3.5× fewer bytes per step.
        let layout = Layout::build(&tiny());
        let grid = Grid::new(4, 1);
        let shape2 = StepShape { micro_batches: 2, ..shape() };
        // fp16 is the tight case: the int8 stream only beats the raw wire
        // 1.78×, so the gate genuinely needs hpZ's zero-cost refetches.
        let fp16 = ZeroConfig { fp16: true, ..cfg(ZeroStage::Three) };
        let base = CommPlan::train_step(&layout, &fp16, grid, &shape2);
        let zcfg = ZeroConfig { compression: comp_all(), ..fp16 };
        let comp = CommPlan::train_step(&layout, &zcfg, grid, &shape2);
        let raw = base.total_inter_node_bytes(2);
        let squeezed = comp.total_inter_node_bytes(2);
        assert!(
            raw as f64 >= 3.5 * squeezed as f64,
            "inter-node reduction {:.2}× below the 3.5× gate",
            raw as f64 / squeezed as f64
        );
    }

    fn tiered(stage: ZeroStage, overlap: bool) -> ZeroConfig {
        ZeroConfig {
            tier: crate::config::TierConfig::budgeted(1 << 20),
            overlap,
            ..cfg(stage)
        }
    }

    #[test]
    fn offload_off_leaves_plans_bitwise_identical() {
        let layout = Layout::build(&tiny());
        let grid = Grid::new(4, 1);
        for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
            for overlap in [false, true] {
                let base = ZeroConfig { overlap, ..cfg(stage) };
                let off = ZeroConfig { tier: crate::config::TierConfig::off(), ..base };
                let p_base = CommPlan::train_step(&layout, &base, grid, &shape());
                let p_off = CommPlan::train_step(&layout, &off, grid, &shape());
                assert_eq!(p_base.ops(), p_off.ops());
                assert!(p_base.tier_ops().is_empty());
                assert!(p_off.tier_ops().is_empty());
            }
        }
    }

    #[test]
    fn tier_offload_does_not_change_the_collective_schedule() {
        let layout = Layout::build(&tiny());
        let grid = Grid::new(4, 1);
        for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
            for overlap in [false, true] {
                let base = CommPlan::train_step(&layout, &ZeroConfig { overlap, ..cfg(stage) }, grid, &shape());
                let off = CommPlan::train_step(&layout, &tiered(stage, overlap), grid, &shape());
                assert_eq!(base.ops(), off.ops(), "stage {stage:?} overlap {overlap}");
                assert!(!off.tier_ops().is_empty());
            }
        }
    }

    #[test]
    fn tier_fetches_anchor_on_their_allgathers() {
        let layout = Layout::build(&tiny());
        let grid = Grid::new(4, 1);
        for overlap in [false, true] {
            let plan = CommPlan::train_step(&layout, &tiered(ZeroStage::Three, overlap), grid, &shape());
            let mut windows = 0usize;
            for t in plan.tier_ops() {
                assert!(t.issue_pos <= t.demand_pos, "'{}' window inverted", t.label);
                assert!(t.demand_pos <= plan.ops().len());
                if t.dir == TierDir::Fetch {
                    let anchor = &plan.ops()[t.issue_pos];
                    assert_eq!(anchor.kind, CollectiveKind::AllGather, "'{}'", t.label);
                    assert_eq!(anchor.counts, CountSpec::Explicit(t.counts.clone()));
                }
                if t.demand_pos > t.issue_pos {
                    windows += 1;
                }
            }
            if overlap {
                assert!(windows > 0, "overlap mode must open real prefetch windows");
            } else {
                assert_eq!(windows, 0, "sync mode blocks at issue");
            }
        }
    }

    #[test]
    fn tier_volumes_telescope() {
        let model = tiny();
        let layout = Layout::build(&model);
        let psi = layout.total_params();
        let grid = Grid::new(4, 1);
        let part = Partitioner::new(psi, 4);
        for overlap in [false, true] {
            // Stages 2/3: per-step spill volume is exactly micro_batches ×
            // the rank's shard (every reduced element crosses once).
            let shape2 = StepShape { micro_batches: 2, ..shape() };
            for stage in [ZeroStage::Two, ZeroStage::Three] {
                let plan = CommPlan::train_step(&layout, &tiered(stage, overlap), grid, &shape2);
                for rank in 0..4 {
                    let spilled: usize = plan
                        .tier_ops()
                        .iter()
                        .filter(|t| t.dir == TierDir::Spill)
                        .map(|t| t.counts[rank])
                        .sum();
                    assert_eq!(spilled, 2 * part.shard_range(rank).len(), "{stage:?}");
                }
            }
            // Stages 1/2: per-step publish fetch is exactly the shard.
            for stage in [ZeroStage::One, ZeroStage::Two] {
                let plan = CommPlan::train_step(&layout, &tiered(stage, overlap), grid, &shape2);
                for rank in 0..4 {
                    let fetched: usize = plan
                        .tier_ops()
                        .iter()
                        .filter(|t| t.label == "tier-publish-fetch")
                        .map(|t| t.counts[rank])
                        .sum();
                    assert_eq!(fetched, part.shard_range(rank).len(), "{stage:?}");
                }
            }
            // Stage 1 spills its shard exactly once, in the suffix.
            let plan = CommPlan::train_step(&layout, &tiered(ZeroStage::One, overlap), grid, &shape2);
            let spills: Vec<_> =
                plan.tier_ops().iter().filter(|t| t.dir == TierDir::Spill).collect();
            assert_eq!(spills.len(), 1);
            assert_eq!(spills[0].counts, part.counts().to_vec());
        }
    }

    #[test]
    fn skipped_steps_plan_no_suffix_tier_traffic() {
        let layout = Layout::build(&tiny());
        let grid = Grid::new(2, 1);
        for stage in [ZeroStage::One, ZeroStage::Two] {
            let suffix = CommPlan::step_suffix(&layout, &tiered(stage, false), grid, true);
            assert!(suffix.tier_ops().is_empty(), "{stage:?}");
        }
    }

    #[test]
    fn cursor_enforces_tier_anchor() {
        let layout = Layout::build(&tiny());
        let grid = Grid::new(2, 1);
        let plan = CommPlan::train_step(&layout, &tiered(ZeroStage::Three, false), grid, &shape());
        let mut cur = PlanCursor::idle();
        cur.install(&plan, 0, "test");
        // The first planned movement is the embed fetch at anchor 0.
        let t = cur.take_tier(TierDir::Fetch, "tier-param-fetch");
        assert_eq!(t.issue_pos, 0);
        assert!(t.bytes > 0);
        // The next fetch anchors after the embed all-gather; taking it
        // without consuming that op must trip the anchor assert.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cur.take_tier(TierDir::Fetch, "tier-param-fetch");
        }));
        assert!(err.is_err());
    }

    #[test]
    fn hierarchical_plan_resolves_cross_chunks() {
        let layout = Layout::build(&tiny());
        let grid = Grid::new(4, 1);
        let zcfg = ZeroConfig { node_size: Some(2), ..cfg(ZeroStage::Ddp) };
        let plan = CommPlan::train_step(&layout, &zcfg, grid, &shape());
        // Every rank resolves; cross-phase counts sum to its node chunk.
        for rank in 0..4 {
            for op in plan.resolve_for(rank) {
                if op.label == "hier-cross-ar" {
                    assert_eq!(op.members.len(), 2);
                    assert!(op.total_elems() > 0);
                }
            }
        }
    }
}
