//! Flat model-state storage in genuine fp16 or fp32 width.
//!
//! The paper's byte arithmetic (2Ψ fp16 parameters, 2Ψ fp16 gradients,
//! 12Ψ fp32 optimizer states) only means something if the fp16 tensors
//! really occupy two bytes per element. [`FlatStore`] provides that: the
//! fp16 variant stores `F16` words and quantizes on every write, exactly
//! like the fp16 working copies in mixed-precision training; the fp32
//! variant backs the exact-equivalence test mode.

use zero_tensor::F16;

/// A flat parameter/gradient buffer with a selectable element width.
pub enum FlatStore {
    /// 4 bytes/element; writes are exact.
    F32(Vec<f32>),
    /// 2 bytes/element; writes round to nearest even.
    F16(Vec<F16>),
}

impl FlatStore {
    /// Zero-initialized storage of `len` elements.
    pub fn zeros(len: usize, fp16: bool) -> FlatStore {
        if fp16 {
            FlatStore::F16(vec![F16::ZERO; len])
        } else {
            FlatStore::F32(vec![0.0; len])
        }
    }

    /// Storage initialized from f32 values (quantizing if fp16).
    pub fn from_f32(src: &[f32], fp16: bool) -> FlatStore {
        let mut s = FlatStore::zeros(src.len(), fp16);
        s.write_from(0..src.len(), src);
        s
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            FlatStore::F32(v) => v.len(),
            FlatStore::F16(v) => v.len(),
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for the fp16 variant.
    pub fn is_fp16(&self) -> bool {
        matches!(self, FlatStore::F16(_))
    }

    /// Bytes occupied by the storage.
    pub fn bytes(&self) -> u64 {
        match self {
            FlatStore::F32(v) => 4 * v.len() as u64,
            FlatStore::F16(v) => 2 * v.len() as u64,
        }
    }

    /// Bytes per element (2 or 4).
    pub fn bytes_per_elem(&self) -> u64 {
        if self.is_fp16() {
            2
        } else {
            4
        }
    }

    /// Reads `range` into an f32 slice (widening if fp16).
    ///
    /// # Panics
    /// Panics if `out.len() != range.len()`.
    pub fn read_into(&self, range: std::ops::Range<usize>, out: &mut [f32]) {
        assert_eq!(out.len(), range.len(), "store read: length mismatch");
        match self {
            FlatStore::F32(v) => out.copy_from_slice(&v[range]),
            FlatStore::F16(v) => {
                for (o, h) in out.iter_mut().zip(&v[range]) {
                    *o = h.to_f32();
                }
            }
        }
    }

    /// Reads `range` into a fresh `Vec<f32>`.
    pub fn read_vec(&self, range: std::ops::Range<usize>) -> Vec<f32> {
        let mut out = vec![0.0; range.len()];
        self.read_into(range, &mut out);
        out
    }

    /// Writes f32 values into `range` (quantizing if fp16).
    ///
    /// # Panics
    /// Panics if `src.len() != range.len()`.
    pub fn write_from(&mut self, range: std::ops::Range<usize>, src: &[f32]) {
        assert_eq!(src.len(), range.len(), "store write: length mismatch");
        match self {
            FlatStore::F32(v) => v[range].copy_from_slice(src),
            FlatStore::F16(v) => {
                for (h, &s) in v[range].iter_mut().zip(src) {
                    *h = F16::from_f32(s);
                }
            }
        }
    }

    /// Accumulates f32 values into `range` (`store += src`), performing the
    /// read-modify-write in f32 and re-quantizing — how fp16 gradient
    /// accumulation behaves in practice.
    pub fn add_from(&mut self, range: std::ops::Range<usize>, src: &[f32]) {
        assert_eq!(src.len(), range.len(), "store add: length mismatch");
        match self {
            FlatStore::F32(v) => {
                for (d, &s) in v[range].iter_mut().zip(src) {
                    *d += s;
                }
            }
            FlatStore::F16(v) => {
                for (h, &s) in v[range].iter_mut().zip(src) {
                    *h = F16::from_f32(h.to_f32() + s);
                }
            }
        }
    }

    /// Sets every element of `range` to zero.
    pub fn zero_range(&mut self, range: std::ops::Range<usize>) {
        match self {
            FlatStore::F32(v) => v[range].iter_mut().for_each(|x| *x = 0.0),
            FlatStore::F16(v) => v[range].iter_mut().for_each(|x| *x = F16::ZERO),
        }
    }

    /// True if any element of `range` is NaN or infinite.
    pub fn has_non_finite(&self, range: std::ops::Range<usize>) -> bool {
        match self {
            FlatStore::F32(v) => v[range].iter().any(|x| !x.is_finite()),
            FlatStore::F16(v) => v[range].iter().any(|x| !x.is_finite()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trip_is_exact() {
        let src = vec![0.1_f32, -2.7, 1e-8, 3e7];
        let s = FlatStore::from_f32(&src, false);
        assert_eq!(s.read_vec(0..4), src);
        assert_eq!(s.bytes(), 16);
    }

    #[test]
    fn f16_quantizes_on_write() {
        let src = vec![0.1_f32, 1.0, 65504.0];
        let s = FlatStore::from_f32(&src, true);
        let back = s.read_vec(0..3);
        assert_eq!(back[1], 1.0);
        assert_eq!(back[2], 65504.0);
        assert!((back[0] - 0.1).abs() < 1e-4 && back[0] != 0.1);
        assert_eq!(s.bytes(), 6, "2 bytes per element");
    }

    #[test]
    fn partial_reads_and_writes() {
        let mut s = FlatStore::zeros(6, false);
        s.write_from(2..5, &[1.0, 2.0, 3.0]);
        assert_eq!(s.read_vec(0..6), vec![0.0, 0.0, 1.0, 2.0, 3.0, 0.0]);
        s.add_from(2..4, &[10.0, 10.0]);
        assert_eq!(s.read_vec(2..4), vec![11.0, 12.0]);
        s.zero_range(0..6);
        assert_eq!(s.read_vec(0..6), vec![0.0; 6]);
    }

    #[test]
    fn f16_accumulation_quantizes_each_step() {
        let mut s = FlatStore::zeros(1, true);
        // 2048 + 1 is not representable in fp16 (ulp at 2048 is 2).
        s.write_from(0..1, &[2048.0]);
        s.add_from(0..1, &[1.0]);
        assert_eq!(s.read_vec(0..1)[0], 2048.0, "swallowed by fp16 rounding");
    }

    #[test]
    fn non_finite_detection_both_widths() {
        let mut a = FlatStore::zeros(3, false);
        a.write_from(1..2, &[f32::NAN]);
        assert!(a.has_non_finite(0..3));
        assert!(!a.has_non_finite(2..3));
        let mut b = FlatStore::zeros(3, true);
        b.write_from(0..1, &[1e9]); // overflows fp16 to +inf
        assert!(b.has_non_finite(0..3));
    }
}
