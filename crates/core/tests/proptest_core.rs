//! Property tests for zero-core's partitioning, bucketing, storage, and
//! arena invariants — the pieces whose correctness the ZeRO schedule
//! silently relies on for every step.

use proptest::prelude::*;
use zero_core::{ContiguousArena, FlatStore, GradBucket, Partitioner};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn partitioner_covers_without_overlap(total in 0usize..10_000, n in 1usize..64) {
        let p = Partitioner::new(total, n);
        let mut cursor = 0;
        for i in 0..n {
            let r = p.shard_range(i);
            prop_assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, total);
    }

    #[test]
    fn partitioner_shards_are_balanced(total in 0usize..10_000, n in 1usize..64) {
        let p = Partitioner::new(total, n);
        let counts = p.counts();
        let (min, max) = (
            counts.iter().min().copied().unwrap_or(0),
            counts.iter().max().copied().unwrap_or(0),
        );
        prop_assert!(max - min <= 1, "shards {counts:?} not balanced");
    }

    #[test]
    fn owner_of_is_consistent_with_shard_range(
        total in 1usize..5_000, n in 1usize..32, idx_seed in 0usize..5_000,
    ) {
        let p = Partitioner::new(total, n);
        let idx = idx_seed % total;
        let owner = p.owner_of(idx);
        prop_assert!(p.shard_range(owner).contains(&idx));
    }

    #[test]
    fn intersect_counts_match_local_slices(
        total in 1usize..5_000, n in 1usize..16,
        a in 0usize..5_000, b in 0usize..5_000,
    ) {
        let p = Partitioner::new(total, n);
        let (lo, hi) = (a.min(b) % total, (a.max(b) % total).max(a.min(b) % total));
        let range = lo..hi;
        let counts = p.intersect_counts(&range);
        prop_assert_eq!(counts.iter().sum::<usize>(), range.len());
        for i in 0..n {
            let local = p.local_slice_of(i, &range);
            prop_assert_eq!(local.len(), counts[i], "owner {}", i);
            prop_assert!(local.end <= p.shard_range(i).len());
        }
    }

    #[test]
    fn bucket_flushes_cover_all_pushed_data(
        unit_lens in prop::collection::vec(1usize..50, 1..10),
        capacity in 1usize..100,
    ) {
        // Build descending contiguous unit ranges (backward order).
        let total: usize = unit_lens.iter().sum();
        let mut ranges = Vec::new();
        let mut hi = total;
        for len in &unit_lens {
            ranges.push(hi - len..hi);
            hi -= len;
        }
        let mut bucket = GradBucket::new(capacity);
        let mut seen = vec![false; total];
        let mut flush = |r: std::ops::Range<usize>, d: &mut [f32]| {
            assert_eq!(r.len(), d.len());
            for (i, &v) in r.clone().zip(d.iter()) {
                assert!(!seen[i], "element {i} flushed twice");
                seen[i] = true;
                assert_eq!(v, i as f32, "value at {i} scrambled");
            }
        };
        for r in &ranges {
            let data: Vec<f32> = r.clone().map(|i| i as f32).collect();
            bucket.push(r.clone(), data, &mut flush);
        }
        bucket.flush_all(&mut flush);
        prop_assert!(seen.iter().all(|&s| s), "not all elements flushed");
        prop_assert_eq!(bucket.pending_elems(), 0);
    }

    #[test]
    fn flat_store_write_read_round_trip_f32(
        values in prop::collection::vec(-1e6f32..1e6, 1..100),
    ) {
        let s = FlatStore::from_f32(&values, false);
        prop_assert_eq!(s.read_vec(0..values.len()), values);
    }

    #[test]
    fn flat_store_f16_error_bounded(
        values in prop::collection::vec(-60000.0f32..60000.0, 1..100),
    ) {
        let s = FlatStore::from_f32(&values, true);
        let back = s.read_vec(0..values.len());
        for (v, b) in values.iter().zip(&back) {
            let tol = (v.abs() * 2.0_f32.powi(-11)).max(2.0_f32.powi(-25));
            prop_assert!((v - b).abs() <= tol);
        }
        prop_assert_eq!(s.bytes(), 2 * values.len() as u64);
    }

    #[test]
    fn arena_slots_never_alias(
        lens in prop::collection::vec(1usize..40, 1..12),
    ) {
        let total: usize = lens.iter().sum();
        let mut arena = ContiguousArena::new(total);
        let mut slots = Vec::new();
        for (i, len) in lens.iter().enumerate() {
            let data: Vec<f32> = std::iter::repeat(i as f32).take(*len).collect();
            slots.push((arena.store(&data), i));
        }
        for (slot, i) in &slots {
            let got = arena.slot(slot);
            prop_assert!(got.iter().all(|&v| v == *i as f32), "slot {i} corrupted");
        }
        prop_assert_eq!(arena.used(), total);
    }
}
