//! Property tests for zero-core's partitioning, bucketing, storage, and
//! arena invariants — the pieces whose correctness the ZeRO schedule
//! silently relies on for every step.

use proptest::prelude::*;
use zero_core::{reshard, ContiguousArena, FlatStore, GradBucket, Partitioner, RankSnapshot};

/// Deterministic f32 fill so round-trips can be compared bitwise.
fn fill(seed: u64, len: usize, salt: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let mut z = seed ^ salt ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            ((z >> 40) as f32 / 16_777_216.0) * 2.0 - 1.0
        })
        .collect()
}

/// An N-way sharded Adam checkpoint over `psi` elements, partitioned the
/// same way the engine partitions its flat space.
fn sharded(psi: usize, world: usize, seed: u64, scaler: Option<(f32, u32, u64)>) -> Vec<RankSnapshot> {
    let part = Partitioner::new(psi, world);
    let master = fill(seed, psi, 1);
    let opt_m = fill(seed, psi, 2);
    let opt_v = fill(seed, psi, 3);
    (0..world)
        .map(|r| {
            let range = part.shard_range(r);
            RankSnapshot {
                rank: r as u32,
                world: world as u32,
                step: 13,
                shard_start: range.start as u64,
                shard_end: range.end as u64,
                master: master[range.clone()].to_vec(),
                opt_m: opt_m[range.clone()].to_vec(),
                opt_v: opt_v[range.clone()].to_vec(),
                opt_t: 13,
                scaler,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn partitioner_covers_without_overlap(total in 0usize..10_000, n in 1usize..64) {
        let p = Partitioner::new(total, n);
        let mut cursor = 0;
        for i in 0..n {
            let r = p.shard_range(i);
            prop_assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, total);
    }

    #[test]
    fn partitioner_shards_are_balanced(total in 0usize..10_000, n in 1usize..64) {
        let p = Partitioner::new(total, n);
        let counts = p.counts();
        let (min, max) = (
            counts.iter().min().copied().unwrap_or(0),
            counts.iter().max().copied().unwrap_or(0),
        );
        prop_assert!(max - min <= 1, "shards {counts:?} not balanced");
    }

    #[test]
    fn owner_of_is_consistent_with_shard_range(
        total in 1usize..5_000, n in 1usize..32, idx_seed in 0usize..5_000,
    ) {
        let p = Partitioner::new(total, n);
        let idx = idx_seed % total;
        let owner = p.owner_of(idx);
        prop_assert!(p.shard_range(owner).contains(&idx));
    }

    #[test]
    fn intersect_counts_match_local_slices(
        total in 1usize..5_000, n in 1usize..16,
        a in 0usize..5_000, b in 0usize..5_000,
    ) {
        let p = Partitioner::new(total, n);
        let (lo, hi) = (a.min(b) % total, (a.max(b) % total).max(a.min(b) % total));
        let range = lo..hi;
        let counts = p.intersect_counts(&range);
        prop_assert_eq!(counts.iter().sum::<usize>(), range.len());
        for (i, cnt) in counts.iter().enumerate() {
            let local = p.local_slice_of(i, &range);
            prop_assert_eq!(local.len(), *cnt, "owner {}", i);
            prop_assert!(local.end <= p.shard_range(i).len());
        }
    }

    #[test]
    fn bucket_flushes_cover_all_pushed_data(
        unit_lens in prop::collection::vec(1usize..50, 1..10),
        capacity in 1usize..100,
    ) {
        // Build descending contiguous unit ranges (backward order).
        let total: usize = unit_lens.iter().sum();
        let mut ranges = Vec::new();
        let mut hi = total;
        for len in &unit_lens {
            ranges.push(hi - len..hi);
            hi -= len;
        }
        let mut bucket = GradBucket::new(capacity);
        let mut seen = vec![false; total];
        let mut flush = |r: std::ops::Range<usize>, d: &mut [f32]| {
            assert_eq!(r.len(), d.len());
            for (i, &v) in r.clone().zip(d.iter()) {
                assert!(!seen[i], "element {i} flushed twice");
                seen[i] = true;
                assert_eq!(v, i as f32, "value at {i} scrambled");
            }
        };
        for r in &ranges {
            let data: Vec<f32> = r.clone().map(|i| i as f32).collect();
            bucket.push(r.clone(), data, &mut flush);
        }
        bucket.flush_all(&mut flush);
        prop_assert!(seen.iter().all(|&s| s), "not all elements flushed");
        prop_assert_eq!(bucket.pending_elems(), 0);
    }

    #[test]
    fn flat_store_write_read_round_trip_f32(
        values in prop::collection::vec(-1e6f32..1e6, 1..100),
    ) {
        let s = FlatStore::from_f32(&values, false);
        prop_assert_eq!(s.read_vec(0..values.len()), values);
    }

    #[test]
    fn flat_store_f16_error_bounded(
        values in prop::collection::vec(-60000.0f32..60000.0, 1..100),
    ) {
        let s = FlatStore::from_f32(&values, true);
        let back = s.read_vec(0..values.len());
        for (v, b) in values.iter().zip(&back) {
            let tol = (v.abs() * 2.0_f32.powi(-11)).max(2.0_f32.powi(-25));
            prop_assert!((v - b).abs() <= tol);
        }
        prop_assert_eq!(s.bytes(), 2 * values.len() as u64);
    }

    #[test]
    fn reshard_round_trip_is_bitwise_lossless(
        psi in 1usize..400, n in 1usize..9, m in 1usize..9, seed in 0u64..1_000_000,
    ) {
        // Elastic recovery reshards N→M; growing back M→N must return the
        // exact original shards — master params and both Adam moments
        // bitwise, plus every piece of metadata the optimizer resumes from.
        let scaler = if seed % 2 == 0 { Some((64.0, 3, seed)) } else { None };
        let orig = sharded(psi, n, seed, scaler);
        let mid = reshard(&orig, m);
        prop_assert_eq!(mid.len(), m);
        let back = reshard(&mid, n);
        prop_assert_eq!(back.len(), n);
        for (a, b) in orig.iter().zip(&back) {
            prop_assert_eq!(a.rank, b.rank);
            prop_assert_eq!(a.world, b.world);
            prop_assert_eq!((a.step, a.opt_t), (b.step, b.opt_t));
            prop_assert_eq!((a.shard_start, a.shard_end), (b.shard_start, b.shard_end));
            prop_assert_eq!(a.scaler.map(|(s, g, k)| (s.to_bits(), g, k)),
                            b.scaler.map(|(s, g, k)| (s.to_bits(), g, k)));
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&a.master), bits(&b.master), "master shard {}", a.rank);
            prop_assert_eq!(bits(&a.opt_m), bits(&b.opt_m), "opt_m shard {}", a.rank);
            prop_assert_eq!(bits(&a.opt_v), bits(&b.opt_v), "opt_v shard {}", a.rank);
        }
    }

    #[test]
    fn arena_slots_never_alias(
        lens in prop::collection::vec(1usize..40, 1..12),
    ) {
        let total: usize = lens.iter().sum();
        let mut arena = ContiguousArena::new(total);
        let mut slots = Vec::new();
        for (i, len) in lens.iter().enumerate() {
            let data: Vec<f32> = std::iter::repeat_n(i as f32, *len).collect();
            slots.push((arena.store(&data), i));
        }
        for (slot, i) in &slots {
            let got = arena.slot(slot);
            prop_assert!(got.iter().all(|&v| v == *i as f32), "slot {i} corrupted");
        }
        prop_assert_eq!(arena.used(), total);
    }
}
