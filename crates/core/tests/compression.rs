//! End-to-end ZeRO++ compression tests: multi-rank training with
//! qwZ / hpZ / qgZ enabled must stay deterministic, close in loss to the
//! uncompressed run, bitwise identical when every lever is off, and
//! bitwise *exact* for hpZ alone (the secondary replica stores genuine
//! fp16 values, so node-scope refetches reproduce the global gather).

use zero_comm::{Grid, World, WorldConfig};
use zero_core::{
    CompressionConfig, MemCategory, Partitioner, RankEngine, ZeroConfig, ZeroStage,
};
use zero_model::{init_full_params, Gpt, ModelConfig, SyntheticCorpus};

const MICROS: usize = 2;
const LOCAL_BATCH: usize = 2;
const STEPS: usize = 6;

fn model() -> ModelConfig {
    ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 }
}

fn zcfg(comp: CompressionConfig) -> ZeroConfig {
    ZeroConfig {
        stage: ZeroStage::Three,
        bucket_elems: 512,
        initial_loss_scale: 1.0,
        compression: comp,
        ..ZeroConfig::default()
    }
}

fn all_on() -> CompressionConfig {
    CompressionConfig { qwz: true, hpz: true, qgz: true, node_size: 2, block: 64 }
}

/// Per-rank results: train losses (with a final eval loss appended),
/// master shard, and live hpZ secondary bytes.
struct RankOut {
    losses: Vec<f32>,
    master: Vec<f32>,
    secondary_bytes: u64,
}

/// Trains a dp-way world for [`STEPS`] steps of [`MICROS`] micro-batches
/// each, then runs one eval pass — exercising every compressed plan.
fn run(zcfg: ZeroConfig, dp: usize) -> Vec<RankOut> {
    let model = model();
    let grid = Grid::new(dp, 1);
    let full = init_full_params(&model, 11);
    let corpus = SyntheticCorpus::generate(model.vocab, 20_000, 0xC0FFEE);
    let tokens = corpus.tokens();
    let span = model.seq + 1;
    let mut world = World::with_config(dp, WorldConfig::default());
    let comms: Vec<_> = (0..dp).map(|r| world.take(r)).collect();
    let mut outs: Vec<Option<RankOut>> = (0..dp).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let full = &full;
                s.spawn(move || {
                    let rank = comm.rank();
                    let gpt = Gpt::new_mp(model, 1);
                    let mut engine = RankEngine::new(gpt, full, zcfg, grid, comm);
                    let batch = |step: usize, m: usize| {
                        let mut ids = Vec::new();
                        let mut targets = Vec::new();
                        for b in 0..LOCAL_BATCH {
                            let seq_idx =
                                (step * MICROS + m) * dp * LOCAL_BATCH + rank * LOCAL_BATCH + b;
                            let at = seq_idx * span % (tokens.len() - span);
                            let w = &tokens[at..at + span];
                            ids.extend_from_slice(&w[..model.seq]);
                            targets.extend_from_slice(&w[1..]);
                        }
                        (ids, targets)
                    };
                    let mut losses = Vec::new();
                    for step in 0..STEPS {
                        let micros: Vec<_> = (0..MICROS).map(|m| batch(step, m)).collect();
                        let refs: Vec<(&[u32], &[u32])> =
                            micros.iter().map(|(i, t)| (i.as_slice(), t.as_slice())).collect();
                        losses.push(engine.train_step_micro(&refs, LOCAL_BATCH).loss);
                    }
                    let (ids, targets) = batch(STEPS, 0);
                    losses.push(engine.eval_loss(&ids, &targets, LOCAL_BATCH));
                    RankOut {
                        losses,
                        master: engine.master_params().to_vec(),
                        secondary_bytes: engine.memory().live(MemCategory::SecondaryParams),
                    }
                })
            })
            .collect();
        for (slot, h) in outs.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank panicked"));
        }
    });
    outs.into_iter().map(|o| o.unwrap()).collect()
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn all_levers_train_close_to_uncompressed() {
    let base = run(zcfg(CompressionConfig::off()), 4);
    let comp = run(zcfg(all_on()), 4);
    for (b, c) in base[0].losses.iter().zip(&comp[0].losses) {
        assert!(b.is_finite() && c.is_finite(), "losses finite: {b} vs {c}");
    }
    let b = *base[0].losses.last().unwrap();
    let c = *comp[0].losses.last().unwrap();
    assert!(
        (b - c).abs() <= 1e-2,
        "compressed training must stay within 1e-2 of uncompressed: {b} vs {c}"
    );
}

#[test]
fn compressed_training_is_deterministic() {
    let a = run(zcfg(all_on()), 4);
    let b = run(zcfg(all_on()), 4);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(bits(&x.losses), bits(&y.losses), "losses must be bitwise stable");
        assert_eq!(bits(&x.master), bits(&y.master), "masters must be bitwise stable");
    }
}

#[test]
fn overlap_and_sync_agree_under_compression() {
    let sync = run(zcfg(all_on()), 4);
    let ovl = run(ZeroConfig { overlap: true, ..zcfg(all_on()) }, 4);
    for (x, y) in sync.iter().zip(&ovl) {
        assert_eq!(bits(&x.losses), bits(&y.losses), "overlap must not change losses");
        assert_eq!(bits(&x.master), bits(&y.master), "overlap must not change masters");
    }
}

#[test]
fn hpz_alone_is_bitwise_exact_and_priced() {
    let base = run(zcfg(CompressionConfig::off()), 4);
    let hpz = run(
        zcfg(CompressionConfig { hpz: true, node_size: 2, ..CompressionConfig::off() }),
        4,
    );
    for (x, y) in base.iter().zip(&hpz) {
        assert_eq!(bits(&x.losses), bits(&y.losses), "hpZ refetches must be exact");
        assert_eq!(bits(&x.master), bits(&y.master), "hpZ must not perturb the update");
        assert_eq!(x.secondary_bytes, 0, "no replica without hpZ");
    }
    // The replica is priced at 2 bytes per element of this rank's
    // node-slot shard (fp16), and only while hpZ is on.
    let psi = Gpt::new_mp(model(), 1).num_params();
    let sec_part = Partitioner::new(psi, 2);
    for (rank, out) in hpz.iter().enumerate() {
        let expect = 2 * sec_part.shard_range(rank % 2).len() as u64;
        assert_eq!(out.secondary_bytes, expect, "rank {rank} secondary bytes");
    }
}

#[test]
fn levers_off_ignore_topology_settings() {
    let base = run(zcfg(CompressionConfig::off()), 2);
    let noop = run(
        zcfg(CompressionConfig { node_size: 2, block: 32, ..CompressionConfig::off() }),
        2,
    );
    for (x, y) in base.iter().zip(&noop) {
        assert_eq!(bits(&x.losses), bits(&y.losses), "inert topology must not change losses");
        assert_eq!(bits(&x.master), bits(&y.master), "inert topology must not change masters");
    }
}
