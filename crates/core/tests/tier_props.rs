//! Property tests for the two-tier memory store behind offload
//! (`zero_core::TierStore`): arbitrary spill/fetch/evict/write
//! interleavings must preserve page contents bitwise, never let device
//! residency exceed the configured budget, and keep the byte meters an
//! exact ledger of every crossing.

use proptest::prelude::*;
use zero_core::{TierConfig, TierStore};

/// Deterministic f32 fill so contents can be compared bitwise.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let mut z = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            ((z >> 40) as f32 / 16_777_216.0) * 2.0 - 1.0
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// One step of the interleaving the proptests drive.
#[derive(Clone, Copy, Debug)]
enum Op {
    Fetch(usize),
    Spill(usize),
    Evict(usize),
    Read(usize),
    Write(usize, u64),
}

/// Decodes a raw draw into an op over `pages` pages. The vendored
/// proptest only generates scalars and vectors, so interleavings are
/// drawn as `Vec<u64>` and decoded here.
fn decode(raw: u64, pages: usize) -> Op {
    let page = (raw >> 3) as usize % pages;
    match raw % 5 {
        0 => Op::Fetch(page),
        1 => Op::Spill(page),
        2 => Op::Evict(page),
        3 => Op::Read(page),
        _ => Op::Write(page, raw >> 13),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The central invariant the engine's budget proof rests on: no
    /// interleaving of operations can push device residency past the
    /// budget, and the store's own byte count always equals the sum of
    /// the pages it claims are resident.
    #[test]
    fn device_residency_never_exceeds_budget(
        sizes in prop::collection::vec(1usize..32, 2..8),
        raw in prop::collection::vec(0u64..u64::MAX, 1..120),
        budget_elems in 32u64..96,
    ) {
        let budget = 4 * budget_elems; // fits any single page (< 32 elems)
        let mut ts = TierStore::new(TierConfig::budgeted(budget));
        let ids: Vec<_> = (0..sizes.len())
            .map(|p| ts.alloc(fill(p as u64, sizes[p])))
            .collect();
        for &r in &raw {
            let op = decode(r, sizes.len());
            match op {
                Op::Fetch(p) => { ts.fetch(ids[p]); }
                Op::Spill(p) => { ts.spill(ids[p]); }
                Op::Evict(p) => { ts.evict(ids[p]); }
                Op::Read(p) => { ts.read(ids[p]); }
                Op::Write(p, s) => {
                    let v = fill(s, sizes[p].min(3));
                    ts.write(ids[p], 0, &v);
                }
            }
            prop_assert!(
                ts.device_bytes() <= budget,
                "device {} bytes exceeds budget {budget} after {op:?}",
                ts.device_bytes(),
            );
            let resident: u64 = (0..ids.len())
                .filter(|&p| ts.on_device(ids[p]))
                .map(|p| 4 * sizes[p] as u64)
                .sum();
            prop_assert_eq!(ts.device_bytes(), resident, "residency ledger drifted");
        }
    }

    /// Tier crossings move pages, never values: after any interleaving,
    /// every page reads back bitwise-identical to a shadow copy that saw
    /// the same writes but never moved.
    #[test]
    fn contents_survive_any_interleaving_bitwise(
        sizes in prop::collection::vec(1usize..32, 2..8),
        raw in prop::collection::vec(0u64..u64::MAX, 1..120),
    ) {
        // A tight budget maximizes eviction traffic (~2 median pages).
        let mut ts = TierStore::new(TierConfig::budgeted(4 * 32));
        let mut shadow: Vec<Vec<f32>> =
            (0..sizes.len()).map(|p| fill(p as u64, sizes[p])).collect();
        let ids: Vec<_> = (0..sizes.len()).map(|p| ts.alloc(shadow[p].clone())).collect();
        for &r in &raw {
            match decode(r, sizes.len()) {
                Op::Fetch(p) => { ts.fetch(ids[p]); }
                Op::Spill(p) => { ts.spill(ids[p]); }
                Op::Evict(p) => { ts.evict(ids[p]); }
                Op::Read(p) => {
                    prop_assert_eq!(bits(ts.read(ids[p])), bits(&shadow[p]));
                }
                Op::Write(p, s) => {
                    let v = fill(s, sizes[p].min(3));
                    ts.write(ids[p], 0, &v);
                    shadow[p][..v.len()].copy_from_slice(&v);
                }
            }
        }
        for p in 0..ids.len() {
            prop_assert_eq!(
                bits(ts.read(ids[p])), bits(&shadow[p]),
                "page {p} corrupted by tier traffic"
            );
        }
    }

    /// The meters are an exact ledger: fetch bytes count every host →
    /// device crossing (whole pages), and conservation holds — bytes
    /// fetched minus bytes spilled is exactly what is resident now.
    #[test]
    fn meters_reconcile_with_residency(
        sizes in prop::collection::vec(1usize..32, 2..8),
        raw in prop::collection::vec(0u64..u64::MAX, 1..120),
    ) {
        let mut ts = TierStore::new(TierConfig::budgeted(4 * 48));
        let ids: Vec<_> = (0..sizes.len())
            .map(|p| ts.alloc(fill(p as u64, sizes[p])))
            .collect();
        let mut expect_fetch = 0u64;
        let mut expect_fetch_ops = 0u64;
        for &r in &raw {
            match decode(r, sizes.len()) {
                Op::Fetch(p) => {
                    // Only a real crossing is metered; spills triggered by
                    // eviction are accounted below via conservation.
                    if !ts.on_device(ids[p]) {
                        expect_fetch += 4 * sizes[p] as u64;
                        expect_fetch_ops += 1;
                    }
                    ts.fetch(ids[p]);
                }
                Op::Spill(p) => { ts.spill(ids[p]); }
                Op::Evict(p) => { ts.evict(ids[p]); }
                Op::Read(p) => { ts.read(ids[p]); }
                Op::Write(..) => {}
            }
        }
        let s = ts.stats();
        prop_assert_eq!(s.fetch_bytes, expect_fetch);
        prop_assert_eq!(s.fetch_ops, expect_fetch_ops);
        prop_assert_eq!(
            s.fetch_bytes - s.spill_bytes, ts.device_bytes(),
            "bytes fetched minus bytes spilled must equal current residency"
        );
        prop_assert_eq!(s.total_bytes(), s.fetch_bytes + s.spill_bytes);
    }

    /// Pricing follows the configured affine law per crossing: with an
    /// unthrottled link, exactly `crossings × host_lat`; with bandwidth,
    /// bounded by the closed form within float rounding.
    #[test]
    fn modeled_time_matches_affine_law(
        sizes in prop::collection::vec(1usize..32, 2..8),
        raw in prop::collection::vec(0u64..u64::MAX, 1..120),
        lat_us in 0u64..50,
        bw_kb in 0u64..1_000_000,
    ) {
        let bw = bw_kb * 1000; // 0 = unthrottled
        let cfg = TierConfig {
            host_bw: bw,
            host_lat: std::time::Duration::from_micros(lat_us),
            ..TierConfig::budgeted(4 * 48)
        };
        let mut ts = TierStore::new(cfg);
        let ids: Vec<_> = (0..sizes.len())
            .map(|p| ts.alloc(fill(p as u64, sizes[p])))
            .collect();
        for &r in &raw {
            match decode(r, sizes.len()) {
                Op::Fetch(p) => { ts.fetch(ids[p]); }
                Op::Spill(p) => { ts.spill(ids[p]); }
                Op::Evict(p) => { ts.evict(ids[p]); }
                _ => {}
            }
        }
        let s = ts.stats();
        let crossings = (s.fetch_ops + s.spill_ops) as u32;
        let latency_floor = cfg.host_lat * crossings;
        if bw == 0 {
            prop_assert_eq!(ts.modeled_time(), latency_floor);
        } else {
            // Per-transfer float division makes an exact sum brittle;
            // bound it between the latency floor and the closed form
            // plus a per-crossing rounding allowance.
            let total = ts.modeled_time().as_secs_f64();
            let floor = latency_floor.as_secs_f64();
            let ceil =
                floor + s.total_bytes() as f64 / bw as f64 + 1e-6 * crossings as f64;
            prop_assert!(
                total >= floor && total <= ceil + 1e-9,
                "modeled {total}s outside [{floor}, {ceil}]"
            );
        }
    }
}
