//! # zero-serve
//!
//! Shard-hosted, batched inference serving — the paper's §5.3 memory
//! argument applied to the *serving* side of the north star ("serves heavy
//! traffic from millions of users").
//!
//! ## Memory model
//!
//! A trained world's fp32 master parameters are exported
//! ([`zero_core::export_inference_shards`]) into `N` balanced shards, one
//! per serving rank. A rank persists only its `Ψ/N` shard; each batch step
//! walks the model's units (embed, blocks…, head) and **all-gathers one
//! unit at a time**, double-buffered one unit ahead exactly like the
//! training engine's stage-3 prefetch, then drops the buffer. Per-rank
//! parameter memory is therefore
//!
//! ```text
//! 4Ψ/N  (persistent shard)  +  4·(u_max + u_next)  (transient window)
//! ```
//!
//! which for transformer-shaped models is within ε of the paper's `2/N`
//! figure — measured and enforced by `bench_serve`.
//!
//! KV memory is pooled: either a pre-sized per-slot slab, or — the
//! production shape — **paged blocks** allocated on demand as each
//! request's decode position advances, with hash-verified **prefix
//! reuse** sharing read-only blocks between requests whose prompts agree
//! (copy-on-write at the divergence point). See [`paged`]. Greedy outputs
//! are bitwise identical across every KV backend because the decode
//! kernel is generic over the arena.
//!
//! ## Scheduling model
//!
//! Serving is SPMD and deterministic: every rank runs the identical
//! continuous-batching schedule over the identical request list, so the
//! per-step gather schedule is rank-symmetric by construction (statically
//! provable — [`zero_core::CommPlan::serve_step`] is checked by
//! `zero-verify`) and ranks never need to coordinate about batch
//! composition. Sharding buys *memory*, batching buys *throughput*: the
//! per-unit gathers amortize over every live request in the batch.
//!
//! Load is **open-loop in batch-step time**: the seeded generator
//! ([`load`]) stamps each request with an `arrival_step`, every rank
//! observes the identical schedule, and the engine fast-forwards its
//! virtual clock across idle gaps without executing (or gathering for)
//! empty steps. Under saturation the engine degrades deterministically:
//! a request whose predicted queue delay exceeds the configured SLO is
//! shed with [`ServeError::Overloaded`] at delivery — on every rank, for
//! the same reason, at the same step.
//!
//! Admission is where all input validation happens — malformed requests
//! (out-of-vocab tokens, over-length prompts) get a typed
//! [`ServeError`] and never touch the schedule, so one bad request can
//! never crash or desynchronize a rank. Termination is never
//! data-dependent: a request runs exactly `prompt_len − 1 + max_new_tokens`
//! steps (minus positions skipped via prefix reuse), so every rank
//! retires it on the same step.

pub mod engine;
pub mod load;
pub mod paged;
pub mod request;

pub use engine::{
    predicted_queue_delay, serve, serve_with_config, RankServeReport, ServeConfig, ServeReport,
};
pub use load::{generate, Arrivals, LoadConfig, SplitMix64};
pub use paged::{AttachOutcome, KvBackend, KvMeters, KvPool, PagedPool, PoolActivity};
pub use request::{admit, ServeError, ServeOutcome, ServeRequest, ServeResponse};
