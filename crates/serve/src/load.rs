//! Deterministic open-loop load generation in batch-step time.
//!
//! An *open-loop* client issues requests on its own schedule, independent
//! of server progress — the regime where queueing, saturation, and
//! shedding actually appear (a closed loop self-throttles and can never
//! overload the server). The catch in an SPMD serving world: every rank
//! must observe the *identical* arrival sequence or lockstep breaks. A
//! wall-clock Poisson clock would desynchronize ranks the first time one
//! of them stalls, so arrivals here are expressed in **batch-step time**:
//! "request 7 arrives at step 12" means it becomes visible to the
//! scheduler just before the 13th decode step executes, on every rank,
//! regardless of how many wall-clock seconds any rank took to get there.
//! Determinism comes from a seeded [`SplitMix64`] stream; the same
//! `(seed, config)` yields byte-identical schedules forever.
//!
//! Two arrival processes cover the interesting regimes:
//! - [`Arrivals::Poisson`] — independent arrivals at `rate` requests per
//!   batch step (Knuth's product method per step), the classic
//!   memoryless open-loop model;
//! - [`Arrivals::Burst`] — `size` simultaneous arrivals every `period`
//!   steps, the adversarial schedule for admission control (queue-depth
//!   spikes rather than a smooth load).

use crate::request::ServeRequest;

/// SplitMix64: tiny, seedable, splittable PRNG (public-domain algorithm
/// from Steele et al., "Fast splittable pseudorandom number generators").
/// Implemented inline so the serve crate stays free of the `rand`
/// dependency — schedules must be reproducible from a `u64` seed alone.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of mantissa.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi]` (inclusive; `lo ≤ hi`). Uses rejection-free
    /// modulo, fine for the tiny ranges load generation needs.
    pub fn next_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

/// The arrival process, in batch-step time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrivals {
    /// All requests arrive at step 0 (the closed-loop batch the earlier
    /// benches used — kept so one CLI flag selects every regime).
    Closed,
    /// Poisson arrivals at `rate` expected requests per batch step.
    Poisson {
        /// Expected arrivals per batch step (λ).
        rate: f64,
    },
    /// `size` requests arrive together every `period` steps.
    Burst {
        /// Requests per burst.
        size: usize,
        /// Steps between bursts.
        period: u64,
    },
}

impl Arrivals {
    /// Parses a CLI descriptor: `closed`, `poisson:RATE`, or
    /// `burst:SIZE@PERIOD` (e.g. `poisson:0.5`, `burst:8@40`).
    pub fn parse(s: &str) -> Result<Arrivals, String> {
        if s == "closed" {
            return Ok(Arrivals::Closed);
        }
        if let Some(rate) = s.strip_prefix("poisson:") {
            let rate: f64 = rate
                .parse()
                .map_err(|_| format!("bad poisson rate in --arrivals {s:?}"))?;
            // NaN fails the finiteness check, so `<=` is safe here.
            if rate <= 0.0 || !rate.is_finite() {
                return Err(format!("poisson rate must be a positive finite number, got {rate}"));
            }
            return Ok(Arrivals::Poisson { rate });
        }
        if let Some(spec) = s.strip_prefix("burst:") {
            let (size, period) = spec
                .split_once('@')
                .ok_or_else(|| format!("expected burst:SIZE@PERIOD, got --arrivals {s:?}"))?;
            let size: usize = size
                .parse()
                .map_err(|_| format!("bad burst size in --arrivals {s:?}"))?;
            let period: u64 = period
                .parse()
                .map_err(|_| format!("bad burst period in --arrivals {s:?}"))?;
            if size == 0 || period == 0 {
                return Err("burst size and period must both be at least 1".to_string());
            }
            return Ok(Arrivals::Burst { size, period });
        }
        Err(format!(
            "unknown --arrivals {s:?}; expected closed, poisson:RATE, or burst:SIZE@PERIOD"
        ))
    }

    /// A short descriptor round-trippable through [`Arrivals::parse`]
    /// (used to key benchmark rows).
    pub fn describe(&self) -> String {
        match self {
            Arrivals::Closed => "closed".to_string(),
            Arrivals::Poisson { rate } => format!("poisson:{rate}"),
            Arrivals::Burst { size, period } => format!("burst:{size}@{period}"),
        }
    }
}

/// Everything that determines a load schedule. Same config + same seed ⇒
/// byte-identical request list, on every rank, forever.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Total requests to generate.
    pub n_requests: usize,
    /// The arrival process.
    pub arrivals: Arrivals,
    /// Inclusive prompt-length range.
    pub prompt_len: (usize, usize),
    /// Inclusive max-new-tokens range.
    pub max_new: (usize, usize),
    /// Vocabulary to draw prompt tokens from.
    pub vocab: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Number of distinct shared prompt-prefix families (0 disables).
    /// With `k > 0`, each request prepends one of `k` fixed prefixes of
    /// `prefix_len` tokens — the workload shape prefix reuse exploits.
    pub shared_prefixes: usize,
    /// Length of each shared prefix, in tokens.
    pub prefix_len: usize,
}

/// Generates the request schedule: `n_requests` requests with ids
/// `0..n`, arrival steps nondecreasing per the arrival process, and
/// seeded prompt/length draws. Ids are assigned in arrival order so
/// FIFO fairness is checkable as "admitted ids are sorted".
pub fn generate(cfg: &LoadConfig) -> Vec<ServeRequest> {
    assert!(cfg.vocab > 0, "vocab must be positive");
    assert!(cfg.prompt_len.0 >= 1, "prompts must be non-empty");
    assert!(cfg.prompt_len.0 <= cfg.prompt_len.1 && cfg.max_new.0 <= cfg.max_new.1);
    assert!(cfg.max_new.0 >= 1, "must request at least one token");
    let mut rng = SplitMix64::new(cfg.seed);
    // Shared prefixes come from an independent stream so toggling them
    // on/off perturbs only the prompts, not the arrival schedule.
    let mut prefix_rng = SplitMix64::new(cfg.seed ^ 0x005e_ed0f_ae11_0ca7);
    let prefixes: Vec<Vec<u32>> = (0..cfg.shared_prefixes)
        .map(|_| {
            (0..cfg.prefix_len)
                .map(|_| (prefix_rng.next_u64() % cfg.vocab as u64) as u32)
                .collect()
        })
        .collect();

    let steps = arrival_steps(cfg.arrivals, cfg.n_requests, &mut rng);
    steps
        .into_iter()
        .enumerate()
        .map(|(id, step)| {
            let plen = rng.next_range(cfg.prompt_len.0, cfg.prompt_len.1);
            let max_new = rng.next_range(cfg.max_new.0, cfg.max_new.1);
            // The family pick and all `plen` body tokens are drawn
            // unconditionally so toggling prefixes on/off changes which
            // tokens appear, never how many draws each request consumes —
            // arrival steps and lengths stay aligned between the two.
            let family = rng.next_u64();
            let mut prompt: Vec<u32> = (0..plen)
                .map(|_| (rng.next_u64() % cfg.vocab as u64) as u32)
                .collect();
            if !prefixes.is_empty() {
                let p = &prefixes[(family % prefixes.len() as u64) as usize];
                let head = p.len().min(plen);
                prompt[..head].copy_from_slice(&p[..head]);
            }
            ServeRequest::new(id as u64, prompt, max_new).at_step(step)
        })
        .collect()
}

/// The arrival step of each of `n` requests, nondecreasing.
fn arrival_steps(arrivals: Arrivals, n: usize, rng: &mut SplitMix64) -> Vec<u64> {
    match arrivals {
        Arrivals::Closed => vec![0; n],
        Arrivals::Poisson { rate } => {
            // Knuth's product method, one draw per step: the count of
            // arrivals in a step is Poisson(λ); walk steps until all n
            // requests have arrived. Bounded-time even for tiny rates
            // because each step consumes exactly one uniform sequence.
            let mut steps = Vec::with_capacity(n);
            let threshold = (-rate).exp();
            let mut step = 0u64;
            while steps.len() < n {
                let mut k = 0usize;
                let mut p = 1.0f64;
                loop {
                    p *= rng.next_f64();
                    if p <= threshold {
                        break;
                    }
                    k += 1;
                }
                for _ in 0..k.min(n - steps.len()) {
                    steps.push(step);
                }
                step += 1;
            }
            steps
        }
        Arrivals::Burst { size, period } => (0..n)
            .map(|i| (i / size) as u64 * period)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(arrivals: Arrivals) -> LoadConfig {
        LoadConfig {
            n_requests: 40,
            arrivals,
            prompt_len: (3, 9),
            max_new: (2, 6),
            vocab: 32,
            seed: 7,
            shared_prefixes: 0,
            prefix_len: 0,
        }
    }

    #[test]
    fn schedules_are_deterministic_and_seed_sensitive() {
        let cfg = base(Arrivals::Poisson { rate: 0.4 });
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b, "same seed ⇒ byte-identical schedule");
        let mut cfg2 = cfg.clone();
        cfg2.seed = 8;
        assert_ne!(generate(&cfg2), a, "different seed ⇒ different schedule");
    }

    #[test]
    fn arrivals_are_nondecreasing_and_ids_follow_arrival_order() {
        for arrivals in [
            Arrivals::Closed,
            Arrivals::Poisson { rate: 0.3 },
            Arrivals::Burst { size: 8, period: 25 },
        ] {
            let reqs = generate(&base(arrivals));
            assert_eq!(reqs.len(), 40);
            for w in reqs.windows(2) {
                assert!(w[0].arrival_step <= w[1].arrival_step);
                assert!(w[0].id < w[1].id);
            }
        }
    }

    #[test]
    fn draws_respect_the_configured_ranges() {
        let reqs = generate(&base(Arrivals::Poisson { rate: 1.0 }));
        for r in &reqs {
            assert!((3..=9).contains(&r.prompt.len()));
            assert!((2..=6).contains(&r.max_new_tokens));
            assert!(r.prompt.iter().all(|&t| (t as usize) < 32));
        }
    }

    #[test]
    fn burst_schedule_is_exactly_periodic() {
        let reqs = generate(&base(Arrivals::Burst { size: 8, period: 25 }));
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.arrival_step, (i / 8) as u64 * 25);
        }
    }

    #[test]
    fn shared_prefixes_repeat_across_requests() {
        let mut cfg = base(Arrivals::Closed);
        cfg.shared_prefixes = 2;
        cfg.prefix_len = 4;
        cfg.prompt_len = (6, 8);
        let reqs = generate(&cfg);
        // Every prompt starts with one of two 4-token prefixes.
        let mut seen: Vec<Vec<u32>> = Vec::new();
        for r in &reqs {
            let head = r.prompt[..4].to_vec();
            if !seen.contains(&head) {
                seen.push(head);
            }
        }
        assert!(seen.len() <= 2, "at most two distinct prefix families, saw {}", seen.len());
        assert!(seen.len() >= 2, "both families should appear across 40 draws");
    }

    #[test]
    fn toggling_prefixes_leaves_the_arrival_schedule_alone() {
        let cfg_off = base(Arrivals::Poisson { rate: 0.5 });
        let mut cfg_on = cfg_off.clone();
        cfg_on.shared_prefixes = 2;
        cfg_on.prefix_len = 3;
        let off = generate(&cfg_off);
        let on = generate(&cfg_on);
        for (a, b) in off.iter().zip(&on) {
            assert_eq!(a.arrival_step, b.arrival_step);
            assert_eq!(a.prompt.len(), b.prompt.len());
            assert_eq!(a.max_new_tokens, b.max_new_tokens);
        }
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        for s in ["closed", "poisson:0.5", "burst:8@40"] {
            assert_eq!(Arrivals::parse(s).unwrap().describe(), s);
        }
        assert!(Arrivals::parse("poisson:-1").is_err());
        assert!(Arrivals::parse("poisson:nope").is_err());
        assert!(Arrivals::parse("burst:0@5").is_err());
        assert!(Arrivals::parse("burst:5").is_err());
        assert!(Arrivals::parse("uniform:3").is_err());
    }

    #[test]
    fn poisson_rate_is_roughly_honored() {
        let mut cfg = base(Arrivals::Poisson { rate: 0.5 });
        cfg.n_requests = 400;
        let reqs = generate(&cfg);
        let last = reqs.last().unwrap().arrival_step as f64;
        let empirical = 400.0 / last;
        assert!(
            (0.35..=0.70).contains(&empirical),
            "λ=0.5 over 400 requests should land near 0.5, got {empirical:.3}"
        );
    }
}
