//! The per-rank serving engine: layer-streaming gathers + continuous
//! batching over a pooled KV slab.
//!
//! Every rank runs [`run_rank`] over the *same* request list — the batch
//! is replicated, the parameters are sharded. Each batch step walks the
//! unit list once (gathering each unit from the shards, one unit
//! prefetched ahead), advancing every live request by exactly one token:
//! prefill requests consume their next prompt token, decode requests emit
//! their next greedy token. A request finishing frees its KV slot, which
//! the next queued request claims at the following step boundary — that
//! is the whole continuous-batching scheduler, and its determinism is
//! what keeps N ranks in lockstep with zero coordination traffic beyond
//! the parameter gathers themselves.

use std::collections::VecDeque;
use std::time::Instant;

use zero_comm::{
    launch_with_config, CollectiveKind, Communicator, Group, PendingOp, WorldConfig,
};
use zero_core::{CommPlan, Partitioner, ResolvedOp};
use zero_model::{argmax, block_step, embed_step, head_step, Gpt, KvSlab, ModelConfig};
use zero_trace::{SpanCategory, SpanId, StepTimeline};

use crate::request::{admit, ServeOutcome, ServeRequest, ServeResponse};

/// Per-request spans live on their slot's own track so concurrent
/// requests' prefill/decode spans stay well-nested per track. Tracks 0/1
/// are the rank and progress tracks.
const TRACK_REQ_BASE: u32 = 8;

/// Serving knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// KV-slab slots — the maximum concurrently decoding requests.
    /// `slots = 1` degenerates to serial one-request-at-a-time serving
    /// through the identical code path (the bench baseline).
    pub slots: usize,
    /// Double-buffered gather prefetch: issue unit `u+1`'s all-gather
    /// before computing unit `u` (the training engine's stage-3 shape).
    /// Off means each gather is synchronous.
    pub overlap: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { slots: 4, overlap: true }
    }
}

/// What one serving rank reports back.
#[derive(Clone, Debug)]
pub struct RankServeReport {
    /// The rank.
    pub rank: usize,
    /// Terminal state of every request, in submission order.
    pub outcomes: Vec<ServeOutcome>,
    /// Batch steps executed (each walks every unit once).
    pub batch_steps: u64,
    /// Elements of the persistent parameter shard this rank hosts.
    pub shard_elems: usize,
    /// Bytes of the persistent shard (`4 · shard_elems`).
    pub persistent_param_bytes: u64,
    /// Peak bytes of transiently materialized full units (current unit
    /// plus the in-flight prefetch destination).
    pub transient_param_bytes_peak: u64,
    /// Peak total parameter bytes: persistent + transient peak. The
    /// quantity the paper's 2Ψ/N claim bounds.
    pub param_bytes_peak: u64,
    /// Bytes of the (fixed-size) KV slab arena.
    pub kv_slab_bytes: u64,
    /// All-gather bytes this rank actually sent (traffic counters).
    pub gather_bytes: u64,
    /// The rank's span timeline (request spans, gather waits, collective
    /// execution with byte tags).
    pub timeline: StepTimeline,
}

/// The whole serving world's result.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-rank reports, rank-indexed.
    pub ranks: Vec<RankServeReport>,
    /// The statically checkable one-step gather plan every batch step
    /// executed (`batch_steps × rank_bytes` reconciles against both the
    /// traffic counters and the trace byte tags).
    pub plan: CommPlan,
}

impl ServeReport {
    /// Rank 0's outcomes (all ranks' agree — see
    /// [`Self::check_ranks_agree`]).
    pub fn outcomes(&self) -> &[ServeOutcome] {
        &self.ranks[0].outcomes
    }

    /// Verifies the SPMD invariant: every rank produced identical
    /// outcomes and step counts. A divergence would mean ranks fell out
    /// of lockstep — returns which rank disagrees. Latency is wall-clock
    /// and legitimately rank-local, so it is excluded from the comparison.
    pub fn check_ranks_agree(&self) -> Result<(), String> {
        fn scrubbed(outcomes: &[ServeOutcome]) -> Vec<ServeOutcome> {
            outcomes
                .iter()
                .cloned()
                .map(|o| match o {
                    ServeOutcome::Completed(mut r) => {
                        r.latency_ns = 0;
                        ServeOutcome::Completed(r)
                    }
                    rejected => rejected,
                })
                .collect()
        }
        let first = &self.ranks[0];
        for r in &self.ranks[1..] {
            if scrubbed(&r.outcomes) != scrubbed(&first.outcomes) {
                return Err(format!("rank {} outcomes diverge from rank 0", r.rank));
            }
            if r.batch_steps != first.batch_steps {
                return Err(format!(
                    "rank {} ran {} steps, rank 0 ran {}",
                    r.rank, r.batch_steps, first.batch_steps
                ));
            }
        }
        Ok(())
    }

    /// The analytic all-gather bytes rank `rank` should have sent:
    /// `batch_steps × plan.rank_bytes(rank)[AllGather]`. The smoke and
    /// tests require the traffic counters and trace byte tags to match
    /// this exactly.
    pub fn expected_gather_bytes(&self, rank: usize) -> u64 {
        self.ranks[rank].batch_steps
            * self.plan.rank_bytes(rank)[CollectiveKind::AllGather as usize]
    }
}

/// One live (admitted, unfinished) request's decode state.
struct Active {
    /// Index into the submitted request list.
    ri: usize,
    /// KV-slab slot.
    slot: usize,
    /// Tokens fed so far (== decoder position).
    fed: usize,
    /// Tokens emitted so far.
    produced: Vec<u32>,
    /// Activation row flowing between units within the current step.
    x: Vec<f32>,
    /// The current step's prefill/decode span.
    span: SpanId,
    /// Step at which the request was admitted.
    admitted_at: u64,
}

/// Runs the serving schedule on one rank. `shard` is this rank's slice of
/// the balanced [`Partitioner`] layout over the flat parameter space.
///
/// # Panics
/// Panics on communication failure (fault-free serving worlds don't
/// inject any) and on a `shard` that does not match the partition layout.
pub fn run_rank(
    comm: &mut Communicator,
    model: &ModelConfig,
    shard: &[f32],
    requests: &[ServeRequest],
    cfg: &ServeConfig,
) -> RankServeReport {
    assert!(cfg.slots > 0, "need at least one KV slot");
    let n = comm.world_size();
    let rank = comm.rank();
    let gpt = Gpt::new(*model);
    let units: Vec<std::ops::Range<usize>> =
        gpt.layout().units().iter().map(|u| u.range.clone()).collect();
    let part = Partitioner::new(gpt.num_params(), n);
    let my_range = part.shard_range(rank);
    assert_eq!(shard.len(), my_range.len(), "shard does not match the partition layout");

    // The per-step schedule, resolved once: one all-gather per unit.
    let plan = CommPlan::serve_step(gpt.layout(), n, cfg.overlap);
    let ops: Vec<ResolvedOp> = plan.resolve_for(rank);
    let groups: Vec<Group> = ops.iter().map(|op| Group::new(op.members.clone())).collect();
    // This rank's contribution to each unit: shard ∩ unit, shard-relative.
    let contrib: Vec<&[f32]> = units
        .iter()
        .map(|u| {
            let lo = my_range.start.max(u.start);
            let hi = my_range.end.min(u.end);
            if hi > lo {
                &shard[lo - my_range.start..hi - my_range.start]
            } else {
                &shard[0..0]
            }
        })
        .collect();

    let trace = comm.trace();
    let t0 = Instant::now();

    // Admission control: malformed requests are rejected up front and
    // never consume a schedule step; well-formed ones queue FIFO.
    let mut outcomes: Vec<Option<ServeOutcome>> = vec![None; requests.len()];
    let mut pending: VecDeque<(usize, SpanId)> = VecDeque::new();
    for (ri, req) in requests.iter().enumerate() {
        match admit(req, model) {
            Ok(()) => {
                let qspan = trace.begin(SpanCategory::Wait, "queue-wait");
                pending.push_back((ri, qspan));
            }
            Err(error) => {
                trace.instant(SpanCategory::Compute, "request-rejected");
                outcomes[ri] = Some(ServeOutcome::Rejected { id: req.id, error });
            }
        }
    }

    let mut slab = KvSlab::new(model.layers, cfg.slots, model.seq, model.hidden);
    let mut active: Vec<Active> = Vec::new();
    let mut steps = 0u64;
    let mut transient_peak = 0u64;

    while !pending.is_empty() || !active.is_empty() {
        // Admit as many queued requests as there are free slots. This is
        // a pure function of (queue, slab) state, identical on all ranks.
        while !pending.is_empty() {
            let Some(slot) = slab.alloc() else { break };
            let (ri, qspan) = pending.pop_front().expect("checked non-empty");
            trace.end(qspan);
            active.push(Active {
                ri,
                slot,
                fed: 0,
                produced: Vec::new(),
                x: Vec::new(),
                span: SpanId::NULL,
                admitted_at: steps,
            });
        }

        // One batch step: walk the units, one prefetch ahead, advancing
        // every live request by one token.
        let step_span = trace.begin(SpanCategory::Compute, "serve-step");
        let n_units = units.len();
        let mut pending_gather: Option<(PendingOp, u64)> = None;
        let mut cur: Vec<f32>;
        if cfg.overlap {
            pending_gather = Some((
                comm.start_all_gather_var(&groups[0], contrib[0], &ops[0].counts, ops[0].prec),
                4 * ops[0].total_elems() as u64,
            ));
        }
        for u in 0..n_units {
            // Issue next unit's gather before touching this one (the
            // double buffer: at most two units materialized at once).
            let mut next: Option<(PendingOp, u64)> = None;
            if cfg.overlap && u + 1 < n_units {
                let op = &ops[u + 1];
                next = Some((
                    comm.start_all_gather_var(&groups[u + 1], contrib[u + 1], &op.counts, op.prec),
                    4 * op.total_elems() as u64,
                ));
            }
            // Materialize unit u.
            let cur_bytes;
            if cfg.overlap {
                let (pend, bytes) = pending_gather.take().expect("gather issued");
                cur_bytes = bytes;
                let wspan = trace.begin(SpanCategory::Wait, "gather-wait");
                cur = pend.wait().expect("serving gather failed");
                trace.end(wspan);
            } else {
                let op = &ops[u];
                cur_bytes = 4 * op.total_elems() as u64;
                let mut buf = vec![0.0; op.total_elems()];
                let wspan = trace.begin(SpanCategory::Wait, "gather-wait");
                comm.all_gather_var_in(&groups[u], contrib[u], &mut buf, &op.counts, op.prec)
                    .expect("serving gather failed");
                trace.end(wspan);
                cur = buf;
            }
            pending_gather = next;
            let in_flight = pending_gather.as_ref().map(|(_, b)| *b).unwrap_or(0);
            transient_peak = transient_peak.max(cur_bytes + in_flight);

            // Advance every live request through unit u.
            for a in active.iter_mut() {
                let req = &requests[a.ri];
                if u == 0 {
                    let prefilling = a.fed + 1 < req.prompt.len();
                    a.span = trace.begin_on(
                        TRACK_REQ_BASE + a.slot as u32,
                        SpanCategory::Compute,
                        if prefilling { "prefill" } else { "decode-token" },
                    );
                    let token = if a.fed < req.prompt.len() {
                        req.prompt[a.fed]
                    } else {
                        *a.produced.last().expect("decode steps follow prefill")
                    };
                    a.x = embed_step(&gpt, &cur, token, a.fed).expect("validated at admission");
                } else if u < n_units - 1 {
                    let l = u - 1;
                    let (k, v) = slab.kv_pair_mut(l, a.slot);
                    a.x = block_step(&gpt, l, &cur, &a.x, k, v, a.fed);
                } else {
                    let logits = head_step(&gpt, &cur, &a.x);
                    if a.fed + 1 >= req.prompt.len() {
                        a.produced.push(argmax(&logits) as u32);
                    }
                    a.fed += 1;
                    trace.end(a.span);
                }
            }
        }
        steps += 1;
        trace.end(step_span);

        // Retire finished requests, freeing their slots for the next
        // step's admissions.
        let mut i = 0;
        while i < active.len() {
            let done = active[i].produced.len() >= requests[active[i].ri].max_new_tokens;
            if done {
                let a = active.remove(i);
                let req = &requests[a.ri];
                slab.release(a.slot);
                outcomes[a.ri] = Some(ServeOutcome::Completed(ServeResponse {
                    id: req.id,
                    tokens: a.produced,
                    queue_steps: a.admitted_at,
                    prefill_steps: (req.prompt.len() - 1) as u64,
                    decode_steps: req.max_new_tokens as u64,
                    latency_ns: t0.elapsed().as_nanos() as u64,
                }));
            } else {
                i += 1;
            }
        }
    }

    let persistent = 4 * shard.len() as u64;
    RankServeReport {
        rank,
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every request reaches a terminal state"))
            .collect(),
        batch_steps: steps,
        shard_elems: shard.len(),
        persistent_param_bytes: persistent,
        transient_param_bytes_peak: transient_peak,
        param_bytes_peak: persistent + transient_peak,
        kv_slab_bytes: slab.bytes(),
        gather_bytes: comm.stats().bytes(CollectiveKind::AllGather),
        timeline: trace.timeline(),
    }
}

/// Serves `requests` on a world of `shards.len()` ranks (one thread per
/// rank, each hosting its shard) and returns every rank's report.
///
/// # Panics
/// Panics if `shards` is empty, a shard does not match the balanced
/// partition of the model's parameter space, or a rank fails.
pub fn serve(
    model: &ModelConfig,
    shards: &[Vec<f32>],
    requests: &[ServeRequest],
    cfg: &ServeConfig,
) -> ServeReport {
    serve_with_config(model, shards, requests, cfg, WorldConfig::default())
}

/// [`serve`] with an explicit [`WorldConfig`] (timeouts, link latency).
pub fn serve_with_config(
    model: &ModelConfig,
    shards: &[Vec<f32>],
    requests: &[ServeRequest],
    cfg: &ServeConfig,
    wcfg: WorldConfig,
) -> ServeReport {
    let n = shards.len();
    assert!(n > 0, "need at least one serving rank");
    let gpt = Gpt::new(*model);
    let plan = CommPlan::serve_step(gpt.layout(), n, cfg.overlap);
    let ranks = launch_with_config(n, wcfg, |mut comm| {
        let shard = &shards[comm.rank()];
        run_rank(&mut comm, model, shard, requests, cfg)
    });
    ServeReport { ranks, plan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zero_core::export_inference_shards;
    use zero_core::RankSnapshot;
    use zero_model::init_full_params;

    fn model() -> ModelConfig {
        ModelConfig {
            vocab: 24,
            seq: 12,
            hidden: 16,
            layers: 2,
            heads: 2,
        }
    }

    fn shards_of(params: &[f32], n: usize) -> Vec<Vec<f32>> {
        let part = Partitioner::new(params.len(), n);
        (0..n).map(|r| params[part.shard_range(r)].to_vec()).collect()
    }

    fn reference_greedy(model: &ModelConfig, params: &[f32], req: &ServeRequest) -> Vec<u32> {
        let gpt = Gpt::new(*model);
        let mut dec = zero_model::IncrementalDecoder::new(&gpt, params);
        let mut last = vec![0.0];
        for &t in &req.prompt {
            last = dec.feed(t).unwrap();
        }
        let mut out = vec![argmax(&last) as u32];
        while out.len() < req.max_new_tokens {
            last = dec.feed(*out.last().unwrap()).unwrap();
            out.push(argmax(&last) as u32);
        }
        out
    }

    #[test]
    fn batched_serving_matches_the_incremental_decoder_bitwise() {
        let m = model();
        let params = init_full_params(&m, 17);
        let requests: Vec<ServeRequest> = (0..5)
            .map(|i| ServeRequest {
                id: i as u64,
                prompt: vec![(i * 3) as u32 % 24, (i + 1) as u32 % 24],
                max_new_tokens: 3 + i % 3,
            })
            .collect();
        for n in [1usize, 2, 3] {
            let report = serve(&m, &shards_of(&params, n), &requests, &ServeConfig::default());
            report.check_ranks_agree().unwrap();
            for (req, out) in requests.iter().zip(report.outcomes()) {
                let resp = out.response().expect("all requests well-formed");
                assert_eq!(
                    resp.tokens,
                    reference_greedy(&m, &params, req),
                    "world {n}, request {}",
                    req.id
                );
            }
        }
    }

    #[test]
    fn malformed_requests_are_rejected_without_crashing_any_rank() {
        let m = model();
        let params = init_full_params(&m, 3);
        let requests = vec![
            ServeRequest { id: 0, prompt: vec![1, 2], max_new_tokens: 2 },
            ServeRequest { id: 1, prompt: vec![99], max_new_tokens: 2 }, // out-of-vocab
            ServeRequest { id: 2, prompt: vec![1; 11], max_new_tokens: 5 }, // over-length
            ServeRequest { id: 3, prompt: vec![3], max_new_tokens: 2 },
        ];
        let report = serve(&m, &shards_of(&params, 2), &requests, &ServeConfig::default());
        report.check_ranks_agree().unwrap();
        let o = report.outcomes();
        assert!(o[0].response().is_some());
        assert!(matches!(
            o[1].rejection(),
            Some(crate::ServeError::TokenOutOfVocab { token: 99, .. })
        ));
        assert!(matches!(o[2].rejection(), Some(crate::ServeError::PromptTooLong { .. })));
        assert!(o[3].response().is_some());
    }

    #[test]
    fn traffic_and_trace_reconcile_byte_exactly_with_the_plan() {
        let m = model();
        let params = init_full_params(&m, 5);
        let requests: Vec<ServeRequest> = (0..4)
            .map(|i| ServeRequest { id: i, prompt: vec![2, 4, 6], max_new_tokens: 4 })
            .collect();
        for overlap in [false, true] {
            let cfg = ServeConfig { slots: 2, overlap };
            let report = serve(&m, &shards_of(&params, 3), &requests, &cfg);
            for r in &report.ranks {
                let want = report.expected_gather_bytes(r.rank);
                assert_eq!(r.gather_bytes, want, "traffic counters (overlap={overlap})");
                assert_eq!(
                    r.timeline
                        .bytes_named(SpanCategory::Collective, "all-gather"),
                    want,
                    "trace byte tags (overlap={overlap})"
                );
            }
        }
    }

    #[test]
    fn continuous_batching_recycles_slots() {
        let m = model();
        let params = init_full_params(&m, 9);
        // 6 requests through 2 slots: queueing is mandatory.
        let requests: Vec<ServeRequest> = (0..6)
            .map(|i| ServeRequest { id: i, prompt: vec![1, 2], max_new_tokens: 2 })
            .collect();
        let report = serve(&m, &shards_of(&params, 2), &requests, &ServeConfig { slots: 2, overlap: true });
        report.check_ranks_agree().unwrap();
        let responses: Vec<_> = report.outcomes().iter().filter_map(|o| o.response()).collect();
        assert_eq!(responses.len(), 6);
        // Later requests waited in the queue.
        assert!(responses.iter().any(|r| r.queue_steps > 0));
        // Every request takes prompt_len − 1 + max_new steps of service.
        for r in &responses {
            assert_eq!(r.prefill_steps, 1);
            assert_eq!(r.decode_steps, 2);
        }
    }

    #[test]
    fn serving_from_exported_training_snapshots_is_bitwise_identical() {
        let m = model();
        let params = init_full_params(&m, 21);
        // Fake a 3-rank stage-style training checkpoint tiling the space.
        let part = Partitioner::new(params.len(), 3);
        let snaps: Vec<RankSnapshot> = (0..3)
            .map(|r| {
                let range = part.shard_range(r);
                RankSnapshot {
                    rank: r as u32,
                    world: 3,
                    step: 40,
                    shard_start: range.start as u64,
                    shard_end: range.end as u64,
                    master: params[range].to_vec(),
                    opt_m: Vec::new(),
                    opt_v: Vec::new(),
                    opt_t: 40,
                    scaler: None,
                }
            })
            .collect();
        // Export onto a *different* world size than training used.
        let shards = export_inference_shards(&snaps, 2).unwrap();
        let requests = vec![ServeRequest { id: 7, prompt: vec![5, 9, 13], max_new_tokens: 5 }];
        let report = serve(&m, &shards, &requests, &ServeConfig::default());
        let resp = report.outcomes()[0].response().unwrap().clone();
        assert_eq!(resp.tokens, reference_greedy(&m, &params, &requests[0]));
    }
}
