//! The per-rank serving engine: layer-streaming gathers + continuous
//! batching over a pooled KV arena, driven by an open-loop arrival
//! schedule in batch-step time.
//!
//! Every rank runs [`run_rank`] over the *same* request list — the batch
//! is replicated, the parameters are sharded. The scheduler keeps a
//! virtual clock in **batch steps**: requests become visible when the
//! clock reaches their `arrival_step`, are SLO-checked and queued (or
//! shed) at delivery, admitted FIFO into free KV slots, and then each
//! executed batch step walks the unit list once (gathering each unit from
//! the shards, one unit prefetched ahead), advancing every live request
//! by exactly one token. When nothing is live the clock fast-forwards to
//! the next arrival without executing steps, so `batch_steps` counts only
//! steps that actually gathered parameters and the traffic reconciliation
//! (`batch_steps × plan.rank_bytes`) stays exact. Every scheduling
//! decision is a pure function of (request list, config), which is what
//! keeps N ranks in lockstep with zero coordination traffic beyond the
//! parameter gathers themselves.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::time::Instant;

use zero_comm::{
    launch_with_config, CollectiveKind, Communicator, Group, PendingOp, WorldConfig,
};
use zero_core::{CommPlan, Partitioner, ResolvedOp};
use zero_model::{argmax, block_step_kv, embed_step, head_step, Gpt, ModelConfig};
use zero_trace::{SpanCategory, SpanId, StepTimeline};

use crate::paged::{KvBackend, KvMeters, KvPool};
use crate::request::{admit, ServeError, ServeOutcome, ServeRequest, ServeResponse};

/// Per-request spans live on their slot's own track so concurrent
/// requests' prefill/decode spans stay well-nested per track. Tracks 0/1
/// are the rank and progress tracks.
const TRACK_REQ_BASE: u32 = 8;

/// Serving knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Concurrent-request slots — the maximum simultaneously decoding
    /// requests. `slots = 1` degenerates to serial one-request-at-a-time
    /// serving through the identical code path (the bench baseline).
    pub slots: usize,
    /// Double-buffered gather prefetch: issue unit `u+1`'s all-gather
    /// before computing unit `u` (the training engine's stage-3 shape).
    /// Off means each gather is synchronous.
    pub overlap: bool,
    /// KV backing store: the pre-sized slab or demand-paged blocks with
    /// optional prefix reuse. Greedy outputs are bitwise identical across
    /// backends — the decode kernel is generic over the arena.
    pub kv: KvBackend,
    /// Admission SLO in batch steps: a request whose predicted queue
    /// delay exceeds this is shed with [`ServeError::Overloaded`] at
    /// delivery instead of queueing without bound. `None` never sheds.
    pub slo_steps: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { slots: 4, overlap: true, kv: KvBackend::Slab, slo_steps: None }
    }
}

/// What one serving rank reports back.
#[derive(Clone, Debug)]
pub struct RankServeReport {
    /// The rank.
    pub rank: usize,
    /// Terminal state of every request, in submission order.
    pub outcomes: Vec<ServeOutcome>,
    /// Batch steps executed (each walks every unit once; idle
    /// fast-forwards between distant arrivals are not counted).
    pub batch_steps: u64,
    /// Elements of the persistent parameter shard this rank hosts.
    pub shard_elems: usize,
    /// Bytes of the persistent shard (`4 · shard_elems`).
    pub persistent_param_bytes: u64,
    /// Peak bytes of transiently materialized full units (current unit
    /// plus the in-flight prefetch destination).
    pub transient_param_bytes_peak: u64,
    /// Peak total parameter bytes: persistent + transient peak. The
    /// quantity the paper's 2Ψ/N claim bounds.
    pub param_bytes_peak: u64,
    /// Bytes of the KV backing arena (slab window, or paged capacity).
    pub kv_arena_bytes: u64,
    /// Deterministic KV meters: bytes actually allocated / peak live,
    /// prefix-reuse hit and copy rows, cache evictions. Compared across
    /// ranks by [`ServeReport::check_ranks_agree`].
    pub kv_meters: KvMeters,
    /// All-gather bytes this rank actually sent (traffic counters).
    pub gather_bytes: u64,
    /// The rank's span timeline (request spans, gather waits, collective
    /// execution with byte tags).
    pub timeline: StepTimeline,
}

/// The whole serving world's result.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-rank reports, rank-indexed.
    pub ranks: Vec<RankServeReport>,
    /// The statically checkable one-step gather plan every batch step
    /// executed (`batch_steps × rank_bytes` reconciles against both the
    /// traffic counters and the trace byte tags).
    pub plan: CommPlan,
}

impl ServeReport {
    /// Rank 0's outcomes (all ranks' agree — see
    /// [`Self::check_ranks_agree`]).
    pub fn outcomes(&self) -> &[ServeOutcome] {
        &self.ranks[0].outcomes
    }

    /// Verifies the SPMD invariant: every rank produced identical
    /// outcomes, step counts, and KV meters. A divergence would mean
    /// ranks fell out of lockstep — returns which rank disagrees. Only
    /// `latency_ns` is wall-clock and legitimately rank-local, so it
    /// alone is excluded from the comparison; every step-indexed metric
    /// (arrival, admission, completion, queue delay, prefix reuse) must
    /// agree bit for bit.
    pub fn check_ranks_agree(&self) -> Result<(), String> {
        fn scrubbed(outcomes: &[ServeOutcome]) -> Vec<ServeOutcome> {
            outcomes
                .iter()
                .cloned()
                .map(|o| match o {
                    ServeOutcome::Completed(mut r) => {
                        r.latency_ns = 0;
                        ServeOutcome::Completed(r)
                    }
                    rejected => rejected,
                })
                .collect()
        }
        let first = &self.ranks[0];
        for r in &self.ranks[1..] {
            if scrubbed(&r.outcomes) != scrubbed(&first.outcomes) {
                return Err(format!("rank {} outcomes diverge from rank 0", r.rank));
            }
            if r.batch_steps != first.batch_steps {
                return Err(format!(
                    "rank {} ran {} steps, rank 0 ran {}",
                    r.rank, r.batch_steps, first.batch_steps
                ));
            }
            if r.kv_meters != first.kv_meters {
                return Err(format!(
                    "rank {} KV meters diverge from rank 0: {:?} vs {:?}",
                    r.rank, r.kv_meters, first.kv_meters
                ));
            }
        }
        Ok(())
    }

    /// The analytic all-gather bytes rank `rank` should have sent:
    /// `batch_steps × plan.rank_bytes(rank)[AllGather]`. The smoke and
    /// tests require the traffic counters and trace byte tags to match
    /// this exactly.
    pub fn expected_gather_bytes(&self, rank: usize) -> u64 {
        self.ranks[rank].batch_steps
            * self.plan.rank_bytes(rank)[CollectiveKind::AllGather as usize]
    }
}

/// Predicts how many batch steps a request delivered at step `now` will
/// wait before a KV slot frees up for it — the admission-control oracle.
///
/// The prediction is an exact simulation of the FIFO scheduler over
/// slot-release times: free slots release at `now`, busy slots at their
/// request's completion step, and each already-queued request occupies
/// the earliest-releasing slot for its full service time
/// (`prompt_len − 1 + max_new_tokens` steps — deliberately ignoring
/// prefix reuse, whose skip depends on cache state at future admission;
/// the conservative bound sheds slightly early, never late). The
/// returned delay is a pure function of scheduler state, so every rank
/// sheds the same requests.
pub fn predicted_queue_delay(
    now: u64,
    free_slots: usize,
    active_completions: &[u64],
    queued_service_steps: &[u64],
) -> u64 {
    let mut heap: BinaryHeap<Reverse<u64>> =
        active_completions.iter().map(|&c| Reverse(c.max(now))).collect();
    for _ in 0..free_slots {
        heap.push(Reverse(now));
    }
    assert!(!heap.is_empty(), "scheduler has at least one slot");
    for &svc in queued_service_steps {
        let Reverse(release) = heap.pop().expect("non-empty");
        heap.push(Reverse(release + svc));
    }
    let Reverse(release) = heap.pop().expect("non-empty");
    release - now
}

/// Steps of service a request consumes once admitted, assuming no prefix
/// reuse: `prompt_len − 1` prefill steps plus `max_new_tokens` decodes.
fn service_steps(req: &ServeRequest) -> u64 {
    (req.prompt.len() - 1 + req.max_new_tokens) as u64
}

/// A delivered, admitted-to-queue request waiting for a slot.
struct Pending {
    /// Index into the submitted request list.
    ri: usize,
    /// Wall-clock enqueue time — the latency epoch. Latency is measured
    /// from here, not from world start (which inflated every latency by
    /// the request's arrival offset under staggered arrivals).
    enqueued: Instant,
    /// The queue-wait span, closed at admission.
    qspan: SpanId,
}

/// One live (admitted, unfinished) request's decode state.
struct Active {
    /// Index into the submitted request list.
    ri: usize,
    /// KV slot.
    slot: usize,
    /// Tokens fed so far (== decoder position).
    fed: usize,
    /// Positions skipped at admission via prefix reuse (`fed` started
    /// here instead of 0).
    fed0: usize,
    /// The token fed at position `fed` during the current step.
    cur_token: u32,
    /// Tokens emitted so far.
    produced: Vec<u32>,
    /// Activation row flowing between units within the current step.
    x: Vec<f32>,
    /// The current step's prefill/decode span.
    span: SpanId,
    /// Step at which the request was admitted.
    admitted_at: u64,
    /// Step at which the request will retire
    /// (`admitted_at + prompt_len + max_new − 1 − fed0`).
    completes_at: u64,
    /// Wall-clock enqueue time, inherited from [`Pending`].
    enqueued: Instant,
}

/// Runs the serving schedule on one rank. `shard` is this rank's slice of
/// the balanced [`Partitioner`] layout over the flat parameter space.
///
/// Requests may carry arbitrary `arrival_step`s; delivery order is
/// `(arrival_step, submission index)`, stable and identical on all ranks.
///
/// # Panics
/// Panics on communication failure (fault-free serving worlds don't
/// inject any) and on a `shard` that does not match the partition layout.
pub fn run_rank(
    comm: &mut Communicator,
    model: &ModelConfig,
    shard: &[f32],
    requests: &[ServeRequest],
    cfg: &ServeConfig,
) -> RankServeReport {
    assert!(cfg.slots > 0, "need at least one KV slot");
    let n = comm.world_size();
    let rank = comm.rank();
    let gpt = Gpt::new(*model);
    let units: Vec<std::ops::Range<usize>> =
        gpt.layout().units().iter().map(|u| u.range.clone()).collect();
    let part = Partitioner::new(gpt.num_params(), n);
    let my_range = part.shard_range(rank);
    assert_eq!(shard.len(), my_range.len(), "shard does not match the partition layout");

    // The per-step schedule, resolved once: one all-gather per unit.
    let plan = CommPlan::serve_step(gpt.layout(), n, cfg.overlap);
    let ops: Vec<ResolvedOp> = plan.resolve_for(rank);
    let groups: Vec<Group> = ops.iter().map(|op| Group::new(op.members.clone())).collect();
    // This rank's contribution to each unit: shard ∩ unit, shard-relative.
    let contrib: Vec<&[f32]> = units
        .iter()
        .map(|u| {
            let lo = my_range.start.max(u.start);
            let hi = my_range.end.min(u.end);
            if hi > lo {
                &shard[lo - my_range.start..hi - my_range.start]
            } else {
                &shard[0..0]
            }
        })
        .collect();

    let trace = comm.trace();

    // The open-loop delivery queue: request indices in
    // (arrival_step, submission index) order.
    let mut arrivals: VecDeque<usize> = {
        let mut idx: Vec<usize> = (0..requests.len()).collect();
        idx.sort_by_key(|&ri| requests[ri].arrival_step);
        idx.into_iter().collect()
    };

    let mut outcomes: Vec<Option<ServeOutcome>> = vec![None; requests.len()];
    let mut pending: VecDeque<Pending> = VecDeque::new();
    let mut pool = KvPool::new(model, cfg.slots, cfg.kv);
    let mut active: Vec<Active> = Vec::new();
    let mut clock = 0u64; // batch-step time (includes idle fast-forwards)
    let mut steps = 0u64; // executed batch steps only
    let mut transient_peak = 0u64;

    loop {
        // Deliver every request whose arrival step the clock has reached.
        // Malformed requests are rejected without consuming anything;
        // well-formed ones face the SLO gate: predicted queue delay above
        // the SLO sheds the request *now*, deterministically, instead of
        // letting the queue grow without bound.
        while let Some(&ri) = arrivals.front() {
            let req = &requests[ri];
            if req.arrival_step > clock {
                break;
            }
            arrivals.pop_front();
            match admit(req, model) {
                Err(error) => {
                    trace.instant(SpanCategory::Compute, "request-rejected");
                    outcomes[ri] = Some(ServeOutcome::Rejected { id: req.id, error });
                }
                Ok(()) => {
                    if let Some(slo) = cfg.slo_steps {
                        let completions: Vec<u64> =
                            active.iter().map(|a| a.completes_at).collect();
                        let queued: Vec<u64> = pending
                            .iter()
                            .map(|p| service_steps(&requests[p.ri]))
                            .collect();
                        let free = cfg.slots - active.len();
                        let delay = predicted_queue_delay(clock, free, &completions, &queued);
                        if delay > slo {
                            trace.instant(SpanCategory::Compute, "request-shed");
                            outcomes[ri] = Some(ServeOutcome::Rejected {
                                id: req.id,
                                error: ServeError::Overloaded {
                                    predicted_delay_steps: delay,
                                    slo_steps: slo,
                                },
                            });
                            continue;
                        }
                    }
                    let qspan = trace.begin(SpanCategory::Wait, "queue-wait");
                    pending.push_back(Pending { ri, enqueued: Instant::now(), qspan });
                }
            }
        }

        // Admit as many queued requests as there are free slots. This is
        // a pure function of (queue, pool) state, identical on all ranks.
        while !pending.is_empty() {
            let Some(slot) = pool.alloc_slot() else { break };
            let p = pending.pop_front().expect("checked non-empty");
            trace.end(p.qspan);
            let req = &requests[p.ri];
            let (att, act) = pool.attach_prompt(slot, &req.prompt);
            for _ in 0..act.allocs {
                trace.instant(SpanCategory::Compute, "kv-block-alloc");
            }
            for _ in 0..act.evictions {
                trace.instant(SpanCategory::Compute, "kv-block-evict");
            }
            let service = service_steps(req) - att.matched as u64;
            active.push(Active {
                ri: p.ri,
                slot,
                fed: att.matched,
                fed0: att.matched,
                cur_token: 0,
                produced: Vec::new(),
                x: Vec::new(),
                span: SpanId::NULL,
                admitted_at: clock,
                completes_at: clock + service,
                enqueued: p.enqueued,
            });
        }

        // Nothing live: fast-forward the clock to the next arrival (no
        // steps execute, no parameters gather) or finish. `pending` can
        // only be non-empty when every slot is busy, so an empty `active`
        // here implies an empty queue.
        if active.is_empty() {
            debug_assert!(pending.is_empty());
            match arrivals.front() {
                Some(&ri) => {
                    clock = requests[ri].arrival_step;
                    continue;
                }
                None => break,
            }
        }

        // Demand-page the KV block covering each live request's current
        // position before the unit walk touches it.
        for a in &active {
            let act = pool.ensure(a.slot, a.fed);
            for _ in 0..act.allocs {
                trace.instant(SpanCategory::Compute, "kv-block-alloc");
            }
            for _ in 0..act.evictions {
                trace.instant(SpanCategory::Compute, "kv-block-evict");
            }
        }

        // One batch step: walk the units, one prefetch ahead, advancing
        // every live request by one token.
        let step_span = trace.begin(SpanCategory::Compute, "serve-step");
        let n_units = units.len();
        let mut pending_gather: Option<(PendingOp, u64)> = None;
        let mut cur: Vec<f32>;
        if cfg.overlap {
            pending_gather = Some((
                comm.start_all_gather_var(&groups[0], contrib[0], &ops[0].counts, ops[0].prec),
                4 * ops[0].total_elems() as u64,
            ));
        }
        for u in 0..n_units {
            // Issue next unit's gather before touching this one (the
            // double buffer: at most two units materialized at once).
            let mut next: Option<(PendingOp, u64)> = None;
            if cfg.overlap && u + 1 < n_units {
                let op = &ops[u + 1];
                next = Some((
                    comm.start_all_gather_var(&groups[u + 1], contrib[u + 1], &op.counts, op.prec),
                    4 * op.total_elems() as u64,
                ));
            }
            // Materialize unit u.
            let cur_bytes;
            if cfg.overlap {
                let (pend, bytes) = pending_gather.take().expect("gather issued");
                cur_bytes = bytes;
                let wspan = trace.begin(SpanCategory::Wait, "gather-wait");
                cur = pend.wait().expect("serving gather failed");
                trace.end(wspan);
            } else {
                let op = &ops[u];
                cur_bytes = 4 * op.total_elems() as u64;
                let mut buf = vec![0.0; op.total_elems()];
                let wspan = trace.begin(SpanCategory::Wait, "gather-wait");
                comm.all_gather_var_in(&groups[u], contrib[u], &mut buf, &op.counts, op.prec)
                    .expect("serving gather failed");
                trace.end(wspan);
                cur = buf;
            }
            pending_gather = next;
            let in_flight = pending_gather.as_ref().map(|(_, b)| *b).unwrap_or(0);
            transient_peak = transient_peak.max(cur_bytes + in_flight);

            // Advance every live request through unit u.
            for a in active.iter_mut() {
                let req = &requests[a.ri];
                if u == 0 {
                    let prefilling = a.fed + 1 < req.prompt.len();
                    a.span = trace.begin_on(
                        TRACK_REQ_BASE + a.slot as u32,
                        SpanCategory::Compute,
                        if prefilling { "prefill" } else { "decode-token" },
                    );
                    a.cur_token = if a.fed < req.prompt.len() {
                        req.prompt[a.fed]
                    } else {
                        *a.produced.last().expect("decode steps follow prefill")
                    };
                    a.x = embed_step(&gpt, &cur, a.cur_token, a.fed)
                        .expect("validated at admission");
                } else if u < n_units - 1 {
                    let l = u - 1;
                    a.x = block_step_kv(&gpt, l, &cur, &a.x, &mut pool, a.slot, a.fed);
                } else {
                    let logits = head_step(&gpt, &cur, &a.x);
                    if a.fed + 1 >= req.prompt.len() {
                        a.produced.push(argmax(&logits) as u32);
                    }
                    pool.note_token(a.slot, a.fed, a.cur_token);
                    a.fed += 1;
                    trace.end(a.span);
                }
            }
        }
        steps += 1;
        clock += 1;
        trace.end(step_span);

        // Retire finished requests, freeing their slots for the next
        // step's admissions.
        let mut i = 0;
        while i < active.len() {
            let done = active[i].produced.len() >= requests[active[i].ri].max_new_tokens;
            if done {
                let a = active.remove(i);
                let req = &requests[a.ri];
                debug_assert_eq!(clock, a.completes_at, "completion prediction is exact");
                pool.release_slot(a.slot);
                outcomes[a.ri] = Some(ServeOutcome::Completed(ServeResponse {
                    id: req.id,
                    tokens: a.produced,
                    arrival_step: req.arrival_step,
                    admitted_step: a.admitted_at,
                    completion_step: clock,
                    latency_steps: clock - req.arrival_step,
                    queue_steps: a.admitted_at - req.arrival_step,
                    prefill_steps: (req.prompt.len() - 1 - a.fed0) as u64,
                    prefix_reused_rows: a.fed0 as u64,
                    decode_steps: req.max_new_tokens as u64,
                    latency_ns: a.enqueued.elapsed().as_nanos() as u64,
                }));
            } else {
                i += 1;
            }
        }
    }

    let persistent = 4 * shard.len() as u64;
    RankServeReport {
        rank,
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every request reaches a terminal state"))
            .collect(),
        batch_steps: steps,
        shard_elems: shard.len(),
        persistent_param_bytes: persistent,
        transient_param_bytes_peak: transient_peak,
        param_bytes_peak: persistent + transient_peak,
        kv_arena_bytes: pool.arena_bytes(),
        kv_meters: pool.meters(),
        gather_bytes: comm.stats().bytes(CollectiveKind::AllGather),
        timeline: trace.timeline(),
    }
}

/// Serves `requests` on a world of `shards.len()` ranks (one thread per
/// rank, each hosting its shard) and returns every rank's report.
///
/// # Panics
/// Panics if `shards` is empty, a shard does not match the balanced
/// partition of the model's parameter space, or a rank fails.
pub fn serve(
    model: &ModelConfig,
    shards: &[Vec<f32>],
    requests: &[ServeRequest],
    cfg: &ServeConfig,
) -> ServeReport {
    serve_with_config(model, shards, requests, cfg, WorldConfig::default())
}

/// [`serve`] with an explicit [`WorldConfig`] (timeouts, link latency).
pub fn serve_with_config(
    model: &ModelConfig,
    shards: &[Vec<f32>],
    requests: &[ServeRequest],
    cfg: &ServeConfig,
    wcfg: WorldConfig,
) -> ServeReport {
    let n = shards.len();
    assert!(n > 0, "need at least one serving rank");
    let gpt = Gpt::new(*model);
    let plan = CommPlan::serve_step(gpt.layout(), n, cfg.overlap);
    let ranks = launch_with_config(n, wcfg, |mut comm| {
        let shard = &shards[comm.rank()];
        run_rank(&mut comm, model, shard, requests, cfg)
    });
    ServeReport { ranks, plan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zero_core::export_inference_shards;
    use zero_core::RankSnapshot;
    use zero_model::init_full_params;

    fn model() -> ModelConfig {
        ModelConfig {
            vocab: 24,
            seq: 12,
            hidden: 16,
            layers: 2,
            heads: 2,
        }
    }

    fn shards_of(params: &[f32], n: usize) -> Vec<Vec<f32>> {
        let part = Partitioner::new(params.len(), n);
        (0..n).map(|r| params[part.shard_range(r)].to_vec()).collect()
    }

    fn reference_greedy(model: &ModelConfig, params: &[f32], req: &ServeRequest) -> Vec<u32> {
        let gpt = Gpt::new(*model);
        let mut dec = zero_model::IncrementalDecoder::new(&gpt, params);
        let mut last = vec![0.0];
        for &t in &req.prompt {
            last = dec.feed(t).unwrap();
        }
        let mut out = vec![argmax(&last) as u32];
        while out.len() < req.max_new_tokens {
            last = dec.feed(*out.last().unwrap()).unwrap();
            out.push(argmax(&last) as u32);
        }
        out
    }

    #[test]
    fn batched_serving_matches_the_incremental_decoder_bitwise() {
        let m = model();
        let params = init_full_params(&m, 17);
        let requests: Vec<ServeRequest> = (0..5)
            .map(|i| {
                ServeRequest::new(
                    i as u64,
                    vec![(i * 3) as u32 % 24, (i + 1) as u32 % 24],
                    3 + i % 3,
                )
            })
            .collect();
        for n in [1usize, 2, 3] {
            let report = serve(&m, &shards_of(&params, n), &requests, &ServeConfig::default());
            report.check_ranks_agree().unwrap();
            for (req, out) in requests.iter().zip(report.outcomes()) {
                let resp = out.response().expect("all requests well-formed");
                assert_eq!(
                    resp.tokens,
                    reference_greedy(&m, &params, req),
                    "world {n}, request {}",
                    req.id
                );
            }
        }
    }

    #[test]
    fn malformed_requests_are_rejected_without_crashing_any_rank() {
        let m = model();
        let params = init_full_params(&m, 3);
        let requests = vec![
            ServeRequest::new(0, vec![1, 2], 2),
            ServeRequest::new(1, vec![99], 2),     // out-of-vocab
            ServeRequest::new(2, vec![1; 11], 5),  // over-length (11+5−1 > 12)
            ServeRequest::new(3, vec![3], 2),
        ];
        let report = serve(&m, &shards_of(&params, 2), &requests, &ServeConfig::default());
        report.check_ranks_agree().unwrap();
        let o = report.outcomes();
        assert!(o[0].response().is_some());
        assert!(matches!(
            o[1].rejection(),
            Some(crate::ServeError::TokenOutOfVocab { token: 99, .. })
        ));
        assert!(matches!(o[2].rejection(), Some(crate::ServeError::PromptTooLong { .. })));
        assert!(o[3].response().is_some());
    }

    #[test]
    fn traffic_and_trace_reconcile_byte_exactly_with_the_plan() {
        let m = model();
        let params = init_full_params(&m, 5);
        let requests: Vec<ServeRequest> = (0..4)
            .map(|i| ServeRequest::new(i, vec![2, 4, 6], 4))
            .collect();
        for overlap in [false, true] {
            let cfg = ServeConfig { slots: 2, overlap, ..ServeConfig::default() };
            let report = serve(&m, &shards_of(&params, 3), &requests, &cfg);
            for r in &report.ranks {
                let want = report.expected_gather_bytes(r.rank);
                assert_eq!(r.gather_bytes, want, "traffic counters (overlap={overlap})");
                assert_eq!(
                    r.timeline
                        .bytes_named(SpanCategory::Collective, "all-gather"),
                    want,
                    "trace byte tags (overlap={overlap})"
                );
            }
        }
    }

    #[test]
    fn continuous_batching_recycles_slots() {
        let m = model();
        let params = init_full_params(&m, 9);
        // 6 requests through 2 slots: queueing is mandatory.
        let requests: Vec<ServeRequest> =
            (0..6).map(|i| ServeRequest::new(i, vec![1, 2], 2)).collect();
        let cfg = ServeConfig { slots: 2, ..ServeConfig::default() };
        let report = serve(&m, &shards_of(&params, 2), &requests, &cfg);
        report.check_ranks_agree().unwrap();
        let responses: Vec<_> = report.outcomes().iter().filter_map(|o| o.response()).collect();
        assert_eq!(responses.len(), 6);
        // Later requests waited in the queue.
        assert!(responses.iter().any(|r| r.queue_steps > 0));
        // Every request takes prompt_len − 1 + max_new steps of service.
        for r in &responses {
            assert_eq!(r.prefill_steps, 1);
            assert_eq!(r.decode_steps, 2);
            assert_eq!(r.completion_step - r.admitted_step, 3);
            assert_eq!(r.latency_steps, r.queue_steps + 3);
        }
    }

    #[test]
    fn open_loop_arrivals_fast_forward_idle_gaps() {
        let m = model();
        let params = init_full_params(&m, 11);
        // Two requests separated by a long idle gap: the clock jumps, the
        // step counter does not.
        let requests = vec![
            ServeRequest::new(0, vec![1, 2], 2).at_step(0),
            ServeRequest::new(1, vec![3, 4], 2).at_step(500),
        ];
        let report = serve(&m, &shards_of(&params, 2), &requests, &ServeConfig::default());
        report.check_ranks_agree().unwrap();
        let r0 = report.outcomes()[0].response().unwrap();
        let r1 = report.outcomes()[1].response().unwrap();
        // Each request runs 3 service steps; only 6 steps execute overall.
        assert_eq!(report.ranks[0].batch_steps, 6);
        assert_eq!(r0.completion_step, 3);
        assert_eq!(r1.admitted_step, 500);
        assert_eq!(r1.completion_step, 503);
        assert_eq!(r1.queue_steps, 0);
        // Traffic still reconciles exactly: only executed steps gather.
        for r in &report.ranks {
            assert_eq!(r.gather_bytes, report.expected_gather_bytes(r.rank));
        }
    }

    #[test]
    fn queue_delay_prediction_simulates_fifo_exactly() {
        // 2 slots, both busy until steps 5 and 9; two queued requests of
        // 4 service steps each. FIFO: first queued starts at 5, second at
        // 9 (slot from the other active), new request starts at
        // min(5+4, 9+4) = 9 — a 9-step wait from now=0.
        assert_eq!(predicted_queue_delay(0, 0, &[5, 9], &[4, 4]), 9);
        // A free slot admits immediately.
        assert_eq!(predicted_queue_delay(7, 1, &[12], &[]), 0);
        // Free slot but a queue ahead of us: we wait behind it.
        assert_eq!(predicted_queue_delay(7, 1, &[12], &[3]), 3);
        // Stale completion times clamp to now rather than the past.
        assert_eq!(predicted_queue_delay(10, 0, &[4], &[]), 0);
    }

    #[test]
    fn slo_sheds_deterministically_under_burst() {
        let m = model();
        let params = init_full_params(&m, 13);
        // 1 slot, service = 2 + 4 − 1 = 5 steps; 6 simultaneous arrivals
        // with a 12-step SLO: positions 0..=2 predict delays 0/5/10 and
        // queue; every later arrival predicts 15 (shed requests never
        // join the queue, so the prediction stops growing) and is shed.
        let requests: Vec<ServeRequest> =
            (0..6).map(|i| ServeRequest::new(i, vec![1, 2], 4)).collect();
        let cfg = ServeConfig { slots: 1, slo_steps: Some(12), ..ServeConfig::default() };
        let report = serve(&m, &shards_of(&params, 2), &requests, &cfg);
        report.check_ranks_agree().unwrap();
        let o = report.outcomes();
        for (i, out) in o.iter().enumerate().take(3) {
            assert!(out.response().is_some(), "request {i} within SLO");
        }
        for (i, out) in o.iter().enumerate().skip(3) {
            assert_eq!(
                out.rejection(),
                Some(ServeError::Overloaded { predicted_delay_steps: 15, slo_steps: 12 }),
                "request {i} sheds with its exact predicted delay"
            );
        }
    }

    #[test]
    fn paged_kv_serves_bitwise_identically_to_the_slab() {
        let m = model();
        let params = init_full_params(&m, 29);
        let requests: Vec<ServeRequest> = (0..6)
            .map(|i| {
                ServeRequest::new(i as u64, vec![2, 4, 6, (i % 8) as u32], 3 + i % 4)
                    .at_step(2 * i as u64)
            })
            .collect();
        let slab = serve(
            &m,
            &shards_of(&params, 2),
            &requests,
            &ServeConfig { slots: 2, ..ServeConfig::default() },
        );
        for (block, reuse) in [(4, false), (4, true), (3, true)] {
            let paged = serve(
                &m,
                &shards_of(&params, 2),
                &requests,
                &ServeConfig {
                    slots: 2,
                    kv: KvBackend::Paged { block, prefix_reuse: reuse },
                    ..ServeConfig::default()
                },
            );
            paged.check_ranks_agree().unwrap();
            for (a, b) in slab.outcomes().iter().zip(paged.outcomes()) {
                let (ra, rb) = (a.response().unwrap(), b.response().unwrap());
                assert_eq!(ra.tokens, rb.tokens, "block={block} reuse={reuse}");
            }
        }
    }

    #[test]
    fn serving_from_exported_training_snapshots_is_bitwise_identical() {
        let m = model();
        let params = init_full_params(&m, 21);
        // Fake a 3-rank stage-style training checkpoint tiling the space.
        let part = Partitioner::new(params.len(), 3);
        let snaps: Vec<RankSnapshot> = (0..3)
            .map(|r| {
                let range = part.shard_range(r);
                RankSnapshot {
                    rank: r as u32,
                    world: 3,
                    step: 40,
                    shard_start: range.start as u64,
                    shard_end: range.end as u64,
                    master: params[range].to_vec(),
                    opt_m: Vec::new(),
                    opt_v: Vec::new(),
                    opt_t: 40,
                    scaler: None,
                }
            })
            .collect();
        // Export onto a *different* world size than training used.
        let shards = export_inference_shards(&snaps, 2).unwrap();
        let requests = vec![ServeRequest::new(7, vec![5, 9, 13], 5)];
        let report = serve(&m, &shards, &requests, &ServeConfig::default());
        let resp = report.outcomes()[0].response().unwrap().clone();
        assert_eq!(resp.tokens, reference_greedy(&m, &params, &requests[0]));
    }
}
