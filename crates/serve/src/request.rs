//! Request, response, and admission-control types.
//!
//! Admission is the serving system's trust boundary: everything after it
//! assumes a well-formed request, so [`admit`] must reject every input the
//! model code would choke on — and nothing else. The generation-path
//! bugfixes (typed [`zero_model::GenerateError`]) are the second line of
//! defense; admission is the first.
//!
//! Under open-loop load there is a second admission gate: even a
//! well-formed request is *shed* with [`ServeError::Overloaded`] when its
//! predicted queue delay exceeds the configured SLO — saturation degrades
//! by rejecting work deterministically instead of queueing without bound
//! (see `engine::predicted_queue_delay`).

use zero_model::ModelConfig;

/// One inference request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeRequest {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// Prompt token ids (must be non-empty and in-vocab).
    pub prompt: Vec<u32>,
    /// Number of tokens to generate (greedy). Must be ≥ 1, and
    /// `prompt.len() + max_new_tokens − 1` decoder positions must fit the
    /// context window.
    pub max_new_tokens: usize,
    /// Batch step at which the request reaches the server. Arrivals are
    /// expressed in *batch-step time* (not wall-clock) so every SPMD rank
    /// observes the identical schedule — the load generator
    /// (`serve::load`) fills this in; closed-loop callers leave it 0.
    pub arrival_step: u64,
}

impl ServeRequest {
    /// A request arriving at step 0 (the closed-loop default).
    pub fn new(id: u64, prompt: Vec<u32>, max_new_tokens: usize) -> ServeRequest {
        ServeRequest { id, prompt, max_new_tokens, arrival_step: 0 }
    }

    /// Sets the arrival step (builder style, for open-loop schedules).
    pub fn at_step(mut self, step: u64) -> ServeRequest {
        self.arrival_step = step;
        self
    }
}

/// Why a request was rejected at admission. Typed, recoverable, and
/// deterministic: every rank rejects the same request for the same reason
/// without consuming any schedule step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The prompt is empty — there is nothing to condition on.
    EmptyPrompt,
    /// A prompt token id is outside the model's vocabulary.
    TokenOutOfVocab {
        /// The offending token id.
        token: u32,
        /// The model's vocabulary size.
        vocab: usize,
    },
    /// `prompt.len() + max_new_tokens − 1` exceeds the context window:
    /// the request could never finish without exhausting the position
    /// table. (The final generated token is returned, never fed back, so
    /// it needs no position of its own — a request that exactly fills
    /// the table is admitted.)
    PromptTooLong {
        /// Prompt length in tokens.
        prompt_len: usize,
        /// Requested new tokens.
        max_new_tokens: usize,
        /// The model's context window.
        seq: usize,
    },
    /// `max_new_tokens` is zero — the request asks for nothing.
    NoTokensRequested,
    /// The server is saturated: the predicted queue delay at arrival
    /// exceeds the configured SLO, so the request is shed instead of
    /// queued without bound. Deterministic — every rank predicts the
    /// identical delay from the identical scheduler state.
    Overloaded {
        /// Steps the request was predicted to wait before admission.
        predicted_delay_steps: u64,
        /// The configured admission SLO, in batch steps.
        slo_steps: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::EmptyPrompt => write!(f, "empty prompt"),
            ServeError::TokenOutOfVocab { token, vocab } => {
                write!(f, "prompt token {token} outside the vocabulary (0..{vocab})")
            }
            ServeError::PromptTooLong {
                prompt_len,
                max_new_tokens,
                seq,
            } => write!(
                f,
                "prompt of {prompt_len} + {max_new_tokens} new tokens needs \
                 {} positions but the window has {seq}",
                prompt_len + max_new_tokens - 1
            ),
            ServeError::NoTokensRequested => write!(f, "max_new_tokens must be at least 1"),
            ServeError::Overloaded { predicted_delay_steps, slo_steps } => write!(
                f,
                "overloaded: predicted queue delay {predicted_delay_steps} steps \
                 exceeds the {slo_steps}-step SLO"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed request: the greedy continuation plus scheduling metrics.
///
/// Every field except `latency_ns` is a deterministic function of the
/// request list and serving configuration, identical across ranks
/// (`ServeReport::check_ranks_agree` compares them); `latency_ns` is
/// rank-local wall clock and is scrubbed from the comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeResponse {
    /// The request's id.
    pub id: u64,
    /// The generated tokens (`max_new_tokens` of them, greedy argmax).
    pub tokens: Vec<u32>,
    /// Batch step at which the request arrived (its `arrival_step`).
    pub arrival_step: u64,
    /// Batch step at which a KV slot was assigned.
    pub admitted_step: u64,
    /// Batch step at which the final token was emitted.
    pub completion_step: u64,
    /// Arrival → completion, in batch steps (`completion − arrival`):
    /// the deterministic latency every rank agrees on.
    pub latency_steps: u64,
    /// Batch steps the request waited in the queue
    /// (`admitted_step − arrival_step`).
    pub queue_steps: u64,
    /// Batch steps spent consuming the prompt (`prompt_len − 1`, minus
    /// any positions skipped via prefix reuse).
    pub prefill_steps: u64,
    /// Prompt positions served from shared or copied prefix-cache blocks
    /// instead of being recomputed (0 without paged prefix reuse).
    pub prefix_reused_rows: u64,
    /// Batch steps spent emitting tokens (`max_new_tokens`).
    pub decode_steps: u64,
    /// End-to-end wall-clock latency in nanoseconds, measured from the
    /// request's *enqueue* (arrival) to its completion — not from world
    /// start, which under staggered arrivals inflated every latency by
    /// the request's arrival offset. Rank-local; excluded from the
    /// cross-rank agreement check.
    pub latency_ns: u64,
}

/// Terminal state of one request, in submission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The request ran to completion.
    Completed(ServeResponse),
    /// The request was rejected at admission.
    Rejected {
        /// The request's id.
        id: u64,
        /// Why it was rejected.
        error: ServeError,
    },
}

impl ServeOutcome {
    /// The completed response, if any.
    pub fn response(&self) -> Option<&ServeResponse> {
        match self {
            ServeOutcome::Completed(r) => Some(r),
            ServeOutcome::Rejected { .. } => None,
        }
    }

    /// The rejection, if any.
    pub fn rejection(&self) -> Option<ServeError> {
        match self {
            ServeOutcome::Completed(_) => None,
            ServeOutcome::Rejected { error, .. } => Some(*error),
        }
    }
}

/// Validates a request against a model's shape. `Ok` means the request
/// can run to completion without any generation-path error: the prompt is
/// non-empty and in-vocab, and the `prompt_len − 1 + max_new_tokens`
/// decoder positions the request actually consumes fit the window. The
/// final generated token is returned to the caller and never fed back,
/// so it needs no position — a request with
/// `prompt_len + max_new_tokens − 1 == seq` exactly fills the position
/// table and is admitted (the old bound rejected it).
pub fn admit(req: &ServeRequest, model: &ModelConfig) -> Result<(), ServeError> {
    if req.prompt.is_empty() {
        return Err(ServeError::EmptyPrompt);
    }
    if req.max_new_tokens == 0 {
        return Err(ServeError::NoTokensRequested);
    }
    if let Some(&bad) = req.prompt.iter().find(|&&t| t as usize >= model.vocab) {
        return Err(ServeError::TokenOutOfVocab {
            token: bad,
            vocab: model.vocab,
        });
    }
    if req.prompt.len() + req.max_new_tokens - 1 > model.seq {
        return Err(ServeError::PromptTooLong {
            prompt_len: req.prompt.len(),
            max_new_tokens: req.max_new_tokens,
            seq: model.seq,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelConfig {
        ModelConfig {
            vocab: 16,
            seq: 12,
            hidden: 8,
            layers: 1,
            heads: 2,
        }
    }

    fn req(prompt: Vec<u32>, max_new: usize) -> ServeRequest {
        ServeRequest::new(1, prompt, max_new)
    }

    #[test]
    fn well_formed_requests_pass() {
        assert!(admit(&req(vec![0, 5, 15], 4), &model()).is_ok());
        assert!(admit(&req(vec![1; 8], 4), &model()).is_ok());
    }

    #[test]
    fn exactly_filling_the_position_table_is_admitted() {
        // Regression: prompt_len + max_new − 1 == seq uses every position
        // exactly once; the old `prompt_len + max_new > seq` bound shed
        // these even though the decoder finishes them without error.
        let m = model();
        assert!(admit(&req(vec![1; 9], 4), &m).is_ok(), "9 + 4 − 1 = 12 = seq fits");
        assert!(admit(&req(vec![1; 12], 1), &m).is_ok(), "full-window prompt, one token");
        // …and one more token than the table holds is still rejected.
        assert_eq!(
            admit(&req(vec![1; 9], 5), &m),
            Err(ServeError::PromptTooLong { prompt_len: 9, max_new_tokens: 5, seq: 12 })
        );
        assert_eq!(
            admit(&req(vec![1; 13], 1), &m),
            Err(ServeError::PromptTooLong { prompt_len: 13, max_new_tokens: 1, seq: 12 })
        );
    }

    #[test]
    fn malformed_requests_get_the_right_typed_error() {
        let m = model();
        assert_eq!(admit(&req(vec![], 4), &m), Err(ServeError::EmptyPrompt));
        assert_eq!(
            admit(&req(vec![1, 16], 4), &m),
            Err(ServeError::TokenOutOfVocab { token: 16, vocab: 16 })
        );
        assert_eq!(
            admit(&req(vec![1; 10], 4), &m),
            Err(ServeError::PromptTooLong {
                prompt_len: 10,
                max_new_tokens: 4,
                seq: 12
            })
        );
        assert_eq!(admit(&req(vec![1], 0), &m), Err(ServeError::NoTokensRequested));
    }

    #[test]
    fn arrival_steps_default_to_zero_and_build_fluently() {
        let r = ServeRequest::new(3, vec![1, 2], 2);
        assert_eq!(r.arrival_step, 0);
        assert_eq!(r.at_step(17).arrival_step, 17);
    }
}
