//! Request, response, and admission-control types.
//!
//! Admission is the serving system's trust boundary: everything after it
//! assumes a well-formed request, so [`admit`] must reject every input the
//! model code would choke on — and nothing else. The generation-path
//! bugfixes (typed [`zero_model::GenerateError`]) are the second line of
//! defense; admission is the first.

use zero_model::ModelConfig;

/// One inference request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeRequest {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// Prompt token ids (must be non-empty and in-vocab).
    pub prompt: Vec<u32>,
    /// Number of tokens to generate (greedy). Must be ≥ 1, and
    /// `prompt.len() + max_new_tokens` must fit the context window.
    pub max_new_tokens: usize,
}

/// Why a request was rejected at admission. Typed, recoverable, and
/// deterministic: every rank rejects the same request for the same reason
/// without consuming any schedule step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The prompt is empty — there is nothing to condition on.
    EmptyPrompt,
    /// A prompt token id is outside the model's vocabulary.
    TokenOutOfVocab {
        /// The offending token id.
        token: u32,
        /// The model's vocabulary size.
        vocab: usize,
    },
    /// `prompt.len() + max_new_tokens` exceeds the context window: the
    /// request could never finish without exhausting the position table.
    PromptTooLong {
        /// Prompt length in tokens.
        prompt_len: usize,
        /// Requested new tokens.
        max_new_tokens: usize,
        /// The model's context window.
        seq: usize,
    },
    /// `max_new_tokens` is zero — the request asks for nothing.
    NoTokensRequested,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::EmptyPrompt => write!(f, "empty prompt"),
            ServeError::TokenOutOfVocab { token, vocab } => {
                write!(f, "prompt token {token} outside the vocabulary (0..{vocab})")
            }
            ServeError::PromptTooLong {
                prompt_len,
                max_new_tokens,
                seq,
            } => write!(
                f,
                "prompt of {prompt_len} + {max_new_tokens} new tokens exceeds the {seq}-token window"
            ),
            ServeError::NoTokensRequested => write!(f, "max_new_tokens must be at least 1"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed request: the greedy continuation plus scheduling metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeResponse {
    /// The request's id.
    pub id: u64,
    /// The generated tokens (`max_new_tokens` of them, greedy argmax).
    pub tokens: Vec<u32>,
    /// Batch steps the request waited in the queue before admission.
    pub queue_steps: u64,
    /// Batch steps spent consuming the prompt (`prompt_len − 1`).
    pub prefill_steps: u64,
    /// Batch steps spent emitting tokens (`max_new_tokens`).
    pub decode_steps: u64,
    /// End-to-end latency (enqueue → completion) in nanoseconds.
    pub latency_ns: u64,
}

/// Terminal state of one request, in submission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The request ran to completion.
    Completed(ServeResponse),
    /// The request was rejected at admission.
    Rejected {
        /// The request's id.
        id: u64,
        /// Why it was rejected.
        error: ServeError,
    },
}

impl ServeOutcome {
    /// The completed response, if any.
    pub fn response(&self) -> Option<&ServeResponse> {
        match self {
            ServeOutcome::Completed(r) => Some(r),
            ServeOutcome::Rejected { .. } => None,
        }
    }

    /// The rejection, if any.
    pub fn rejection(&self) -> Option<ServeError> {
        match self {
            ServeOutcome::Completed(_) => None,
            ServeOutcome::Rejected { error, .. } => Some(*error),
        }
    }
}

/// Validates a request against a model's shape. `Ok` means the request
/// can run to completion without any generation-path error: the prompt is
/// non-empty and in-vocab, and `prompt_len − 1 + max_new_tokens` decoder
/// positions fit the window (we require the slightly stronger
/// `prompt_len + max_new_tokens ≤ seq`, which keeps the arithmetic
/// obvious and leaves one position of slack).
pub fn admit(req: &ServeRequest, model: &ModelConfig) -> Result<(), ServeError> {
    if req.prompt.is_empty() {
        return Err(ServeError::EmptyPrompt);
    }
    if req.max_new_tokens == 0 {
        return Err(ServeError::NoTokensRequested);
    }
    if let Some(&bad) = req.prompt.iter().find(|&&t| t as usize >= model.vocab) {
        return Err(ServeError::TokenOutOfVocab {
            token: bad,
            vocab: model.vocab,
        });
    }
    if req.prompt.len() + req.max_new_tokens > model.seq {
        return Err(ServeError::PromptTooLong {
            prompt_len: req.prompt.len(),
            max_new_tokens: req.max_new_tokens,
            seq: model.seq,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelConfig {
        ModelConfig {
            vocab: 16,
            seq: 12,
            hidden: 8,
            layers: 1,
            heads: 2,
        }
    }

    fn req(prompt: Vec<u32>, max_new: usize) -> ServeRequest {
        ServeRequest {
            id: 1,
            prompt,
            max_new_tokens: max_new,
        }
    }

    #[test]
    fn well_formed_requests_pass() {
        assert!(admit(&req(vec![0, 5, 15], 4), &model()).is_ok());
        // Exactly filling the window is allowed.
        assert!(admit(&req(vec![1; 8], 4), &model()).is_ok());
    }

    #[test]
    fn malformed_requests_get_the_right_typed_error() {
        let m = model();
        assert_eq!(admit(&req(vec![], 4), &m), Err(ServeError::EmptyPrompt));
        assert_eq!(
            admit(&req(vec![1, 16], 4), &m),
            Err(ServeError::TokenOutOfVocab { token: 16, vocab: 16 })
        );
        assert_eq!(
            admit(&req(vec![1; 10], 3), &m),
            Err(ServeError::PromptTooLong {
                prompt_len: 10,
                max_new_tokens: 3,
                seq: 12
            })
        );
        assert_eq!(admit(&req(vec![1], 0), &m), Err(ServeError::NoTokensRequested));
    }
}
