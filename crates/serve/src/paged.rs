//! Paged KV-cache pool with hash-based prefix reuse.
//!
//! The slab backend gives every slot the full `seq × hidden` window up
//! front; under production load most requests use a fraction of it and
//! many share a prompt prefix. [`PagedPool`] replaces the slab with
//! block-granular allocation over a [`BlockArena`]: each slot holds a
//! *page table* of fixed-size position blocks, allocated on demand as the
//! request's decode position crosses block boundaries, and freed (or
//! cached) the moment the request retires.
//!
//! **Prefix reuse.** A block whose positions are completely written is
//! *registered* under the hash of the full token prefix it was computed
//! from (K/V rows at position `t` are a deterministic function of tokens
//! `0..=t`, so equal prefixes mean bitwise-equal rows). A newly admitted
//! request walks its prompt block by block: a whole-block match maps the
//! shared block into its page table read-only (refcount bump — zero
//! compute, zero allocation); the first partial match *copies* the
//! matched rows into a private block and diverges from there — copy-on-
//! write at the divergence point. Matches are verified token-by-token
//! against the stored prefix, so a hash collision can never alias two
//! different prefixes (the bitwise guarantee does not rest on 64-bit
//! luck). Shared positions are skipped during prefill, which is where
//! the throughput win comes from; the skip length is a deterministic
//! function of scheduler state, so SPMD lockstep is preserved.
//!
//! **Sharing discipline.** A request only ever *writes* positions it
//! computes itself, and matching is capped at `prompt_len − 1` (the last
//! prompt position is always recomputed to produce the first logits), so
//! a shared block is never written by a sharer. Retired requests leave
//! their refcount-0 registered blocks in an LRU cache; the allocator
//! evicts from it only when the arena runs dry.

use std::collections::HashMap;
use std::collections::VecDeque;

use zero_model::{BlockArena, BlockArenaStats, KvArena, KvSlab, ModelConfig};

/// Which KV backing store the engine uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvBackend {
    /// One pre-sized `seq`-window slab slot per in-flight request (the
    /// PR-5 backend; the bench baseline).
    Slab,
    /// Block-granular paged allocation, optionally with prefix reuse.
    Paged {
        /// Positions per block (clamped to `seq`; must be ≥ 1).
        block: usize,
        /// Share whole prompt-prefix blocks between requests and
        /// copy-on-write at the divergence point.
        prefix_reuse: bool,
    },
}

/// What [`PagedPool::attach_prompt`] resolved for a new request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttachOutcome {
    /// Positions already present in the page table (the prefill skip):
    /// `hit_rows + cow_rows`.
    pub matched: usize,
    /// Positions served by mapping shared read-only blocks.
    pub hit_rows: usize,
    /// Positions served by copying rows at the divergence block.
    pub cow_rows: usize,
}

/// Allocation activity from one pool call, for trace instants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolActivity {
    /// Blocks freshly allocated.
    pub allocs: u64,
    /// Cached blocks evicted to satisfy those allocations.
    pub evictions: u64,
}

/// Lifetime meters of a KV pool, all deterministic across ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KvMeters {
    /// Bytes of backing storage allocated over the run: slab slots
    /// claimed × per-slot bytes, or paged blocks allocated × block
    /// bytes. Prefix reuse shows up as strictly fewer allocated bytes
    /// for the same served tokens.
    pub bytes_allocated: u64,
    /// Peak simultaneously live bytes (slots or refcounted blocks).
    pub bytes_live_peak: u64,
    /// Prompt positions served by sharing registered blocks.
    pub prefix_hit_rows: u64,
    /// Prompt positions served by copy-on-write row copies.
    pub prefix_cow_rows: u64,
    /// Cached blocks evicted to feed the allocator.
    pub evictions: u64,
}

/// Per-block registration record (only blocks whose rows are final).
struct BlockInfo {
    /// The full token prefix the block's rows were computed from: tokens
    /// `0..start + filled`, where `start` is the block-aligned position
    /// offset the block covers and `filled ≤ block` positions hold final
    /// rows (`filled = prefix.len() − start`).
    prefix: Vec<u32>,
    /// Block-aligned start position.
    start: usize,
}

/// Paged KV-cache pool: page tables + prefix registry over a
/// [`BlockArena`]. Implements [`KvArena`] so the shared per-token
/// kernel (`block_step_kv`) decodes through it unchanged.
pub struct PagedPool {
    arena: BlockArena,
    block: usize,
    free_slots: Vec<usize>,
    slot_live: Vec<bool>,
    /// Per slot: block ids covering positions `[i·B, (i+1)·B)`.
    tables: Vec<Vec<usize>>,
    /// Per slot: the token fed at each position so far (prompt then
    /// generated) — the registration key material.
    tokens: Vec<Vec<u32>>,
    prefix_reuse: bool,
    /// Registered blocks by hash of their *parent* prefix (tokens before
    /// the block). Values are candidate lists in registration order;
    /// every match is verified against `BlockInfo::prefix` token by
    /// token, so collisions cost a comparison, never correctness.
    by_parent: HashMap<u64, Vec<usize>>,
    info: Vec<Option<BlockInfo>>,
    /// Refcount-0 registered blocks, oldest first (eviction order).
    cached: VecDeque<usize>,
    hit_rows: u64,
    cow_rows: u64,
    evictions: u64,
}

fn prefix_hash(tokens: &[u32]) -> u64 {
    // FNV-1a over the little-endian token bytes: deterministic across
    // platforms, which the SPMD schedule requires.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in tokens {
        for b in t.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl PagedPool {
    /// A pool for `slots` concurrent requests over `model`, with blocks
    /// of `block` positions. The arena is sized at
    /// `slots × ⌈seq / block⌉` blocks — the worst case with zero
    /// sharing — so allocation can always succeed once the cache is
    /// evicted; sharing only ever leaves more room for cached prefixes.
    /// With prefix reuse one extra block of headroom is added: during a
    /// copy-on-write the donor block is pinned (it may be referenced by
    /// no page table at that moment) while the destination allocates, so
    /// the transient worst case is one block beyond the table capacity.
    pub fn new(model: &ModelConfig, slots: usize, block: usize, prefix_reuse: bool) -> PagedPool {
        assert!(slots > 0, "need at least one slot");
        assert!(block > 0, "block size must be at least one position");
        let block = block.min(model.seq);
        let per_slot = model.seq.div_ceil(block);
        let cap = slots * per_slot + usize::from(prefix_reuse);
        PagedPool {
            arena: BlockArena::new(model.layers, cap, block, model.hidden),
            block,
            free_slots: (0..slots).rev().collect(),
            slot_live: vec![false; slots],
            tables: vec![Vec::new(); slots],
            tokens: vec![Vec::new(); slots],
            prefix_reuse,
            by_parent: HashMap::new(),
            info: Vec::new(),
            cached: VecDeque::new(),
            hit_rows: 0,
            cow_rows: 0,
            evictions: 0,
        }
    }

    /// Positions per block.
    pub fn block_positions(&self) -> usize {
        self.block
    }

    /// Bytes of the whole backing arena (capacity, not residency).
    pub fn arena_bytes(&self) -> u64 {
        self.arena.arena_bytes()
    }

    /// Claims a free slot (empty page table), or `None` at capacity.
    pub fn alloc_slot(&mut self) -> Option<usize> {
        let slot = self.free_slots.pop()?;
        assert!(!self.slot_live[slot], "slot {slot} double-allocated");
        self.slot_live[slot] = true;
        self.tables[slot].clear();
        self.tokens[slot].clear();
        Some(slot)
    }

    fn info_mut(&mut self, b: usize) -> &mut Option<BlockInfo> {
        if self.info.len() <= b {
            self.info.resize_with(b + 1, || None);
        }
        &mut self.info[b]
    }

    fn registered(&self, b: usize) -> bool {
        self.info.get(b).is_some_and(|i| i.is_some())
    }

    /// Allocates a block, evicting cached prefixes only if the arena is
    /// dry. Returns `(block, evictions_performed)`.
    fn alloc_block(&mut self) -> (usize, u64) {
        let mut evicted = 0;
        loop {
            if let Some(b) = self.arena.alloc() {
                return (b, evicted);
            }
            let victim = self
                .cached
                .pop_front()
                .expect("paged KV arena exhausted with nothing cached — sizing invariant broken");
            self.unregister(victim);
            self.arena.reclaim(victim);
            self.evictions += 1;
            evicted += 1;
        }
    }

    fn unregister(&mut self, b: usize) {
        if let Some(info) = self.info_mut(b).take() {
            let key = prefix_hash(&info.prefix[..info.start]);
            if let Some(v) = self.by_parent.get_mut(&key) {
                v.retain(|&x| x != b);
            }
        }
    }

    fn register(&mut self, b: usize, start: usize, prefix: Vec<u32>) {
        debug_assert!(prefix.len() > start);
        debug_assert!(prefix.len() - start <= self.block);
        let key = prefix_hash(&prefix[..start]);
        *self.info_mut(b) = Some(BlockInfo { prefix, start });
        self.by_parent.entry(key).or_default().push(b);
    }

    /// Resolves prefix reuse for a newly admitted request: maps shared
    /// whole blocks, copies at the divergence block, and returns how many
    /// positions of the prompt are already present. Matching is capped at
    /// `prompt_len − 1`: the last prompt position is always recomputed so
    /// the request produces its first logits (and so sharers never write
    /// into a shared block).
    pub fn attach_prompt(&mut self, slot: usize, prompt: &[u32]) -> (AttachOutcome, PoolActivity) {
        assert!(self.slot_live[slot], "attach to a free slot");
        let mut out = AttachOutcome::default();
        let mut act = PoolActivity::default();
        if !self.prefix_reuse || prompt.len() < 2 {
            return (out, act);
        }
        let limit = prompt.len() - 1;
        loop {
            let start = self.tables[slot].len() * self.block;
            if start >= limit {
                break;
            }
            let want = (limit - start).min(self.block);
            // Deterministic candidate choice: longest verified match,
            // ties to the earliest-registered block.
            let key = prefix_hash(&prompt[..start]);
            let mut best: Option<(usize, usize)> = None; // (usable, block)
            if let Some(cands) = self.by_parent.get(&key) {
                for &b in cands {
                    let info = self.info[b].as_ref().expect("registered block has info");
                    if info.start != start || info.prefix[..start] != prompt[..start] {
                        continue;
                    }
                    let usable = info.prefix[start..]
                        .iter()
                        .zip(&prompt[start..start + want])
                        .take_while(|(a, b)| a == b)
                        .count();
                    if usable > best.map_or(0, |(u, _)| u) {
                        best = Some((usable, b));
                    }
                }
            }
            let Some((usable, b)) = best else { break };
            if usable == self.block {
                // Whole-block match: share read-only.
                self.arena.retain(b);
                // A reshared cached block leaves the eviction queue.
                if self.arena.refcount(b) == 1 {
                    self.cached.retain(|&x| x != b);
                }
                self.tables[slot].push(b);
                out.hit_rows += usable;
            } else {
                // Partial match: copy-on-write at the divergence point.
                // Pin the donor first — it may be sitting in the eviction
                // queue, and `alloc_block` must not reclaim it (and hand
                // it back as the copy destination) mid-copy.
                let donor_was_cached = self.arena.refcount(b) == 0;
                self.arena.retain(b);
                if donor_was_cached {
                    self.cached.retain(|&x| x != b);
                }
                let (nb, ev) = self.alloc_block();
                act.allocs += 1;
                act.evictions += ev;
                self.arena.copy_rows(nb, b, usable);
                if self.arena.release(b) == 0 {
                    self.cached.push_back(b);
                }
                self.tables[slot].push(nb);
                out.cow_rows += usable;
            }
            out.matched += usable;
            self.tokens[slot].extend_from_slice(&prompt[start..start + usable]);
            if usable < self.block {
                break;
            }
        }
        self.hit_rows += out.hit_rows as u64;
        self.cow_rows += out.cow_rows as u64;
        (out, act)
    }

    /// Ensures the block covering `pos` exists in `slot`'s page table
    /// (allocating on demand as `fed` crosses a block boundary).
    pub fn ensure(&mut self, slot: usize, pos: usize) -> PoolActivity {
        assert!(self.slot_live[slot], "ensure on a free slot");
        let mut act = PoolActivity::default();
        while self.tables[slot].len() * self.block <= pos {
            let (b, ev) = self.alloc_block();
            act.allocs += 1;
            act.evictions += ev;
            self.tables[slot].push(b);
        }
        act
    }

    /// Records the token fed at `pos` for `slot`. When the token
    /// completes a block, the block's rows are final and it is
    /// registered for prefix reuse.
    pub fn note_token(&mut self, slot: usize, pos: usize, token: u32) {
        debug_assert_eq!(self.tokens[slot].len(), pos, "token history out of step");
        self.tokens[slot].push(token);
        if !self.prefix_reuse || !(pos + 1).is_multiple_of(self.block) {
            return;
        }
        let b = self.tables[slot][pos / self.block];
        if !self.registered(b) {
            let start = (pos / self.block) * self.block;
            self.register(b, start, self.tokens[slot][..pos + 1].to_vec());
        }
    }

    /// Retires `slot`: drops its block references, keeping registered
    /// refcount-0 blocks in the LRU prefix cache (the partial tail block
    /// is registered on the way out so future requests can copy-on-write
    /// from it). Without prefix reuse every block is reclaimed.
    pub fn release_slot(&mut self, slot: usize) {
        assert!(self.slot_live[slot], "double free of slot {slot}");
        // Register the incomplete tail block before dropping ownership.
        if self.prefix_reuse {
            let filled_total = self.tokens[slot].len();
            if let Some(last) = self.tables[slot].len().checked_sub(1) {
                let b = self.tables[slot][last];
                let start = last * self.block;
                if !self.registered(b) && filled_total > start {
                    self.register(b, start, self.tokens[slot][..filled_total].to_vec());
                }
            }
        }
        let table = std::mem::take(&mut self.tables[slot]);
        for b in table {
            if self.arena.release(b) == 0 {
                if self.prefix_reuse && self.registered(b) {
                    self.cached.push_back(b);
                } else {
                    self.unregister(b);
                    self.arena.reclaim(b);
                }
            }
        }
        self.tokens[slot].clear();
        self.slot_live[slot] = false;
        self.free_slots.push(slot);
    }

    /// Lifetime meters (deterministic across ranks).
    pub fn meters(&self) -> KvMeters {
        let BlockArenaStats { alloc_bytes, live_bytes_peak, .. } = self.arena.stats();
        KvMeters {
            bytes_allocated: alloc_bytes,
            bytes_live_peak: live_bytes_peak,
            prefix_hit_rows: self.hit_rows,
            prefix_cow_rows: self.cow_rows,
            evictions: self.evictions,
        }
    }
}

impl KvArena for PagedPool {
    fn write_row(&mut self, layer: usize, slot: usize, pos: usize, k: &[f32], v: &[f32]) {
        let b = self.tables[slot][pos / self.block];
        debug_assert_eq!(self.arena.refcount(b), 1, "write into a shared block");
        self.arena.write_row(b, layer, pos % self.block, k, v);
    }

    fn k_row(&self, layer: usize, slot: usize, pos: usize) -> &[f32] {
        let b = self.tables[slot][pos / self.block];
        self.arena.k_row(b, layer, pos % self.block)
    }

    fn v_row(&self, layer: usize, slot: usize, pos: usize) -> &[f32] {
        let b = self.tables[slot][pos / self.block];
        self.arena.v_row(b, layer, pos % self.block)
    }
}

/// The engine's KV backing store: a slab or a paged pool behind one
/// interface, so the scheduler code is backend-agnostic and the decode
/// kernel (generic over [`KvArena`]) runs bitwise-identically on both.
pub enum KvPool {
    /// Pre-sized full-window slots.
    Slab(KvSlab),
    /// Demand-paged blocks with optional prefix reuse (boxed: the pool
    /// carries page tables and registries the slab variant doesn't).
    Paged(Box<PagedPool>),
}

impl KvPool {
    /// Builds the configured backend for `slots` concurrent requests.
    pub fn new(model: &ModelConfig, slots: usize, backend: KvBackend) -> KvPool {
        match backend {
            KvBackend::Slab => {
                KvPool::Slab(KvSlab::new(model.layers, slots, model.seq, model.hidden))
            }
            KvBackend::Paged { block, prefix_reuse } => {
                KvPool::Paged(Box::new(PagedPool::new(model, slots, block, prefix_reuse)))
            }
        }
    }

    /// Claims a slot, or `None` when the batch is full.
    pub fn alloc_slot(&mut self) -> Option<usize> {
        match self {
            KvPool::Slab(s) => s.alloc(),
            KvPool::Paged(p) => p.alloc_slot(),
        }
    }

    /// Retires a slot.
    pub fn release_slot(&mut self, slot: usize) {
        match self {
            KvPool::Slab(s) => s.release(slot),
            KvPool::Paged(p) => p.release_slot(slot),
        }
    }

    /// Prefix-reuse resolution for a new request (no-op on the slab).
    pub fn attach_prompt(&mut self, slot: usize, prompt: &[u32]) -> (AttachOutcome, PoolActivity) {
        match self {
            KvPool::Slab(_) => (AttachOutcome::default(), PoolActivity::default()),
            KvPool::Paged(p) => p.attach_prompt(slot, prompt),
        }
    }

    /// Demand-pages the block covering `pos` (no-op on the slab).
    pub fn ensure(&mut self, slot: usize, pos: usize) -> PoolActivity {
        match self {
            KvPool::Slab(_) => PoolActivity::default(),
            KvPool::Paged(p) => p.ensure(slot, pos),
        }
    }

    /// Token bookkeeping for prefix registration (no-op on the slab).
    pub fn note_token(&mut self, slot: usize, pos: usize, token: u32) {
        if let KvPool::Paged(p) = self {
            p.note_token(slot, pos, token);
        }
    }

    /// Bytes of the backing arena (slab window or paged capacity).
    pub fn arena_bytes(&self) -> u64 {
        match self {
            KvPool::Slab(s) => s.bytes(),
            KvPool::Paged(p) => p.arena_bytes(),
        }
    }

    /// Deterministic lifetime meters. The slab reports its fixed arena
    /// as both allocated and peak (every slot is materialized up front —
    /// exactly the accounting paged allocation improves on).
    pub fn meters(&self) -> KvMeters {
        match self {
            KvPool::Slab(s) => KvMeters {
                bytes_allocated: s.bytes(),
                bytes_live_peak: s.bytes(),
                ..KvMeters::default()
            },
            KvPool::Paged(p) => p.meters(),
        }
    }
}

impl KvArena for KvPool {
    fn write_row(&mut self, layer: usize, slot: usize, pos: usize, k: &[f32], v: &[f32]) {
        match self {
            KvPool::Slab(s) => KvArena::write_row(s, layer, slot, pos, k, v),
            KvPool::Paged(p) => KvArena::write_row(p.as_mut(), layer, slot, pos, k, v),
        }
    }

    fn k_row(&self, layer: usize, slot: usize, pos: usize) -> &[f32] {
        match self {
            KvPool::Slab(s) => KvArena::k_row(s, layer, slot, pos),
            KvPool::Paged(p) => KvArena::k_row(p.as_ref(), layer, slot, pos),
        }
    }

    fn v_row(&self, layer: usize, slot: usize, pos: usize) -> &[f32] {
        match self {
            KvPool::Slab(s) => KvArena::v_row(s, layer, slot, pos),
            KvPool::Paged(p) => KvArena::v_row(p.as_ref(), layer, slot, pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelConfig {
        ModelConfig { vocab: 32, seq: 16, hidden: 8, layers: 2, heads: 2 }
    }

    fn fill_positions(pool: &mut PagedPool, slot: usize, tokens: &[u32], from: usize) {
        for (pos, &t) in tokens.iter().enumerate().skip(from) {
            pool.ensure(slot, pos);
            let row = vec![t as f32 + pos as f32 * 0.25; 8];
            for l in 0..2 {
                KvArena::write_row(pool, l, slot, pos, &row, &row);
            }
            pool.note_token(slot, pos, t);
        }
    }

    #[test]
    fn blocks_page_in_on_demand_and_rows_round_trip() {
        let m = model();
        let mut pool = PagedPool::new(&m, 2, 4, false);
        let s = pool.alloc_slot().unwrap();
        let toks: Vec<u32> = (0..10).collect();
        fill_positions(&mut pool, s, &toks, 0);
        // 10 positions at block 4 → 3 blocks.
        assert_eq!(pool.tables[s].len(), 3);
        for (pos, &tok) in toks.iter().enumerate() {
            let want = [tok as f32 + pos as f32 * 0.25; 8];
            assert_eq!(KvArena::k_row(&pool, 1, s, pos), &want[..]);
        }
        pool.release_slot(s);
        // Reuse off: everything reclaimed, nothing cached.
        assert_eq!(pool.arena.live_blocks(), 0);
        assert!(pool.cached.is_empty());
    }

    #[test]
    fn whole_block_prefix_match_shares_read_only_blocks() {
        let m = model();
        let mut pool = PagedPool::new(&m, 2, 4, true);
        let s = pool.alloc_slot().unwrap();
        let prompt: Vec<u32> = (0..9).collect();
        fill_positions(&mut pool, s, &prompt, 0);
        pool.release_slot(s);
        // Two complete blocks (0..4, 4..8) + partial tail registered.
        assert_eq!(pool.cached.len(), 3);

        // Same prompt again: positions 0..8 shared, last position only.
        let s2 = pool.alloc_slot().unwrap();
        let (out, _) = pool.attach_prompt(s2, &prompt);
        assert_eq!(out, AttachOutcome { matched: 8, hit_rows: 8, cow_rows: 0 });
        // Shared rows are bitwise the donor's rows.
        let want = [3.0 + 3.0 * 0.25; 8];
        assert_eq!(KvArena::k_row(&pool, 0, s2, 3), &want[..]);
        // Only the last prompt position needs compute.
        fill_positions(&mut pool, s2, &prompt, 8);
        pool.release_slot(s2);
    }

    #[test]
    fn partial_match_copies_at_the_divergence_point() {
        let m = model();
        let mut pool = PagedPool::new(&m, 2, 4, true);
        let s = pool.alloc_slot().unwrap();
        let a: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7];
        fill_positions(&mut pool, s, &a, 0);
        pool.release_slot(s);

        // Diverges inside the first block after two shared positions.
        let s2 = pool.alloc_slot().unwrap();
        let b: Vec<u32> = vec![1, 2, 9, 9, 9, 9];
        let (out, _) = pool.attach_prompt(s2, &b);
        assert_eq!(out, AttachOutcome { matched: 2, hit_rows: 0, cow_rows: 2 });
        // Copied rows are bitwise the donor's…
        let want = [2.0 + 1.0 * 0.25; 8];
        assert_eq!(KvArena::k_row(&pool, 1, s2, 1), &want[..]);
        // …and the private copy is writable (refcount 1).
        fill_positions(&mut pool, s2, &b, 2);
        pool.release_slot(s2);
    }

    #[test]
    fn matching_is_verified_not_just_hashed() {
        let m = model();
        let mut pool = PagedPool::new(&m, 2, 4, true);
        let s = pool.alloc_slot().unwrap();
        fill_positions(&mut pool, s, &[5, 5, 5, 5, 5, 5], 0);
        pool.release_slot(s);
        let s2 = pool.alloc_slot().unwrap();
        // Different first block: no match at all (parent prefix differs
        // at block 1 as well, since the parent includes block 0).
        let (out, _) = pool.attach_prompt(s2, &[7, 5, 5, 5, 5, 5]);
        assert_eq!(out.matched, 0, "hash bucket hit but token verification must refuse");
        assert_eq!(out.hit_rows, 0);
        pool.release_slot(s2);
    }

    #[test]
    fn eviction_recycles_cached_blocks_oldest_first() {
        let m = ModelConfig { vocab: 32, seq: 8, hidden: 4, layers: 1, heads: 1 };
        // 1 slot × ⌈8/4⌉ = 2 blocks total.
        let mut pool = PagedPool::new(&m, 1, 4, true);
        let s = pool.alloc_slot().unwrap();
        for (pos, t) in [1u32, 2, 3, 4, 5, 6, 7, 8].iter().enumerate() {
            pool.ensure(s, pos);
            for l in 0..1 {
                let row = vec![*t as f32; 4];
                KvArena::write_row(&mut pool, l, s, pos, &row, &row);
            }
            pool.note_token(s, pos, *t);
        }
        pool.release_slot(s);
        assert_eq!(pool.cached.len(), 2);
        // A fresh non-matching request filling its whole window must
        // evict: capacity is 1·2 + 1 headroom = 3 blocks, 2 are cached,
        // and the new request needs 2 of its own.
        let s2 = pool.alloc_slot().unwrap();
        let (out, _) = pool.attach_prompt(s2, &[9, 9, 9, 9, 9]);
        assert_eq!(out.matched, 0);
        let mut allocs = 0;
        for pos in 0..8 {
            allocs += pool.ensure(s2, pos).allocs;
        }
        assert_eq!(allocs, 2);
        assert!(pool.meters().evictions >= 1, "cache eviction happened");
        pool.release_slot(s2);
    }

    #[test]
    fn meters_show_sharing_as_fewer_allocated_bytes() {
        let m = model();
        let prompt: Vec<u32> = (0..13).collect();
        let run = |reuse: bool| {
            let mut pool = PagedPool::new(&m, 2, 4, reuse);
            for _ in 0..3 {
                let s = pool.alloc_slot().unwrap();
                let (out, _) = pool.attach_prompt(s, &prompt);
                fill_positions(&mut pool, s, &prompt, out.matched);
                pool.release_slot(s);
            }
            pool.meters()
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with.bytes_allocated < without.bytes_allocated,
            "sharing must allocate strictly fewer bytes ({} vs {})",
            with.bytes_allocated,
            without.bytes_allocated
        );
        assert!(with.prefix_hit_rows > 0);
    }
}
