//! Model ↔ implementation conformance.
//!
//! The model checker (`zero_verify::modelcheck`) exhaustively
//! enumerates every reachable terminal outcome class of the protocol
//! models. These tests close the loop on the real primitives: the
//! actual [`ShutdownLatch`] and [`TimeoutBarrier`] are driven through
//! the critical schedules the checker found — shutdown before the
//! deadline, deadline expiring under live peers, depart racing the
//! deadline, and the timeout → withdraw → retry path — and every
//! observed outcome must lie inside the model's feasible classes. One
//! test also replays the *mutant's* minimal counterexample schedule
//! against the real barrier to show the shipped code does not exhibit
//! the bug the checker proved the mutant has.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use zero_comm::{ShutdownLatch, TimeoutBarrier};
use zero_verify::modelcheck::protocols::{BarrierModel, LatchModel, OK, TIMED_OUT};
use zero_verify::modelcheck::enumerate_final_states;

/// Plain (reduction-free) enumeration budget; far above the measured
/// plain state counts of the latch/barrier models at n ∈ {2, 3}.
const BUDGET: u64 = 2_000_000;

/// Feasible outcomes of the waiter thread (t0) in the latch model.
fn latch_waiter_classes(ranks: usize) -> BTreeSet<i64> {
    enumerate_final_states(&LatchModel { ranks }, BUDGET)
        .expect("latch enumeration must fit the budget")
        .iter()
        .map(|st| st.locals[0].regs[0])
        .collect()
}

/// Feasible per-rank outcome vectors of the barrier model.
fn barrier_classes(ranks: usize) -> BTreeSet<Vec<i64>> {
    let prog = BarrierModel { ranks, mutant_leak_withdraw: false };
    enumerate_final_states(&prog, BUDGET)
        .expect("barrier enumeration must fit the budget")
        .iter()
        .map(|st| (0..ranks).map(|t| st.locals[t].regs[0]).collect())
        .collect()
}

#[test]
fn real_shutdown_latch_realizes_every_model_outcome_class() {
    for ranks in [2usize, 3] {
        // The checker enumerates exactly two waiter outcomes: cancelled
        // early (all peers departed) or deadline expiry.
        let classes = latch_waiter_classes(ranks);
        assert_eq!(classes, BTreeSet::from([TIMED_OUT, OK]), "n={ranks}");

        // Class OK — the "shutdown before deadline" schedule: every
        // peer departs, then the waiter's deadline wait is cancelled.
        let latch = ShutdownLatch::new(ranks);
        for _ in 1..ranks {
            latch.depart();
        }
        assert!(
            latch.wait_sole_survivor(Instant::now() + Duration::from_secs(5)),
            "n={ranks}: wait after full shutdown must cancel early"
        );

        // Class TIMED_OUT — the checker's injected-timeout placement:
        // the deadline expires while peers are still live.
        let latch = ShutdownLatch::new(ranks);
        assert!(
            !latch.wait_sole_survivor(Instant::now() + Duration::from_millis(10)),
            "n={ranks}: wait with live peers must hit the deadline"
        );

        // The model's TIMED_OUT terminals keep the live count intact,
        // so the real latch must stay usable after an expired wait.
        for _ in 1..ranks {
            latch.depart();
        }
        assert!(
            latch.wait_sole_survivor(Instant::now() + Duration::from_secs(5)),
            "n={ranks}: latch must remain usable after a timed-out wait"
        );
    }
}

#[test]
fn real_shutdown_latch_survives_depart_racing_deadline() {
    // The schedule the checker calls critical: depart racing the
    // deadline. Real time cannot pin the exact interleaving, but with a
    // generous deadline the depart side must win and cancel the wait —
    // the model's OK class.
    let latch = ShutdownLatch::new(2);
    let peer = Arc::clone(&latch);
    let h = thread::spawn(move || {
        thread::sleep(Duration::from_millis(20));
        peer.depart();
    });
    let cancelled = latch.wait_sole_survivor(Instant::now() + Duration::from_secs(10));
    h.join().unwrap();
    assert!(cancelled, "a depart before the far deadline must cancel the wait");
}

#[test]
fn model_barrier_outcomes_are_all_ok_even_under_timeout() {
    // The checker's enumeration: with ≤ 1 injected timeout, withdraw +
    // retry keeps every terminal class all-OK — no rank is stranded and
    // no wave releases early. (The withdraw-leak mutant breaks exactly
    // this; the seeded mutation test in `modelcheck` proves the checker
    // catches it.)
    for ranks in [2usize, 3] {
        let classes = barrier_classes(ranks);
        assert!(!classes.is_empty(), "n={ranks}: no terminal state reached");
        for class in &classes {
            assert_eq!(class, &vec![OK; ranks], "n={ranks}: unexpected outcome class");
        }
    }
}

#[test]
fn real_timeout_barrier_follows_the_timeout_withdraw_retry_schedule() {
    // The model's only path through an injected timeout: arrive, time
    // out, withdraw, retry into a full wave that releases everyone.
    // Drive the real barrier through exactly that schedule.
    for n in [2usize, 3] {
        let b = Arc::new(TimeoutBarrier::new(n));
        // Solo arrival times out (the injected fault)...
        assert!(!b.wait_timeout(Duration::from_millis(10)), "n={n}: solo wait must expire");
        // ...and the withdraw left the count clean: a full wave of n
        // parties still releases. A leaked arrival would either release
        // a partial wave or strand the full one.
        let mut handles = Vec::new();
        for _ in 1..n {
            let peer = Arc::clone(&b);
            handles.push(thread::spawn(move || peer.wait_timeout(Duration::from_secs(10))));
        }
        assert!(b.wait_timeout(Duration::from_secs(10)), "n={n}: full wave must release");
        for h in handles {
            assert!(h.join().unwrap(), "n={n}: every party of the full wave must release");
        }
    }
}

#[test]
fn real_barrier_does_not_release_early_after_a_withdraw() {
    // The mutant's minimal counterexample schedule, replayed on the
    // real barrier: t0 arrives and times out (withdraws), then t1
    // arrives alone. Under the leaky mutant the stale count releases
    // t1's wave with only one rank inside; the shipped barrier must
    // instead leave t1 waiting until its own timeout.
    let b = TimeoutBarrier::new(2);
    assert!(!b.wait_timeout(Duration::from_millis(10)));
    assert!(
        !b.wait_timeout(Duration::from_millis(50)),
        "withdraw leaked an arrival: a lone rank was released"
    );
}
