//! Trace conformance: real training traffic ≡ the declarative plan.
//!
//! The schedule checker proves properties of [`CommPlan`] *statically*;
//! this test closes the loop at runtime. For one configuration per stage
//! (plus MP, hierarchical, checkpointed, and clipped variants) it runs
//! real multi-threaded training, then compares every rank's metered
//! fabric traffic — bytes **and** message counts, per collective kind —
//! against the analytic volume of the plans the engine installed. The
//! match must be exact: a single stray or missing message anywhere in
//! the run fails the test.

use zero_comm::{Grid, ALL_KINDS};
use zero_core::{
    run_training, CommPlan, StepShape, TrainSetup, ZeroConfig, ZeroStage,
};
use zero_model::{Layout, ModelConfig};

fn model() -> ModelConfig {
    ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 }
}

fn setup(zero: ZeroConfig, dp: usize, mp: usize) -> TrainSetup {
    TrainSetup {
        model: model(),
        zero,
        grid: Grid::new(dp, mp),
        global_batch: 2 * dp,
        seed: 11,
    }
}

/// Runs `steps` steps of `setup` and asserts every rank's recorded
/// traffic equals the summed analytic plan volume, byte for byte and
/// message for message.
fn assert_conformance(setup: &TrainSetup, steps: usize, eval_every: usize, what: &str) {
    let report = run_training(setup, steps, eval_every);
    assert_eq!(report.skipped.len(), steps, "{what}: steps run");

    let layout = Layout::build_mp(&setup.model, setup.grid.mp_degree());
    let local_batch = setup.global_batch / setup.grid.dp_degree();
    let act_elems = local_batch * setup.model.seq * setup.model.hidden;

    // Sum the plans the engine installed over the run: one train-step
    // plan per step (shaped by the step's observed skip flag) plus one
    // eval plan per validation pass.
    let mut plans: Vec<CommPlan> = report
        .skipped
        .iter()
        .map(|&skipped| {
            CommPlan::train_step(
                &layout,
                &setup.zero,
                setup.grid,
                &StepShape { micro_batches: 1, act_elems, skipped },
            )
        })
        .collect();
    for _ in 0..report.val_losses.len() {
        plans.push(CommPlan::eval_pass(&layout, &setup.zero, setup.grid, act_elems));
    }

    for rank_report in &report.ranks {
        let rank = rank_report.rank;
        let mut bytes = [0u64; zero_comm::KIND_COUNT];
        let mut messages = [0u64; zero_comm::KIND_COUNT];
        for plan in &plans {
            let b = plan.rank_bytes(rank);
            let m = plan.rank_messages(rank);
            for i in 0..zero_comm::KIND_COUNT {
                bytes[i] += b[i];
                messages[i] += m[i];
            }
        }
        for (i, kind) in ALL_KINDS.iter().enumerate() {
            assert_eq!(
                rank_report.traffic.bytes(*kind),
                bytes[i],
                "{what}: rank {rank} {kind:?} bytes diverge from plan"
            );
            assert_eq!(
                rank_report.traffic.messages(*kind),
                messages[i],
                "{what}: rank {rank} {kind:?} messages diverge from plan"
            );
        }
    }
}

#[test]
fn ddp_with_clipping_conforms() {
    let zero = ZeroConfig {
        bucket_elems: 512,
        clip_grad_norm: Some(1.0),
        ..ZeroConfig::fp32_exact(ZeroStage::Ddp)
    };
    assert_conformance(&setup(zero, 4, 1), 2, 0, "DDP dp=4 fp32 clip");
}

#[test]
fn ddp_hierarchical_conforms() {
    let zero = ZeroConfig {
        bucket_elems: 512,
        node_size: Some(2),
        ..ZeroConfig::fp32_exact(ZeroStage::Ddp)
    };
    assert_conformance(&setup(zero, 4, 1), 2, 0, "DDP dp=4 hier g=2");
}

#[test]
fn stage1_conforms() {
    let zero = ZeroConfig {
        bucket_elems: 512,
        ..ZeroConfig::fp32_exact(ZeroStage::One)
    };
    assert_conformance(&setup(zero, 3, 1), 2, 0, "ZeRO-1 dp=3 fp32");
}

#[test]
fn stage2_fp16_default_conforms() {
    // Default config: fp16 with a high initial loss scale, so early steps
    // are skipped by the scaler — exercising the skipped-step suffix.
    let zero = ZeroConfig {
        stage: ZeroStage::Two,
        bucket_elems: 512,
        ..ZeroConfig::default()
    };
    assert_conformance(&setup(zero, 4, 1), 3, 0, "ZeRO-2 dp=4 fp16 default");
}

#[test]
fn stage2_mp_checkpointed_pa_with_eval_conforms() {
    let zero = ZeroConfig {
        stage: ZeroStage::Two,
        bucket_elems: 512,
        checkpoint_activations: true,
        partition_activations: true,
        ..ZeroConfig::default()
    };
    assert_conformance(
        &setup(zero, 2, 2),
        2,
        1,
        "ZeRO-2 dp=2 mp=2 ckpt+Pa eval",
    );
}

#[test]
fn stage3_with_clipping_conforms() {
    let zero = ZeroConfig {
        bucket_elems: 512,
        clip_grad_norm: Some(1.0),
        ..ZeroConfig::fp32_exact(ZeroStage::Three)
    };
    assert_conformance(&setup(zero, 4, 1), 2, 0, "ZeRO-3 dp=4 fp32 clip");
}

#[test]
fn stage3_mp_conforms() {
    let zero = ZeroConfig {
        bucket_elems: 512,
        ..ZeroConfig::fp32_exact(ZeroStage::Three)
    };
    assert_conformance(&setup(zero, 2, 2), 2, 0, "ZeRO-3 dp=2 mp=2 fp32");
}
