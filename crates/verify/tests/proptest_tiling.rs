//! Property tests extending the shard-tiling prover to arbitrary sizes:
//! for any `(total, n)`, the partition invariants hold, and for any
//! subrange the per-owner intersections tile it exactly.

use proptest::prelude::*;
use zero_core::Partitioner;

proptest! {
    #[test]
    fn tiling_invariants_hold(total in 0usize..200_000, n in 1usize..128) {
        let p = Partitioner::new(total, n);
        prop_assert!(p.verify_tiling().is_ok(), "{:?}", p.verify_tiling());
    }

    #[test]
    fn intersections_tile_any_subrange(
        total in 1usize..100_000,
        n in 1usize..64,
        a in 0usize..100_000,
        b in 0usize..100_000,
    ) {
        let lo = a.min(b) % total;
        let hi = lo + (a.max(b) % (total - lo).max(1));
        let range = lo..hi.min(total);
        let p = Partitioner::new(total, n);
        let counts = p.intersect_counts(&range);
        // Counts sum to the range length…
        prop_assert_eq!(counts.iter().sum::<usize>(), range.len());
        // …and the owners' pieces are contiguous in owner order.
        let mut covered = range.start;
        for (i, &cnt) in counts.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            let local = p.local_slice_of(i, &range);
            prop_assert_eq!(local.len(), cnt);
            let global_lo = p.shard_range(i).start + local.start;
            prop_assert_eq!(global_lo, covered);
            covered += cnt;
        }
        prop_assert_eq!(covered, range.end);
    }

    #[test]
    fn every_element_owned_exactly_once(total in 1usize..4_000, n in 1usize..32) {
        let p = Partitioner::new(total, n);
        let mut seen = vec![0u8; total];
        for i in 0..n {
            for idx in p.shard_range(i) {
                seen[idx] += 1;
                prop_assert_eq!(p.owner_of(idx), i);
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }
}
