//! # zero-verify
//!
//! Static verification for the ZeRO reproduction — three passes that
//! prove schedule- and layout-level properties **without running a single
//! training step**:
//!
//! 1. [`schedule`] — the collective-schedule checker. Builds the engine's
//!    declarative [`zero_core::CommPlan`] for every stage × grid
//!    combination, resolves it for every rank, and proves rank-symmetry
//!    (deadlock-freedom), group-membership consistency, and per-rank byte
//!    volumes matching the paper's §7 formulas (2Ψ·(N−1)/N for DDP and
//!    stages 1–2, ≤ 3Ψ for stage 3) by exact telescoping identities.
//! 2. [`tiling`] — the shard-tiling prover. Shows the flat-space
//!    partition is exhaustive and disjoint (every element owned by
//!    exactly one rank, padding accounted) for arbitrary N, and that
//!    layer-range intersections tile every unit exactly.
//! 3. [`lint`] — the workspace lint. Scans non-test code of `zero-comm`
//!    and `zero-core` for banned patterns: `unwrap()`/`expect()` on
//!    communication results, untimed `recv()`, lossy `as` casts in byte
//!    accounting, and raw integer casts near quantization codes.
//! 4. [`compression`] — the ZeRO++ compression prover. Sweeps every
//!    qwZ/hpZ/qgZ lever combination across stages 2–3 and node shapes,
//!    independently recomputes every compressed op's wire bytes, proves
//!    levers-off plans bitwise identical to the baseline, and certifies
//!    the analytic inter-node volume reduction (≥ 3.5× at stage 3 with
//!    all levers on, N ≥ 4, G ≥ 2).
//! 5. [`offload`] — the memory-tier offload prover. Sweeps stages 1–3 ×
//!    N × sync/overlap × precision, proves every tier movement's
//!    prefetch window (`issue_pos ≤ demand_pos`, open under overlap),
//!    pairs each movement byte-exactly with its anchor collective,
//!    telescopes spill/publish volumes against the partition, and shows
//!    offloaded plans keep a collective stream bitwise identical to the
//!    tier-off baseline.
//!
//! The runtime side of the same guarantee lives in [`tracecheck`] and the
//! trace-conformance tests (`tests/trace_conformance.rs`): a recorded
//! [`zero_trace::StepTimeline`] must reconcile exactly — span counts and
//! byte tags — with the plan's analytic volume model and the traffic
//! counters `zero-comm` metered during real training.

pub mod compression;
pub mod lint;
pub mod modelcheck;
pub mod offload;
pub mod schedule;
pub mod tiling;
pub mod tracecheck;

pub use compression::{check_compression, CompressionReport, RatioRow};
pub use offload::{check_offload, OffloadReport};
pub use lint::{lint_paths, LintHit, LintReport};
pub use modelcheck::{run_modelcheck, ModelcheckReport, ScenarioOutcome};
pub use schedule::{check_all as check_schedules, ScheduleReport};
pub use tiling::{prove_all as prove_tiling, TilingReport};
pub use tracecheck::{check_timeline, TraceExpectation, TIER_LABELS};
