//! The shard-tiling prover.
//!
//! ZeRO partitions the flat parameter space into N_d shards and carves
//! every layer's range into per-owner pieces. The correctness of every
//! variable-count collective in the engine rests on two tiling facts:
//!
//! * the shards are **exhaustive and disjoint** — every flat element is
//!   owned by exactly one rank, with the balanced-uneven padding
//!   accounted (shard lengths differ by at most one);
//! * layer-range intersections **tile each unit exactly** — for any unit
//!   the per-owner counts sum to the unit length and the owners' local
//!   slices are consistent with those counts.
//!
//! [`prove_all`] checks both for a sweep of sizes far wider than any
//! training run uses, plus every real model layout; the property tests in
//! `tests/proptest_tiling.rs` extend the sweep to arbitrary `(total, n)`.

use zero_core::Partitioner;
use zero_model::{Layout, ModelConfig};

/// Counters describing how much the prover covered.
#[derive(Clone, Copy, Debug, Default)]
pub struct TilingReport {
    /// Distinct `(total, n)` partitions proven.
    pub partitions: usize,
    /// Flat elements covered across all proven partitions.
    pub elements: u64,
    /// Layout units whose intersections were shown to tile exactly.
    pub units: usize,
}

/// Exhaustive per-element ownership check: every index belongs to exactly
/// one shard and `owner_of` names it.
fn prove_ownership_exhaustive(total: usize, n: usize) -> Result<(), String> {
    let p = Partitioner::new(total, n);
    for idx in 0..total {
        let o = p.owner_of(idx);
        let mut holders = 0;
        for i in 0..n {
            if p.shard_range(i).contains(&idx) {
                holders += 1;
                if i != o {
                    return Err(format!(
                        "element {idx} lies in shard {i} but owner_of says {o} \
                         (total={total}, n={n})"
                    ));
                }
            }
        }
        if holders != 1 {
            return Err(format!(
                "element {idx} held by {holders} shards (total={total}, n={n})"
            ));
        }
    }
    Ok(())
}

/// Proves a model layout's unit ranges are tiled exactly by the
/// per-owner intersections, for every dp degree in `1..=max_n`.
fn prove_layout(layout: &Layout, max_n: usize, report: &mut TilingReport) -> Result<(), String> {
    let psi = layout.total_params();
    for n in 1..=max_n {
        let p = Partitioner::new(psi, n);
        p.verify_tiling()?;
        report.partitions += 1;
        report.elements += psi as u64;
        for (ui, unit) in layout.units().iter().enumerate() {
            let counts = p.intersect_counts(&unit.range);
            if counts.iter().sum::<usize>() != unit.range.len() {
                return Err(format!(
                    "unit {ui} ({:?}): intersections sum to {} ≠ unit length {} \
                     (Ψ={psi}, n={n})",
                    unit.range,
                    counts.iter().sum::<usize>(),
                    unit.range.len()
                ));
            }
            // The owners' local slices must agree with the counts and tile
            // the unit contiguously in owner order.
            let mut covered = unit.range.start;
            for (i, &cnt) in counts.iter().enumerate() {
                let local = p.local_slice_of(i, &unit.range);
                if local.len() != cnt {
                    return Err(format!(
                        "unit {ui}, owner {i}: local slice {local:?} has {} elements \
                         but intersect_counts says {cnt} (Ψ={psi}, n={n})",
                        local.len()
                    ));
                }
                if cnt > 0 {
                    let global_lo = p.shard_range(i).start + local.start;
                    if global_lo != covered {
                        return Err(format!(
                            "unit {ui}, owner {i}: piece starts at {global_lo} but \
                             coverage reached {covered} (Ψ={psi}, n={n})"
                        ));
                    }
                    covered += cnt;
                }
            }
            if covered != unit.range.end {
                return Err(format!(
                    "unit {ui}: pieces cover ..{covered}, unit ends at {} (Ψ={psi}, n={n})",
                    unit.range.end
                ));
            }
            report.units += 1;
        }
    }
    Ok(())
}

/// Runs the full tiling sweep: synthetic sizes, exhaustive small cases,
/// and every real model layout (including MP-sliced ones).
pub fn prove_all() -> Result<TilingReport, String> {
    let mut report = TilingReport::default();

    // Synthetic sweep: invariants for sizes spanning six orders of
    // magnitude, n up to 64 ranks.
    for total in [0usize, 1, 2, 3, 5, 16, 97, 1000, 12345, 1 << 20] {
        for n in 1..=64 {
            let p = Partitioner::new(total, n);
            p.verify_tiling()?;
            report.partitions += 1;
            report.elements += total as u64;
        }
    }

    // Exhaustive per-element ownership for every small case.
    for total in 0..=128 {
        for n in 1..=12 {
            prove_ownership_exhaustive(total, n)?;
            report.partitions += 1;
            report.elements += total as u64;
        }
    }

    // Real layouts: the test model and a wider one, flat and MP-sliced.
    let models = [
        ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 },
        ModelConfig { vocab: 64, seq: 16, hidden: 32, layers: 3, heads: 4 },
    ];
    for m in &models {
        prove_layout(&Layout::build(m), 8, &mut report)?;
        prove_layout(&Layout::build_mp(m, 2), 8, &mut report)?;
    }

    // hpZ secondary partitions: for every (N, G) node shape the engine
    // accepts, the node-local partition over G slots must tile the flat
    // space just like the primary over N — every unit's node-scope
    // refetch counts rest on it. Primary and secondary are independent
    // tilings of the same space; prove both plus the per-unit secondary
    // intersections.
    for m in &models {
        let layout = Layout::build(m);
        for (n, g) in [(2usize, 2usize), (4, 2), (4, 4), (8, 2), (8, 4)] {
            debug_assert!(n.is_multiple_of(g));
            prove_secondary(&layout, n, g, &mut report)?;
        }
    }

    Ok(report)
}

/// Proves the hpZ secondary partition for one (N, G) world: the G-way
/// node-local partition tiles the flat space, every unit's secondary
/// intersection counts sum to the unit length (the node-scope all-gather
/// contract), and the primary + secondary tilings cover each element the
/// same number of times (once each).
fn prove_secondary(
    layout: &Layout,
    n: usize,
    g: usize,
    report: &mut TilingReport,
) -> Result<(), String> {
    let psi = layout.total_params();
    let primary = Partitioner::new(psi, n);
    let secondary = Partitioner::new(psi, g);
    primary.verify_tiling()?;
    secondary.verify_tiling()?;
    report.partitions += 2;
    report.elements += 2 * psi as u64;
    for (ui, unit) in layout.units().iter().enumerate() {
        let counts = secondary.intersect_counts(&unit.range);
        if counts.iter().sum::<usize>() != unit.range.len() {
            return Err(format!(
                "hpZ unit {ui} ({:?}): secondary intersections sum to {} ≠ unit \
                 length {} (Ψ={psi}, N={n}, G={g})",
                unit.range,
                counts.iter().sum::<usize>(),
                unit.range.len()
            ));
        }
        report.units += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sweep_passes() {
        let r = prove_all().expect("tiling proof");
        assert!(r.partitions > 2000, "covered {} partitions", r.partitions);
        assert!(r.units > 0);
    }
}
