//! The workspace lint.
//!
//! Scans the non-test Rust sources of the communication and engine
//! crates for patterns that the fault-injection work showed to be
//! reliability hazards:
//!
//! * **`comm-unwrap`** — `.unwrap()` or `.expect(` on the same line as a
//!   communication call. A fabric error must surface as a typed
//!   [`zero_comm::CommError`], not a panic that deadlocks the peers still
//!   waiting inside the collective.
//! * **`untimed-recv`** — a bare `.recv()` on a channel. Blocking forever
//!   on a dead peer is exactly the failure mode elastic training guards
//!   against; use `recv_timeout`.
//! * **`lossy-byte-cast`** — a narrowing `as` cast on a line doing byte
//!   accounting. Traffic counters are `u64`; truncating them silently
//!   invalidates every volume identity the schedule checker proves.
//! * **`lossy-quant-cast`** — a narrowing `as` cast to a small integer on
//!   a line doing quantization. Codes must be produced by the checked
//!   clamp-and-round helpers; a raw `as i8`/`as u8` silently wraps
//!   out-of-range values and corrupts the compressed wire format instead
//!   of saturating it.
//! * **`blocking-flush`** — a *blocking* collective wrapper called inside
//!   a gradient-bucket flush closure (`bucket.push(…)` / `.flush_all(…)`
//!   call regions). Flush closures are the single code path for both
//!   synchronous and overlapped execution: they must launch the
//!   reduce-scatter through the non-blocking `start_*` API (the sync
//!   mode waits the returned handle inline, the overlap mode parks it),
//!   so a direct `.reduce_scatter(…)` there silently forfeits
//!   backward/communication overlap.
//! * **`condvar-wait-unlooped`** — a `Condvar` `wait(…)`/`wait_timeout(…)`
//!   call outside a `while`/`loop` body. Condvar waits wake spuriously
//!   and can race a notify against the predicate check, so the wait must
//!   sit inside a loop that re-checks its predicate — exactly the shape
//!   `zero-verify --pass modelcheck` proves correct for the shutdown
//!   latch and timeout barrier. A bare `if`-guarded wait is a latent lost
//!   wakeup.
//!
//! The scanner masks comments, strings, and char literals before
//! matching, and skips `#[cfg(test)]` regions, so the rules fire only on
//! compiled production code. A deliberate exception is declared next to
//! the code it excuses: `// verify:allow(rule-name)` on the same line.
//! An exception whose rule does *not* fire on that line is reported as a
//! non-failing warning, so stale allows are cleaned up instead of
//! silently masking the next real regression.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Clone, Debug)]
pub struct LintHit {
    /// File containing the violation.
    pub file: PathBuf,
    /// 1-based line number.
    pub line_no: usize,
    /// Rule identifier (`comm-unwrap`, `untimed-recv`, `lossy-byte-cast`,
    /// `lossy-quant-cast`, `blocking-flush`, `condvar-wait-unlooped`).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub line_text: String,
}

impl fmt::Display for LintHit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line_no,
            self.rule,
            self.line_text
        )
    }
}

/// Result of a lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All violations found, in path order.
    pub hits: Vec<LintHit>,
    /// Non-failing diagnostics: stale `verify:allow(rule)` exceptions
    /// whose rule did not fire on that line (including unknown rule
    /// names). Rendered `file:line: message`.
    pub warnings: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when no rule fired. Warnings do not fail the pass.
    pub fn is_clean(&self) -> bool {
        self.hits.is_empty()
    }
}

/// Every rule the scanner knows; a `verify:allow` naming anything else
/// is warned about as unknown.
pub const RULES: &[&str] = &[
    "comm-unwrap",
    "untimed-recv",
    "lossy-byte-cast",
    "lossy-quant-cast",
    "blocking-flush",
    "condvar-wait-unlooped",
];

/// Calls that talk to the fabric; an `unwrap`/`expect` on the same line
/// as one of these is a `comm-unwrap` hit.
const COMM_TOKENS: &[&str] = &[
    "all_reduce",
    "reduce_scatter",
    "all_gather",
    "broadcast",
    "send_raw",
    "recv_raw",
    "barrier",
    "local_index",
    "all_to_all",
    "gather_in",
    "scatter_in",
    "hierarchical_all_reduce",
    // Transport-fabric entry points (trait methods and the socket
    // backend's frame writer): a panic here severs the wire mid-frame
    // and every peer observes PeerLost instead of the real error.
    "send_msg",
    "recv_msg",
    "write_frame",
];

/// Blocking collective entry points (the synchronous wrappers). The
/// `start_…` variants deliberately do not match: inside a flush closure
/// the non-blocking launch is exactly what the rule demands, and waiting
/// the returned handle inline is still legal for synchronous mode.
const BLOCKING_TOKENS: &[&str] = &[
    ".all_reduce(",
    ".reduce_scatter(",
    ".reduce_scatter_var(",
    ".all_gather(",
    ".all_gather_var(",
    ".broadcast(",
    ".barrier(",
    ".all_to_all(",
    ".hierarchical_all_reduce(",
];

/// Replaces comments, string literals, and char literals with spaces
/// (newlines preserved) so pattern matching cannot fire inside them.
fn mask_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.push(b' ');
                out.push(b' ');
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string: r"…", r#"…"#, r##"…"##, …
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    i = j + 1;
                    out.resize(out.len() + (i - start), b' ');
                    loop {
                        if i >= b.len() {
                            break;
                        }
                        if b[i] == b'"' && b[i + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes {
                            out.resize(out.len() + 1 + hashes, b' ');
                            i += 1 + hashes;
                            break;
                        }
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                } else {
                    // `r` identifier prefix that wasn't a raw string.
                    out.push(b[i]);
                    i += 1;
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a lifetime is '\'' followed by an
                // identifier with no closing quote within a few bytes.
                let is_char = if i + 1 < b.len() && b[i + 1] == b'\\' {
                    true
                } else {
                    i + 2 < b.len() && b[i + 2] == b'\''
                };
                if is_char {
                    out.push(b' ');
                    i += 1;
                    while i < b.len() {
                        if b[i] == b'\\' && i + 1 < b.len() {
                            out.push(b' ');
                            out.push(b' ');
                            i += 2;
                        } else if b[i] == b'\'' {
                            out.push(b' ');
                            i += 1;
                            break;
                        } else {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Marks lines inside `#[cfg(test)]`-attributed items (brace-matched) so
/// the rules only see production code.
fn test_region_mask(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut in_test = vec![false; lines.len()];
    let mut li = 0;
    while li < lines.len() {
        if lines[li].contains("#[cfg(test)]") {
            // Find the opening brace of the attributed item, then skip to
            // its matching close, marking everything in between.
            let mut depth = 0usize;
            let mut opened = false;
            let mut lj = li;
            'scan: while lj < lines.len() {
                in_test[lj] = true;
                for ch in lines[lj].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break 'scan;
                            }
                        }
                        _ => {}
                    }
                }
                lj += 1;
            }
            li = lj + 1;
        } else {
            li += 1;
        }
    }
    in_test
}

/// Marks lines inside gradient-bucket flush call regions: from a line
/// containing `bucket.push(` or `.flush_all(` through the paren-matched
/// end of that call (the flush closure lives inside the argument list).
fn flush_region_mask(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut in_flush = vec![false; lines.len()];
    let mut li = 0;
    while li < lines.len() {
        let open = ["bucket.push(", ".flush_all("]
            .iter()
            .filter_map(|t| lines[li].find(t).map(|p| p + t.len() - 1))
            .min();
        let Some(open) = open else {
            li += 1;
            continue;
        };
        let mut depth = 0usize;
        let mut lj = li;
        let mut col = open;
        'scan: while lj < lines.len() {
            in_flush[lj] = true;
            let b = lines[lj].as_bytes();
            while col < b.len() {
                match b[col] {
                    b'(' => depth += 1,
                    b')' => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break 'scan;
                        }
                    }
                    _ => {}
                }
                col += 1;
            }
            lj += 1;
            col = 0;
        }
        li = lj + 1;
    }
    in_flush
}

/// Finds a word-boundary occurrence of `kw` in `line`.
fn find_keyword(line: &str, kw: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(p) = line[from..].find(kw).map(|p| p + from) {
        let before_ok = p == 0 || !(b[p - 1].is_ascii_alphanumeric() || b[p - 1] == b'_');
        let after = p + kw.len();
        let after_ok = after >= b.len() || !(b[after].is_ascii_alphanumeric() || b[after] == b'_');
        if before_ok && after_ok {
            return Some(p);
        }
        from = p + kw.len();
    }
    None
}

/// Marks lines inside `while`/`loop` constructs (header through the
/// brace-matched end of the body) — the regions where a condvar wait
/// participates in a predicate re-check loop. Nested loops are marked
/// independently, so overlapping regions are simply unioned.
fn loop_region_mask(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut in_loop = vec![false; lines.len()];
    for li in 0..lines.len() {
        let kw = ["while", "loop"].iter().filter_map(|k| find_keyword(lines[li], k)).min();
        let Some(kw) = kw else { continue };
        let mut depth = 0usize;
        let mut opened = false;
        let mut lj = li;
        let mut col = kw;
        'scan: while lj < lines.len() {
            in_loop[lj] = true;
            let b = lines[lj].as_bytes();
            while col < b.len() {
                match b[col] {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            break 'scan;
                        }
                    }
                    _ => {}
                }
                col += 1;
            }
            lj += 1;
            col = 0;
        }
    }
    in_loop
}

/// True when the line calls `wait(…)`/`wait_timeout(…)` on a receiver
/// that looks like a condvar (`cv`, `cvar`, `cond`, `condvar`, with or
/// without a `self.`/field path prefix). `wait_while` embeds its own
/// predicate loop and is deliberately not matched.
fn condvar_wait(line: &str) -> bool {
    let b = line.as_bytes();
    for recv in ["cv", "cvar", "cond", "condvar"] {
        for call in ["wait(", "wait_timeout("] {
            let pat = format!("{recv}.{call}");
            let mut from = 0;
            while let Some(p) = line[from..].find(&pat).map(|p| p + from) {
                let boundary =
                    p == 0 || !(b[p - 1].is_ascii_alphanumeric() || b[p - 1] == b'_');
                if boundary {
                    return true;
                }
                from = p + pat.len();
            }
        }
    }
    false
}

/// Extracts every `verify:allow(rule)` annotation on the (unmasked) line.
fn allow_annotations(original: &str) -> Vec<&str> {
    const MARK: &str = "verify:allow(";
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = original[from..].find(MARK).map(|p| p + from) {
        let start = p + MARK.len();
        let Some(end) = original[start..].find(')').map(|e| e + start) else { break };
        out.push(&original[start..end]);
        from = end + 1;
    }
    out
}

fn narrowing_cast(line: &str) -> bool {
    ["as u32", "as u16", "as u8", "as i32", "as i16", "as f32"]
        .iter()
        .any(|p| line.contains(&format!(" {p}")) || line.ends_with(p))
}

/// Lints one file's contents. `path` is used for hit reporting only.
fn lint_source(path: &Path, src: &str, report: &mut LintReport) {
    let masked = mask_source(src);
    let in_test = test_region_mask(&masked);
    let in_flush = flush_region_mask(&masked);
    let in_loop = loop_region_mask(&masked);
    let originals: Vec<&str> = src.lines().collect();
    for (idx, line) in masked.lines().enumerate() {
        if in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let original = originals.get(idx).copied().unwrap_or("");

        // First decide what fires on this line, then reconcile against
        // the line's `verify:allow` annotations: a fired+allowed rule is
        // suppressed, a fired rule without an allow is a hit, and an
        // allow whose rule never fired is a stale exception (warning).
        let mut fired: Vec<&'static str> = Vec::new();
        let has_panic = line.contains(".unwrap()") || line.contains(".expect(");
        if has_panic && COMM_TOKENS.iter().any(|t| line.contains(t)) {
            fired.push("comm-unwrap");
        }
        if line.contains(".recv()") {
            fired.push("untimed-recv");
        }
        if line.contains("bytes") && narrowing_cast(line) {
            fired.push("lossy-byte-cast");
        }
        if line.contains("quant")
            && [" as i8", " as u8", " as i16", " as u16"].iter().any(|p| line.contains(p))
        {
            fired.push("lossy-quant-cast");
        }
        if in_flush.get(idx).copied().unwrap_or(false)
            && BLOCKING_TOKENS.iter().any(|t| line.contains(t))
        {
            fired.push("blocking-flush");
        }
        if condvar_wait(line) && !in_loop.get(idx).copied().unwrap_or(false) {
            fired.push("condvar-wait-unlooped");
        }

        let allows = allow_annotations(original);
        for &rule in &fired {
            if allows.contains(&rule) {
                continue;
            }
            report.hits.push(LintHit {
                file: path.to_path_buf(),
                line_no: idx + 1,
                rule,
                line_text: original.trim().to_string(),
            });
        }
        for allow in allows {
            if fired.contains(&allow) {
                continue;
            }
            let known = RULES.contains(&allow);
            report.warnings.push(format!(
                "{}:{}: {} exception verify:allow({allow}) — rule {}",
                path.display(),
                idx + 1,
                if known { "stale" } else { "unknown-rule" },
                if known { "did not fire on this line" } else { "does not exist" },
            ));
        }
    }
    report.files_scanned += 1;
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under the given roots (recursively).
///
/// Unreadable paths are reported as synthetic hits rather than silently
/// skipped, so a mistyped root cannot produce a vacuous pass.
pub fn lint_paths(roots: &[&Path]) -> LintReport {
    let mut report = LintReport::default();
    for root in roots {
        let mut files = Vec::new();
        if let Err(e) = walk(root, &mut files) {
            report.hits.push(LintHit {
                file: root.to_path_buf(),
                line_no: 0,
                rule: "unreadable-path",
                line_text: e.to_string(),
            });
            continue;
        }
        for file in files {
            match std::fs::read_to_string(&file) {
                Ok(src) => lint_source(&file, &src, &mut report),
                Err(e) => report.hits.push(LintHit {
                    file,
                    line_no: 0,
                    rule: "unreadable-path",
                    line_text: e.to_string(),
                }),
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_report(src: &str) -> LintReport {
        let mut report = LintReport::default();
        lint_source(Path::new("mem.rs"), src, &mut report);
        report
    }

    fn lint_str(src: &str) -> Vec<&'static str> {
        lint_report(src).hits.into_iter().map(|h| h.rule).collect()
    }

    #[test]
    fn flags_unwrap_on_comm_call() {
        let src = "fn f() { comm.all_reduce(&mut v, op, group).unwrap(); }\n";
        assert_eq!(lint_str(src), vec!["comm-unwrap"]);
        let src = "fn f() { group.local_index(rank).expect(\"not in group\"); }\n";
        assert_eq!(lint_str(src), vec!["comm-unwrap"]);
    }

    #[test]
    fn flags_unwrap_on_transport_calls() {
        // The process-fabric entry points are comm tokens too.
        let src = "fn f() { link.send_msg(dst, msg).unwrap(); }\n";
        assert_eq!(lint_str(src), vec!["comm-unwrap"]);
        let src = "fn f() { let m = link.recv_msg(src, t).expect(\"recv\"); }\n";
        assert_eq!(lint_str(src), vec!["comm-unwrap"]);
        let src = "fn f() { write_frame(&writer, &frame).unwrap(); }\n";
        assert_eq!(lint_str(src), vec!["comm-unwrap"]);
    }

    #[test]
    fn ignores_unwrap_off_comm_paths() {
        let src = "fn f() { let x = maybe_value().unwrap(); }\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn flags_untimed_recv_and_allows_escape() {
        assert_eq!(lint_str("fn f() { let m = rx.recv(); }\n"), vec!["untimed-recv"]);
        assert!(lint_str(
            "fn f() { let m = rx.recv(); } // verify:allow(untimed-recv)\n"
        )
        .is_empty());
        assert!(lint_str("fn f() { let m = rx.recv_timeout(d); }\n").is_empty());
    }

    #[test]
    fn flags_lossy_byte_cast() {
        assert_eq!(
            lint_str("fn f(bytes: u64) -> u32 { bytes as u32 }\n"),
            vec!["lossy-byte-cast"]
        );
        assert!(lint_str("fn f(bytes: u64) -> f64 { bytes as f64 }\n").is_empty());
    }

    #[test]
    fn masked_regions_do_not_fire() {
        // In a comment, a string, and inside #[cfg(test)].
        assert!(lint_str("// comm.all_reduce(x).unwrap()\n").is_empty());
        assert!(lint_str("fn f() { let s = \"rx.recv()\"; }\n").is_empty());
        let src = "#[cfg(test)]\nmod tests {\n  fn g() { comm.barrier(g).unwrap(); }\n}\nfn h() {}\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn flags_blocking_collective_in_flush_closure() {
        // A blocking reduce-scatter inside the flush closure forfeits
        // overlap — the comm-unwrap on the same line fires too.
        let src = "fn f() {\n  bucket.push(r, g, &mut |r, fused| {\n    \
                   comm.reduce_scatter_var(g, fused, op, &c, p).unwrap();\n  });\n}\n";
        assert_eq!(lint_str(src), vec!["comm-unwrap", "blocking-flush"]);
        let src = "fn f() {\n  bucket.flush_all(&mut |r, fused| {\n    \
                   let x = comm.all_reduce(g, fused, op);\n  });\n}\n";
        assert_eq!(lint_str(src), vec!["blocking-flush"]);
    }

    #[test]
    fn nonblocking_launch_in_flush_closure_is_clean() {
        // The start_* launch (and waiting its handle inline, which is
        // how synchronous mode runs) is exactly what the rule demands.
        let src = "fn f() {\n  bucket.push(r, g, &mut |r, fused| {\n    \
                   let p = comm.start_reduce_scatter_var(g, fused, op, &c, pr);\n    \
                   let out = p.wait();\n  });\n}\n";
        assert!(lint_str(src).is_empty());
        // Blocking collectives *outside* any flush region stay legal.
        let src = "fn f() { let x = comm.all_reduce(g, v, op); }\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn raw_strings_and_chars_are_masked() {
        assert!(lint_str("fn f() { let s = r#\"rx.recv()\"#; }\n").is_empty());
        assert!(lint_str("fn f() { let c = '\"'; let d = rx.recv_timeout(t); }\n").is_empty());
    }

    #[test]
    fn flags_unlooped_condvar_wait() {
        // An if-guarded (or bare) wait is a latent lost wakeup.
        let src = "fn f() { let g = self.cv.wait(guard); }\n";
        assert_eq!(lint_str(src), vec!["condvar-wait-unlooped"]);
        let src = "fn f() { if !done { let g = cvar.wait_timeout(guard, d); } }\n";
        assert_eq!(lint_str(src), vec!["condvar-wait-unlooped"]);
    }

    #[test]
    fn looped_condvar_wait_is_clean() {
        // The shapes the real ShutdownLatch / TimeoutBarrier use.
        let src = "fn f() {\n  while !latch::sole_survivor(*live) {\n    \
                   let (g, _) = self.cv.wait_timeout(live, d).unwrap_or_else(|p| p.into_inner());\n    \
                   live = g;\n  }\n}\n";
        assert!(lint_str(src).is_empty());
        let src = "fn f() {\n  loop {\n    if s.released(gen) { break; }\n    \
                   s = cv.wait(s);\n  }\n}\n";
        assert!(lint_str(src).is_empty());
        // `wait_while` embeds the predicate re-check internally.
        assert!(lint_str("fn f() { let g = cv.wait_while(g, |s| !s.done); }\n").is_empty());
        // A non-condvar `.wait()` (pending-op handles) is out of scope.
        assert!(lint_str("fn f() { let out = pending.wait(); }\n").is_empty());
        // Word boundary: `second.wait_timeout(` is not a condvar match.
        assert!(lint_str("fn f() { second.wait_timeout(d); }\n").is_empty());
    }

    #[test]
    fn unlooped_condvar_wait_allow_escape() {
        let src = "fn f() { let g = cv.wait(g); } // verify:allow(condvar-wait-unlooped)\n";
        let report = lint_report(src);
        assert!(report.hits.is_empty());
        // The allow is live (the rule fired), so no stale warning either.
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn stale_allow_is_warned_not_failed() {
        // recv_timeout never fires untimed-recv, so the allow is stale.
        let src = "fn f() { let m = rx.recv_timeout(d); } // verify:allow(untimed-recv)\n";
        let report = lint_report(src);
        assert!(report.is_clean());
        assert_eq!(report.warnings.len(), 1);
        assert!(
            report.warnings[0].contains("stale exception verify:allow(untimed-recv)"),
            "{}",
            report.warnings[0]
        );
        // An allow naming a rule that does not exist is called out as such.
        let src = "fn f() {} // verify:allow(no-such-rule)\n";
        let report = lint_report(src);
        assert!(report.is_clean());
        assert_eq!(report.warnings.len(), 1);
        assert!(report.warnings[0].contains("unknown-rule"), "{}", report.warnings[0]);
    }

    #[test]
    fn live_allow_produces_no_warning() {
        let src = "fn f() { let m = rx.recv(); } // verify:allow(untimed-recv)\n";
        let report = lint_report(src);
        assert!(report.is_clean());
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    /// One fixture per rule: the positive form must fire, the same code
    /// behind a comment or inside a string must not, and the same-line
    /// `verify:allow` must suppress it without leaving a stale warning.
    /// Guards every rule's masking path, not just the ones tested above.
    #[test]
    fn fixture_suite_covers_every_rule() {
        struct Fixture {
            rule: &'static str,
            positive: &'static str,
            comment_masked: &'static str,
            string_masked: &'static str,
        }
        let fixtures = [
            Fixture {
                rule: "comm-unwrap",
                positive: "fn f() { comm.all_reduce(v, op, g).unwrap(); }\n",
                comment_masked: "fn f() {} // comm.all_reduce(v, op, g).unwrap()\n",
                string_masked: "fn f() { let s = \"comm.all_reduce(v).unwrap()\"; }\n",
            },
            Fixture {
                rule: "untimed-recv",
                positive: "fn f() { let m = rx.recv(); }\n",
                comment_masked: "fn f() {} // let m = rx.recv();\n",
                string_masked: "fn f() { let s = \"rx.recv()\"; }\n",
            },
            Fixture {
                rule: "lossy-byte-cast",
                positive: "fn f(bytes: u64) -> u32 { bytes as u32 }\n",
                comment_masked: "fn f() {} // bytes as u32\n",
                string_masked: "fn f() { let s = \"bytes as u32\"; }\n",
            },
            Fixture {
                rule: "lossy-quant-cast",
                positive: "fn f(q: f32) -> i8 { quantize_round(q) as i8 }\n",
                comment_masked: "fn f() {} // quantize_round(q) as i8\n",
                string_masked: "fn f() { let s = \"quantize_round(q) as i8\"; }\n",
            },
            Fixture {
                rule: "blocking-flush",
                positive: "fn f() {\n  bucket.flush_all(&mut |r, fused| {\n    \
                           let x = comm.all_reduce(g, fused, op);\n  });\n}\n",
                comment_masked: "fn f() {\n  // bucket.flush_all(&mut |r, fused| {\n  \
                                 //   let x = comm.all_reduce(g, fused, op);\n  // });\n}\n",
                string_masked: "fn f() {\n  let s = \"bucket.flush_all(\";\n  \
                                let x = comm.all_reduce(g, fused, op);\n}\n",
            },
            Fixture {
                rule: "condvar-wait-unlooped",
                positive: "fn f() { let g = cv.wait(g); }\n",
                comment_masked: "fn f() {} // let g = cv.wait(g);\n",
                string_masked: "fn f() { let s = \"cv.wait(g)\"; }\n",
            },
        ];
        for fx in &fixtures {
            assert_eq!(lint_str(fx.positive), vec![fx.rule], "positive fixture for {}", fx.rule);
            assert!(
                lint_str(fx.comment_masked).is_empty(),
                "comment-masked fixture for {} must not fire",
                fx.rule
            );
            assert!(
                lint_str(fx.string_masked).is_empty(),
                "string-masked fixture for {} must not fire",
                fx.rule
            );
            // Allow-escape: annotate the line the rule fires on.
            let line_no = lint_report(fx.positive).hits[0].line_no;
            let allowed: String = fx
                .positive
                .lines()
                .enumerate()
                .map(|(i, l)| {
                    if i + 1 == line_no {
                        format!("{l} // verify:allow({})\n", fx.rule)
                    } else {
                        format!("{l}\n")
                    }
                })
                .collect();
            let report = lint_report(&allowed);
            assert!(report.hits.is_empty(), "allow-escape fixture for {} must suppress", fx.rule);
            assert!(
                report.warnings.is_empty(),
                "live allow for {} must not warn: {:?}",
                fx.rule,
                report.warnings
            );
        }
    }

    #[test]
    fn every_known_rule_has_a_fixture() {
        // `RULES` is the contract the stale-allow warning validates
        // against; keep it in sync with the rules lint_source implements.
        assert_eq!(
            RULES,
            &[
                "comm-unwrap",
                "untimed-recv",
                "lossy-byte-cast",
                "lossy-quant-cast",
                "blocking-flush",
                "condvar-wait-unlooped"
            ]
        );
    }
}
