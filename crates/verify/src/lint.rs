//! The workspace lint.
//!
//! Scans the non-test Rust sources of the communication and engine
//! crates for patterns that the fault-injection work showed to be
//! reliability hazards:
//!
//! * **`comm-unwrap`** — `.unwrap()` or `.expect(` on the same line as a
//!   communication call. A fabric error must surface as a typed
//!   [`zero_comm::CommError`], not a panic that deadlocks the peers still
//!   waiting inside the collective.
//! * **`untimed-recv`** — a bare `.recv()` on a channel. Blocking forever
//!   on a dead peer is exactly the failure mode elastic training guards
//!   against; use `recv_timeout`.
//! * **`lossy-byte-cast`** — a narrowing `as` cast on a line doing byte
//!   accounting. Traffic counters are `u64`; truncating them silently
//!   invalidates every volume identity the schedule checker proves.
//! * **`blocking-flush`** — a *blocking* collective wrapper called inside
//!   a gradient-bucket flush closure (`bucket.push(…)` / `.flush_all(…)`
//!   call regions). Flush closures are the single code path for both
//!   synchronous and overlapped execution: they must launch the
//!   reduce-scatter through the non-blocking `start_*` API (the sync
//!   mode waits the returned handle inline, the overlap mode parks it),
//!   so a direct `.reduce_scatter(…)` there silently forfeits
//!   backward/communication overlap.
//!
//! The scanner masks comments, strings, and char literals before
//! matching, and skips `#[cfg(test)]` regions, so the rules fire only on
//! compiled production code. A deliberate exception is declared next to
//! the code it excuses: `// verify:allow(rule-name)` on the same line.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Clone, Debug)]
pub struct LintHit {
    /// File containing the violation.
    pub file: PathBuf,
    /// 1-based line number.
    pub line_no: usize,
    /// Rule identifier (`comm-unwrap`, `untimed-recv`, `lossy-byte-cast`,
    /// `blocking-flush`).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub line_text: String,
}

impl fmt::Display for LintHit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line_no,
            self.rule,
            self.line_text
        )
    }
}

/// Result of a lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All violations found, in path order.
    pub hits: Vec<LintHit>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.hits.is_empty()
    }
}

/// Calls that talk to the fabric; an `unwrap`/`expect` on the same line
/// as one of these is a `comm-unwrap` hit.
const COMM_TOKENS: &[&str] = &[
    "all_reduce",
    "reduce_scatter",
    "all_gather",
    "broadcast",
    "send_raw",
    "recv_raw",
    "barrier",
    "local_index",
    "all_to_all",
    "gather_in",
    "scatter_in",
    "hierarchical_all_reduce",
    // Transport-fabric entry points (trait methods and the socket
    // backend's frame writer): a panic here severs the wire mid-frame
    // and every peer observes PeerLost instead of the real error.
    "send_msg",
    "recv_msg",
    "write_frame",
];

/// Blocking collective entry points (the synchronous wrappers). The
/// `start_…` variants deliberately do not match: inside a flush closure
/// the non-blocking launch is exactly what the rule demands, and waiting
/// the returned handle inline is still legal for synchronous mode.
const BLOCKING_TOKENS: &[&str] = &[
    ".all_reduce(",
    ".reduce_scatter(",
    ".reduce_scatter_var(",
    ".all_gather(",
    ".all_gather_var(",
    ".broadcast(",
    ".barrier(",
    ".all_to_all(",
    ".hierarchical_all_reduce(",
];

/// Replaces comments, string literals, and char literals with spaces
/// (newlines preserved) so pattern matching cannot fire inside them.
fn mask_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.push(b' ');
                out.push(b' ');
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string: r"…", r#"…"#, r##"…"##, …
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    i = j + 1;
                    out.resize(out.len() + (i - start), b' ');
                    loop {
                        if i >= b.len() {
                            break;
                        }
                        if b[i] == b'"' && b[i + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes {
                            out.resize(out.len() + 1 + hashes, b' ');
                            i += 1 + hashes;
                            break;
                        }
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                } else {
                    // `r` identifier prefix that wasn't a raw string.
                    out.push(b[i]);
                    i += 1;
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a lifetime is '\'' followed by an
                // identifier with no closing quote within a few bytes.
                let is_char = if i + 1 < b.len() && b[i + 1] == b'\\' {
                    true
                } else {
                    i + 2 < b.len() && b[i + 2] == b'\''
                };
                if is_char {
                    out.push(b' ');
                    i += 1;
                    while i < b.len() {
                        if b[i] == b'\\' && i + 1 < b.len() {
                            out.push(b' ');
                            out.push(b' ');
                            i += 2;
                        } else if b[i] == b'\'' {
                            out.push(b' ');
                            i += 1;
                            break;
                        } else {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Marks lines inside `#[cfg(test)]`-attributed items (brace-matched) so
/// the rules only see production code.
fn test_region_mask(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut in_test = vec![false; lines.len()];
    let mut li = 0;
    while li < lines.len() {
        if lines[li].contains("#[cfg(test)]") {
            // Find the opening brace of the attributed item, then skip to
            // its matching close, marking everything in between.
            let mut depth = 0usize;
            let mut opened = false;
            let mut lj = li;
            'scan: while lj < lines.len() {
                in_test[lj] = true;
                for ch in lines[lj].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break 'scan;
                            }
                        }
                        _ => {}
                    }
                }
                lj += 1;
            }
            li = lj + 1;
        } else {
            li += 1;
        }
    }
    in_test
}

/// Marks lines inside gradient-bucket flush call regions: from a line
/// containing `bucket.push(` or `.flush_all(` through the paren-matched
/// end of that call (the flush closure lives inside the argument list).
fn flush_region_mask(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut in_flush = vec![false; lines.len()];
    let mut li = 0;
    while li < lines.len() {
        let open = ["bucket.push(", ".flush_all("]
            .iter()
            .filter_map(|t| lines[li].find(t).map(|p| p + t.len() - 1))
            .min();
        let Some(open) = open else {
            li += 1;
            continue;
        };
        let mut depth = 0usize;
        let mut lj = li;
        let mut col = open;
        'scan: while lj < lines.len() {
            in_flush[lj] = true;
            let b = lines[lj].as_bytes();
            while col < b.len() {
                match b[col] {
                    b'(' => depth += 1,
                    b')' => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break 'scan;
                        }
                    }
                    _ => {}
                }
                col += 1;
            }
            lj += 1;
            col = 0;
        }
        li = lj + 1;
    }
    in_flush
}

fn narrowing_cast(line: &str) -> bool {
    ["as u32", "as u16", "as u8", "as i32", "as i16", "as f32"]
        .iter()
        .any(|p| line.contains(&format!(" {p}")) || line.ends_with(p))
}

/// Lints one file's contents. `path` is used for hit reporting only.
fn lint_source(path: &Path, src: &str, report: &mut LintReport) {
    let masked = mask_source(src);
    let in_test = test_region_mask(&masked);
    let in_flush = flush_region_mask(&masked);
    let originals: Vec<&str> = src.lines().collect();
    for (idx, line) in masked.lines().enumerate() {
        if in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let original = originals.get(idx).copied().unwrap_or("");
        let mut hit = |rule: &'static str| {
            if original.contains(&format!("verify:allow({rule})")) {
                return;
            }
            report.hits.push(LintHit {
                file: path.to_path_buf(),
                line_no: idx + 1,
                rule,
                line_text: original.trim().to_string(),
            });
        };
        let has_panic = line.contains(".unwrap()") || line.contains(".expect(");
        if has_panic && COMM_TOKENS.iter().any(|t| line.contains(t)) {
            hit("comm-unwrap");
        }
        if line.contains(".recv()") {
            hit("untimed-recv");
        }
        if line.contains("bytes") && narrowing_cast(line) {
            hit("lossy-byte-cast");
        }
        if in_flush.get(idx).copied().unwrap_or(false)
            && BLOCKING_TOKENS.iter().any(|t| line.contains(t))
        {
            hit("blocking-flush");
        }
    }
    report.files_scanned += 1;
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under the given roots (recursively).
///
/// Unreadable paths are reported as synthetic hits rather than silently
/// skipped, so a mistyped root cannot produce a vacuous pass.
pub fn lint_paths(roots: &[&Path]) -> LintReport {
    let mut report = LintReport::default();
    for root in roots {
        let mut files = Vec::new();
        if let Err(e) = walk(root, &mut files) {
            report.hits.push(LintHit {
                file: root.to_path_buf(),
                line_no: 0,
                rule: "unreadable-path",
                line_text: e.to_string(),
            });
            continue;
        }
        for file in files {
            match std::fs::read_to_string(&file) {
                Ok(src) => lint_source(&file, &src, &mut report),
                Err(e) => report.hits.push(LintHit {
                    file,
                    line_no: 0,
                    rule: "unreadable-path",
                    line_text: e.to_string(),
                }),
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str) -> Vec<&'static str> {
        let mut report = LintReport::default();
        lint_source(Path::new("mem.rs"), src, &mut report);
        report.hits.into_iter().map(|h| h.rule).collect()
    }

    #[test]
    fn flags_unwrap_on_comm_call() {
        let src = "fn f() { comm.all_reduce(&mut v, op, group).unwrap(); }\n";
        assert_eq!(lint_str(src), vec!["comm-unwrap"]);
        let src = "fn f() { group.local_index(rank).expect(\"not in group\"); }\n";
        assert_eq!(lint_str(src), vec!["comm-unwrap"]);
    }

    #[test]
    fn flags_unwrap_on_transport_calls() {
        // The process-fabric entry points are comm tokens too.
        let src = "fn f() { link.send_msg(dst, msg).unwrap(); }\n";
        assert_eq!(lint_str(src), vec!["comm-unwrap"]);
        let src = "fn f() { let m = link.recv_msg(src, t).expect(\"recv\"); }\n";
        assert_eq!(lint_str(src), vec!["comm-unwrap"]);
        let src = "fn f() { write_frame(&writer, &frame).unwrap(); }\n";
        assert_eq!(lint_str(src), vec!["comm-unwrap"]);
    }

    #[test]
    fn ignores_unwrap_off_comm_paths() {
        let src = "fn f() { let x = maybe_value().unwrap(); }\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn flags_untimed_recv_and_allows_escape() {
        assert_eq!(lint_str("fn f() { let m = rx.recv(); }\n"), vec!["untimed-recv"]);
        assert!(lint_str(
            "fn f() { let m = rx.recv(); } // verify:allow(untimed-recv)\n"
        )
        .is_empty());
        assert!(lint_str("fn f() { let m = rx.recv_timeout(d); }\n").is_empty());
    }

    #[test]
    fn flags_lossy_byte_cast() {
        assert_eq!(
            lint_str("fn f(bytes: u64) -> u32 { bytes as u32 }\n"),
            vec!["lossy-byte-cast"]
        );
        assert!(lint_str("fn f(bytes: u64) -> f64 { bytes as f64 }\n").is_empty());
    }

    #[test]
    fn masked_regions_do_not_fire() {
        // In a comment, a string, and inside #[cfg(test)].
        assert!(lint_str("// comm.all_reduce(x).unwrap()\n").is_empty());
        assert!(lint_str("fn f() { let s = \"rx.recv()\"; }\n").is_empty());
        let src = "#[cfg(test)]\nmod tests {\n  fn g() { comm.barrier(g).unwrap(); }\n}\nfn h() {}\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn flags_blocking_collective_in_flush_closure() {
        // A blocking reduce-scatter inside the flush closure forfeits
        // overlap — the comm-unwrap on the same line fires too.
        let src = "fn f() {\n  bucket.push(r, g, &mut |r, fused| {\n    \
                   comm.reduce_scatter_var(g, fused, op, &c, p).unwrap();\n  });\n}\n";
        assert_eq!(lint_str(src), vec!["comm-unwrap", "blocking-flush"]);
        let src = "fn f() {\n  bucket.flush_all(&mut |r, fused| {\n    \
                   let x = comm.all_reduce(g, fused, op);\n  });\n}\n";
        assert_eq!(lint_str(src), vec!["blocking-flush"]);
    }

    #[test]
    fn nonblocking_launch_in_flush_closure_is_clean() {
        // The start_* launch (and waiting its handle inline, which is
        // how synchronous mode runs) is exactly what the rule demands.
        let src = "fn f() {\n  bucket.push(r, g, &mut |r, fused| {\n    \
                   let p = comm.start_reduce_scatter_var(g, fused, op, &c, pr);\n    \
                   let out = p.wait();\n  });\n}\n";
        assert!(lint_str(src).is_empty());
        // Blocking collectives *outside* any flush region stay legal.
        let src = "fn f() { let x = comm.all_reduce(g, v, op); }\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn raw_strings_and_chars_are_masked() {
        assert!(lint_str("fn f() { let s = r#\"rx.recv()\"#; }\n").is_empty());
        assert!(lint_str("fn f() { let c = '\"'; let d = rx.recv_timeout(t); }\n").is_empty());
    }
}
