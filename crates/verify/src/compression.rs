//! The ZeRO++ compression prover.
//!
//! Sweeps stages 2–3 × N ∈ {2,4,8} × G ∈ {2,4} × every qwZ/hpZ/qgZ
//! combination and proves four things about the compressed schedules,
//! all from plan arithmetic — zero training steps executed:
//!
//! * **Symmetry.** Every compressed plan stays rank-symmetric (the
//!   [`schedule`](crate::schedule) deadlock-freedom proof), with the wire
//!   format included in the peer agreement — two ranks disagreeing on
//!   raw-vs-int8 would corrupt the stream even if counts matched.
//! * **Wire bytes.** Every compressed op's per-rank sent bytes equal an
//!   *independently* recomputed value from the wire definition: an int8
//!   block stream costs `c + 8·⌈c/block⌉` bytes per c-element chunk, a
//!   qgZ reduce-scatter pays full precision intra-node (phase 1) and the
//!   int8 stream inter-node (phase 2).
//! * **Equivalence when off.** Every all-levers-off configuration builds
//!   plans bitwise identical to the uncompressed baseline.
//! * **Volume reduction.** For multi-node worlds, the total inter-node
//!   byte count under qwZ+hpZ+qgZ shrinks against the raw baseline by the
//!   paper-level factor: ≥ 3.5× at stage 3 for N ≥ 4, G ≥ 2 (two
//!   micro-batches — the gradient-accumulation regime hpZ pays off in).
//!
//! Overlap invariance ([`schedule::check_overlap_pair`]) is also re-run
//! on every compressed configuration, so prefetch reordering proofs hold
//! with mixed-wire fetches too.

use zero_comm::Grid;
use zero_core::{CommPlan, CompressionConfig, StepShape, WireFmt, ZeroConfig, ZeroStage};
use zero_model::{Layout, ModelConfig};

use crate::schedule::{check_overlap_pair, check_symmetry, ScheduleReport};

/// One (stage, N, G) inter-node volume measurement with all levers on.
#[derive(Clone, Debug)]
pub struct RatioRow {
    /// Stage name.
    pub stage: &'static str,
    /// World size N.
    pub n: usize,
    /// Ranks per node G.
    pub g: usize,
    /// Inter-node bytes of one full training step, uncompressed.
    pub raw_bytes: u64,
    /// Inter-node bytes of the same step with qwZ+hpZ+qgZ.
    pub compressed_bytes: u64,
    /// raw / compressed.
    pub ratio: f64,
}

/// Counters and measurements from the compression sweep.
#[derive(Clone, Debug, Default)]
pub struct CompressionReport {
    /// (stage, grid, lever-combination) configurations proven.
    pub configs: usize,
    /// Ops whose wire bytes were independently recomputed and matched.
    pub ops_checked: usize,
    /// Inter-node ratio table (all levers on, multi-node worlds only).
    pub rows: Vec<RatioRow>,
}

fn test_model() -> ModelConfig {
    ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 }
}

/// Two micro-batches: the regime where hpZ's node-local refetches repay
/// the secondary copy (micro 2's forward re-gathers resolve intra-node).
fn shape(skipped: bool) -> StepShape {
    let m = test_model();
    StepShape { micro_batches: 2, act_elems: 2 * m.seq * m.hidden, skipped }
}

fn cfg(stage: ZeroStage, comp: CompressionConfig) -> ZeroConfig {
    ZeroConfig {
        stage,
        fp16: true,
        checkpoint_activations: false,
        initial_loss_scale: 1.0,
        bucket_elems: 512,
        clip_grad_norm: None,
        compression: comp,
        ..ZeroConfig::default()
    }
}

/// Independent int8-block wire cost of one c-element chunk: the codes
/// plus one (f32 scale, f32 zero) pair per block — written from the wire
/// definition, not `zero_comm::quant_wire_bytes`.
fn int8_chunk_bytes(c: usize, block: usize) -> u64 {
    (c + 8 * c.div_ceil(block)) as u64
}

/// Recomputes one compressed op's sent bytes for one member from the
/// wire definition alone. Returns `None` for raw ops (their volume is
/// already covered by the schedule pass's telescoping identities).
fn independent_wire_bytes(op: &zero_core::ResolvedOp, rank: usize) -> Option<u64> {
    let n = op.members.len();
    let i = op.members.iter().position(|&m| m == rank)?;
    match op.wire {
        WireFmt::Raw => None,
        WireFmt::Int8Block { block } => {
            // Ring all-gather of encoded streams: rank i originates or
            // forwards every chunk except its successor's own.
            if n == 1 {
                return Some(0);
            }
            let succ = (i + 1) % n;
            Some(
                op.counts
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != succ)
                    .map(|(_, &c)| int8_chunk_bytes(c, block))
                    .sum(),
            )
        }
        WireFmt::QgzInt8 { node_size, block } => {
            if n == 1 {
                return Some(0);
            }
            let (slot, node) = (i % node_size, i / node_size);
            let nodes = n / node_size;
            // Phase 1: full-precision all-to-all within the node — this
            // rank ships every other slot's column.
            let phase1: u64 = (0..node_size)
                .filter(|&s| s != slot)
                .map(|s| {
                    (0..nodes).map(|m| op.counts[m * node_size + s]).sum::<usize>() as u64
                        * op.prec.bytes()
                })
                .sum();
            // Phase 2: int8 streams to every other node's same-slot rank.
            let phase2: u64 = (0..nodes)
                .filter(|&m| m != node)
                .map(|m| int8_chunk_bytes(op.counts[m * node_size + slot], block))
                .sum();
            Some(phase1 + phase2)
        }
    }
}

fn all_on(g: usize) -> CompressionConfig {
    CompressionConfig { qwz: true, hpz: true, qgz: true, node_size: g, block: 64 }
}

/// Checks one compressed configuration: symmetry, overlap invariance,
/// and independent wire-byte recomputation for every compressed op.
fn check_compressed_config(
    zcfg: &ZeroConfig,
    grid: Grid,
    report: &mut CompressionReport,
) -> Result<(), String> {
    let layout = Layout::build_mp(&test_model(), 1);
    let c = zcfg.compression;
    let what = format!(
        "compression {} dp={} qwz={} hpz={} qgz={} G={} block={}",
        zcfg.stage.name(),
        grid.dp_degree(),
        c.qwz,
        c.hpz,
        c.qgz,
        c.node_size,
        c.block
    );
    for skipped in [false, true] {
        let plan = CommPlan::train_step(&layout, zcfg, grid, &shape(skipped));
        check_symmetry(&plan, &what)?;
        for rank in 0..grid.world_size() {
            for (idx, op) in plan.resolve_for(rank).iter().enumerate() {
                if let Some(want) = independent_wire_bytes(op, rank) {
                    let got = op.sent_bytes(rank);
                    if got != want {
                        return Err(format!(
                            "{what} skipped={skipped}: op {idx} '{}' rank {rank}: plan \
                             says {got} wire bytes, independent recomputation says {want}",
                            op.label
                        ));
                    }
                    report.ops_checked += 1;
                }
            }
        }
        // Levers all off ⇒ the plan must be bitwise identical to the
        // uncompressed baseline, whatever topology numbers are set.
        if !c.any() {
            let baseline = cfg(zcfg.stage, CompressionConfig::off());
            let base = CommPlan::train_step(&layout, &baseline, grid, &shape(skipped));
            if plan.ops() != base.ops() {
                return Err(format!(
                    "{what} skipped={skipped}: levers-off plan differs from the \
                     uncompressed baseline"
                ));
            }
        }
    }
    // The prefetch double-buffer proof must hold for mixed-wire fetches.
    let mut sched = ScheduleReport::default();
    check_overlap_pair(zcfg, grid, &mut sched)?;
    report.configs += 1;
    Ok(())
}

/// Runs the full compression sweep and gathers the inter-node ratio
/// table. Fails if any proof above fails, or if the all-levers stage-3
/// reduction misses 3.5× on any multi-node world with N ≥ 4.
pub fn check_compression() -> Result<CompressionReport, String> {
    let mut report = CompressionReport::default();
    let layout = Layout::build_mp(&test_model(), 1);

    let stages = [ZeroStage::Two, ZeroStage::Three];
    let worlds: &[(usize, usize)] = &[(2, 2), (4, 2), (4, 4), (8, 2), (8, 4)];
    for &stage in &stages {
        for &(n, g) in worlds {
            let grid = Grid::new(n, 1);
            for levers in 0..8u32 {
                let comp = CompressionConfig {
                    qwz: levers & 1 != 0,
                    hpz: levers & 2 != 0,
                    qgz: levers & 4 != 0,
                    node_size: g,
                    block: 64,
                };
                check_compressed_config(&cfg(stage, comp), grid, &mut report)?;
            }
        }
    }

    // Inter-node volume: all levers vs raw, for worlds with ≥ 2 nodes.
    for &stage in &stages {
        for &(n, g) in worlds {
            if n / g < 2 {
                continue;
            }
            let grid = Grid::new(n, 1);
            let raw = CommPlan::train_step(&layout, &cfg(stage, CompressionConfig::off()), grid, &shape(false));
            let sq = CommPlan::train_step(&layout, &cfg(stage, all_on(g)), grid, &shape(false));
            let raw_bytes = raw.total_inter_node_bytes(g);
            let compressed_bytes = sq.total_inter_node_bytes(g);
            if compressed_bytes == 0 || compressed_bytes >= raw_bytes {
                return Err(format!(
                    "compression {} N={n} G={g}: inter-node bytes did not shrink \
                     ({raw_bytes} -> {compressed_bytes})",
                    stage.name()
                ));
            }
            let ratio = raw_bytes as f64 / compressed_bytes as f64;
            if stage == ZeroStage::Three && n >= 4 && g >= 2 && ratio < 3.5 {
                return Err(format!(
                    "compression stage3 N={n} G={g}: inter-node reduction {ratio:.2}× \
                     misses the 3.5× gate ({raw_bytes} -> {compressed_bytes})"
                ));
            }
            report.rows.push(RatioRow {
                stage: stage.name(),
                n,
                g,
                raw_bytes,
                compressed_bytes,
                ratio,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sweep_passes_and_hits_the_gate() {
        let r = check_compression().expect("compression proof");
        // 2 stages × 5 worlds × 8 lever combos.
        assert_eq!(r.configs, 80, "sweep covered {} configs", r.configs);
        assert!(r.ops_checked > 100, "recomputed {} compressed ops", r.ops_checked);
        let gate: Vec<_> = r
            .rows
            .iter()
            .filter(|row| row.stage == ZeroStage::Three.name() && row.n >= 4 && row.g >= 2)
            .collect();
        assert!(!gate.is_empty(), "gate rows present");
        for row in gate {
            assert!(
                row.ratio >= 3.5,
                "stage3 N={} G={}: {:.2}× < 3.5×",
                row.n,
                row.g,
                row.ratio
            );
        }
    }

    #[test]
    fn independent_bytes_rejects_a_tampered_plan() {
        // Guard against the recomputation degenerating into reading the
        // same formula twice: a hand-built op with off-by-one counts must
        // disagree with the plan's own accounting.
        let grid = Grid::new(4, 1);
        let layout = Layout::build_mp(&test_model(), 1);
        let zcfg = cfg(ZeroStage::Three, all_on(2));
        let plan = CommPlan::train_step(&layout, &zcfg, grid, &shape(false));
        let ops = plan.resolve_for(0);
        let quant = ops
            .iter()
            .find(|op| matches!(op.wire, WireFmt::Int8Block { .. }))
            .expect("qwZ plan carries int8 fetches");
        let mut tampered = quant.clone();
        tampered.counts[0] += 1;
        assert_ne!(
            independent_wire_bytes(&tampered, 0),
            Some(quant.sent_bytes(0)),
            "tampered counts must change the independent recomputation"
        );
    }
}
