//! The shared-state modeling DSL: shim synchronization primitives with
//! instrumented yield points.
//!
//! A protocol model is a set of threads written as explicit program
//! counters stepping against a [`ModelState`] — a plain, cloneable,
//! hashable value holding modeled mutexes, condvars, channels, atomics,
//! and race-checked data cells. Every shim operation is one *atomic*
//! transition; between two operations the scheduler (the explorer) may
//! run any other thread, so the explored interleavings are exactly the
//! interleavings the real primitives permit at the same granularity.
//!
//! The shims mirror `std` semantics where it matters:
//!
//! * [`ModelState::lock`] parks on contention; an unlock makes every
//!   parked waiter *eligible* and whichever the scheduler runs first
//!   acquires — all acquisition orders are explored.
//! * [`ModelState::cv_wait`] atomically releases the mutex and parks on
//!   the condvar; a woken (or timed-out) waiter must re-acquire the
//!   mutex before its program resumes, exactly like
//!   `Condvar::wait_timeout`.
//! * [`ModelState::notify_one`]/[`notify_all`](ModelState::notify_all)
//!   on an empty waiter set are lost — no memory — which is precisely
//!   how real lost wakeups arise.
//! * [`ModelState::recv_into`] delivers in FIFO order, reports a closed
//!   channel, and parks on empty; timed parks can *time out*, gated by
//!   the scenario's injected-fault budget.
//!
//! Every operation also maintains the happens-before machinery: each
//! thread carries a vector clock, every sync object carries the clock
//! of its last release/send/notify, and the plain [`data
//! cells`](ModelState::write_data) are checked for conflicting accesses
//! unordered by any sync edge — the race pass rides on the same event
//! graph the explorer walks.

use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

/// Thread index inside one model.
pub type Tid = usize;

/// Maximum threads a model may declare (vector clocks and sleep-set
/// masks are fixed-width).
pub const MAX_THREADS: usize = 8;

/// Sentinel delivered by a receive on a closed, drained channel.
pub const CLOSED: i64 = i64::MIN;

/// Object handles. Each carries its global footprint bit so the
/// explorer's independence relation is one `u64` intersection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MutexId(pub usize);
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CondvarId(pub usize);
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ChannelId(pub usize);
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AtomicId(pub usize);
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DataId(pub usize);

/// Footprint bit layout over the 64-bit object universe. Each class
/// wraps within its band, so an overflowing model only *over*-reports
/// dependence (less pruning, never unsoundness).
pub fn mutex_bit(m: MutexId) -> u64 {
    1 << (m.0 % 8)
}
pub fn condvar_bit(c: CondvarId) -> u64 {
    1 << (8 + c.0 % 8)
}
pub fn atomic_bit(a: AtomicId) -> u64 {
    1 << (16 + a.0 % 8)
}
pub fn data_bit(d: DataId) -> u64 {
    1 << (24 + d.0 % 10)
}
pub fn ghost_bit(g: usize) -> u64 {
    1 << (34 + g % 10)
}
pub fn channel_bit(c: ChannelId) -> u64 {
    1 << (44 + c.0 % 20)
}

/// A vector clock over the model's threads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct VClock(pub [u32; MAX_THREADS]);

impl VClock {
    /// Component-wise maximum (the happens-before join).
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// True iff the event at `(tid, at)` happened before this clock.
    pub fn saw(&self, tid: Tid, at: u32) -> bool {
        self.0[tid] >= at
    }
}

/// What a thread is doing, from the scheduler's point of view.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Status {
    /// Eligible to run its next program step.
    Runnable,
    /// Blocked acquiring a mutex; eligible whenever the mutex is free.
    ParkedMutex(MutexId),
    /// Blocked in a condvar wait (mutex released); woken by a notify —
    /// which re-routes through `ParkedMutex` — or, if `timed`, by an
    /// injected timeout.
    ParkedCv { cv: CondvarId, mx: MutexId, timed: bool },
    /// Blocked in a receive on an empty channel.
    ParkedRecv { ch: ChannelId, reg: usize, timed: bool },
    /// Finished normally.
    Done,
    /// Killed by an injected crash: never runs again, releases nothing.
    Crashed,
}

/// Per-thread program state: a program counter and a few registers,
/// plus the flags the shims report wake-up reasons through.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Locals {
    /// Program counter interpreted by the protocol's `step`.
    pub pc: u32,
    /// Scratch registers (receive targets, loop counters, outcomes).
    pub regs: [i64; 6],
    /// Set when the thread's last timed park ended in a timeout.
    pub timed_out: bool,
    /// Set when the thread's last channel op found the channel closed.
    pub closed: bool,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MMutex {
    pub owner: Option<Tid>,
    /// Happens-before clock of the last release.
    clock: VClock,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MCondvar {
    /// Parked waiter set (tids also carry `ParkedCv` status).
    pub waiters: Vec<Tid>,
    /// Notifies issued over the condvar's lifetime (for lost-wakeup
    /// classification at stuck states).
    pub notifies: u32,
    /// Happens-before clock accumulated from notifiers.
    clock: VClock,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MChannel {
    /// In-flight values, each carrying the sender's clock at send time.
    pub queue: VecDeque<(i64, VClock)>,
    /// Once closed, drained receives observe [`CLOSED`] instead of
    /// parking — `mpsc` disconnect semantics.
    pub closed: bool,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MAtomic {
    pub value: i64,
    /// Release clock (SeqCst ops both publish and acquire it).
    clock: VClock,
}

/// Epoch of one access to a data cell: who, at what clock value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Epoch {
    tid: Tid,
    at: u32,
}

/// A plain (non-atomic) cell, the subject of the race detector.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MData {
    pub value: i64,
    last_write: Option<Epoch>,
    /// Most recent read epoch per reader since the last write.
    reads: Vec<Epoch>,
}

/// Injected-fault budget for one execution: "up to one crash/timeout
/// per run" is `crashes: 1, timeouts: 1` (or less).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct FaultBudget {
    pub crashes: u8,
    pub timeouts: u8,
}

/// A data race found by the happens-before pass.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RaceReport {
    pub cell: DataId,
    /// (thread, pc) of the two unordered conflicting accesses.
    pub first: (Tid, u32),
    pub second: (Tid, u32),
    /// Whether the second access was a write.
    pub second_is_write: bool,
}

/// Side effects of executing one transition, drained by the explorer.
#[derive(Clone, Debug, Default)]
pub struct StepEffects {
    /// Objects the transition touched (footprint bits).
    pub footprint: u64,
    /// Races detected at this access.
    pub races: Vec<RaceReport>,
    /// Mutexes acquired while others were held: `(held, acquired)`
    /// lock-order edges.
    pub lock_edges: Vec<(MutexId, MutexId)>,
    /// Protocol-level assertion failure raised by the program.
    pub failure: Option<String>,
}

/// The complete, cloneable, hashable state of one protocol model.
#[derive(Clone)]
pub struct ModelState {
    pub mutexes: Vec<MMutex>,
    pub condvars: Vec<MCondvar>,
    pub channels: Vec<MChannel>,
    pub atomics: Vec<MAtomic>,
    pub data: Vec<MData>,
    /// Ghost cells for specification bookkeeping: hashed (they are part
    /// of the checked state) but exempt from the race detector, since
    /// they model the *specification's* knowledge, not shared memory.
    pub ghost: Vec<i64>,
    pub status: Vec<Status>,
    pub locals: Vec<Locals>,
    pub clocks: Vec<VClock>,
    pub budget: FaultBudget,
    /// Per-thread channels severed if that thread crashes (its
    /// endpoints, as a killed process's sockets).
    pub owned_channels: Vec<Vec<ChannelId>>,
    /// Effects of the transition currently executing (not hashed).
    pub effects: StepEffects,
}

impl ModelState {
    /// An empty state for `threads` threads; add objects with the
    /// `add_*` builders.
    pub fn new(threads: usize) -> ModelState {
        assert!(threads <= MAX_THREADS, "at most {MAX_THREADS} model threads");
        ModelState {
            mutexes: Vec::new(),
            condvars: Vec::new(),
            channels: Vec::new(),
            atomics: Vec::new(),
            data: Vec::new(),
            ghost: Vec::new(),
            status: vec![Status::Runnable; threads],
            locals: vec![Locals::default(); threads],
            clocks: vec![VClock::default(); threads],
            budget: FaultBudget::default(),
            owned_channels: vec![Vec::new(); threads],
            effects: StepEffects::default(),
        }
    }

    pub fn add_mutex(&mut self) -> MutexId {
        self.mutexes.push(MMutex { owner: None, clock: VClock::default() });
        MutexId(self.mutexes.len() - 1)
    }

    pub fn add_condvar(&mut self) -> CondvarId {
        self.condvars.push(MCondvar {
            waiters: Vec::new(),
            notifies: 0,
            clock: VClock::default(),
        });
        CondvarId(self.condvars.len() - 1)
    }

    pub fn add_channel(&mut self) -> ChannelId {
        self.channels.push(MChannel { queue: VecDeque::new(), closed: false });
        ChannelId(self.channels.len() - 1)
    }

    pub fn add_atomic(&mut self, value: i64) -> AtomicId {
        self.atomics.push(MAtomic { value, clock: VClock::default() });
        AtomicId(self.atomics.len() - 1)
    }

    pub fn add_data(&mut self, value: i64) -> DataId {
        self.data.push(MData { value, last_write: None, reads: Vec::new() });
        DataId(self.data.len() - 1)
    }

    pub fn add_ghost(&mut self, value: i64) -> usize {
        self.ghost.push(value);
        self.ghost.len() - 1
    }

    /// Reads a ghost cell, recording it in the footprint (ghost cells
    /// are spec state, but two steps reading/writing the same cell are
    /// still dependent and must not be sleep-set-pruned against each
    /// other).
    pub fn ghost_read(&mut self, g: usize) -> i64 {
        self.touch(ghost_bit(g));
        self.ghost[g]
    }

    /// Writes a ghost cell (footprint-recorded, race-exempt).
    pub fn ghost_write(&mut self, g: usize, value: i64) {
        self.touch(ghost_bit(g));
        self.ghost[g] = value;
    }

    pub fn ghost_add(&mut self, g: usize, delta: i64) -> i64 {
        self.touch(ghost_bit(g));
        self.ghost[g] += delta;
        self.ghost[g]
    }

    fn touch(&mut self, bit: u64) {
        self.effects.footprint |= bit;
    }

    // ---- program-counter and register helpers -------------------------

    pub fn pc(&self, tid: Tid) -> u32 {
        self.locals[tid].pc
    }

    pub fn goto(&mut self, tid: Tid, pc: u32) {
        self.locals[tid].pc = pc;
    }

    pub fn reg(&self, tid: Tid, r: usize) -> i64 {
        self.locals[tid].regs[r]
    }

    pub fn set_reg(&mut self, tid: Tid, r: usize, v: i64) {
        self.locals[tid].regs[r] = v;
    }

    /// Consumes and returns the timed-out flag of the last park.
    pub fn timed_out(&self, tid: Tid) -> bool {
        self.locals[tid].timed_out
    }

    /// True if the last channel op observed a closed channel.
    pub fn was_closed(&self, tid: Tid) -> bool {
        self.locals[tid].closed
    }

    /// Marks the thread finished.
    pub fn done(&mut self, tid: Tid) {
        self.status[tid] = Status::Done;
    }

    /// Raises a protocol-level assertion failure (the explorer reports
    /// it with the schedule that reached it).
    pub fn fail(&mut self, msg: impl Into<String>) {
        if self.effects.failure.is_none() {
            self.effects.failure = Some(msg.into());
        }
    }

    // ---- mutex --------------------------------------------------------

    /// Attempts to acquire `m`. On contention the thread parks and the
    /// call returns `false` — the program must leave its pc unchanged so
    /// the arm re-runs once the scheduler grants the mutex (the re-run
    /// sees itself as owner and proceeds).
    pub fn lock(&mut self, tid: Tid, m: MutexId) -> bool {
        self.touch(mutex_bit(m));
        match self.mutexes[m.0].owner {
            Some(o) if o == tid => true, // granted by the scheduler
            Some(_) => {
                self.status[tid] = Status::ParkedMutex(m);
                false
            }
            None => {
                self.grant_mutex(tid, m);
                true
            }
        }
    }

    /// Directly grants `m` to `tid` (explorer transition for a parked
    /// thread once the mutex is free).
    pub(crate) fn grant_mutex(&mut self, tid: Tid, m: MutexId) {
        debug_assert!(self.mutexes[m.0].owner.is_none());
        self.touch(mutex_bit(m));
        for held in 0..self.mutexes.len() {
            if held != m.0 && self.mutexes[held].owner == Some(tid) {
                self.effects.lock_edges.push((MutexId(held), m));
            }
        }
        self.mutexes[m.0].owner = Some(tid);
        let clock = self.mutexes[m.0].clock;
        self.clocks[tid].join(&clock);
        self.status[tid] = Status::Runnable;
    }

    /// Releases `m`; parked waiters become eligible automatically (the
    /// scheduler explores every acquisition order).
    pub fn unlock(&mut self, tid: Tid, m: MutexId) {
        assert_eq!(self.mutexes[m.0].owner, Some(tid), "unlock by non-owner");
        self.touch(mutex_bit(m));
        let clock = self.clocks[tid];
        self.mutexes[m.0].clock.join(&clock);
        self.mutexes[m.0].owner = None;
    }

    // ---- condvar ------------------------------------------------------

    /// Atomically releases `mx` and parks on `cv` (the thread must hold
    /// `mx`). Advance the pc *before* returning from the arm: on wake —
    /// notify or timeout — the thread transparently re-acquires `mx` and
    /// resumes at that pc with [`ModelState::timed_out`] set accordingly.
    pub fn cv_wait(&mut self, tid: Tid, cv: CondvarId, mx: MutexId, timed: bool) {
        self.touch(condvar_bit(cv));
        self.unlock(tid, mx);
        self.locals[tid].timed_out = false;
        self.condvars[cv.0].waiters.push(tid);
        self.status[tid] = Status::ParkedCv { cv, mx, timed };
    }

    fn wake_waiter(&mut self, w: Tid, cv: CondvarId) {
        let Status::ParkedCv { mx, .. } = self.status[w] else {
            panic!("waking a thread not parked on the condvar");
        };
        let clock = self.condvars[cv.0].clock;
        self.clocks[w].join(&clock);
        self.locals[w].timed_out = false;
        self.status[w] = Status::ParkedMutex(mx);
    }

    /// Wakes every parked waiter (each must still re-acquire the mutex).
    /// A notify with no waiters is lost, as with `std::sync::Condvar`.
    pub fn notify_all(&mut self, tid: Tid, cv: CondvarId) {
        self.touch(condvar_bit(cv));
        let clock = self.clocks[tid];
        self.condvars[cv.0].clock.join(&clock);
        self.condvars[cv.0].notifies += 1;
        let waiters = std::mem::take(&mut self.condvars[cv.0].waiters);
        for w in waiters {
            self.wake_waiter(w, cv);
        }
    }

    /// Wakes the waiter selected by `pick` (the program exposes the
    /// waiter count through its `choices`, so every target is explored).
    /// Lost with no memory when nobody waits.
    pub fn notify_one(&mut self, tid: Tid, cv: CondvarId, pick: usize) {
        self.touch(condvar_bit(cv));
        let clock = self.clocks[tid];
        self.condvars[cv.0].clock.join(&clock);
        self.condvars[cv.0].notifies += 1;
        if self.condvars[cv.0].waiters.is_empty() {
            return;
        }
        let idx = pick.min(self.condvars[cv.0].waiters.len() - 1);
        let w = self.condvars[cv.0].waiters.remove(idx);
        self.wake_waiter(w, cv);
    }

    /// Fires the timeout of a thread parked on a condvar or receive:
    /// the injected-fault transition (or the forced drain at otherwise
    /// stuck states).
    pub(crate) fn fire_timeout(&mut self, tid: Tid) {
        match self.status[tid] {
            Status::ParkedCv { cv, mx, timed } => {
                assert!(timed, "timeout on an untimed condvar wait");
                self.touch(condvar_bit(cv));
                self.condvars[cv.0].waiters.retain(|&w| w != tid);
                self.locals[tid].timed_out = true;
                self.status[tid] = Status::ParkedMutex(mx);
            }
            Status::ParkedRecv { ch, timed, .. } => {
                assert!(timed, "timeout on an untimed receive");
                self.touch(channel_bit(ch));
                self.locals[tid].timed_out = true;
                self.status[tid] = Status::Runnable;
            }
            other => panic!("timeout on a thread in state {other:?}"),
        }
    }

    // ---- channels -----------------------------------------------------

    /// Sends `value`; returns `false` (setting the closed flag) if the
    /// channel is closed. Never blocks — queues are unbounded, as with
    /// `mpsc` senders and the socket write path's kernel buffer model.
    pub fn send(&mut self, tid: Tid, ch: ChannelId, value: i64) -> bool {
        self.touch(channel_bit(ch));
        if self.channels[ch.0].closed {
            self.locals[tid].closed = true;
            return false;
        }
        let clock = self.clocks[tid];
        self.channels[ch.0].queue.push_back((value, clock));
        true
    }

    /// Receives the next value into register `reg`, advancing to the pc
    /// the program set *before* calling. Three outcomes, all resuming at
    /// that pc: value delivered (flags clear), channel closed and
    /// drained ([`ModelState::was_closed`], reg = [`CLOSED`]), or — for
    /// timed receives, under fault budget — a timeout
    /// ([`ModelState::timed_out`]).
    pub fn recv_into(&mut self, tid: Tid, ch: ChannelId, reg: usize, timed: bool) {
        self.touch(channel_bit(ch));
        self.locals[tid].timed_out = false;
        self.locals[tid].closed = false;
        if let Some((v, clock)) = self.channels[ch.0].queue.pop_front() {
            self.clocks[tid].join(&clock);
            self.locals[tid].regs[reg] = v;
        } else if self.channels[ch.0].closed {
            self.locals[tid].closed = true;
            self.locals[tid].regs[reg] = CLOSED;
        } else {
            self.status[tid] = Status::ParkedRecv { ch, reg, timed };
        }
    }

    /// Explorer transition delivering to a parked receiver (or telling
    /// it the channel closed under it).
    pub(crate) fn deliver_recv(&mut self, tid: Tid) {
        let Status::ParkedRecv { ch, reg, .. } = self.status[tid] else {
            panic!("delivering to a thread not parked on a receive");
        };
        self.touch(channel_bit(ch));
        if let Some((v, clock)) = self.channels[ch.0].queue.pop_front() {
            self.clocks[tid].join(&clock);
            self.locals[tid].regs[reg] = v;
        } else {
            debug_assert!(self.channels[ch.0].closed);
            self.locals[tid].closed = true;
            self.locals[tid].regs[reg] = CLOSED;
        }
        self.status[tid] = Status::Runnable;
    }

    /// Closes `ch` (sender drop / severed socket). Queued values remain
    /// deliverable; a drained receive then observes [`CLOSED`].
    pub fn close(&mut self, tid: Tid, ch: ChannelId) {
        let _ = tid;
        self.touch(channel_bit(ch));
        self.channels[ch.0].closed = true;
    }

    /// Number of values currently queued (used by `choices` for
    /// multi-frame reads).
    pub fn queued(&self, ch: ChannelId) -> usize {
        self.channels[ch.0].queue.len()
    }

    // ---- atomics (SeqCst: both acquire and release) -------------------

    pub fn atomic_load(&mut self, tid: Tid, a: AtomicId) -> i64 {
        self.touch(atomic_bit(a));
        let clock = self.atomics[a.0].clock;
        self.clocks[tid].join(&clock);
        self.atomics[a.0].value
    }

    pub fn atomic_add(&mut self, tid: Tid, a: AtomicId, delta: i64) -> i64 {
        self.touch(atomic_bit(a));
        let clock = self.clocks[tid];
        self.atomics[a.0].clock.join(&clock);
        let prev = self.atomics[a.0].value;
        self.atomics[a.0].value = prev + delta;
        let obj = self.atomics[a.0].clock;
        self.clocks[tid].join(&obj);
        prev
    }

    // ---- race-checked data cells --------------------------------------

    fn epoch(&self, tid: Tid) -> Epoch {
        Epoch { tid, at: self.clocks[tid].0[tid] }
    }

    fn race(&mut self, cell: DataId, prior: Epoch, tid: Tid, second_is_write: bool) {
        let first = (prior.tid, self.locals[prior.tid].pc);
        let second = (tid, self.locals[tid].pc);
        self.effects.races.push(RaceReport { cell, first, second, second_is_write });
    }

    /// Reads a plain cell, flagging the read if it is unordered with the
    /// last write.
    pub fn read_data(&mut self, tid: Tid, d: DataId) -> i64 {
        self.touch(data_bit(d));
        if let Some(w) = self.data[d.0].last_write {
            if w.tid != tid && !self.clocks[tid].saw(w.tid, w.at) {
                self.race(d, w, tid, false);
            }
        }
        let e = self.epoch(tid);
        let reads = &mut self.data[d.0].reads;
        match reads.iter_mut().find(|r| r.tid == tid) {
            Some(r) => *r = e,
            None => reads.push(e),
        }
        self.data[d.0].value
    }

    /// Writes a plain cell, flagging the write if it is unordered with
    /// the last write or any read since it.
    pub fn write_data(&mut self, tid: Tid, d: DataId, value: i64) {
        self.touch(data_bit(d));
        if let Some(w) = self.data[d.0].last_write {
            if w.tid != tid && !self.clocks[tid].saw(w.tid, w.at) {
                self.race(d, w, tid, true);
            }
        }
        let reads = self.data[d.0].reads.clone();
        for r in reads {
            if r.tid != tid && !self.clocks[tid].saw(r.tid, r.at) {
                self.race(d, r, tid, true);
            }
        }
        self.data[d.0].last_write = Some(self.epoch(tid));
        self.data[d.0].reads.clear();
        self.data[d.0].value = value;
    }

    // ---- fault injection ----------------------------------------------

    /// True while `tid` may be crash-injected: budget left, thread
    /// alive, and no mutex held (ranks share mutexes only in-process,
    /// where a dying thread cannot vanish mid-critical-section).
    pub(crate) fn crash_eligible(&self, tid: Tid) -> bool {
        self.budget.crashes > 0
            && !matches!(self.status[tid], Status::Done | Status::Crashed)
            && !self.mutexes.iter().any(|m| m.owner == Some(tid))
    }

    /// Crash transition: the thread never runs again and its channel
    /// endpoints sever, exactly as `kill -9` severs a rank's sockets.
    pub(crate) fn crash(&mut self, tid: Tid) {
        debug_assert!(self.crash_eligible(tid));
        self.budget.crashes -= 1;
        if let Status::ParkedCv { cv, .. } = self.status[tid] {
            self.condvars[cv.0].waiters.retain(|&w| w != tid);
        }
        self.status[tid] = Status::Crashed;
        let severed = self.owned_channels[tid].clone();
        for ch in severed {
            self.channels[ch.0].closed = true;
        }
    }

    /// Advances the executing thread's own clock component — called by
    /// the explorer once per transition, so every event has a distinct
    /// epoch.
    pub(crate) fn tick(&mut self, tid: Tid) {
        self.clocks[tid].0[tid] += 1;
    }

    /// Hash of everything the model's semantics can observe (effects
    /// excluded — they are per-transition scratch).
    ///
    /// Vector clocks are part of the hash only while the model has
    /// race-checkable data cells: clocks never influence enabledness or
    /// control flow, only the race detector reads them, so for
    /// channel-only models (no [`MData`]) merging states that differ
    /// solely in clocks is sound — and essential, since clocks grow
    /// monotonically and would otherwise keep every schedule's states
    /// distinct.
    pub(crate) fn state_hash(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        let race_active = !self.data.is_empty();
        for m in &self.mutexes {
            m.owner.hash(&mut h);
            if race_active {
                m.clock.hash(&mut h);
            }
        }
        for c in &self.condvars {
            c.waiters.hash(&mut h);
            c.notifies.hash(&mut h);
            if race_active {
                c.clock.hash(&mut h);
            }
        }
        for ch in &self.channels {
            ch.closed.hash(&mut h);
            ch.queue.len().hash(&mut h);
            for (v, clock) in &ch.queue {
                v.hash(&mut h);
                if race_active {
                    clock.hash(&mut h);
                }
            }
        }
        for a in &self.atomics {
            a.value.hash(&mut h);
            if race_active {
                a.clock.hash(&mut h);
            }
        }
        self.data.hash(&mut h);
        self.ghost.hash(&mut h);
        self.status.hash(&mut h);
        self.locals.hash(&mut h);
        if race_active {
            self.clocks.hash(&mut h);
        }
        self.budget.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_contention_parks_and_grant_resumes() {
        let mut st = ModelState::new(2);
        let m = st.add_mutex();
        assert!(st.lock(0, m));
        assert!(!st.lock(1, m), "contended lock must park");
        assert_eq!(st.status[1], Status::ParkedMutex(m));
        st.unlock(0, m);
        st.grant_mutex(1, m);
        assert!(st.lock(1, m), "granted thread re-runs its arm as owner");
    }

    #[test]
    fn notify_without_waiters_is_lost() {
        let mut st = ModelState::new(2);
        let m = st.add_mutex();
        let cv = st.add_condvar();
        st.lock(0, m);
        st.notify_all(0, cv); // nobody waits: lost
        st.unlock(0, m);
        st.lock(1, m);
        st.cv_wait(1, cv, m, false);
        // The earlier notify left no memory; thread 1 stays parked.
        assert!(matches!(st.status[1], Status::ParkedCv { .. }));
        assert_eq!(st.condvars[cv.0].notifies, 1);
    }

    #[test]
    fn channel_close_drains_then_reports_closed() {
        let mut st = ModelState::new(2);
        let ch = st.add_channel();
        st.send(0, ch, 7);
        st.close(0, ch);
        st.goto(1, 1);
        st.recv_into(1, ch, 0, false);
        assert_eq!(st.reg(1, 0), 7, "queued value survives the close");
        st.recv_into(1, ch, 0, false);
        assert!(st.was_closed(1));
        assert_eq!(st.reg(1, 0), CLOSED);
    }

    #[test]
    fn unordered_writes_race_and_channel_edge_orders() {
        // Two writes with no sync edge race…
        let mut st = ModelState::new(2);
        let d = st.add_data(0);
        st.tick(0);
        st.write_data(0, d, 1);
        st.tick(1);
        st.write_data(1, d, 2);
        assert_eq!(st.effects.races.len(), 1);

        // …but a channel send/recv edge orders them.
        let mut st = ModelState::new(2);
        let d = st.add_data(0);
        let ch = st.add_channel();
        st.tick(0);
        st.write_data(0, d, 1);
        st.send(0, ch, 0);
        st.tick(1);
        st.recv_into(1, ch, 0, false);
        st.write_data(1, d, 2);
        assert!(st.effects.races.is_empty(), "{:?}", st.effects.races);
    }

    #[test]
    fn lock_edges_record_nested_acquisition() {
        let mut st = ModelState::new(1);
        let a = st.add_mutex();
        let b = st.add_mutex();
        st.lock(0, a);
        st.lock(0, b);
        assert_eq!(st.effects.lock_edges, vec![(a, b)]);
    }

    #[test]
    fn crash_severs_owned_channels() {
        let mut st = ModelState::new(2);
        let ch = st.add_channel();
        st.owned_channels[0].push(ch);
        st.budget.crashes = 1;
        assert!(st.crash_eligible(0));
        st.crash(0);
        assert!(st.channels[ch.0].closed);
        assert!(!st.crash_eligible(1), "budget spent");
    }
}
