//! The transport/overlap concurrency protocols, re-expressed against
//! the modeling shims.
//!
//! Each model is a faithful pc-machine transcription of one of the
//! hand-rolled protocols in `zero-comm`, with the *decision logic*
//! imported verbatim from [`zero_comm::protocol`] — the same pure
//! kernels the real primitives run — and only the synchronization
//! skeleton (mutexes, condvars, channels, timeouts) re-expressed as
//! shim operations. What the checker proves is therefore about the
//! shipped logic, not a lookalike:
//!
//! 1. [`LatchModel`] — `ShutdownLatch`: departing handles decrement a
//!    live count under a mutex and notify; a rank in the deadline wait
//!    re-checks `latch::sole_survivor` in a timed-wait loop.
//! 2. [`BarrierModel`] — `TimeoutBarrier`: generation-counted arrivals
//!    via [`BarrierCore`], withdraw-on-timeout, and one retry — the
//!    reusability the real barrier promises across steps. The
//!    `mutant_leak_withdraw` flag builds the *broken* barrier (withdraw
//!    forgets to decrement) for the seeded mutation test.
//! 3. [`DissemModel`] — the socket backend's dissemination barrier:
//!    `ceil(log2 N)` rounds over per-link FIFO channels following
//!    [`dissemination_schedule`], timeout-bounded receives, optional
//!    rank crash severing its links.
//! 4. [`HandshakeModel`] — the connect/accept hello exchange at byte
//!    granularity: partial reads (every split explored via scheduler
//!    choices), residue bytes carried from the hello read into the
//!    payload phase, slow/fast peers, and a sequential accept loop in
//!    the 3-peer variant.
//! 5. [`ProgressModel`] — the non-blocking engine's progress thread: an
//!    unbounded work queue, completion flags published under a
//!    mutex/condvar, timed `PendingOp` waits, and join-on-drop
//!    quiescence (last handle closes the queue; the thread drains and
//!    exits). The `mutant_no_close` flag drops the close — the
//!    join-would-hang bug — for the mutation test.
//!
//! Ghost cells carry the specification state the invariants quantify
//! over (who entered the current barrier generation, how many jobs
//! executed); they are hashed and footprinted but race-exempt.

use zero_comm::protocol::{dissemination_schedule, latch, Arrival, BarrierCore};

use super::explorer::Program;
use super::shims::{ChannelId, CondvarId, DataId, FaultBudget, ModelState, MutexId, Status, Tid};

/// Outcome register (`r0`) conventions shared by all models.
pub const PENDING: i64 = -2;
pub const ABORTED: i64 = -1;
pub const TIMED_OUT: i64 = 0;
pub const OK: i64 = 1;

/// True if any thread was crash-injected in this run.
fn any_crashed(st: &ModelState) -> bool {
    st.status.iter().any(|s| matches!(s, Status::Crashed))
}

/// Per-thread outcome register, for final-state checks.
fn outcome(st: &ModelState, tid: Tid) -> i64 {
    st.locals[tid].regs[0]
}

// ---------------------------------------------------------------------
// 1. ShutdownLatch deadline wait
// ---------------------------------------------------------------------

/// `ShutdownLatch`: thread 0 runs `wait_sole_survivor` with a deadline
/// (timed condvar wait re-checking [`latch::sole_survivor`]); threads
/// `1..ranks` run `depart` (decrement live under the mutex, notify).
///
/// One injected timeout models the deadline expiring mid-protocol, so
/// the checker covers "shutdown racing the deadline" exhaustively.
pub struct LatchModel {
    pub ranks: usize,
}

impl LatchModel {
    const MX: MutexId = MutexId(0);
    const CV: CondvarId = CondvarId(0);
    const LIVE: DataId = DataId(0);
}

impl Program for LatchModel {
    fn init(&self) -> ModelState {
        let mut st = ModelState::new(self.ranks);
        st.add_mutex();
        st.add_condvar();
        st.add_data(self.ranks as i64);
        st.budget = FaultBudget { crashes: 0, timeouts: 1 };
        st
    }

    fn step(&self, st: &mut ModelState, tid: Tid, _choice: usize) {
        if tid == 0 {
            // wait_sole_survivor: single arm; wakes re-enter it with the
            // mutex granted (lock is idempotent for the owner).
            if st.lock(tid, Self::MX) {
                let live = st.read_data(tid, Self::LIVE) as usize;
                if latch::sole_survivor(live) {
                    st.unlock(tid, Self::MX);
                    st.set_reg(tid, 0, OK); // cancelled: peers all gone
                    st.done(tid);
                } else if st.timed_out(tid) {
                    st.unlock(tid, Self::MX);
                    st.set_reg(tid, 0, TIMED_OUT); // deadline expired
                    st.done(tid);
                } else {
                    st.goto(tid, 0);
                    st.cv_wait(tid, Self::CV, Self::MX, true);
                }
            }
        } else {
            // depart(): the real primitive's exact critical section.
            if st.lock(tid, Self::MX) {
                let mut live = st.read_data(tid, Self::LIVE) as usize;
                latch::depart(&mut live);
                st.write_data(tid, Self::LIVE, live as i64);
                st.notify_all(tid, Self::CV);
                st.unlock(tid, Self::MX);
                st.done(tid);
            }
        }
    }

    fn check_final(&self, st: &ModelState) -> Option<String> {
        let live = st.data[Self::LIVE.0].value;
        if outcome(st, 0) == OK && live > 1 {
            return Some(format!("latch wait cancelled with {live} handles still live"));
        }
        if st.budget.timeouts == 1 && outcome(st, 0) != OK {
            return Some("latch wait missed the departures without any deadline expiry".into());
        }
        None
    }
}

// ---------------------------------------------------------------------
// 2. TimeoutBarrier with withdraw-on-timeout
// ---------------------------------------------------------------------

/// `TimeoutBarrier::wait_timeout` for every rank, driven by the real
/// [`BarrierCore`] kernel under the modeled mutex. A timed-out rank
/// withdraws and retries once (generation reuse); ghost state tracks
/// who is inside the current wave so the release invariant — nobody is
/// released before all `n` arrivals are in — is checked at every state.
pub struct BarrierModel {
    pub ranks: usize,
    /// Seeded bug: withdraw forgets to decrement the arrival count.
    pub mutant_leak_withdraw: bool,
}

impl BarrierModel {
    const MX: MutexId = MutexId(0);
    const CV: CondvarId = CondvarId(0);
    const ARRIVED: DataId = DataId(0);
    const GEN: DataId = DataId(1);
    /// Ghost: bitmask of ranks inside the current wave.
    const ENTERED: usize = 0;

    fn load_core(&self, st: &mut ModelState, tid: Tid) -> BarrierCore {
        BarrierCore {
            n: self.ranks,
            arrived: st.read_data(tid, Self::ARRIVED) as usize,
            generation: st.read_data(tid, Self::GEN) as u64,
        }
    }

    fn store_core(&self, st: &mut ModelState, tid: Tid, core: BarrierCore) {
        st.write_data(tid, Self::ARRIVED, core.arrived as i64);
        st.write_data(tid, Self::GEN, core.generation as i64);
    }
}

impl Program for BarrierModel {
    fn init(&self) -> ModelState {
        let mut st = ModelState::new(self.ranks);
        st.add_mutex();
        st.add_condvar();
        st.add_data(0); // arrived
        st.add_data(0); // generation
        st.add_ghost(0); // entered mask
        st.budget = FaultBudget { crashes: 0, timeouts: 1 };
        for tid in 0..self.ranks {
            st.set_reg(tid, 0, PENDING);
        }
        st
    }

    fn step(&self, st: &mut ModelState, tid: Tid, _choice: usize) {
        match st.pc(tid) {
            // Arrive.
            0 => {
                if st.lock(tid, Self::MX) {
                    let mut core = self.load_core(st, tid);
                    let entered = st.ghost_read(Self::ENTERED) | (1 << tid);
                    st.ghost_write(Self::ENTERED, entered);
                    match core.arrive() {
                        Arrival::Released => {
                            if entered.count_ones() as usize != self.ranks {
                                st.fail(format!(
                                    "generation released with entered mask {entered:b}, \
                                     want all {} ranks",
                                    self.ranks
                                ));
                            }
                            st.ghost_write(Self::ENTERED, 0);
                            self.store_core(st, tid, core);
                            st.notify_all(tid, Self::CV);
                            st.unlock(tid, Self::MX);
                            st.set_reg(tid, 0, OK);
                            st.done(tid);
                        }
                        Arrival::MustWait { gen } => {
                            self.store_core(st, tid, core);
                            st.set_reg(tid, 1, gen as i64);
                            st.goto(tid, 1);
                            st.cv_wait(tid, Self::CV, Self::MX, true);
                        }
                    }
                }
            }
            // Waiting loop: released? deadline? spurious wake?
            1 => {
                if st.lock(tid, Self::MX) {
                    let mut core = self.load_core(st, tid);
                    let gen = st.reg(tid, 1) as u64;
                    if core.released(gen) {
                        st.unlock(tid, Self::MX);
                        st.set_reg(tid, 0, OK);
                        st.done(tid);
                    } else if st.timed_out(tid) {
                        if self.mutant_leak_withdraw {
                            // BUG under test: the arrival count keeps the
                            // ghost of the departed rank.
                        } else {
                            core.withdraw();
                            self.store_core(st, tid, core);
                        }
                        let entered = st.ghost_read(Self::ENTERED) & !(1 << tid);
                        st.ghost_write(Self::ENTERED, entered);
                        st.unlock(tid, Self::MX);
                        if st.reg(tid, 2) == 0 {
                            // Retry once: barrier reuse after a timeout.
                            st.set_reg(tid, 2, 1);
                            st.goto(tid, 0);
                        } else {
                            st.set_reg(tid, 0, TIMED_OUT);
                            st.done(tid);
                        }
                    } else {
                        st.goto(tid, 1);
                        st.cv_wait(tid, Self::CV, Self::MX, true);
                    }
                }
            }
            pc => panic!("barrier model: bad pc {pc}"),
        }
    }

    fn check(&self, st: &ModelState) -> Option<String> {
        // The arrival count and the ghost membership mask must agree at
        // every reachable state — withdraw leaks break this on the spot.
        let arrived = st.data[Self::ARRIVED.0].value;
        let entered = st.ghost[Self::ENTERED].count_ones() as i64;
        (arrived != entered).then(|| {
            format!("arrival count {arrived} disagrees with {entered} ranks inside the wave")
        })
    }

    fn check_final(&self, st: &ModelState) -> Option<String> {
        if st.budget.timeouts == 1 {
            // Fault-free run: everyone passes, exactly one generation.
            for tid in 0..self.ranks {
                if outcome(st, tid) != OK {
                    return Some(format!("rank {tid} failed the barrier without any timeout"));
                }
            }
            if st.data[Self::GEN.0].value != 1 {
                return Some(format!(
                    "fault-free run ended at generation {}, want 1",
                    st.data[Self::GEN.0].value
                ));
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// 3. Dissemination barrier over per-link FIFO channels
// ---------------------------------------------------------------------

/// The socket backend's dissemination barrier: every rank walks the
/// real [`dissemination_schedule`], sending its round token and then
/// blocking (timeout-bounded) on the matching link. One channel per
/// ordered rank pair gives per-link FIFO, exactly like one socket per
/// peer. A crash-injected rank severs every link it touches; survivors
/// must abort via closed-link or timeout, never deadlock.
pub struct DissemModel {
    pub ranks: usize,
    /// Allow one rank crash (vs. one timeout) as the injected fault.
    pub crash: bool,
}

impl DissemModel {
    /// Ghost: bitmask of ranks that entered the barrier (sent round 0).
    const ARRIVED: usize = 0;

    fn link(&self, src: usize, dst: usize) -> ChannelId {
        debug_assert!(src != dst);
        ChannelId(src * self.ranks + dst)
    }
}

impl Program for DissemModel {
    fn init(&self) -> ModelState {
        let mut st = ModelState::new(self.ranks);
        for src in 0..self.ranks {
            for dst in 0..self.ranks {
                let ch = st.add_channel();
                if src != dst {
                    // A dead process severs both directions of its
                    // sockets.
                    st.owned_channels[src].push(ch);
                    st.owned_channels[dst].push(ch);
                }
            }
        }
        st.add_ghost(0);
        st.budget = if self.crash {
            FaultBudget { crashes: 1, timeouts: 0 }
        } else {
            FaultBudget { crashes: 0, timeouts: 1 }
        };
        for tid in 0..self.ranks {
            st.set_reg(tid, 0, PENDING);
        }
        st
    }

    fn step(&self, st: &mut ModelState, tid: Tid, _choice: usize) {
        let schedule = dissemination_schedule(tid, self.ranks);
        match st.pc(tid) {
            // Send the round token, then await the mirror token.
            0 => {
                let round = st.reg(tid, 3) as usize;
                if round >= schedule.len() {
                    st.set_reg(tid, 0, OK);
                    st.done(tid);
                    return;
                }
                if round == 0 {
                    let arrived = st.ghost_read(Self::ARRIVED) | (1 << tid);
                    st.ghost_write(Self::ARRIVED, arrived);
                }
                let hop = schedule[round];
                st.send(tid, self.link(tid, hop.dst), hop.round as i64);
                st.goto(tid, 1);
                st.recv_into(tid, self.link(hop.src, tid), 1, true);
            }
            // Token (or failure) arrived.
            1 => {
                if st.timed_out(tid) || st.was_closed(tid) {
                    st.set_reg(tid, 0, ABORTED);
                    st.done(tid);
                    return;
                }
                let round = st.reg(tid, 3) as usize;
                let got = st.reg(tid, 1);
                if got != round as i64 {
                    // Per-link FIFO and distinct per-round offsets make
                    // this impossible; a schedule bug would trip it.
                    st.fail(format!("rank {tid} got round token {got} in round {round}"));
                }
                st.set_reg(tid, 3, round as i64 + 1);
                st.goto(tid, 0);
            }
            pc => panic!("dissem model: bad pc {pc}"),
        }
    }

    fn check_final(&self, st: &ModelState) -> Option<String> {
        let all = (1i64 << self.ranks) - 1;
        let arrived = st.ghost[Self::ARRIVED];
        // The barrier property: a rank that passed cleanly has
        // transitively heard from everyone, so everyone entered.
        for tid in 0..self.ranks {
            if outcome(st, tid) == OK && arrived != all {
                return Some(format!(
                    "rank {tid} exited the barrier though arrivals were {arrived:b}"
                ));
            }
        }
        if st.budget.timeouts == 1 && !any_crashed(st) {
            for tid in 0..self.ranks {
                if outcome(st, tid) != OK {
                    return Some(format!("rank {tid} aborted a fault-free barrier"));
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// 4. Socket handshake with residue bytes
// ---------------------------------------------------------------------

/// The connect/accept hello exchange, modeled at byte granularity: each
/// side sends a 2-byte hello, reads the peer's hello, then sends a
/// 2-byte payload and reads the peer's. Reads consume *any* available
/// prefix (1..=queued bytes, explored via scheduler choices), so a read
/// may return the tail of the hello plus the head of the payload — the
/// residue bytes — which the protocol must carry into the next phase.
///
/// With `peers == 2`, rank 0 is the accept loop: it completes the full
/// exchange with peer 1 before servicing peer 2, while peer 2's bytes
/// queue up (the slow-accepter case).
pub struct HandshakeModel {
    /// Connecting peers (1 or 2); thread 0 is the hub, total threads =
    /// peers + 1.
    pub peers: usize,
    /// Allow one peer crash as the injected fault.
    pub crash: bool,
}

/// Register layout for the handshake state machine.
const H_STATUS: usize = 0; // r0: outcome
const H_BUF: usize = 1; // r1: packed receive buffer (LSB first)
const H_LEN: usize = 2; // r2: bytes in buffer
const H_BYTE: usize = 3; // r3: landing register for one received byte
const H_SESSION: usize = 4; // r4: hub's accept-loop index

const HELLO_TAG: i64 = 1;
const DATA_TAG: i64 = 2;

impl HandshakeModel {
    fn threads(&self) -> usize {
        self.peers + 1
    }

    /// Unidirectional byte stream `src → dst`.
    fn pipe(&self, src: usize, dst: usize) -> ChannelId {
        ChannelId(src * self.threads() + dst)
    }

    /// The remote this thread is currently talking to.
    fn peer_of(&self, st: &ModelState, tid: Tid) -> usize {
        if tid == 0 {
            st.reg(0, H_SESSION) as usize + 1
        } else {
            0
        }
    }

    fn append_byte(st: &mut ModelState, tid: Tid, byte: i64) {
        let len = st.reg(tid, H_LEN);
        let buf = st.reg(tid, H_BUF) | (byte << (8 * len));
        st.set_reg(tid, H_BUF, buf);
        st.set_reg(tid, H_LEN, len + 1);
    }

    /// Pops the parsed 2-byte frame, keeping residue bytes in place.
    fn consume_frame(st: &mut ModelState, tid: Tid) -> (i64, i64) {
        let buf = st.reg(tid, H_BUF);
        let len = st.reg(tid, H_LEN);
        st.set_reg(tid, H_BUF, buf >> 16);
        st.set_reg(tid, H_LEN, len - 2);
        (buf & 0xff, (buf >> 8) & 0xff)
    }

    fn abort(st: &mut ModelState, tid: Tid) {
        st.set_reg(tid, H_STATUS, ABORTED);
        st.done(tid);
    }

    /// Shared read-phase arm: accumulate bytes until `want` are
    /// buffered, then validate the frame `(tag, mark)`. `resume` is the
    /// parked-read continuation pc, `next` the pc after a valid frame.
    #[allow(clippy::too_many_arguments)]
    fn read_phase(
        &self,
        st: &mut ModelState,
        tid: Tid,
        choice: usize,
        tag: i64,
        next: u32,
        resume: u32,
        phase: &str,
    ) {
        let peer = self.peer_of(st, tid);
        if st.reg(tid, H_LEN) >= 2 {
            let (got_tag, got_mark) = Self::consume_frame(st, tid);
            let want_mark = 10 * tag + peer as i64;
            if got_tag != tag || got_mark != want_mark {
                st.fail(format!(
                    "t{tid} {phase}: got frame ({got_tag},{got_mark}), \
                     want ({tag},{want_mark})"
                ));
            }
            st.goto(tid, next);
            return;
        }
        let ch = self.pipe(peer, tid);
        let avail = st.queued(ch);
        if avail == 0 {
            st.goto(tid, resume);
            st.recv_into(tid, ch, H_BYTE, true);
            return;
        }
        // Consume a scheduler-chosen prefix: every read split explored.
        let take = (choice + 1).min(avail);
        for _ in 0..take {
            st.recv_into(tid, ch, H_BYTE, true);
            if st.was_closed(tid) {
                Self::abort(st, tid);
                return;
            }
            let byte = st.reg(tid, H_BYTE);
            Self::append_byte(st, tid, byte);
        }
    }

    /// Parked-read continuation: classify the wake-up, append on data.
    fn read_resume(st: &mut ModelState, tid: Tid, back: u32) {
        if st.timed_out(tid) || st.was_closed(tid) {
            Self::abort(st, tid);
            return;
        }
        let byte = st.reg(tid, H_BYTE);
        Self::append_byte(st, tid, byte);
        st.goto(tid, back);
    }
}

impl Program for HandshakeModel {
    fn init(&self) -> ModelState {
        let t = self.threads();
        let mut st = ModelState::new(t);
        for src in 0..t {
            for dst in 0..t {
                let ch = st.add_channel();
                if src != dst {
                    st.owned_channels[src].push(ch);
                    st.owned_channels[dst].push(ch);
                }
            }
        }
        st.budget = if self.crash {
            FaultBudget { crashes: 1, timeouts: 0 }
        } else {
            FaultBudget { crashes: 0, timeouts: 1 }
        };
        for tid in 0..t {
            st.set_reg(tid, H_STATUS, PENDING);
        }
        st
    }

    fn choices(&self, st: &ModelState, tid: Tid) -> usize {
        // At a read-phase pc with a short buffer, the read may consume
        // any non-empty prefix of the queued bytes.
        if matches!(st.pc(tid), 2 | 6) && st.reg(tid, H_LEN) < 2 {
            let peer = self.peer_of(st, tid);
            st.queued(self.pipe(peer, tid)).max(1)
        } else {
            1
        }
    }

    fn step(&self, st: &mut ModelState, tid: Tid, choice: usize) {
        let peer = self.peer_of(st, tid);
        let out = self.pipe(tid, peer);
        match st.pc(tid) {
            // Hello, one byte per write (partial writes explored).
            0 => {
                st.send(tid, out, HELLO_TAG);
                st.goto(tid, 1);
            }
            1 => {
                st.send(tid, out, 10 * HELLO_TAG + tid as i64);
                st.goto(tid, 2);
            }
            2 => self.read_phase(st, tid, choice, HELLO_TAG, 4, 3, "hello"),
            3 => Self::read_resume(st, tid, 2),
            // Payload phase; residue from the hello read is already in
            // the buffer.
            4 => {
                st.send(tid, out, DATA_TAG);
                st.goto(tid, 5);
            }
            5 => {
                st.send(tid, out, 10 * DATA_TAG + tid as i64);
                st.goto(tid, 6);
            }
            6 => self.read_phase(st, tid, choice, DATA_TAG, 8, 7, "payload"),
            7 => Self::read_resume(st, tid, 6),
            // Session complete.
            8 => {
                let session = st.reg(tid, H_SESSION);
                if tid == 0 && (session as usize) + 1 < self.peers {
                    // Accept loop: next peer, fresh buffer (new socket).
                    st.set_reg(tid, H_SESSION, session + 1);
                    st.set_reg(tid, H_BUF, 0);
                    st.set_reg(tid, H_LEN, 0);
                    st.goto(tid, 0);
                } else {
                    st.set_reg(tid, H_STATUS, OK);
                    st.done(tid);
                }
            }
            pc => panic!("handshake model: bad pc {pc}"),
        }
    }

    fn check_final(&self, st: &ModelState) -> Option<String> {
        if st.budget.timeouts == 1 && !any_crashed(st) {
            for tid in 0..self.threads() {
                if outcome(st, tid) != OK {
                    return Some(format!("t{tid} failed a fault-free handshake"));
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// 5. Progress thread with join-on-drop PendingOps
// ---------------------------------------------------------------------

/// The non-blocking engine's progress thread: submitters enqueue jobs
/// on an unbounded queue and wait (timed) on a completion flag the
/// progress thread publishes under a mutex/condvar. The last submitter
/// to finish closes the queue — dropping the final sender — and the
/// progress thread drains what is left and exits: join-on-drop
/// quiescence. With `mutant_no_close` the close never happens, the
/// model's join hangs, and the checker must report the deadlock.
pub struct ProgressModel {
    pub submitters: usize,
    /// Seeded bug: nobody closes the queue on drop.
    pub mutant_no_close: bool,
}

impl ProgressModel {
    const MX: MutexId = MutexId(0);
    const CV: CondvarId = CondvarId(0);
    const JOBS: ChannelId = ChannelId(0);
    /// Ghost: live sender handles.
    const SENDERS: usize = 0;
    /// Ghost: jobs executed by the progress thread.
    const EXECUTED: usize = 1;

    fn done_cell(i: usize) -> DataId {
        DataId(i)
    }
}

impl Program for ProgressModel {
    fn init(&self) -> ModelState {
        let mut st = ModelState::new(self.submitters + 1);
        st.add_mutex();
        st.add_condvar();
        st.add_channel();
        for _ in 0..self.submitters {
            st.add_data(0);
        }
        st.add_ghost(self.submitters as i64); // live senders
        st.add_ghost(0); // executed jobs
        st.budget = FaultBudget { crashes: 0, timeouts: 1 };
        for tid in 1..=self.submitters {
            st.set_reg(tid, 0, PENDING);
        }
        st
    }

    fn step(&self, st: &mut ModelState, tid: Tid, _choice: usize) {
        if tid == 0 {
            // Progress thread: drain jobs until the queue closes.
            match st.pc(tid) {
                0 => {
                    st.goto(tid, 1);
                    st.recv_into(tid, Self::JOBS, 1, false);
                }
                1 => {
                    if st.was_closed(tid) {
                        st.done(tid); // quiescent exit
                        return;
                    }
                    if st.lock(tid, Self::MX) {
                        let job = st.reg(tid, 1) as usize;
                        st.write_data(tid, Self::done_cell(job), 1);
                        st.ghost_add(Self::EXECUTED, 1);
                        st.notify_all(tid, Self::CV);
                        st.unlock(tid, Self::MX);
                        st.goto(tid, 0);
                    }
                }
                pc => panic!("progress model: bad pc {pc}"),
            }
        } else {
            let job = tid - 1;
            match st.pc(tid) {
                // Submit.
                0 => {
                    st.send(tid, Self::JOBS, job as i64);
                    st.goto(tid, 1);
                }
                // PendingOp::wait — timed, predicate re-checked.
                1 => {
                    if st.lock(tid, Self::MX) {
                        if st.read_data(tid, Self::done_cell(job)) == 1 {
                            st.unlock(tid, Self::MX);
                            st.set_reg(tid, 0, OK);
                            st.goto(tid, 2);
                        } else if st.timed_out(tid) {
                            st.unlock(tid, Self::MX);
                            st.set_reg(tid, 0, TIMED_OUT); // ProgressStalled
                            st.goto(tid, 2);
                        } else {
                            st.goto(tid, 1);
                            st.cv_wait(tid, Self::CV, Self::MX, true);
                        }
                    }
                }
                // Drop the handle; the last one closes the queue.
                2 => {
                    let left = st.ghost_add(Self::SENDERS, -1);
                    if left == 0 && !self.mutant_no_close {
                        st.close(tid, Self::JOBS);
                    }
                    st.done(tid);
                }
                pc => panic!("progress model: bad pc {pc}"),
            }
        }
    }

    fn check(&self, st: &ModelState) -> Option<String> {
        let executed = st.ghost[Self::EXECUTED];
        (executed > self.submitters as i64)
            .then(|| format!("progress thread executed {executed} jobs, submitted at most {}",
                self.submitters))
    }

    fn check_final(&self, st: &ModelState) -> Option<String> {
        // Quiescence: the progress thread drained everything before
        // exiting, even when a submitter's wait timed out (its job still
        // runs; only the waiting was abandoned).
        let executed = st.ghost[Self::EXECUTED];
        if executed != self.submitters as i64 {
            return Some(format!(
                "progress thread exited with {executed}/{} jobs executed",
                self.submitters
            ));
        }
        if st.budget.timeouts == 1 {
            for tid in 1..=self.submitters {
                if outcome(st, tid) != OK {
                    return Some(format!("submitter {tid} stalled without any timeout"));
                }
            }
        }
        None
    }
}
