//! The bounded interleaving explorer.
//!
//! A [`Program`] is a finite set of threads stepping a [`ModelState`];
//! the explorer runs a depth-first search over *schedules* — at every
//! state it enumerates the enabled transitions (program steps, mutex
//! grants, channel deliveries, and budgeted fault injections), executes
//! each on a cloned state, and recurses. Two reductions keep the search
//! tractable without losing violations:
//!
//! * **Visited-state hashing.** The full semantic state (shim objects,
//!   program counters, vector clocks, fault budget) hashes to a key;
//!   a state already explored under a *weaker-or-equal* sleep set is
//!   pruned. Per key the explorer keeps an antichain of sleep masks and
//!   prunes only when a stored mask is a subset of the current one — the
//!   condition under which the earlier visit explored a superset of what
//!   this visit would.
//! * **Sleep sets.** After exploring sibling transition `t`, later
//!   siblings' subtrees need not re-run `t` first unless something
//!   dependent on `t` executed in between. Dependence is footprint
//!   overlap: every shim op records the objects it touched as a 64-bit
//!   mask, and a sleeping transition is woken exactly when an executed
//!   transition's mask intersects its own.
//!
//! Violations — protocol assertion failures, invariant breaks,
//! deadlocks (threads stuck on untimed waits), and lost wakeups (a
//! stuck condvar waiter though notifies were issued) — abort the search
//! and are reported with a **replayable schedule**. The reported trace
//! is then *minimized*: a plain breadth-first re-exploration capped at
//! the DFS trace's depth finds a shortest schedule reaching the same
//! violation class, falling back to the DFS trace if the cap or budget
//! is hit first.
//!
//! Timed waits and crashes are **faults under budget**: a scenario
//! allows at most `budget.timeouts` injected timeouts and
//! `budget.crashes` injected crashes per run, so "≤ 1 fault" is explored
//! exhaustively rather than sampled. Independently of the budget, when a
//! state has *no* enabled transition but timed waiters remain, the
//! lowest-tid timed waiter's timeout fires for free — modeling the
//! inevitable passage of time, so every run terminates and a timed wait
//! is never misreported as a deadlock.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::mem::discriminant;

use super::shims::{ModelState, RaceReport, Status, Tid};

/// A protocol model: threads as explicit pc-machines over a
/// [`ModelState`].
pub trait Program {
    /// The initial state (declares threads, objects, fault budget).
    fn init(&self) -> ModelState;

    /// Number of nondeterministic choices for `tid`'s next step (e.g.
    /// how many queued frames a socket read consumes). Defaults to 1.
    fn choices(&self, st: &ModelState, tid: Tid) -> usize {
        let _ = (st, tid);
        1
    }

    /// Executes one atomic step of `tid` under `choice`. Must interact
    /// with shared state only through the shim operations (and
    /// ghost/local helpers), so footprints and clocks stay accurate.
    fn step(&self, st: &mut ModelState, tid: Tid, choice: usize);

    /// Safety invariant evaluated at every reached state.
    fn check(&self, st: &ModelState) -> Option<String> {
        let _ = st;
        None
    }

    /// Post-condition evaluated at quiescent termination (every thread
    /// `Done` or `Crashed`).
    fn check_final(&self, st: &ModelState) -> Option<String> {
        let _ = st;
        None
    }
}

/// What one scheduled transition did.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ChoiceKind {
    /// Ran the thread's next program step under the given choice index.
    Step(usize),
    /// Granted the mutex the thread was parked on.
    Grant,
    /// Delivered to (or closed under) the thread's parked receive.
    Deliver,
    /// Fired the thread's timed wait. `injected` timeouts consume the
    /// fault budget; drain timeouts model inevitable expiry at
    /// otherwise-stuck states.
    Timeout { injected: bool },
    /// Crashed the thread (budgeted; severs its channels).
    Crash,
}

/// One entry of a schedule: which thread, which kind of transition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Sched {
    pub tid: Tid,
    pub kind: ChoiceKind,
}

impl fmt::Display for Sched {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ChoiceKind::Step(0) => write!(f, "t{}", self.tid),
            ChoiceKind::Step(c) => write!(f, "t{}#{}", self.tid, c),
            ChoiceKind::Grant => write!(f, "t{}:lock", self.tid),
            ChoiceKind::Deliver => write!(f, "t{}:recv", self.tid),
            ChoiceKind::Timeout { injected: true } => write!(f, "t{}:timeout!", self.tid),
            ChoiceKind::Timeout { injected: false } => write!(f, "t{}:expire", self.tid),
            ChoiceKind::Crash => write!(f, "t{}:crash!", self.tid),
        }
    }
}

/// Renders a schedule as a compact replayable string.
pub fn format_trace(trace: &[Sched]) -> String {
    trace.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(" ")
}

/// A safety violation the explorer can witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Threads stuck forever: every live thread parked on an untimed
    /// wait no other thread can satisfy.
    Deadlock { stuck: Vec<Tid> },
    /// A stuck untimed condvar waiter although the condvar has been
    /// notified — the wakeup was consumed or raced away.
    LostWakeup { tid: Tid, condvar: usize },
    /// A protocol assertion ([`ModelState::fail`]) or a [`Program::check`]
    /// / [`Program::check_final`] invariant failed.
    Invariant(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Deadlock { stuck } => {
                let tids: Vec<String> = stuck.iter().map(|t| format!("t{t}")).collect();
                write!(f, "deadlock: {{{}}} parked forever", tids.join(", "))
            }
            Violation::LostWakeup { tid, condvar } => {
                write!(f, "lost wakeup: t{tid} parked on cv{condvar} though it was notified")
            }
            Violation::Invariant(msg) => write!(f, "invariant violated: {msg}"),
        }
    }
}

/// A violation plus the schedule that reaches it.
#[derive(Clone, Debug)]
pub struct Failure {
    pub violation: Violation,
    /// Replayable schedule from the initial state to the violation.
    pub trace: Vec<Sched>,
    /// Whether the trace is a shortest schedule for this violation
    /// class (BFS-minimized) or the raw DFS witness.
    pub minimal: bool,
}

/// Exploration counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExploreStats {
    /// Distinct states visited (after reduction).
    pub states: u64,
    /// Transitions executed.
    pub transitions: u64,
    /// Longest schedule examined.
    pub max_depth: usize,
}

/// Everything one exploration produced.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    pub stats: ExploreStats,
    /// First schedule violation found, minimized if possible.
    pub failure: Option<Failure>,
    /// Distinct data races over all explored schedules.
    pub races: Vec<RaceReport>,
    /// Schedule reaching the first race, if any.
    pub race_trace: Option<Vec<Sched>>,
    /// Distinct `held → acquired` lock-order edges observed.
    pub lock_edges: Vec<(usize, usize)>,
    /// A cyclic lock-acquisition order, as the mutex cycle, if one
    /// exists in the edge graph.
    pub lock_cycle: Option<Vec<usize>>,
    /// The state budget ran out before the space was covered; absence
    /// of violations is then *not* a proof.
    pub budget_exhausted: bool,
}

impl ExploreResult {
    /// No violation of any kind and full coverage.
    pub fn is_clean(&self) -> bool {
        self.failure.is_none()
            && self.races.is_empty()
            && self.lock_cycle.is_none()
            && !self.budget_exhausted
    }
}

/// Applies one scheduled transition in place, leaving its effects in
/// `st.effects`.
fn apply(prog: &dyn Program, st: &mut ModelState, s: Sched) {
    st.effects = Default::default();
    st.tick(s.tid);
    match s.kind {
        ChoiceKind::Step(choice) => prog.step(st, s.tid, choice),
        ChoiceKind::Grant => {
            let Status::ParkedMutex(m) = st.status[s.tid] else {
                panic!("grant for a thread not parked on a mutex");
            };
            st.grant_mutex(s.tid, m);
        }
        ChoiceKind::Deliver => st.deliver_recv(s.tid),
        ChoiceKind::Timeout { injected } => {
            if injected {
                st.budget.timeouts -= 1;
            }
            st.fire_timeout(s.tid);
        }
        ChoiceKind::Crash => {
            st.crash(s.tid);
            // A vanished thread conservatively conflicts with everything.
            st.effects.footprint = u64::MAX;
        }
    }
}

/// Replays a schedule from the initial state; the conformance tests use
/// this to drive the *real* primitives through checker-found orders.
pub fn replay(prog: &dyn Program, trace: &[Sched]) -> ModelState {
    let mut st = prog.init();
    for &s in trace {
        apply(prog, &mut st, s);
    }
    st
}

/// Enumerates the enabled transitions of `st`, in deterministic
/// (tid-major) order. Fault injections come after a thread's regular
/// transition so minimal traces prefer fault-free prefixes.
fn transitions(prog: &dyn Program, st: &ModelState) -> Vec<Sched> {
    let mut ts = Vec::new();
    for tid in 0..st.status.len() {
        match st.status[tid] {
            Status::Runnable => {
                for c in 0..prog.choices(st, tid).max(1) {
                    ts.push(Sched { tid, kind: ChoiceKind::Step(c) });
                }
            }
            Status::ParkedMutex(m) => {
                if st.mutexes[m.0].owner.is_none() {
                    ts.push(Sched { tid, kind: ChoiceKind::Grant });
                }
            }
            Status::ParkedCv { timed, .. } => {
                if timed && st.budget.timeouts > 0 {
                    ts.push(Sched { tid, kind: ChoiceKind::Timeout { injected: true } });
                }
            }
            Status::ParkedRecv { ch, timed, .. } => {
                if !st.channels[ch.0].queue.is_empty() || st.channels[ch.0].closed {
                    ts.push(Sched { tid, kind: ChoiceKind::Deliver });
                } else if timed && st.budget.timeouts > 0 {
                    ts.push(Sched { tid, kind: ChoiceKind::Timeout { injected: true } });
                }
            }
            Status::Done | Status::Crashed => {}
        }
        if st.crash_eligible(tid) {
            ts.push(Sched { tid, kind: ChoiceKind::Crash });
        }
    }
    ts
}

/// True if the transition makes progress without spending fault budget
/// (used to decide when the forced timeout drain applies).
fn is_progress(s: &Sched) -> bool {
    !matches!(s.kind, ChoiceKind::Crash | ChoiceKind::Timeout { injected: true })
}

/// The free drain transition at an otherwise-stuck state: the
/// lowest-tid timed waiter's wait expires.
fn forced_drain(st: &ModelState) -> Option<Sched> {
    for tid in 0..st.status.len() {
        let timed = match st.status[tid] {
            Status::ParkedCv { timed, .. } => timed,
            Status::ParkedRecv { ch, timed, .. } => {
                timed && st.channels[ch.0].queue.is_empty() && !st.channels[ch.0].closed
            }
            _ => false,
        };
        if timed {
            return Some(Sched { tid, kind: ChoiceKind::Timeout { injected: false } });
        }
    }
    None
}

/// Classifies a state with no progress transition and no timed waiter
/// left to drain. Returns `None` when every thread terminated.
fn classify_stuck(st: &ModelState) -> Option<Violation> {
    let mut stuck = Vec::new();
    for tid in 0..st.status.len() {
        match st.status[tid] {
            Status::Done | Status::Crashed => {}
            Status::ParkedCv { cv, .. } => {
                if st.condvars[cv.0].notifies > 0 {
                    return Some(Violation::LostWakeup { tid, condvar: cv.0 });
                }
                stuck.push(tid);
            }
            _ => stuck.push(tid),
        }
    }
    if stuck.is_empty() {
        None
    } else {
        Some(Violation::Deadlock { stuck })
    }
}

/// Compact identity of a transition for sleep-set membership: stable
/// across the states it stays asleep in.
fn key(s: &Sched) -> u32 {
    let kind = match s.kind {
        ChoiceKind::Step(_) => 0u32,
        ChoiceKind::Grant => 1,
        ChoiceKind::Deliver => 2,
        ChoiceKind::Timeout { injected: false } => 3,
        ChoiceKind::Timeout { injected: true } => 4,
        ChoiceKind::Crash => 5,
    };
    let choice = match s.kind {
        ChoiceKind::Step(c) => c as u32,
        _ => 0,
    };
    (kind << 20) | ((s.tid as u32) << 16) | (choice & 0xffff)
}

/// A sleeping transition: identity plus the footprint it had when it
/// went to sleep (unchanged while only independent transitions ran).
type SleepSet = Vec<(u32, u64)>;

fn sleep_keys(sleep: &SleepSet) -> Vec<u32> {
    let mut ks: Vec<u32> = sleep.iter().map(|&(k, _)| k).collect();
    ks.sort_unstable();
    ks
}

fn is_subset(a: &[u32], b: &[u32]) -> bool {
    // Both sorted.
    let mut bi = b.iter();
    'outer: for x in a {
        for y in bi.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

enum Stop {
    Violation(Violation),
    Budget,
}

struct Explorer<'p> {
    prog: &'p dyn Program,
    /// state hash → antichain of sleep-key sets it was explored under.
    visited: HashMap<u64, Vec<Vec<u32>>>,
    stats: ExploreStats,
    budget: u64,
    trace: Vec<Sched>,
    races: HashSet<RaceReport>,
    race_trace: Option<Vec<Sched>>,
    lock_edges: HashSet<(usize, usize)>,
}

impl<'p> Explorer<'p> {
    /// Records the state; true if it (under this sleep set) was already
    /// covered.
    fn seen(&mut self, st: &ModelState, sleep: &SleepSet) -> bool {
        let ks = sleep_keys(sleep);
        match self.visited.entry(st.state_hash()) {
            Entry::Occupied(mut e) => {
                let chain = e.get_mut();
                if chain.iter().any(|stored| is_subset(stored, &ks)) {
                    return true;
                }
                chain.retain(|stored| !is_subset(&ks, stored));
                chain.push(ks);
                false
            }
            Entry::Vacant(e) => {
                e.insert(vec![ks]);
                false
            }
        }
    }

    fn absorb_effects(&mut self, st: &ModelState) {
        for r in &st.effects.races {
            if self.races.insert(r.clone()) && self.race_trace.is_none() {
                self.race_trace = Some(self.trace.clone());
            }
        }
        for &(a, b) in &st.effects.lock_edges {
            self.lock_edges.insert((a.0, b.0));
        }
    }

    fn dfs(&mut self, st: &ModelState, sleep: SleepSet) -> Result<(), Stop> {
        if self.seen(st, &sleep) {
            return Ok(());
        }
        self.stats.states += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.trace.len());
        if self.stats.states > self.budget {
            return Err(Stop::Budget);
        }
        if let Some(msg) = self.prog.check(st) {
            return Err(Stop::Violation(Violation::Invariant(msg)));
        }

        let mut ts = transitions(self.prog, st);
        if !ts.iter().any(is_progress) {
            // Nothing moves without a fault: time passes, timed waits
            // expire (free), and only then is the state truly stuck.
            if let Some(drain) = forced_drain(st) {
                ts.push(drain);
            } else if ts.is_empty() {
                return match classify_stuck(st) {
                    Some(v) => Err(Stop::Violation(v)),
                    None => match self.prog.check_final(st) {
                        Some(msg) => Err(Stop::Violation(Violation::Invariant(msg))),
                        None => Ok(()),
                    },
                };
            }
        }

        let mut executed: SleepSet = Vec::new();
        for t in ts {
            let k = key(&t);
            if sleep.iter().any(|&(sk, _)| sk == k) {
                continue;
            }
            let mut child = st.clone();
            apply(self.prog, &mut child, t);
            self.stats.transitions += 1;
            let fp = child.effects.footprint;
            self.trace.push(t);
            self.absorb_effects(&child);
            if let Some(msg) = child.effects.failure.clone() {
                return Err(Stop::Violation(Violation::Invariant(msg)));
            }
            let child_sleep: SleepSet = sleep
                .iter()
                .chain(executed.iter())
                .filter(|&&(_, sfp)| sfp & fp == 0)
                .copied()
                .collect();
            self.dfs(&child, child_sleep)?;
            self.trace.pop();
            executed.push((k, fp));
        }
        Ok(())
    }
}

/// Breadth-first search for a shortest schedule (≤ `cap` transitions)
/// reaching a violation of the same class as `like`, within a state
/// budget. Plain exploration — no reduction — so the first hit is
/// genuinely minimal.
fn minimize(
    prog: &dyn Program,
    like: &Violation,
    cap: usize,
    budget: u64,
) -> Option<Vec<Sched>> {
    let want = discriminant(like);
    let mut seen = HashSet::new();
    let mut queue: VecDeque<(ModelState, Vec<Sched>)> = VecDeque::new();
    queue.push_back((prog.init(), Vec::new()));
    let mut visited: u64 = 0;
    while let Some((st, trace)) = queue.pop_front() {
        if !seen.insert(st.state_hash()) {
            continue;
        }
        visited += 1;
        if visited > budget {
            return None;
        }
        if let Some(msg) = st.effects.failure.clone() {
            if want == discriminant(&Violation::Invariant(msg.clone())) {
                return Some(trace);
            }
        }
        if let Some(msg) = prog.check(&st) {
            if want == discriminant(&Violation::Invariant(msg)) {
                return Some(trace);
            }
        }
        let mut ts = transitions(prog, &st);
        if !ts.iter().any(is_progress) {
            if let Some(drain) = forced_drain(&st) {
                ts.push(drain);
            } else if ts.is_empty() {
                match classify_stuck(&st) {
                    Some(v) if discriminant(&v) == want => return Some(trace),
                    Some(_) => continue,
                    None => {
                        if let Some(msg) = prog.check_final(&st) {
                            if want == discriminant(&Violation::Invariant(msg)) {
                                return Some(trace);
                            }
                        }
                        continue;
                    }
                }
            }
        }
        if trace.len() >= cap {
            continue;
        }
        for t in ts {
            let mut child = st.clone();
            apply(prog, &mut child, t);
            let mut ctrace = trace.clone();
            ctrace.push(t);
            queue.push_back((child, ctrace));
        }
    }
    None
}

/// Exhaustively enumerates the distinct *terminal* states of `prog`
/// (every thread `Done` or `Crashed`) under a state budget — plain
/// visited-hash exploration, no partial-order reduction, so the result
/// is exactly the reachable set. The conformance tests project these
/// onto per-thread outcome registers to get the feasible outcome
/// classes the real primitives must stay within. Returns `None` if the
/// budget ran out (the enumeration would be incomplete).
pub fn enumerate_final_states(prog: &dyn Program, budget: u64) -> Option<Vec<ModelState>> {
    let mut seen = HashSet::new();
    let mut finals: Vec<ModelState> = Vec::new();
    let mut stack: Vec<ModelState> = vec![prog.init()];
    let mut visited: u64 = 0;
    while let Some(st) = stack.pop() {
        if !seen.insert(st.state_hash()) {
            continue;
        }
        visited += 1;
        if visited > budget {
            return None;
        }
        let mut ts = transitions(prog, &st);
        if !ts.iter().any(is_progress) {
            if let Some(drain) = forced_drain(&st) {
                ts.push(drain);
            } else if ts.is_empty() {
                if classify_stuck(&st).is_none() {
                    finals.push(st);
                }
                continue;
            }
        }
        for t in ts {
            let mut child = st.clone();
            apply(prog, &mut child, t);
            stack.push(child);
        }
    }
    Some(finals)
}

/// Finds a cycle in the lock-order edge graph, returned as the list of
/// mutexes around the cycle.
fn lock_cycle(edges: &HashSet<(usize, usize)>) -> Option<Vec<usize>> {
    let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut nodes: Vec<usize> = Vec::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
        for n in [a, b] {
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
    }
    nodes.sort_unstable();
    for v in adj.values_mut() {
        v.sort_unstable();
    }
    // Colors: 0 unvisited, 1 on stack, 2 done.
    let mut color: HashMap<usize, u8> = HashMap::new();
    let mut stack: Vec<usize> = Vec::new();
    fn walk(
        n: usize,
        adj: &HashMap<usize, Vec<usize>>,
        color: &mut HashMap<usize, u8>,
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        color.insert(n, 1);
        stack.push(n);
        for &m in adj.get(&n).map(|v| v.as_slice()).unwrap_or(&[]) {
            match color.get(&m).copied().unwrap_or(0) {
                0 => {
                    if let Some(c) = walk(m, adj, color, stack) {
                        return Some(c);
                    }
                }
                1 => {
                    let start = stack.iter().position(|&x| x == m).unwrap();
                    return Some(stack[start..].to_vec());
                }
                _ => {}
            }
        }
        stack.pop();
        color.insert(n, 2);
        None
    }
    for &n in &nodes {
        if color.get(&n).copied().unwrap_or(0) == 0 {
            if let Some(c) = walk(n, &adj, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

/// Exhaustively explores `prog` under a state budget.
pub fn explore(prog: &dyn Program, budget: u64) -> ExploreResult {
    let mut ex = Explorer {
        prog,
        visited: HashMap::new(),
        stats: ExploreStats::default(),
        budget,
        trace: Vec::new(),
        races: HashSet::new(),
        race_trace: None,
        lock_edges: HashSet::new(),
    };
    let init = prog.init();
    let outcome = ex.dfs(&init, Vec::new());
    let mut failure = None;
    let mut budget_exhausted = false;
    match outcome {
        Ok(()) => {}
        Err(Stop::Budget) => budget_exhausted = true,
        Err(Stop::Violation(v)) => {
            let dfs_trace = ex.trace.clone();
            // Spend at most the exploration budget again on shrinking.
            let minimal = minimize(prog, &v, dfs_trace.len(), budget);
            failure = Some(match minimal {
                Some(trace) => Failure { violation: v, trace, minimal: true },
                None => Failure { violation: v, trace: dfs_trace, minimal: false },
            });
        }
    }
    let mut races: Vec<RaceReport> = ex.races.into_iter().collect();
    races.sort_by_key(|r| (r.cell.0, r.first, r.second));
    let mut lock_edges: Vec<(usize, usize)> = ex.lock_edges.iter().copied().collect();
    lock_edges.sort_unstable();
    ExploreResult {
        stats: ex.stats,
        failure,
        races,
        race_trace: ex.race_trace,
        lock_edges,
        lock_cycle: lock_cycle(&ex.lock_edges),
        budget_exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelcheck::shims::{CondvarId, DataId, MutexId};

    /// Two threads increment a mutex-guarded cell; final sum checked.
    struct GuardedCounter;

    impl GuardedCounter {
        const MX: MutexId = MutexId(0);
        const CELL: DataId = DataId(0);
    }

    impl Program for GuardedCounter {
        fn init(&self) -> ModelState {
            let mut st = ModelState::new(2);
            st.add_mutex();
            st.add_data(0);
            st
        }

        fn step(&self, st: &mut ModelState, tid: Tid, _choice: usize) {
            match st.pc(tid) {
                0 => {
                    if st.lock(tid, Self::MX) {
                        let v = st.read_data(tid, Self::CELL);
                        st.set_reg(tid, 0, v);
                        st.goto(tid, 1);
                    }
                }
                1 => {
                    st.write_data(tid, Self::CELL, st.reg(tid, 0) + 1);
                    st.unlock(tid, Self::MX);
                    st.done(tid);
                }
                pc => panic!("bad pc {pc}"),
            }
        }

        fn check_final(&self, st: &ModelState) -> Option<String> {
            (st.data[0].value != 2).then(|| format!("sum {} != 2", st.data[0].value))
        }
    }

    /// Same counter without the mutex: the race detector must fire.
    struct RacyCounter;

    impl Program for RacyCounter {
        fn init(&self) -> ModelState {
            let mut st = ModelState::new(2);
            st.add_data(0);
            st
        }

        fn step(&self, st: &mut ModelState, tid: Tid, _choice: usize) {
            match st.pc(tid) {
                0 => {
                    let v = st.read_data(tid, DataId(0));
                    st.set_reg(tid, 0, v);
                    st.goto(tid, 1);
                }
                1 => {
                    st.write_data(tid, DataId(0), st.reg(tid, 0) + 1);
                    st.done(tid);
                }
                pc => panic!("bad pc {pc}"),
            }
        }
    }

    /// The classic unlooped-wait lost wakeup: the waiter checks a flag,
    /// then waits untimed; the setter may notify *before* the wait.
    struct LostWakeupDemo;

    impl LostWakeupDemo {
        const MX: MutexId = MutexId(0);
        const CV: CondvarId = CondvarId(0);
        const FLAG: DataId = DataId(0);
    }

    impl Program for LostWakeupDemo {
        fn init(&self) -> ModelState {
            let mut st = ModelState::new(2);
            st.add_mutex();
            st.add_condvar();
            st.add_data(0);
            st
        }

        fn step(&self, st: &mut ModelState, tid: Tid, _choice: usize) {
            if tid == 0 {
                // Setter: flag = 1, notify (no waiter memory).
                match st.pc(0) {
                    0 => {
                        if st.lock(0, Self::MX) {
                            st.write_data(0, Self::FLAG, 1);
                            st.notify_all(0, Self::CV);
                            st.unlock(0, Self::MX);
                            st.done(0);
                        }
                    }
                    pc => panic!("bad pc {pc}"),
                }
            } else {
                // Waiter: BUG — checks the flag in one critical section,
                // parks in another, with no re-check in between. The
                // notify can land in the gap and be lost forever.
                match st.pc(1) {
                    0 => {
                        if st.lock(1, Self::MX) {
                            let v = st.read_data(1, Self::FLAG);
                            st.unlock(1, Self::MX);
                            if v == 1 {
                                st.done(1);
                            } else {
                                st.goto(1, 1);
                            }
                        }
                    }
                    1 => {
                        if st.lock(1, Self::MX) {
                            st.goto(1, 2);
                            st.cv_wait(1, Self::CV, Self::MX, false);
                        }
                    }
                    2 => {
                        if st.lock(1, Self::MX) {
                            st.unlock(1, Self::MX);
                            st.done(1);
                        }
                    }
                    pc => panic!("bad pc {pc}"),
                }
            }
        }
    }

    /// Two threads acquire two mutexes in opposite orders.
    struct OrderInversion;

    impl Program for OrderInversion {
        fn init(&self) -> ModelState {
            let mut st = ModelState::new(2);
            st.add_mutex();
            st.add_mutex();
            st
        }

        fn step(&self, st: &mut ModelState, tid: Tid, _choice: usize) {
            let (first, second) =
                if tid == 0 { (MutexId(0), MutexId(1)) } else { (MutexId(1), MutexId(0)) };
            match st.pc(tid) {
                0 => {
                    if st.lock(tid, first) {
                        st.goto(tid, 1);
                    }
                }
                1 => {
                    if st.lock(tid, second) {
                        st.unlock(tid, second);
                        st.unlock(tid, first);
                        st.done(tid);
                    }
                }
                pc => panic!("bad pc {pc}"),
            }
        }
    }

    #[test]
    fn guarded_counter_is_clean() {
        let r = explore(&GuardedCounter, 10_000);
        assert!(r.is_clean(), "{:?}", r.failure);
        assert!(r.stats.states > 0 && r.stats.transitions > 0);
    }

    #[test]
    fn racy_counter_reports_the_race_and_the_lost_update() {
        let r = explore(&RacyCounter, 10_000);
        assert!(!r.races.is_empty(), "race must be detected");
        assert!(r.race_trace.is_some());
        assert_eq!(r.races[0].cell, DataId(0));
    }

    #[test]
    fn lost_wakeup_is_caught_with_a_minimal_trace() {
        let r = explore(&LostWakeupDemo, 10_000);
        let f = r.failure.expect("unlooped wait must lose the wakeup");
        assert!(
            matches!(f.violation, Violation::LostWakeup { tid: 1, .. }),
            "{:?}",
            f.violation
        );
        assert!(f.minimal, "BFS shrink should succeed on this tiny model");
        // The witness replays to a stuck state: t1 parked, t0 done.
        let st = replay(&LostWakeupDemo, &f.trace);
        assert!(matches!(st.status[1], Status::ParkedCv { .. }));
        // Minimality: the shortest losing schedule lets the setter run
        // to completion before the waiter first checks the flag — no
        // shorter schedule can, since the waiter must reach its wait.
        assert!(f.trace.len() <= 4, "trace {} too long", format_trace(&f.trace));
    }

    #[test]
    fn opposite_lock_orders_deadlock_and_cycle() {
        let r = explore(&OrderInversion, 10_000);
        let f = r.failure.expect("AB/BA locking must deadlock");
        assert!(matches!(f.violation, Violation::Deadlock { .. }), "{:?}", f.violation);
        let cycle = r.lock_cycle.expect("cycle in the lock graph");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn tiny_budget_reports_exhaustion_not_a_false_proof() {
        let r = explore(&OrderInversion, 2);
        assert!(r.budget_exhausted || r.failure.is_some());
        assert!(!r.is_clean());
    }
}
