//! Protocol model checking: exhaustive bounded verification of the
//! transport/overlap concurrency protocols *before they run*.
//!
//! `zero-comm` coordinates ranks with hand-rolled protocols — shutdown
//! latch, timeout barrier, dissemination barrier, socket handshake,
//! progress-thread work queue. Their decision logic lives as pure
//! kernels in [`zero_comm::protocol`]; this pass re-expresses the
//! synchronization skeleton around those kernels against modeled
//! primitives ([`shims`]) and hands the result to a deterministic
//! bounded interleaving explorer ([`explorer`]):
//!
//! * a DFS over schedule choices with **sleep-set partial-order
//!   reduction** and a **visited-state hash table**, so each
//!   equivalence class of interleavings is explored once;
//! * **fault injection under budget** — at most one crash or timeout
//!   per run, every placement explored;
//! * a **vector-clock happens-before race detector** and a
//!   **lock-order cyclic-acquisition pass** over the same event graph;
//! * violations reported as **minimal replayable schedules**.
//!
//! [`run_modelcheck`] checks every protocol at world sizes 2 and 3,
//! proving: no deadlock, no lost wakeup, quiescent shutdown, and
//! barrier correctness (no rank exits a wave others never entered). The
//! CLI exposes it as `zero-verify --pass modelcheck`; `ci.sh` runs it
//! with an explicit state budget.

pub mod explorer;
pub mod protocols;
pub mod shims;

pub use explorer::{
    enumerate_final_states, explore, format_trace, ExploreResult, ExploreStats, Failure,
    Program, Sched, Violation,
};
pub use protocols::{BarrierModel, DissemModel, HandshakeModel, LatchModel, ProgressModel};
pub use shims::{FaultBudget, ModelState, RaceReport, Status};

/// One checked scenario: a protocol model at a world size and fault
/// regime.
pub struct Scenario {
    /// Stable name, e.g. `barrier.n3` or `dissem.n2+crash`.
    pub name: &'static str,
    /// The model under check.
    pub program: Box<dyn Program>,
}

/// The scenario matrix the pass runs: all five protocols, world sizes
/// 2 and 3, with a one-timeout budget everywhere and additionally a
/// one-crash budget for the cross-process protocols (a thread of an
/// in-process primitive cannot vanish, a rank process can).
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario { name: "latch.n2", program: Box::new(LatchModel { ranks: 2 }) },
        Scenario { name: "latch.n3", program: Box::new(LatchModel { ranks: 3 }) },
        Scenario {
            name: "barrier.n2",
            program: Box::new(BarrierModel { ranks: 2, mutant_leak_withdraw: false }),
        },
        Scenario {
            name: "barrier.n3",
            program: Box::new(BarrierModel { ranks: 3, mutant_leak_withdraw: false }),
        },
        Scenario { name: "dissem.n2", program: Box::new(DissemModel { ranks: 2, crash: false }) },
        Scenario {
            name: "dissem.n2+crash",
            program: Box::new(DissemModel { ranks: 2, crash: true }),
        },
        Scenario { name: "dissem.n3", program: Box::new(DissemModel { ranks: 3, crash: false }) },
        Scenario {
            name: "dissem.n3+crash",
            program: Box::new(DissemModel { ranks: 3, crash: true }),
        },
        Scenario {
            name: "handshake.n2",
            program: Box::new(HandshakeModel { peers: 1, crash: false }),
        },
        Scenario {
            name: "handshake.n2+crash",
            program: Box::new(HandshakeModel { peers: 1, crash: true }),
        },
        Scenario {
            name: "handshake.n3",
            program: Box::new(HandshakeModel { peers: 2, crash: false }),
        },
        Scenario {
            name: "handshake.n3+crash",
            program: Box::new(HandshakeModel { peers: 2, crash: true }),
        },
        Scenario {
            name: "progress.n2",
            program: Box::new(ProgressModel { submitters: 1, mutant_no_close: false }),
        },
        Scenario {
            name: "progress.n3",
            program: Box::new(ProgressModel { submitters: 2, mutant_no_close: false }),
        },
    ]
}

/// Result of checking one scenario.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    pub name: String,
    /// Distinct states explored (after reduction).
    pub states: u64,
    /// Transitions executed.
    pub transitions: u64,
    /// Longest schedule examined.
    pub max_depth: usize,
    /// Schedule violation, rendered, with its replayable trace.
    pub failure: Option<String>,
    /// Data races found by the happens-before pass, rendered.
    pub races: Vec<String>,
    /// Cyclic lock-acquisition order, as a mutex cycle.
    pub lock_cycle: Option<Vec<usize>>,
    /// The state budget ran out — coverage incomplete.
    pub budget_exhausted: bool,
}

impl ScenarioOutcome {
    /// Fully covered with no violation of any kind.
    pub fn is_clean(&self) -> bool {
        self.failure.is_none()
            && self.races.is_empty()
            && self.lock_cycle.is_none()
            && !self.budget_exhausted
    }

    fn from_result(name: &str, r: &ExploreResult) -> ScenarioOutcome {
        let failure = r.failure.as_ref().map(|f| {
            format!(
                "{} [{} schedule: {}]",
                f.violation,
                if f.minimal { "minimal" } else { "witness" },
                format_trace(&f.trace)
            )
        });
        let races = r
            .races
            .iter()
            .map(|race| {
                let mut s = format!(
                    "data race on cell {}: t{}@pc{} vs t{}@pc{} ({})",
                    race.cell.0,
                    race.first.0,
                    race.first.1,
                    race.second.0,
                    race.second.1,
                    if race.second_is_write { "write" } else { "read" },
                );
                if let Some(t) = &r.race_trace {
                    s.push_str(&format!(" [schedule: {}]", format_trace(t)));
                }
                s
            })
            .collect();
        ScenarioOutcome {
            name: name.to_string(),
            states: r.stats.states,
            transitions: r.stats.transitions,
            max_depth: r.stats.max_depth,
            failure,
            races,
            lock_cycle: r.lock_cycle.clone(),
            budget_exhausted: r.budget_exhausted,
        }
    }
}

/// Aggregate result of the modelcheck pass.
#[derive(Clone, Debug)]
pub struct ModelcheckReport {
    /// Per-scenario state budget the pass ran under.
    pub budget: u64,
    pub scenarios: Vec<ScenarioOutcome>,
}

impl ModelcheckReport {
    pub fn is_clean(&self) -> bool {
        self.scenarios.iter().all(ScenarioOutcome::is_clean)
    }

    /// Total states across scenarios (the CI log prints per-protocol
    /// counts too).
    pub fn total_states(&self) -> u64 {
        self.scenarios.iter().map(|s| s.states).sum()
    }
}

/// Exhaustively checks every scenario in [`scenarios`] under a
/// per-scenario state budget.
pub fn run_modelcheck(budget_per_scenario: u64) -> ModelcheckReport {
    let mut outcomes = Vec::new();
    for sc in scenarios() {
        let r = explore(sc.program.as_ref(), budget_per_scenario);
        outcomes.push(ScenarioOutcome::from_result(sc.name, &r));
    }
    ModelcheckReport { budget: budget_per_scenario, scenarios: outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: u64 = 2_000_000;

    #[test]
    fn all_protocol_scenarios_are_clean() {
        let report = run_modelcheck(BUDGET);
        for sc in &report.scenarios {
            assert!(
                sc.is_clean(),
                "{}: failure={:?} races={:?} lock_cycle={:?} exhausted={}",
                sc.name,
                sc.failure,
                sc.races,
                sc.lock_cycle,
                sc.budget_exhausted
            );
            assert!(sc.states > 0 && sc.transitions > 0, "{} explored nothing", sc.name);
        }
    }

    /// The seeded mutation test: a barrier whose withdraw forgets to
    /// decrement the arrival count must be caught — the leaked count
    /// lets a later wave release before every rank entered it.
    #[test]
    fn mutated_barrier_withdraw_leak_is_caught() {
        for ranks in [2usize, 3] {
            let r = explore(&BarrierModel { ranks, mutant_leak_withdraw: true }, BUDGET);
            let f = r
                .failure
                .unwrap_or_else(|| panic!("mutant barrier (n={ranks}) must be rejected"));
            assert!(
                matches!(f.violation, Violation::Invariant(_)),
                "n={ranks}: want an invariant break, got {}",
                f.violation
            );
            assert!(!f.trace.is_empty(), "violation needs a replayable schedule");
            // The schedule replays to the violation deterministically.
            let prog = BarrierModel { ranks, mutant_leak_withdraw: true };
            let st = explorer::replay(&prog, &f.trace);
            assert!(
                st.effects.failure.is_some() || prog.check(&st).is_some(),
                "replayed schedule must land on the violation"
            );
        }
    }

    /// Second mutation: a progress queue nobody closes hangs its
    /// join-on-drop — the checker must report the deadlock.
    #[test]
    fn mutated_progress_queue_without_close_deadlocks() {
        let r = explore(&ProgressModel { submitters: 2, mutant_no_close: true }, BUDGET);
        let f = r.failure.expect("never-closed queue must hang the progress thread");
        match f.violation {
            Violation::Deadlock { ref stuck } => {
                assert_eq!(stuck, &vec![0], "only the progress thread (t0) should hang")
            }
            ref v => panic!("want a deadlock, got {v}"),
        }
        assert!(f.minimal, "shortest hang schedule expected from BFS shrink");
    }

    /// Exploration must be deterministic run to run (fixed hasher,
    /// tid-major transition order) so CI failures replay locally.
    #[test]
    fn exploration_is_deterministic() {
        let a = explore(&BarrierModel { ranks: 3, mutant_leak_withdraw: false }, BUDGET);
        let b = explore(&BarrierModel { ranks: 3, mutant_leak_withdraw: false }, BUDGET);
        assert_eq!(a.stats.states, b.stats.states);
        assert_eq!(a.stats.transitions, b.stats.transitions);
        assert_eq!(a.stats.max_depth, b.stats.max_depth);
    }
}
