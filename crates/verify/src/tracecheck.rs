//! Trace reconciliation: recorded timelines vs. the analytic plan model.
//!
//! A [`StepTimeline`] records one `collective`-category span per executed
//! collective, byte-tagged with the traffic-counter delta observed across
//! the op's execution. A [`CommPlan`] predicts, per rank, exactly how many
//! collectives of each kind a step issues and how many bytes each rank
//! sends. This module closes the triangle: for every
//! [`CollectiveKind`], the span count must equal the plan's op count, and
//! the span byte sum must equal both the plan's per-rank volume and the
//! communicator's [`TrafficSnapshot`] — exact equality, no tolerances.

use zero_comm::{TrafficSnapshot, ALL_KINDS, KIND_COUNT};
use zero_core::CommPlan;
use zero_trace::{SpanCategory, StepTimeline};

/// The schedule-position labels the engine stamps on tier movements —
/// the closed name set [`SpanCategory::Tier`] spans may carry.
pub const TIER_LABELS: [&str; 3] =
    ["tier-param-fetch", "tier-publish-fetch", "tier-grad-spill"];

/// Expected per-kind collective span counts and byte volumes for one rank,
/// accumulated over the plans a run executed.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceExpectation {
    /// Collective spans expected, indexed by kind discriminant.
    pub ops: [u64; KIND_COUNT],
    /// Span byte-tag sums expected, indexed by kind discriminant.
    pub bytes: [u64; KIND_COUNT],
    /// Tier-movement spans expected, indexed by [`TIER_LABELS`] position.
    pub tier_ops: [u64; TIER_LABELS.len()],
    /// Tier span byte-tag sums expected, same indexing.
    pub tier_bytes: [u64; TIER_LABELS.len()],
}

impl TraceExpectation {
    /// Accumulates `reps` executions of `plan` as experienced by `rank`.
    ///
    /// Every rank submits every planned op (single-member groups included:
    /// the communicator still issues a request, so a span is still
    /// recorded — with zero bytes, since a ring of one moves nothing).
    /// An offloaded plan's tier stream is folded in the same way: one
    /// [`SpanCategory::Tier`] span per movement, byte-tagged with the
    /// rank's planned transfer volume.
    pub fn add_plan(&mut self, plan: &CommPlan, rank: usize, reps: u64) {
        for op in plan.ops() {
            self.ops[op.kind as usize] += reps;
        }
        for (acc, b) in self.bytes.iter_mut().zip(plan.rank_bytes(rank)) {
            *acc += reps * b;
        }
        if !plan.tier_ops().is_empty() {
            for t in plan.resolve_tier_for(rank) {
                let i = TIER_LABELS
                    .iter()
                    .position(|l| *l == t.label)
                    .unwrap_or_else(|| panic!("unknown tier label {:?}", t.label));
                self.tier_ops[i] += reps;
                self.tier_bytes[i] += reps * t.bytes;
            }
        }
    }

    /// Total collective spans expected across all kinds.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Total bytes expected across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

/// Reconciles a recorded timeline against an expectation and (optionally)
/// the rank's live traffic counters.
///
/// Checks, per collective kind: span count == planned op count; span byte
/// sum == planned per-rank bytes; and, when `traffic` is given, span byte
/// sum == metered bytes. Also rejects stray collective spans whose name is
/// not a collective kind.
pub fn check_timeline(
    tl: &StepTimeline,
    want: &TraceExpectation,
    traffic: Option<&TrafficSnapshot>,
) -> Result<(), String> {
    for kind in ALL_KINDS {
        let k = kind as usize;
        let spans = tl.count_named(SpanCategory::Collective, kind.name()) as u64;
        if spans != want.ops[k] {
            return Err(format!(
                "{}: {spans} collective spans recorded, plan has {}",
                kind.name(),
                want.ops[k]
            ));
        }
        let tagged = tl.bytes_named(SpanCategory::Collective, kind.name());
        if tagged != want.bytes[k] {
            return Err(format!(
                "{}: span byte tags sum to {tagged}, plan volume is {}",
                kind.name(),
                want.bytes[k]
            ));
        }
        if let Some(t) = traffic {
            let metered = t.bytes(kind);
            if metered != tagged {
                return Err(format!(
                    "{}: traffic counter says {metered} bytes, span tags sum to {tagged}",
                    kind.name()
                ));
            }
        }
    }
    let total = tl.count(SpanCategory::Collective) as u64;
    if total != want.total_ops() {
        return Err(format!(
            "{total} collective spans recorded in all, plan has {} — \
             some spans carry names outside the kind taxonomy",
            want.total_ops()
        ));
    }
    for (i, label) in TIER_LABELS.iter().enumerate() {
        let spans = tl.count_named(SpanCategory::Tier, label) as u64;
        if spans != want.tier_ops[i] {
            return Err(format!(
                "{label}: {spans} tier spans recorded, plan has {}",
                want.tier_ops[i]
            ));
        }
        let tagged = tl.bytes_named(SpanCategory::Tier, label);
        if tagged != want.tier_bytes[i] {
            return Err(format!(
                "{label}: tier span byte tags sum to {tagged}, plan volume is {}",
                want.tier_bytes[i]
            ));
        }
    }
    let tier_total = tl.count(SpanCategory::Tier) as u64;
    let tier_want: u64 = want.tier_ops.iter().sum();
    if tier_total != tier_want {
        return Err(format!(
            "{tier_total} tier spans recorded in all, plan has {tier_want} — \
             some spans carry labels outside the tier taxonomy"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use zero_comm::{CollectiveKind, Grid};
    use zero_core::{CommPlan, StepShape, ZeroConfig, ZeroStage};
    use zero_model::{Layout, ModelConfig};
    use zero_trace::Span;

    fn tiny_plan(stage: ZeroStage, n: usize) -> (CommPlan, ZeroConfig) {
        let model = ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 };
        let layout = Layout::build_mp(&model, 1);
        let zcfg = ZeroConfig { stage, bucket_elems: 512, ..ZeroConfig::default() };
        let shape = StepShape { micro_batches: 1, act_elems: 8 * 16, skipped: false };
        (CommPlan::train_step(&layout, &zcfg, Grid::new(n, 1), &shape), zcfg)
    }

    /// A synthetic timeline holding exactly the spans the plan predicts.
    fn timeline_for(want: &TraceExpectation) -> StepTimeline {
        let mut spans = Vec::new();
        let mut t = 0;
        for kind in ALL_KINDS {
            let k = kind as usize;
            for i in 0..want.ops[k] {
                // Put the whole kind's byte volume on the first span.
                let bytes = if i == 0 { want.bytes[k] } else { 0 };
                spans.push(Span {
                    name: kind.name(),
                    cat: SpanCategory::Collective,
                    start_ns: t,
                    end_ns: t + 10,
                    track: 1,
                    bytes,
                });
                t += 10;
            }
        }
        for (i, label) in TIER_LABELS.iter().enumerate() {
            for j in 0..want.tier_ops[i] {
                let bytes = if j == 0 { want.tier_bytes[i] } else { 0 };
                spans.push(Span {
                    name: label,
                    cat: SpanCategory::Tier,
                    start_ns: t,
                    end_ns: t + 10,
                    track: 1,
                    bytes,
                });
                t += 10;
            }
        }
        StepTimeline { spans, instants: Vec::new(), counters: Vec::new() }
    }

    #[test]
    fn matching_timeline_reconciles() {
        for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
            let (plan, _) = tiny_plan(stage, 2);
            let mut want = TraceExpectation::default();
            want.add_plan(&plan, 0, 3);
            let tl = timeline_for(&want);
            check_timeline(&tl, &want, None)
                .unwrap_or_else(|e| panic!("{stage:?}: {e}"));
        }
    }

    #[test]
    fn missing_span_or_wrong_bytes_is_rejected() {
        let (plan, _) = tiny_plan(ZeroStage::Two, 2);
        let mut want = TraceExpectation::default();
        want.add_plan(&plan, 1, 1);
        let mut tl = timeline_for(&want);
        let dropped = tl.spans.pop().unwrap();
        let err = check_timeline(&tl, &want, None).unwrap_err();
        assert!(err.contains("spans recorded"), "{err}");
        tl.spans.push(Span { bytes: dropped.bytes + 1, ..dropped });
        let err = check_timeline(&tl, &want, None).unwrap_err();
        assert!(err.contains("byte tags"), "{err}");
    }

    #[test]
    fn stray_span_names_are_rejected() {
        let (plan, _) = tiny_plan(ZeroStage::One, 2);
        let mut want = TraceExpectation::default();
        want.add_plan(&plan, 0, 1);
        let mut tl = timeline_for(&want);
        tl.spans.push(Span {
            name: "not-a-kind",
            cat: SpanCategory::Collective,
            start_ns: 0,
            end_ns: 1,
            track: 1,
            bytes: 0,
        });
        assert!(check_timeline(&tl, &want, None).is_err());
    }

    #[test]
    fn offloaded_tier_stream_reconciles_and_tampering_is_rejected() {
        use zero_core::TierConfig;
        let model = ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 };
        let layout = Layout::build_mp(&model, 1);
        let zcfg = ZeroConfig {
            stage: ZeroStage::Three,
            bucket_elems: 512,
            tier: TierConfig::budgeted(1 << 30),
            ..ZeroConfig::default()
        };
        let shape = StepShape { micro_batches: 1, act_elems: 8 * 16, skipped: false };
        let plan = CommPlan::train_step(&layout, &zcfg, Grid::new(2, 1), &shape);
        assert!(!plan.tier_ops().is_empty(), "offloaded plan carries tier ops");
        let mut want = TraceExpectation::default();
        want.add_plan(&plan, 0, 2);
        assert!(want.tier_ops.iter().sum::<u64>() > 0);
        let mut tl = timeline_for(&want);
        check_timeline(&tl, &want, None).expect("matching tier stream reconciles");

        // A lost tier span, a wrong byte tag, and a stray label must all
        // be rejected.
        let idx = tl
            .spans
            .iter()
            .position(|s| s.cat == SpanCategory::Tier)
            .expect("tier span present");
        let dropped = tl.spans.remove(idx);
        let err = check_timeline(&tl, &want, None).unwrap_err();
        assert!(err.contains("tier spans recorded"), "{err}");
        tl.spans.push(Span { bytes: dropped.bytes + 8, ..dropped });
        let err = check_timeline(&tl, &want, None).unwrap_err();
        assert!(err.contains("tier span byte tags"), "{err}");
    }

    #[test]
    fn expectation_counts_every_planned_op() {
        let (plan, _) = tiny_plan(ZeroStage::Three, 4);
        let mut want = TraceExpectation::default();
        want.add_plan(&plan, 2, 1);
        assert_eq!(want.total_ops(), plan.ops().len() as u64);
        let rs = want.ops[CollectiveKind::ReduceScatter as usize];
        let ag = want.ops[CollectiveKind::AllGather as usize];
        assert!(rs > 0 && ag > 0, "stage 3 plans both RS and AG");
    }
}
