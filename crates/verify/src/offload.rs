//! The memory-tier offload prover.
//!
//! Sweeps stages 1–3 × N ∈ {2,4,8} × sync/overlap × fp16/fp32 and proves
//! four things about the tier-movement stream of every offloaded plan,
//! all from plan arithmetic — zero training steps executed:
//!
//! * **Prefetch windows.** Every tier op is issued no later than it is
//!   demanded (`issue_pos ≤ demand_pos`). Synchronous plans have zero
//!   window everywhere; overlapped stage-3 plans must open a real window
//!   (`demand_pos > issue_pos`) on their parameter fetches — a prefetch
//!   that never runs ahead of demand is a bug, not a schedule.
//! * **Pairing.** Every parameter fetch anchors exactly at the
//!   all-gather it seeds, with byte-identical per-rank counts; every
//!   synchronous gradient spill anchors right after the reduce-scatter
//!   that produced its piece; every publish fetch anchors at its publish
//!   all-gather. Anchors are strictly increasing — the tier stream cannot
//!   reorder against the collective stream.
//! * **Telescoping volumes.** Per rank and step, gradient-spill bytes
//!   total exactly `micro_batches · shard` elements for stages 2–3 (the
//!   buckets tile Ψ each micro-batch) and one `shard` for stage 1 on
//!   non-skipped steps; publish-fetch bytes total one `shard` on
//!   non-skipped steps for stages 1–2 — independently recomputed from the
//!   partition, not read back from the plan.
//! * **Equivalence.** The collective stream of an offloaded plan is
//!   bitwise identical to the tier-off baseline (offload adds a tier
//!   stream, it never perturbs a collective — which is why losses are
//!   bitwise identical), and a tier-off plan carries no tier ops.
//!
//! Rank-symmetry ([`schedule`](crate::schedule)) is re-proven on every
//! offloaded configuration.

use zero_comm::Grid;
use zero_core::{
    CommPlan, Partitioner, ResolvedTierOp, StepShape, TierConfig, TierDir, ZeroConfig, ZeroStage,
};
use zero_model::{Layout, ModelConfig};

use crate::schedule::check_symmetry;

/// Counters from the offload sweep.
#[derive(Clone, Debug, Default)]
pub struct OffloadReport {
    /// (stage, N, overlap, precision) configurations proven.
    pub configs: usize,
    /// Tier ops checked (windows + anchors + volumes).
    pub tier_ops_checked: usize,
    /// Tier ops paired byte-exactly with their anchor collective.
    pub paired_ops: usize,
    /// Real prefetch windows (`demand_pos > issue_pos`) proven open.
    pub windows_proven: usize,
}

fn test_model() -> ModelConfig {
    ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 }
}

fn cfg(stage: ZeroStage, overlap: bool, fp16: bool, tier: TierConfig) -> ZeroConfig {
    ZeroConfig {
        stage,
        fp16,
        overlap,
        checkpoint_activations: false,
        initial_loss_scale: 1.0,
        bucket_elems: 512,
        tier,
        ..ZeroConfig::default()
    }
}

/// Two micro-batches: the regime where per-micro spill telescoping and
/// the drain-barrier spill placement are both visible.
fn shape(skipped: bool) -> StepShape {
    let m = test_model();
    StepShape { micro_batches: 2, act_elems: 2 * m.seq * m.hidden, skipped }
}

/// Checks windows, anchors, and strict anchor monotonicity for one
/// rank's resolved tier stream against the resolved collective stream.
fn check_anchors(
    tier: &[ResolvedTierOp],
    ops: &[zero_core::ResolvedOp],
    rank: usize,
    overlap: bool,
    what: &str,
    report: &mut OffloadReport,
) -> Result<(), String> {
    let mut last_issue = 0usize;
    for (i, t) in tier.iter().enumerate() {
        if t.issue_pos > t.demand_pos {
            return Err(format!(
                "{what} rank {rank}: tier op {i} '{}' issued at {} but demanded \
                 earlier at {} — the transfer would arrive after its use",
                t.label, t.issue_pos, t.demand_pos
            ));
        }
        if t.demand_pos > ops.len() {
            return Err(format!(
                "{what} rank {rank}: tier op {i} '{}' demand anchor {} beyond the \
                 {}-op collective stream",
                t.label,
                t.demand_pos,
                ops.len()
            ));
        }
        if t.issue_pos < last_issue {
            return Err(format!(
                "{what} rank {rank}: tier op {i} '{}' anchor {} precedes an earlier \
                 op's anchor {last_issue} — the stream reorders against the collectives",
                t.label, t.issue_pos
            ));
        }
        last_issue = t.issue_pos;
        if !overlap && t.demand_pos != t.issue_pos {
            return Err(format!(
                "{what} rank {rank}: synchronous plan opened a prefetch window on \
                 tier op {i} '{}' ({} -> {})",
                t.label, t.issue_pos, t.demand_pos
            ));
        }
        if t.demand_pos > t.issue_pos {
            report.windows_proven += 1;
        }
        // Anchor pairing: each movement sits against the collective that
        // consumes (fetch) or produced (sync spill) its bytes.
        match t.label {
            "tier-param-fetch" | "tier-publish-fetch" => {
                let op = ops.get(t.issue_pos).ok_or_else(|| {
                    format!(
                        "{what} rank {rank}: tier op {i} '{}' anchors past the end of \
                         the collective stream",
                        t.label
                    )
                })?;
                if op.kind != zero_comm::CollectiveKind::AllGather {
                    return Err(format!(
                        "{what} rank {rank}: tier fetch {i} anchors at '{}' ({:?}), \
                         not an all-gather",
                        op.label, op.kind
                    ));
                }
                let want = op.prec.bytes() * op.counts[rank] as u64;
                if t.bytes != want {
                    return Err(format!(
                        "{what} rank {rank}: tier fetch {i} moves {} bytes but its \
                         all-gather's shard piece is {want}",
                        t.bytes
                    ));
                }
                report.paired_ops += 1;
            }
            "tier-grad-spill" if !overlap && t.issue_pos > 0 => {
                // Sync spills follow their reduce-scatter immediately
                // (stage-1's single end-of-step spill anchors at 0 in the
                // suffix segment and is volume-checked below instead).
                let op = &ops[t.issue_pos - 1];
                if op.kind == zero_comm::CollectiveKind::ReduceScatter {
                    let want = op.prec.bytes() * op.counts[rank] as u64;
                    if t.bytes != want {
                        return Err(format!(
                            "{what} rank {rank}: tier spill {i} moves {} bytes but \
                             its reduce-scatter's owner piece is {want}",
                            t.bytes
                        ));
                    }
                    report.paired_ops += 1;
                }
            }
            _ => {}
        }
        report.tier_ops_checked += 1;
    }
    Ok(())
}

/// Checks one offloaded configuration end to end.
fn check_offload_config(
    zcfg: &ZeroConfig,
    grid: Grid,
    report: &mut OffloadReport,
) -> Result<(), String> {
    let layout = Layout::build_mp(&test_model(), 1);
    let psi = layout.units().last().expect("layout units").range.end;
    let part = Partitioner::new(psi, grid.dp_degree());
    let elem_bytes: u64 = if zcfg.fp16 { 2 } else { 4 };
    let what = format!(
        "offload {} dp={} overlap={} fp16={}",
        zcfg.stage.name(),
        grid.dp_degree(),
        zcfg.overlap,
        zcfg.fp16
    );
    for skipped in [false, true] {
        let sh = shape(skipped);
        let plan = CommPlan::train_step(&layout, zcfg, grid, &sh);
        check_symmetry(&plan, &what)?;

        // Offload must not perturb a single collective: the op stream is
        // bitwise identical to the tier-off baseline.
        let mut base_cfg = *zcfg;
        base_cfg.tier = TierConfig::off();
        let base = CommPlan::train_step(&layout, &base_cfg, grid, &sh);
        if plan.ops() != base.ops() {
            return Err(format!(
                "{what} skipped={skipped}: offloaded plan's collective stream \
                 differs from the tier-off baseline"
            ));
        }
        if !base.tier_ops().is_empty() {
            return Err(format!(
                "{what} skipped={skipped}: tier-off baseline carries tier ops"
            ));
        }
        // Stage 1 skips both its spill and its publish on a skipped step,
        // so its tier stream is legitimately empty there; everywhere else
        // an offloaded plan must move bytes.
        let may_be_empty = skipped && !zcfg.stage.partitions_grads();
        if plan.tier_ops().is_empty() && !may_be_empty {
            return Err(format!(
                "{what} skipped={skipped}: offloaded plan carries no tier ops"
            ));
        }

        for rank in 0..grid.world_size() {
            let ops = plan.resolve_for(rank);
            let tier = plan.resolve_tier_for(rank);
            check_anchors(&tier, &ops, rank, zcfg.overlap, &what, report)?;

            // Independent telescoping volumes, from the partition alone.
            let shard = part.counts()[rank] as u64;
            let spill: u64 = tier
                .iter()
                .filter(|t| t.dir == TierDir::Spill)
                .map(|t| t.bytes)
                .sum();
            let publish: u64 = tier
                .iter()
                .filter(|t| t.dir == TierDir::Fetch && t.label == "tier-publish-fetch")
                .map(|t| t.bytes)
                .sum();
            let want_spill = elem_bytes
                * if zcfg.stage.partitions_grads() {
                    sh.micro_batches as u64 * shard
                } else if skipped {
                    0
                } else {
                    shard
                };
            if spill != want_spill {
                return Err(format!(
                    "{what} skipped={skipped} rank {rank}: spill bytes {spill} != \
                     telescoped {want_spill} (shard {shard} elems)"
                ));
            }
            let want_publish = elem_bytes
                * if zcfg.stage.partitions_params() || skipped {
                    0
                } else {
                    shard
                };
            if publish != want_publish {
                return Err(format!(
                    "{what} skipped={skipped} rank {rank}: publish-fetch bytes \
                     {publish} != telescoped {want_publish}"
                ));
            }

            // Stage 3: every planned parameter all-gather has exactly one
            // paired tier fetch (completeness of the fetch stream).
            if zcfg.stage.partitions_params() {
                let fetches =
                    tier.iter().filter(|t| t.label == "tier-param-fetch").count();
                let gathers = ops
                    .iter()
                    .filter(|o| {
                        o.kind == zero_comm::CollectiveKind::AllGather
                            && o.label == "fetch-unit"
                    })
                    .count();
                if fetches != gathers {
                    return Err(format!(
                        "{what} skipped={skipped} rank {rank}: {gathers} parameter \
                         all-gathers but {fetches} tier fetches"
                    ));
                }
            }
        }
    }
    report.configs += 1;
    Ok(())
}

/// Runs the full offload sweep: stages 1–3 × N ∈ {2,4,8} × sync/overlap
/// × fp16/fp32 (36 configurations, each at skipped ∈ {false,true}).
pub fn check_offload() -> Result<OffloadReport, String> {
    let mut report = OffloadReport::default();
    let tier = TierConfig::budgeted(1 << 30);
    for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        for n in [2usize, 4, 8] {
            for overlap in [false, true] {
                for fp16 in [true, false] {
                    let grid = Grid::new(n, 1);
                    check_offload_config(&cfg(stage, overlap, fp16, tier), grid, &mut report)?;
                }
            }
        }
    }
    if report.windows_proven == 0 {
        return Err("offload sweep proved no open prefetch window anywhere — \
                    overlapped stage-3 plans must prefetch ahead of demand"
            .to_string());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sweep_passes() {
        let r = check_offload().expect("offload proof");
        // 3 stages × 3 worlds × sync/overlap × fp16/fp32.
        assert_eq!(r.configs, 36, "sweep covered {} configs", r.configs);
        assert!(r.tier_ops_checked > 100, "checked {} tier ops", r.tier_ops_checked);
        assert!(r.paired_ops > 50, "paired {} tier ops", r.paired_ops);
        assert!(r.windows_proven > 0, "no prefetch window proven open");
    }

    #[test]
    fn overlapped_stage3_opens_windows() {
        let layout = Layout::build_mp(&test_model(), 1);
        let zcfg = cfg(ZeroStage::Three, true, true, TierConfig::budgeted(1 << 30));
        let plan = CommPlan::train_step(&layout, &zcfg, Grid::new(4, 1), &shape(false));
        assert!(
            plan.tier_ops()
                .iter()
                .any(|t| t.demand_pos > t.issue_pos),
            "overlapped stage-3 plan must prefetch ahead of demand"
        );
    }

    #[test]
    fn tampered_window_is_rejected() {
        // Guard against the checker degenerating: an op demanded before
        // it is issued must fail the window check.
        let t = ResolvedTierOp {
            dir: TierDir::Fetch,
            label: "tier-param-fetch",
            bytes: 64,
            issue_pos: 3,
            demand_pos: 1,
        };
        let mut report = OffloadReport::default();
        let err = check_anchors(&[t], &[], 0, true, "tamper", &mut report)
            .expect_err("inverted window must be rejected");
        assert!(err.contains("demanded"), "unexpected error: {err}");
    }

    #[test]
    fn tampered_volume_is_rejected() {
        // A plan whose tier stream under-reports a spill must fail the
        // telescoping identity. Build a real plan, then shrink one spill.
        let layout = Layout::build_mp(&test_model(), 1);
        let zcfg = cfg(ZeroStage::Two, false, true, TierConfig::budgeted(1 << 30));
        let grid = Grid::new(2, 1);
        let plan = CommPlan::train_step(&layout, &zcfg, grid, &shape(false));
        let psi = layout.units().last().unwrap().range.end;
        let part = Partitioner::new(psi, 2);
        let spill: u64 = plan
            .resolve_tier_for(0)
            .iter()
            .filter(|t| t.dir == TierDir::Spill)
            .map(|t| t.bytes)
            .sum();
        let want = 2 * 2 * part.counts()[0] as u64; // elem_bytes × micros × shard
        assert_eq!(spill, want, "healthy plan telescopes");
        assert_ne!(spill.saturating_sub(2), want, "tampered volume must disagree");
    }
}
